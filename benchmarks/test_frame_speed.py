"""Speed gate: the columnar ResultFrame path must be ≥ 5x the row path.

The PR that introduced :mod:`repro.core.resultframe` claims the
merge → Pareto → CSV pipeline of a large sweep runs at numpy speed
instead of per-object speed.  This benchmark pins that claim on a
≥ 10k-row synthetic sweep split into shard payloads:

* **row-object path** (the pre-frame implementation, reconstructed
  here): deserialise every row dict into a ``SweepRow``, merge the
  shards point-index-wise through a Python dict, run the pointwise
  O(n²) Pareto loop (``pareto_front_pointwise``, kept in
  :mod:`repro.core.pareto` as the reference), and format the CSV row
  by row through ``as_dict``.  The row path's Pareto scan grows
  quadratically while the frame path stays near O(front × n); at this
  grid size (20k rows) the pipeline measures ~9.5x against the 5x
  gate, and the best-of-N timing keeps runner noise (which only ever
  *inflates* a best-of) from eating that margin;
* **frame path** (what the library actually does now): rebuild one
  ``ResultFrame`` per shard from the columnar payload, concatenate and
  stable-sort into canonical order, take the vectorised
  ``pareto_mask`` and format the CSV column-at-a-time.

Both paths must produce byte-identical CSV text and the identical
Pareto verdict; the frame path must be at least ``MIN_SPEEDUP`` times
faster end to end.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pareto import ParetoPoint, pareto_front_pointwise
from repro.core.resultframe import COLUMN_ORDER, ResultFrame, SweepRow

#: The acceptance criterion: columnar vs row-object speedup.
MIN_SPEEDUP = 5.0

N_POINTS = 5_000
CANDIDATES = ("PCB/SMD", "MCM-D/WB", "MCM-D/IP", "MCM-D/IP&SMD")
N_ROWS = N_POINTS * len(CANDIDATES)
N_SHARDS = 8


def _synthetic_shards():
    """A 10k-row sweep as shard payloads, in both serialisations.

    Objectives carry a genuine performance/size/cost trade-off (plus
    noise), so the global Pareto front has realistic breadth — the
    regime the row path's per-point scan is slowest in.
    """
    rng = np.random.default_rng(20260728)
    volumes = np.repeat(
        np.geomspace(1e2, 1e7, N_POINTS), len(CANDIDATES)
    )
    candidates = np.tile(np.array(CANDIDATES, dtype=object), N_POINTS)
    performance = rng.uniform(0.4, 1.0, N_ROWS)
    # Better performance costs area and money, imperfectly.
    area = 100.0 * (1.6 - performance) + rng.normal(0.0, 6.0, N_ROWS)
    cost = 100.0 * (0.4 + performance) + rng.normal(0.0, 6.0, N_ROWS)
    fom = performance * (100.0 / area) * (100.0 / cost)
    is_winner = np.zeros(N_ROWS, dtype=bool)
    is_winner[
        fom.reshape(N_POINTS, len(CANDIDATES)).argmax(axis=1)
        + np.arange(N_POINTS) * len(CANDIDATES)
    ] = True

    frame = ResultFrame.from_columns(
        {
            "volume": volumes,
            "substrate": np.full(N_ROWS, "paper", dtype=object),
            "process": np.full(N_ROWS, "paper", dtype=object),
            "tolerance": np.full(N_ROWS, "paper", dtype=object),
            "q_model": np.full(N_ROWS, "paper", dtype=object),
            "nre": np.full(N_ROWS, "paper", dtype=object),
            "weights": np.full(N_ROWS, "paper", dtype=object),
            "candidate": candidates,
            "performance": performance,
            "area_percent": area,
            "cost_percent": cost,
            "figure_of_merit": fom,
            "is_winner": is_winner,
            "on_pareto_front": np.zeros(N_ROWS, dtype=bool),
        }
    )
    rows = frame.to_rows()

    columnar_shards = []
    row_shards = []
    per_shard = N_POINTS // N_SHARDS
    for shard in range(N_SHARDS):
        start_point = shard * per_shard
        stop_point = (
            N_POINTS if shard == N_SHARDS - 1 else start_point + per_shard
        )
        indices = list(range(start_point, stop_point))
        lo = start_point * len(CANDIDATES)
        hi = stop_point * len(CANDIDATES)
        columnar_shards.append(
            {
                "indices": indices,
                "row_counts": [len(CANDIDATES)] * len(indices),
                "columns": frame.take(range(lo, hi)).to_json_columns(),
            }
        )
        row_shards.append(
            {
                "cells": [
                    {
                        "index": point,
                        "rows": [
                            rows[point * len(CANDIDATES) + k].as_dict()
                            for k in range(len(CANDIDATES))
                        ],
                    }
                    for point in indices
                ],
            }
        )
    # Merge in arrival order != canonical order: both paths must sort.
    order = list(reversed(range(N_SHARDS)))
    return (
        [columnar_shards[i] for i in order],
        [row_shards[i] for i in order],
    )


def _row_object_pipeline(row_shards) -> tuple[str, list[bool]]:
    """Merge + Pareto + CSV exactly as the pre-frame code did it."""
    by_index: dict[int, list[SweepRow]] = {}
    for payload in row_shards:
        for cell in payload["cells"]:
            by_index[cell["index"]] = [
                SweepRow(**{name: record[name] for name in COLUMN_ORDER})
                for record in cell["rows"]
            ]
    rows: list[SweepRow] = []
    for index in range(N_POINTS):
        rows.extend(by_index[index])

    points = [
        ParetoPoint(
            name=str(i),
            performance=row.performance,
            size_ratio=row.area_percent,
            cost_ratio=row.cost_percent,
        )
        for i, row in enumerate(rows)
    ]
    front_ids = {
        id(point) for point in pareto_front_pointwise(points).front
    }
    mask = [id(point) in front_ids for point in points]

    lines = [",".join(COLUMN_ORDER)]
    for row in rows:
        record = row.as_dict()
        lines.append(",".join(str(record[key]) for key in record))
    return "\n".join(lines), mask


def _frame_pipeline(columnar_shards) -> tuple[str, list[bool]]:
    """Merge + Pareto + CSV through the columnar spine."""
    frames = []
    point_of_row = []
    for payload in columnar_shards:
        frames.append(ResultFrame.from_json_columns(payload["columns"]))
        point_of_row.append(
            np.repeat(
                np.asarray(payload["indices"], dtype=np.int64),
                np.asarray(payload["row_counts"], dtype=np.int64),
            )
        )
    merged = ResultFrame.concat(frames)
    merged = merged.take(
        np.argsort(np.concatenate(point_of_row), kind="stable")
    )
    mask = merged.pareto_mask()
    text = "\n".join([merged.csv_header(), *merged.csv_lines()])
    return text, mask.tolist()


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_frame_pipeline_is_5x_the_row_object_pipeline():
    """≥ 5x on merge+Pareto+CSV of a 10k-row sweep, identical output."""
    columnar_shards, row_shards = _synthetic_shards()

    row_s, (row_text, row_mask) = _best_of(
        lambda: _row_object_pipeline(row_shards), repeats=2
    )
    frame_s, (frame_text, frame_mask) = _best_of(
        lambda: _frame_pipeline(columnar_shards), repeats=5
    )

    assert frame_text == row_text
    assert frame_mask == row_mask
    assert sum(frame_mask) >= 10  # the front is not degenerate

    speedup = row_s / frame_s
    print(
        f"\n{N_ROWS}-row merge+Pareto+CSV: row objects "
        f"{1e3 * row_s:.0f} ms, frame {1e3 * frame_s:.0f} ms "
        f"-> {speedup:.1f}x (gate {MIN_SPEEDUP}x)"
    )
    assert speedup >= MIN_SPEEDUP