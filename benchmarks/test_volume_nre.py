"""Extension bench: volume sensitivity through the NRE term of Eq. (1).

Eq. (1) amortises non-recurring engineering over shipped units; the
paper's Fig. 5 compares recurring costs only.  MCM-D substrates carry a
mask-set NRE that plain PCB does not, so the build-up ranking is
volume-dependent: at prototype volumes the PCB reference wins by more,
at production volumes the Fig. 5 picture is recovered.

NRE figures are an extension scenario (the paper publishes none):
PCB tooling 5 k, MCM-D mask set 30 k, plus 15 k for the integrated
passive layers of build-ups 3/4.
"""

from __future__ import annotations

import pytest

from repro.cost.moe import evaluate
from repro.gps.buildups import flow_for

#: Extension scenario NRE per build-up (currency units).
SCENARIO_NRE = {1: 5_000.0, 2: 30_000.0, 3: 45_000.0, 4: 45_000.0}


def cost_ratio_at_volume(implementation: int, volume: float) -> float:
    """Final-cost ratio to the PCB reference at a production volume."""
    flows = {
        i: flow_for(i, nre=SCENARIO_NRE[i]) for i in (1, implementation)
    }
    reports = {
        i: evaluate(flow, volume=volume) for i, flow in flows.items()
    }
    return (
        reports[implementation].final_cost_per_shipped
        / reports[1].final_cost_per_shipped
    )


def test_volume_sweep(benchmark):
    def sweep():
        volumes = (200.0, 1_000.0, 10_000.0, 100_000.0)
        return {
            volume: {
                i: cost_ratio_at_volume(i, volume) for i in (2, 3, 4)
            }
            for volume in volumes
        }

    table = benchmark(sweep)
    print("\nFinal cost vs PCB reference [%], by production volume:")
    print(f"{'volume':>8} | {'impl 2':>7} | {'impl 3':>7} | {'impl 4':>7}")
    for volume, ratios in table.items():
        print(
            f"{volume:>8.0f} | {100 * ratios[2]:>7.1f} | "
            f"{100 * ratios[3]:>7.1f} | {100 * ratios[4]:>7.1f}"
        )

    # At prototype volume the MCM penalty is much larger ...
    assert table[200.0][3] > table[100_000.0][3] + 0.05
    # ... and at production volume the Fig. 5 regime is recovered.
    for i in (2, 3, 4):
        assert table[100_000.0][i] == pytest.approx(
            cost_ratio_no_nre(i), abs=0.01
        )
    # Ordering within each volume is preserved (1 cheapest everywhere).
    for ratios in table.values():
        assert all(ratio > 1.0 for ratio in ratios.values())


def cost_ratio_no_nre(implementation: int) -> float:
    reference = evaluate(flow_for(1)).final_cost_per_shipped
    return (
        evaluate(flow_for(implementation)).final_cost_per_shipped
        / reference
    )


def test_breakeven_volume(benchmark):
    """Volume at which build-up 4's NRE premium over the PCB reference
    falls below one percent of the module cost."""

    def find():
        for volume in (500, 1_000, 2_000, 5_000, 10_000, 50_000,
                       200_000):
            with_nre = cost_ratio_at_volume(4, float(volume))
            without = cost_ratio_no_nre(4)
            if with_nre - without < 0.01:
                return volume
        return None

    volume = benchmark(find)
    print(f"\nNRE premium of build-up 4 fades below 1% at ~{volume} units")
    assert volume is not None
    assert 1_000 <= volume <= 200_000
