"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper and prints
the same rows/series the paper reports (run with ``-s`` to see them),
while pytest-benchmark times the regeneration.
"""

from __future__ import annotations

import pytest

from repro.gps.study import run_gps_study, summary_rows


@pytest.fixture(scope="session")
def gps_result():
    """The full GPS trade-off study, computed once per session."""
    return run_gps_study()


@pytest.fixture(scope="session")
def gps_rows(gps_result):
    """Per-implementation summary keyed by implementation number."""
    return {row.implementation: row for row in summary_rows(gps_result)}


def print_paper_vs_measured(title, rows):
    """Uniform paper-vs-measured table for the bench output."""
    print(f"\n{title}")
    print(f"{'impl':>4} | {'paper':>8} | {'measured':>8}")
    for key, (paper, measured) in rows.items():
        print(f"{key:>4} | {paper:>8.2f} | {measured:>8.2f}")
