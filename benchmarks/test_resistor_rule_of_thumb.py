"""Rule-of-thumb sweep (ref [2], quoted in §1).

"Some rules of thumb do exist stating that for an arbitrary board size
for more than 10 resistors the IP solution is more cost effective."

This bench rebuilds that rule with the methodology: a generic board
(one ASIC plus n pull-up resistors) is costed in an all-SMD build and an
integrated-resistor build, sweeping n to find the cost crossover.  The
crossover must land at the order of ten resistors.
"""

from __future__ import annotations

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import SubstrateRule
from repro.core.methodology import CandidateBuildUp, run_study
from repro.cost.moe.builder import FlowBuilder
from repro.cost.moe.nodes import CostTag
from repro.passives.thin_film import SUMMIT_PROCESS, resistor_area_mm2

CHIP_AREA_MM2 = 100.0
CHIP_COST = 5.0
SMD_RESISTOR_AREA = 3.75
SMD_RESISTOR_COST = 0.01
SMD_ASSEMBLY_COST = 0.01
IP_RESISTOR_AREA = resistor_area_mm2(10e3, SUMMIT_PROCESS)
PLAIN_BOARD_COST_PER_CM2 = 0.1
THIN_FILM_BOARD_COST_PER_CM2 = 0.30

PLAIN_RULE = SubstrateRule(name="plain PCB", packing_factor=1.1,
                           edge_clearance_mm=1.0)
THIN_FILM_RULE = SubstrateRule(name="thin-film board", packing_factor=1.1,
                               edge_clearance_mm=1.0)


def _smd_candidate(n: int) -> CandidateBuildUp:
    footprints = [Footprint("asic", CHIP_AREA_MM2, MountKind.PACKAGED)]
    footprints += [
        Footprint(f"R{i}", SMD_RESISTOR_AREA, MountKind.SMD)
        for i in range(n)
    ]

    def flow(area_cm2: float):
        builder = FlowBuilder(f"SMD n={n}")
        builder.carrier(
            "plain board", PLAIN_BOARD_COST_PER_CM2 * area_cm2, 0.999
        )
        builder.attach(
            "asic", 1, CHIP_COST, 0.999, 0.05, 0.99,
            component_tag=CostTag.CHIP,
        )
        if n:
            builder.attach(
                "resistors", n, SMD_RESISTOR_COST, 1.0,
                SMD_ASSEMBLY_COST, 0.9999,
                component_tag=CostTag.PASSIVE,
            )
        builder.test("test", 1.0, 0.99)
        return builder.build()

    return CandidateBuildUp(
        name=f"SMD n={n}",
        footprints=footprints,
        substrate_rule=PLAIN_RULE,
        flow_factory=flow,
        fixed_performance=1.0,
    )


def _ip_candidate(n: int) -> CandidateBuildUp:
    footprints = [Footprint("asic", CHIP_AREA_MM2, MountKind.PACKAGED)]
    footprints += [
        Footprint(f"R{i}", IP_RESISTOR_AREA, MountKind.INTEGRATED)
        for i in range(n)
    ]

    def flow(area_cm2: float):
        return (
            FlowBuilder(f"IP n={n}")
            .carrier(
                "thin-film board",
                THIN_FILM_BOARD_COST_PER_CM2 * area_cm2,
                0.999,
            )
            .attach(
                "asic", 1, CHIP_COST, 0.999, 0.05, 0.99,
                component_tag=CostTag.CHIP,
            )
            .test("test", 1.0, 0.99)
            .build()
        )

    return CandidateBuildUp(
        name=f"IP n={n}",
        footprints=footprints,
        substrate_rule=THIN_FILM_RULE,
        flow_factory=flow,
        fixed_performance=1.0,
    )


def cost_pair(n: int) -> tuple[float, float]:
    """(SMD cost, IP cost) for a board with n resistors."""
    result = run_study([_smd_candidate(n), _ip_candidate(n)])
    smd = result.row(f"SMD n={n}").assessment.final_cost
    ip = result.row(f"IP n={n}").assessment.final_cost
    return smd, ip


def find_crossover(max_n: int = 60) -> int:
    """Smallest resistor count at which the IP build is cheaper."""
    for n in range(1, max_n + 1):
        smd, ip = cost_pair(n)
        if ip < smd:
            return n
    return max_n + 1


def test_rule_of_thumb_crossover(benchmark):
    crossover = benchmark(find_crossover)
    print(f"\nIP becomes cheaper than SMD at n = {crossover} resistors "
          f"(rule of thumb [2]: 'more than 10')")
    sweep_points = [1, 5, 10, 15, 20, 30]
    print(f"{'n':>4} | {'SMD cost':>8} | {'IP cost':>8}")
    for n in sweep_points:
        smd, ip = cost_pair(n)
        print(f"{n:>4} | {smd:>8.3f} | {ip:>8.3f}")
    # The order of magnitude of the published rule of thumb.
    assert 3 <= crossover <= 30


def test_few_resistors_favor_smd(benchmark):
    smd, ip = benchmark(cost_pair, 2)
    assert smd < ip


def test_many_resistors_favor_ip(benchmark):
    smd, ip = benchmark(cost_pair, 50)
    assert ip < smd
