"""Speed benchmark: batched frequency sweep vs the per-frequency loop.

The vectorised MNA engine stamps a 201-point sweep as one ``(F, n, n)``
tensor and solves it with a single batched ``numpy.linalg.solve`` call;
the pre-vectorisation path stamps and solves point by point in Python.
This benchmark pins down both properties the refactor claims:

* **agreement** — the two paths produce the same S-parameters;
* **speed** — the batched path is at least 5x faster on a 6-node chain
  (in practice ~20x; the 5x floor keeps CI noise out of the signal).

A second benchmark times the design-space sweep subsystem and asserts
its sub-result memoisation actually shares work across grid points.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.netlist import Circuit
from repro.circuits.twoport import sweep, sweep_pointwise
from repro.core.sweep import SweepGrid
from repro.gps.study import run_gps_sweep

SWEEP_POINTS = 201
START_HZ = 50e6
STOP_HZ = 500e6


def six_node_chain() -> Circuit:
    """A 6-node RLC ladder (plus ports), the benchmark workload."""
    c = Circuit("bench-chain")
    c.resistor("R1", "in", "n1", 10.0)
    c.inductor("L1", "n1", "n2", 50e-9, series_resistance=0.5)
    c.capacitor("C1", "n2", "0", 20e-12)
    c.inductor("L2", "n2", "n3", 80e-9, series_resistance=0.8)
    c.capacitor("C2", "n3", "0", 10e-12)
    c.resistor("R2", "n3", "n4", 5.0)
    c.capacitor("C3", "n4", "out", 15e-12)
    c.inductor("L3", "out", "0", 30e-9, series_resistance=0.2)
    c.port("p1", "in", 50.0)
    c.port("p2", "out", 50.0)
    return c


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_sweep_agrees_with_pointwise():
    circuit = six_node_chain()
    batched = sweep(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)
    loop = sweep_pointwise(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)
    np.testing.assert_allclose(
        batched.s_matrices, loop.s_matrices, rtol=1e-12, atol=1e-15
    )


def test_batched_sweep_speedup():
    """Acceptance criterion: >= 5x on a 201-point sweep of a 6-node chain."""
    circuit = six_node_chain()

    def batched():
        sweep(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)

    def pointwise():
        sweep_pointwise(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)

    # Warm both paths (imports, allocator, BLAS thread pools).
    batched()
    pointwise()
    batched_s = _best_of(batched)
    pointwise_s = _best_of(pointwise)
    speedup = pointwise_s / batched_s
    print(
        f"\n201-point sweep, 6-node chain: batched {1e3 * batched_s:.2f} ms, "
        f"per-frequency loop {1e3 * pointwise_s:.2f} ms "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 5.0


def test_batched_sweep_benchmark(benchmark):
    """pytest-benchmark timing of the batched hot path."""
    circuit = six_node_chain()
    result = benchmark(
        lambda: sweep(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)
    )
    assert len(result.frequencies_hz) == SWEEP_POINTS


def test_design_sweep_memoization(benchmark):
    """A volume axis must not re-solve circuits or re-place substrates."""
    from repro.core.executors import SerialExecutor

    grid = SweepGrid(volumes=(1_000.0, 10_000.0, 100_000.0))

    # The hit-count assertion is about one shared cache: pin the serial
    # engine so an environment-selected engine cannot skew the tally.
    report = benchmark(
        lambda: run_gps_sweep(grid, executor=SerialExecutor())
    )
    # Three volumes share performance and placement: after the first
    # point, both steps hit for all four candidates.  Only the cost
    # step (which genuinely depends on volume) re-evaluates.
    candidates = len(report.cells[0].result.rows)
    expected_hits = (len(grid) - 1) * candidates * 2
    assert report.cache_stats["hits"] >= expected_hits
    winners = report.winner_counts()
    print(f"\nwinners across volume axis: {winners}")
    assert sum(winners.values()) == len(grid)
