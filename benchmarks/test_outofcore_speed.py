"""Memory gate: a 1M-row merge + Pareto rank under a fixed ceiling.

The out-of-core PR claims the chunked frame store pipeline —
:func:`~repro.core.framestore.merge_artifacts_to_store`, streamed CSV,
:func:`~repro.core.framestore.chunked_nondominated_mask` — handles
sweeps far beyond RAM while staying byte-identical to the in-RAM
reference.  This benchmark pins both halves of that claim on a
1M-row synthetic sweep cut into 8 shard artifacts:

* **identity first** — the chunked store's streamed CSV must hash to
  exactly the bytes of the in-RAM merge's CSV, and the chunked Pareto
  mask must equal the in-RAM mask, *before* any memory claim is
  entertained (a fast wrong answer must fail loudly, not sneak past
  the ceiling);
* **then the ceiling** — the whole chunked pipeline (merge, CSV
  stream, Pareto rank) runs under :mod:`tracemalloc` and its peak
  traced allocation must stay below ``CEILING_BYTES``, a budget sized
  to a couple of 50k-row chunks.  The in-RAM pipeline is measured
  under the same tracer and must *exceed* the ceiling — proof the gate
  is load-bearing, not generously wide.

The shard artifacts live in memory (allocated before tracing starts),
so the traced peaks isolate exactly what each pipeline allocates:
the in-RAM path materialises the full 1M-row frame; the chunked path
only ever holds one chunk plus the carried Pareto front.
"""

from __future__ import annotations

import hashlib
import time
import tracemalloc

import numpy as np

from repro.core.framestore import merge_artifacts_to_store
from repro.core.resultframe import ResultFrame
from repro.core.sharding import ShardArtifact, merge_shard_artifacts

N_POINTS = 1_000_000
N_SHARDS = 8
CHUNK_ROWS = 50_000

#: Peak traced allocation allowed for the chunked pipeline: the merge
#: plan (three int64 arrays over 1M points, 24 MB) plus one resident
#: chunk with its JSON transients plus the carried Pareto front.
#: Measured peak is ~85 MB; 128 MB leaves slack for allocator and
#: interpreter variance while staying far below the ~237 MB the
#: in-RAM merge alone allocates for the same rows.
CEILING_BYTES = 128 * 1024 * 1024

CANDIDATES = ("PCB/SMD", "MCM-D/WB", "MCM-D/IP", "MCM-D/IP&SMD")


def _synthetic_artifacts() -> list[ShardArtifact]:
    """1M rows (one per point) cut into valid shard artifacts.

    Objectives are rounded to three decimals: short float reprs keep
    the chunk JSON compact, and the resulting ties exercise exactly
    the duplicate-row semantics the chunked Pareto kernel must get
    right.
    """
    rng = np.random.default_rng(20260808)
    performance = np.round(rng.uniform(0.4, 1.0, N_POINTS), 3)
    area = np.round(
        100.0 * (1.6 - performance) + rng.normal(0.0, 6.0, N_POINTS), 3
    )
    cost = np.round(
        100.0 * (0.4 + performance) + rng.normal(0.0, 6.0, N_POINTS), 3
    )
    frame = ResultFrame.from_columns(
        {
            "volume": np.round(
                np.geomspace(1e2, 1e7, N_POINTS), 3
            ),
            "substrate": np.full(N_POINTS, "paper", dtype=object),
            "process": np.full(N_POINTS, "paper", dtype=object),
            "tolerance": np.full(N_POINTS, "paper", dtype=object),
            "q_model": np.full(N_POINTS, "paper", dtype=object),
            "nre": np.full(N_POINTS, "paper", dtype=object),
            "weights": np.full(N_POINTS, "paper", dtype=object),
            "candidate": np.array(
                [CANDIDATES[i % 4] for i in range(N_POINTS)],
                dtype=object,
            ),
            "performance": performance,
            "area_percent": area,
            "cost_percent": cost,
            "figure_of_merit": np.round(
                performance * (100.0 / area) * (100.0 / cost), 6
            ),
            "is_winner": np.ones(N_POINTS, dtype=bool),
            "on_pareto_front": np.zeros(N_POINTS, dtype=bool),
        }
    )
    artifacts = []
    per_shard = N_POINTS // N_SHARDS
    for shard in range(N_SHARDS):
        start = shard * per_shard
        stop = N_POINTS if shard == N_SHARDS - 1 else start + per_shard
        artifacts.append(
            ShardArtifact(
                fingerprint="bench-grid",
                order_digest="bench-order",
                shards=N_SHARDS,
                shard_index=shard,
                total_points=N_POINTS,
                indices=tuple(range(start, stop)),
                row_counts=(1,) * (stop - start),
                frame=frame.take(np.arange(start, stop)),
                cache_state={"tables": {}},
            )
        )
    # Arrival order != canonical order: both merges must reorder.
    return list(reversed(artifacts))


def _traced(fn):
    """Run ``fn`` under tracemalloc; (result, peak_bytes, seconds)."""
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak, elapsed


def _in_ram_reference(artifacts):
    """Merge + CSV hash + Pareto through one big frame (untraced).

    Only the merge itself runs under the tracer (see the test): it is
    the step that materialises the full 1M-row frame, and its peak
    alone proves the ceiling is unreachable in RAM — tracing the CSV
    hash of a million rows would only slow the gate down without
    changing that verdict.
    """
    report, merge_peak, _ = _traced(
        lambda: merge_shard_artifacts(artifacts)
    )
    digest = hashlib.sha256()
    digest.update((report.frame.csv_header() + "\n").encode("utf-8"))
    for line in report.frame.csv_lines():
        digest.update((line + "\n").encode("utf-8"))
    mask = report.frame.pareto_mask()
    return (
        digest.hexdigest(),
        int(mask.sum()),
        len(report.frame),
        merge_peak,
    )


def _chunked_pipeline(artifacts, directory):
    """The same merge + CSV + Pareto, one chunk resident at a time."""
    store = merge_artifacts_to_store(artifacts, directory, CHUNK_ROWS)
    digest = hashlib.sha256()
    digest.update((ResultFrame.csv_header() + "\n").encode("utf-8"))
    rows = 0
    for line in store.csv_lines():
        digest.update((line + "\n").encode("utf-8"))
        rows += 1
    mask = store.pareto_mask()
    return digest.hexdigest(), int(mask.sum()), rows


def test_million_row_merge_stays_under_memory_ceiling(tmp_path):
    """CSV bytes identical to in-RAM, then peak < CEILING_BYTES."""
    artifacts = _synthetic_artifacts()

    start = time.perf_counter()
    ram_csv, ram_front, ram_rows, ram_merge_peak = _in_ram_reference(
        artifacts
    )
    ram_s = time.perf_counter() - start
    (chunk_csv, chunk_front, chunk_rows), chunk_peak, chunk_s = _traced(
        lambda: _chunked_pipeline(artifacts, tmp_path / "store")
    )

    # Identity comes first: a wrong answer must never pass on memory.
    assert chunk_rows == ram_rows == N_POINTS
    assert chunk_csv == ram_csv
    assert chunk_front == ram_front
    assert chunk_front >= 10  # the front is not degenerate

    print(
        f"\n{N_POINTS}-row merge+CSV+Pareto ({N_SHARDS} shards, "
        f"{CHUNK_ROWS}-row chunks):"
    )
    print(
        f"  in-RAM : merge peak {ram_merge_peak / 1e6:7.1f} MB, "
        f"pipeline {ram_s:6.1f} s"
    )
    print(
        f"  chunked: peak       {chunk_peak / 1e6:7.1f} MB, "
        f"pipeline {chunk_s:6.1f} s (traced; ceiling "
        f"{CEILING_BYTES / 1e6:.0f} MB)"
    )

    # The gate, and proof the gate means something: even just the
    # in-RAM *merge* cannot fit under it.
    assert chunk_peak < CEILING_BYTES
    assert ram_merge_peak > CEILING_BYTES
