"""Speed gate: the sharded engine must cost ≤ 10 % over serial.

The in-process :class:`~repro.core.sharding.ShardedExecutor` cuts the
grid into the same contiguous runs the cross-host flow distributes,
but drives them through an inner engine against the caller's *shared*
cache — so memoisation still spans shard boundaries and the only
added work is partition bookkeeping.  This benchmark pins that claim
on the small GPS grid: identical rows, and wall-clock within 10 % of
the serial engine (best-of-5 timing keeps CI noise out of the
signal; a small absolute allowance covers timer resolution on
sub-millisecond deltas).
"""

from __future__ import annotations

import time

from repro.core.executors import SerialExecutor
from repro.core.sharding import ShardedExecutor
from repro.core.sweep import SweepGrid
from repro.gps.study import run_gps_sweep

GRID = SweepGrid(volumes=(1_000.0, 10_000.0, 100_000.0))

#: The acceptance criterion: sharded overhead vs serial.
MAX_OVERHEAD = 0.10
#: Absolute allowance for timer resolution (seconds).
TIMER_SLACK_S = 0.010


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sharded_engine_overhead_and_identity():
    """≤ 10 % overhead on the small grid, rows byte-identical."""
    serial_report = run_gps_sweep(GRID, executor=SerialExecutor())
    sharded_report = run_gps_sweep(GRID, executor=ShardedExecutor(2))
    assert sharded_report.rows == serial_report.rows

    serial_s = _best_of(
        lambda: run_gps_sweep(GRID, executor=SerialExecutor())
    )
    sharded_s = _best_of(
        lambda: run_gps_sweep(GRID, executor=ShardedExecutor(2))
    )
    overhead = sharded_s / serial_s - 1.0
    print(
        f"\n3-volume GPS grid: serial {1e3 * serial_s:.1f} ms, "
        f"sharded(2) {1e3 * sharded_s:.1f} ms "
        f"-> overhead {100 * overhead:+.1f}%"
    )
    assert sharded_s <= serial_s * (1.0 + MAX_OVERHEAD) + TIMER_SLACK_S
