"""Speed gate: a warehouse re-rank must be ≥ 100x a fresh sweep.

The PR that introduced the frame warehouse and query service claims
decision queries are answered in O(ms) from stored frames instead of
re-running the sweep.  This benchmark pins that claim on a real GPS
warehouse of ≥ 10k rows (2500 grid points × 4 implementations):

* **re-sweep path** (what you'd do without the warehouse): run
  :func:`~repro.gps.study.run_gps_sweep` over the full grid with the
  user's FoM weights — every MoE flow walked, every yield law
  evaluated again;
* **re-rank path** (what the query tier does):
  :func:`~repro.core.queryservice.rerank_frame` over the warm
  in-memory :class:`~repro.core.warehouse.DecisionFrame` — three
  scalar-``pow`` column passes and a per-cell first-max, nothing else.

Byte-identity is asserted **first**: the re-ranked frame must equal
the fresh sweep's frame on the exact JSON column serialisation (equal
IEEE doubles), because a fast wrong answer is worthless.  Then the
re-rank must be at least ``MIN_SPEEDUP`` times faster, best-of-N
against best-of-N.  The warm end-to-end query path (manifest re-read,
memoised frame, filter, serialise) is reported alongside for the
O(ms) narrative.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.figure_of_merit import FomWeights
from repro.core.queryservice import QueryService, rerank_frame
from repro.core.sweep import SweepGrid
from repro.core.warehouse import load_warehouse
from repro.gps.study import (
    NRE_SCENARIOS,
    build_gps_warehouse,
    run_gps_sweep,
)
from repro.passives.tolerance import TOLERANCE_CLASSES

#: The acceptance criterion: stored re-rank vs full re-sweep.
MIN_SPEEDUP = 100.0

#: 625 volumes × 2 tolerances × 2 NRE labels = 2500 points, 10k rows.
GRID = SweepGrid(
    volumes=tuple(np.geomspace(1e2, 1e7, 625).tolist()),
    tolerances=(None, TOLERANCE_CLASSES["precision"]),
    nres=(None, NRE_SCENARIOS["zero"]),
)

#: The user ask being re-ranked: performance weighted double.
WEIGHTS = FomWeights(performance=2.0, size=1.0, cost=1.0)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock of ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_warehouse_rerank_is_100x_a_fresh_sweep(tmp_path):
    directory = tmp_path / "gps-warehouse"
    build_gps_warehouse(directory, GRID)
    dframe = load_warehouse(directory)
    assert len(dframe) >= 10_000

    # Correctness gates speed: byte-identical frames or no timing.
    fresh = run_gps_sweep(GRID, weights=WEIGHTS)
    reranked = rerank_frame(dframe, WEIGHTS)
    assert reranked.to_json_columns() == fresh.frame.to_json_columns()

    sweep_s, _ = _best_of(
        lambda: run_gps_sweep(GRID, weights=WEIGHTS), repeats=3
    )
    rerank_s, _ = _best_of(
        lambda: rerank_frame(dframe, WEIGHTS), repeats=5
    )

    # The warm end-to-end query path, for the O(ms) narrative.
    service = QueryService(directory)
    request = {"kind": "winners", "fom_weights": "2:1:1"}
    service.execute(request)  # prime the frame memo
    query_s, payload = _best_of(
        lambda: service.execute(request), repeats=5
    )
    assert sum(payload["winner_counts"].values()) == 2500

    speedup = sweep_s / rerank_s
    print(
        f"\nre-rank vs re-sweep on {len(dframe)} rows: "
        f"sweep {sweep_s * 1e3:.1f} ms, "
        f"re-rank {rerank_s * 1e3:.2f} ms "
        f"-> {speedup:.0f}x (gate {MIN_SPEEDUP:.0f}x); "
        f"warm winners query end-to-end {query_s * 1e3:.2f} ms"
    )
    assert speedup >= MIN_SPEEDUP
