"""Fig. 6 — Deriving the Figure of Merit.

Paper table:

    build-up | Perf. | 1/Size  | 1/Cost  | Product
    1        | 1     | 1/1     | 1/1     | 1
    2        | 1     | 1/0.79  | 1/1.05  | 1.2
    3        | 0.45  | 1/0.6   | 1/1.13  | 0.66
    4        | 0.7   | 1/0.37  | 1/1.06  | 1.8

Regenerated end-to-end: performance from MNA filter analysis, size from
placement, cost from MOE, folded by the FoM engine.  Shape acceptance:
the ranking 4 > 2 > 1 > 3 and the decision for build-up 4.
"""

from __future__ import annotations

from conftest import print_paper_vs_measured

from repro.gps import data
from repro.gps.study import run_gps_study, summary_rows


def regenerate_fig6():
    result = run_gps_study()
    return result, {
        row.implementation: row for row in summary_rows(result)
    }


def test_fig6_figure_of_merit(benchmark):
    result, rows = benchmark(regenerate_fig6)
    print_paper_vs_measured(
        "Fig. 6 — figure of merit",
        {
            i: (data.PAPER_FOM[i], rows[i].figure_of_merit)
            for i in (1, 2, 3, 4)
        },
    )
    print("\nFull Fig. 6 table (measured):")
    print(f"{'impl':>4} | {'Perf.':>5} | {'1/Size':>7} | {'1/Cost':>7} | {'Prod':>5}")
    for i in (1, 2, 3, 4):
        row = rows[i]
        print(
            f"{i:>4} | {row.performance:>5.2f} | "
            f"1/{row.area_percent / 100:>5.2f} | "
            f"1/{row.cost_percent / 100:>5.2f} | "
            f"{row.figure_of_merit:>5.2f}"
        )

    foms = {i: rows[i].figure_of_merit for i in (1, 2, 3, 4)}
    # Published ranking: solution 4 > 2 > 1 > 3.
    assert foms[4] > foms[2] > foms[1] > foms[3]
    # Rough factors.
    assert foms[1] == 1.0
    assert 1.0 < foms[2] < 1.5
    assert foms[3] < 1.0
    assert foms[4] > 1.5
    # The paper's decision: an adaptation of solution 4 was built.
    assert result.winner.assessment.name == data.IMPLEMENTATION_NAMES[4]
