"""Extension bench: cost-driver elasticities and rework economics.

Not a paper figure — these quantify the §4.3 prose ("the cost penalty of
solution 2 is *caused by* the higher substrate cost and the yield
loss...") as elasticities, and exercise the MOE fail-branch routing the
original tool supported.
"""

from __future__ import annotations

from repro.cost.moe import ReworkPolicy, TestStep, evaluate
from repro.cost.sensitivity import Knob, rank_cost_drivers
from repro.gps.buildups import flow_for


def test_cost_driver_ranking(benchmark):
    drivers = benchmark(rank_cost_drivers, flow_for(3))
    print("\nBuild-up 3 cost drivers (top 6):")
    for driver in drivers[:6]:
        print(f"  {driver.label:<42} {driver.elasticity:+.3f}")

    # Yields rank first (elasticity ~ -1); chips lead the cost knobs.
    assert drivers[0].knob is Knob.YIELD
    cost_knobs = [d for d in drivers if d.knob is Knob.COST]
    assert cost_knobs[0].step_name in ("RF chip", "DSP correlator")
    # §4.3: substrate yield is a visible driver of build-up 3.
    substrate = next(
        d
        for d in drivers
        if "Substrate" in d.step_name and d.knob is Knob.YIELD
    )
    assert substrate.elasticity < -0.05


def _with_rework(policy: ReworkPolicy):
    flow = flow_for(3)
    flow.steps = [
        TestStep(
            step.node_id, step.name, step.test_cost, step.coverage,
            rework=policy,
        )
        if isinstance(step, TestStep) and step.name == "Functional test"
        else step
        for step in flow.steps
    ]
    return flow


def test_rework_economics(benchmark):
    def economics():
        base = evaluate(flow_for(3)).final_cost_per_shipped
        cheap = evaluate(
            _with_rework(ReworkPolicy(25.0, 0.9, 2))
        ).final_cost_per_shipped
        ruinous = evaluate(
            _with_rework(ReworkPolicy(900.0, 0.9, 2))
        ).final_cost_per_shipped
        return base, cheap, ruinous

    base, cheap, ruinous = benchmark(economics)
    print(
        f"\nno rework: {base:.1f}  cheap rework: {cheap:.1f}  "
        f"ruinous rework: {ruinous:.1f}"
    )
    assert cheap < base < ruinous
