"""Speed gate: the batched family fill must be ≥ 5x the scalar fill.

The PR that vectorised the per-cell assessment spine claims a sweep
over a volume-heavy grid walks each production flow **once per volume
family** (one batched ``evaluate_batch`` call) instead of once per
point, runs the candidate factory once per family instead of once per
point, and broadcasts the placements — while producing bit-identical
rows.  This benchmark pins that claim on a 64-volume × 2-tolerance GPS
grid (128 points, 512 rows):

* **scalar fill** (the per-point reference, still shipped as
  ``fill="scalar"``): every point builds its candidates, resolves the
  memo and walks all four production flows;
* **batched fill** (the default, ``fill="batch"``): two volume
  families, each assessed by one batched flow walk per candidate.

Both sides start from the same warm cache — performance and placement
already memoised by a throwaway volume, so the MNA solves are off the
clock on *both* paths and the gate times the assessment spine itself,
not the circuit engine.  The frames must be byte-identical before any
timing matters; the batched fill must be at least ``MIN_SPEEDUP``
times faster.
"""

from __future__ import annotations

import copy
import time

import numpy as np

from repro.core.figure_of_merit import FomWeights
from repro.core.sweep import (
    EvaluationCache,
    SweepGrid,
    evaluate_cells,
    frame_for_cells,
)
from repro.gps.study import sweep_candidates
from repro.passives.tolerance import PRECISION_CLASS

#: The acceptance criterion: batched vs scalar per-cell speedup.
MIN_SPEEDUP = 5.0

N_VOLUMES = 64

GRID = SweepGrid(
    volumes=tuple(float(v) for v in np.geomspace(1e2, 1e7, N_VOLUMES)),
    tolerances=(None, PRECISION_CLASS),
)

#: A volume outside the grid: warming with it memoises performance and
#: placement for every family without pre-computing any timed cost.
WARM_GRID = SweepGrid(
    volumes=(123.0,), tolerances=(None, PRECISION_CLASS)
)


def _warm_cache() -> EvaluationCache:
    cache = EvaluationCache()
    evaluate_cells(
        WARM_GRID.points(),
        sweep_candidates,
        0,
        FomWeights(),
        cache,
        fill="scalar",
    )
    return cache


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_fill_is_5x_the_scalar_fill():
    """≥ 5x on a 128-point volume-heavy grid, identical rows."""
    warm = _warm_cache()
    points = GRID.points()

    def run(fill):
        return evaluate_cells(
            points,
            sweep_candidates,
            0,
            FomWeights(),
            copy.deepcopy(warm),
            fill=fill,
        )

    scalar_s, scalar_cells = _best_of(lambda: run("scalar"), repeats=2)
    batch_s, batch_cells = _best_of(lambda: run("batch"), repeats=5)

    scalar_frame = frame_for_cells(scalar_cells)
    batch_frame = frame_for_cells(batch_cells)
    assert batch_frame.csv_lines() == scalar_frame.csv_lines()
    assert batch_frame.to_rows() == scalar_frame.to_rows()

    speedup = scalar_s / batch_s
    print(
        f"\n{len(points)}-cell assessment: scalar fill "
        f"{1e3 * scalar_s:.0f} ms, batched fill {1e3 * batch_s:.0f} ms "
        f"-> {speedup:.1f}x (gate {MIN_SPEEDUP}x)"
    )
    assert speedup >= MIN_SPEEDUP
