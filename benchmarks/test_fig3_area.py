"""Fig. 3 — Area consumed by the different build-ups.

Paper series: 100 % / 79 % / 60 % / 37 % of the PCB reference.
Regenerated from Table 1 unit areas, the synthesised BoM and the trivial
placement rules.  Acceptance is shape: strict ordering and rough factors.
"""

from __future__ import annotations

from conftest import print_paper_vs_measured

from repro.gps import data
from repro.gps.buildups import area_for


def regenerate_fig3():
    """Final module area per build-up, normalised to implementation 1."""
    areas = {i: area_for(i).final_area_mm2 for i in (1, 2, 3, 4)}
    reference = areas[1]
    return {i: 100.0 * areas[i] / reference for i in (1, 2, 3, 4)}


def test_fig3_area_percentages(benchmark):
    measured = benchmark(regenerate_fig3)
    print_paper_vs_measured(
        "Fig. 3 — area consumed [% of PCB reference]",
        {
            i: (data.PAPER_AREA_PERCENT[i], measured[i])
            for i in (1, 2, 3, 4)
        },
    )
    # Ordering: each successive build-up is smaller.
    assert measured[1] > measured[2] > measured[3] > measured[4]
    # Rough factors: within ten points of the published percentages.
    for i in (2, 3, 4):
        assert abs(measured[i] - data.PAPER_AREA_PERCENT[i]) < 10.0
    # The headline: passives-optimized reaches roughly a third.
    assert measured[4] < 40.0


def test_fig3_substrate_areas(benchmark):
    """The silicon substrate areas feeding the Table 2 cost row."""

    def substrates():
        return {i: area_for(i).substrate_area_cm2 for i in (1, 2, 3, 4)}

    areas = benchmark(substrates)
    print("\nSubstrate areas [cm^2]:")
    for i, area in areas.items():
        print(f"  impl {i}: {area:.2f}")
    # Integrated decaps make build-up 3's silicon much larger than 4's.
    assert areas[3] > 2.0 * areas[4]
