"""Fig. 4 — The generic MOE model of the implementations.

The figure shows the production graph: Component nodes (RF chip, DSP
correlator, additional SMDs), a Carrier (substrate), Process nodes
(paste impression, rerouting, mount on laminate), Assembly nodes (chip
assembly, SMD mounting, dice bonding), a functional Test with a fail
branch to SCRAP, and the shipped-modules Collector.  The figure's run
shows 208 modules scrapped out of a batch.

This bench regenerates the node inventory and reruns the batch through
the Monte Carlo engine.
"""

from __future__ import annotations

from repro.cost.moe import flow_node_summary, render_flow, simulate
from repro.gps.buildups import flow_for


def regenerate_fig4():
    """Node inventory of the generic (build-up 2) flow."""
    return flow_node_summary(flow_for(2))


def test_fig4_node_inventory(benchmark):
    rows = benchmark(regenerate_fig4)
    print("\nFig. 4 — MOE production model nodes")
    for node_id, kind, name in rows:
        print(f"  [{node_id:>4}] {kind:<10} {name}")

    kinds = {kind for _, kind, _ in rows}
    # Every Fig. 4 node class is present.
    assert kinds == {"Carrier", "Process", "Assembly", "Test", "Collector"}
    names = [name for _, _, name in rows]
    for expected in (
        "Substrate (MCM-D/PCB)",
        "Paste impression",
        "Rerouting",
        "Functional test",
        "Mount on laminate",
        "Modules to be shipped",
    ):
        assert expected in names


def test_fig4_monte_carlo_batch(benchmark):
    """Route a batch through the virtual production like the MOE run in
    the figure (which scrapped 208 modules)."""

    def run_batch():
        return simulate(flow_for(2), units=2000, seed=4)

    report = benchmark(run_batch)
    scrap_rate = report.scrapped_units / report.started_units
    print(
        f"\nFig. 4 batch: started={report.started_units:.0f} "
        f"shipped={report.shipped_units:.0f} "
        f"scrapped={report.scrapped_units:.0f} ({scrap_rate:.1%})"
    )
    # The figure's 208-of-a-batch scrap implies a double-digit-percent
    # scrap rate; ours lands in the same regime.
    assert 0.05 < scrap_rate < 0.30


def test_fig4_render(benchmark):
    text = benchmark(render_flow, flow_for(2))
    assert "SCRAP" in text
    assert "Modules to be shipped" in text
