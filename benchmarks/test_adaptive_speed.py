"""Acceptance gate: adaptive refinement vs the exhaustive GPS grid.

The adaptive driver claims **≥ 10x fewer cell evaluations at equal
front quality** on the GPS study.  This benchmark pins both halves of
the claim, in that order:

* **front quality first** — the adaptive run's global Pareto front
  must be byte-identical (CSV row compare) to the exhaustive grid's
  front restricted to the evaluated points, and every adaptive front
  row must appear verbatim on the full exhaustive front.  A savings
  number without this check would be meaningless — skipping
  evaluations is trivial if the front is allowed to degrade;
* **then the evaluation-count gate** — ``AdaptiveReport`` must show at
  least :data:`MIN_SAVINGS` exhaustive grid points per evaluation
  actually spent, with the per-pass counters internally consistent
  (they are the observable evidence, not a synthesized summary).

The savings metric is *cell evaluations*, not wall clock: on this
volume-only grid the exhaustive sweep amortises nearly everything
through the batched family fill, so elapsed time understates what
refinement saves on grids whose axes defeat batching (distinct
substrates, Q models, tolerance classes) or whose size forces
out-of-core runs.  Evaluation count is the engine-independent measure.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import global_front_mask
from repro.core.sweep import SweepGrid
from repro.gps.study import run_adaptive_gps_sweep, run_gps_sweep

#: The acceptance criterion: exhaustive points per adaptive evaluation.
MIN_SAVINGS = 10.0

#: Dense log-spaced volume axis — the paper's decisive knob, and the
#: axis the zoom refines on a log scale.
GRID = SweepGrid(volumes=tuple(np.geomspace(1e2, 1e7, 256)))


def _restricted(exhaustive_frame, report):
    """Exhaustive rows of the adaptively evaluated points."""
    rows_per_cell = len(exhaustive_frame) // report.grid_points
    mask = np.zeros(len(exhaustive_frame), dtype=bool)
    for index in report.evaluated_indices:
        mask[index * rows_per_cell : (index + 1) * rows_per_cell] = True
    return exhaustive_frame.filter(mask)


def test_adaptive_front_quality_then_savings(benchmark):
    exhaustive = run_gps_sweep(GRID)
    report = benchmark(lambda: run_adaptive_gps_sweep(GRID))

    # -- front quality first ------------------------------------------
    sub = _restricted(exhaustive.frame, report)
    assert report.frame.csv_lines() == sub.csv_lines()
    adaptive_front = report.front_frame().csv_lines()
    sub_front_frame = sub.filter(global_front_mask(sub))
    assert adaptive_front == sub_front_frame.csv_lines()
    full_front = exhaustive.frame.filter(
        global_front_mask(exhaustive.frame)
    )
    assert set(adaptive_front) <= set(full_front.csv_lines())

    # -- then the evaluation-count gate -------------------------------
    assert report.stable and not report.budget_exhausted
    assert report.savings >= MIN_SAVINGS, (
        f"adaptive driver spent {report.total_evaluations} evaluations "
        f"on a {report.grid_points}-point grid "
        f"({report.savings:.1f}x < {MIN_SAVINGS}x)"
    )
    # The per-pass counters must prove the savings, not just assert
    # them: every evaluation is attributed to exactly one pass and the
    # zoom passes actually reused coarse-pass sub-results.
    assert report.total_evaluations == sum(
        record.evaluated for record in report.passes
    )
    assert report.passes[-1].cumulative_evaluations == (
        report.total_evaluations
    )
    assert sum(record.cache_hits for record in report.passes[1:]) > 0
