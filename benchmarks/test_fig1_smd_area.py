"""Fig. 1 — Area vs SMD type (after Pohjonen & Kuisma [6]).

The figure plots, for case sizes 0805 down to 0201, the pure component
(body) area against the total footprint area, showing that footprints
barely shrink while bodies do.  This bench regenerates both series.
"""

from __future__ import annotations

from repro.passives.smd import CASE_SIZES, FIG1_ORDER, fig1_series


def regenerate_fig1():
    """Produce the Fig. 1 series: (case, body area, footprint area)."""
    return fig1_series()


def test_fig1_series(benchmark):
    series = benchmark(regenerate_fig1)

    print("\nFig. 1 — Area vs SMD type [mm^2]")
    print(f"{'type':>6} | {'component':>9} | {'footprint':>9}")
    for code, body, footprint in series:
        print(f"{code:>6} | {body:>9.2f} | {footprint:>9.2f}")

    # Shape assertions: the figure's message.
    bodies = [body for _, body, _ in series]
    footprints = [fp for _, _, fp in series]
    assert bodies == sorted(bodies, reverse=True)
    assert footprints == sorted(footprints, reverse=True)
    # Bodies shrink ~14x from 0805 to 0201 ...
    assert bodies[0] / bodies[-1] > 10
    # ... while footprints shrink barely ~2x.
    assert footprints[0] / footprints[-1] < 2.5


def test_fig1_overhead_dominates_small_cases(benchmark):
    def overhead_shares():
        return {
            code: CASE_SIZES[code].mounting_overhead_mm2
            / CASE_SIZES[code].footprint_area_mm2
            for code in FIG1_ORDER
        }

    shares = benchmark(overhead_shares)
    print("\nFig. 1 — mounting overhead share of footprint")
    for code, share in shares.items():
        print(f"  {code}: {share:.0%}")
    # The footprint of the smallest part is almost all overhead.
    assert shares["0201"] > shares["0805"]
    assert shares["0201"] > 0.85
