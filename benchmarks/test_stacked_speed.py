"""Speed benchmark: circuit-stacked solves vs looping ``sweep()``.

A *family* sweep evaluates ``B`` structurally identical circuits (same
topology, different element values — a tolerance class, an E-series
snap, a candidate set) over one frequency grid.  The stacked engine
stamps the whole family as a single ``(B, F, n, n)`` tensor and solves
every member, frequency and excitation in one ``numpy.linalg.solve``
call; the baseline loops :func:`repro.circuits.twoport.sweep` over the
members, paying the per-circuit plan construction, stamping and LAPACK
dispatch ``B`` times.

Pinned properties:

* **agreement** — the stacked results are *bit-identical* to the
  per-circuit loop (the guarantee the execution engines build on);
* **speed** — at the family-sweep operating point (32 circuits,
  21-point grid: per-circuit python overhead dominates the tiny
  per-matrix LAPACK work) the stacked path is at least 3x faster.
  The margin shrinks as the grid grows and the solve itself takes
  over — the README table reports the full profile.

The benchmark family deliberately carries a *dispersive* element (a
skin-effect Q model re-evaluated per frequency) alongside the constant
R/L/C slots, so the ≥ 3x gate also covers the frequency-dependent
stamping path: dispersive slots must not drag the stacked engine back
to per-circuit speed.

A second check pins the engine contract end-to-end: all three
execution engines produce byte-identical sweep rows on the GPS study
(whose absolute numbers are locked by ``tests/gps/goldens/``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.netlist import Circuit
from repro.circuits.qfactor import SkinEffectQModel
from repro.circuits.twoport import sweep, sweep_stacked
from repro.core.executors import make_executor
from repro.core.sweep import SweepGrid
from repro.gps.study import run_gps_sweep

FAMILY_SIZE = 32
SWEEP_POINTS = 21
START_HZ = 50e6
STOP_HZ = 500e6

#: Shared dispersive model of the family's L3 slot: the whole slot is
#: evaluated with one stacked (B, F) Q-profile call.
BENCH_Q_MODEL = SkinEffectQModel(q0_inductor=35.0, f0_hz=1.0e9)


def six_node_variant(scale: float) -> Circuit:
    """One member of the benchmark family: the 6-node chain, re-valued.

    L3 is a *dispersive* inductor (skin-effect Q re-evaluated at every
    stamped frequency), so the benchmark exercises the
    frequency-dependent stamping path inside the stacked solve.
    """
    c = Circuit(f"bench-family-{scale:.3f}")
    c.resistor("R1", "in", "n1", 10.0 * scale)
    c.inductor("L1", "n1", "n2", 50e-9 * scale, series_resistance=0.5)
    c.capacitor("C1", "n2", "0", 20e-12 / scale)
    c.inductor("L2", "n2", "n3", 80e-9, series_resistance=0.8 * scale)
    c.capacitor("C2", "n3", "0", 10e-12)
    c.resistor("R2", "n3", "n4", 5.0)
    c.capacitor("C3", "n4", "out", 15e-12 * scale)
    c.dispersive_inductor("L3", "out", "0", 30e-9 * scale, BENCH_Q_MODEL)
    c.port("p1", "in", 50.0)
    c.port("p2", "out", 50.0)
    return c


def benchmark_family() -> list[Circuit]:
    """32 same-topology, different-value members."""
    return [
        six_node_variant(1.0 + 0.05 * member)
        for member in range(FAMILY_SIZE)
    ]


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_stacked_sweep_is_bit_identical_to_loop():
    family = benchmark_family()
    stacked = sweep_stacked(family, START_HZ, STOP_HZ, points=SWEEP_POINTS)
    for member, circuit in enumerate(family):
        single = sweep(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)
        np.testing.assert_array_equal(
            stacked.s_matrices[member], single.s_matrices
        )


def test_stacked_sweep_speedup():
    """Acceptance criterion: >= 3x on a 32-circuit family sweep."""
    family = benchmark_family()

    def stacked():
        sweep_stacked(family, START_HZ, STOP_HZ, points=SWEEP_POINTS)

    def loop():
        for circuit in family:
            sweep(circuit, START_HZ, STOP_HZ, points=SWEEP_POINTS)

    # Warm both paths (imports, allocator, BLAS thread pools).
    stacked()
    loop()
    stacked_s = _best_of(stacked)
    loop_s = _best_of(loop)
    speedup = loop_s / stacked_s
    print(
        f"\n{FAMILY_SIZE}-circuit family, {SWEEP_POINTS}-point sweep: "
        f"stacked {1e3 * stacked_s:.2f} ms, per-circuit loop "
        f"{1e3 * loop_s:.2f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 3.0


def test_stacked_sweep_benchmark(benchmark):
    """pytest-benchmark timing of the stacked hot path."""
    family = benchmark_family()
    result = benchmark(
        lambda: sweep_stacked(
            family, START_HZ, STOP_HZ, points=SWEEP_POINTS
        )
    )
    assert len(result) == FAMILY_SIZE


def test_every_engine_reproduces_the_same_gps_rows():
    """Serial, process and stacked sweep rows are byte-identical."""
    grid = SweepGrid(volumes=(1_000.0, 100_000.0))
    serial = run_gps_sweep(grid, executor=make_executor("serial"))
    process = run_gps_sweep(grid, executor=make_executor("process", 2))
    stacked = run_gps_sweep(grid, executor=make_executor("stacked"))
    assert process.rows == serial.rows
    assert stacked.rows == serial.rows
    print(
        f"\n{len(serial.rows)} sweep rows byte-identical across "
        "serial/process/stacked engines"
    )
