"""Table 1 — Area-relevant data.

Regenerates every Table 1 number: chip areas by interconnect, SMD
footprints, integrated-passive areas from the physical models, filter
areas and the two substrate sizing rules.
"""

from __future__ import annotations

import pytest

from repro.area.footprint import CHIP_AREAS
from repro.area.substrate import LAMINATE_RULE, MCM_D_RULE
from repro.passives.smd import get_case
from repro.passives.thin_film import (
    INTEGRATED_FILTER_AREA_MM2,
    SUMMIT_PROCESS,
    capacitor_area_mm2,
    inductor_area_mm2,
    resistor_area_mm2,
)


def regenerate_table1():
    """All Table 1 rows as a dict of (paper, measured) pairs."""
    return {
        "RF chip TQFP": (225.0, CHIP_AREAS["RF chip"].packaged_mm2),
        "RF chip WB": (28.0, CHIP_AREAS["RF chip"].wire_bond_mm2),
        "RF chip FC": (13.0, CHIP_AREAS["RF chip"].flip_chip_mm2),
        "DSP PQFP": (1165.0, CHIP_AREAS["DSP correlator"].packaged_mm2),
        "DSP WB": (88.0, CHIP_AREAS["DSP correlator"].wire_bond_mm2),
        "DSP FC": (59.0, CHIP_AREAS["DSP correlator"].flip_chip_mm2),
        "0603": (3.75, get_case("0603").footprint_area_mm2),
        "0805": (4.5, get_case("0805").footprint_area_mm2),
        "IP-R 100k": (0.25, resistor_area_mm2(100e3, SUMMIT_PROCESS)),
        "IP-C 50pF": (0.30, capacitor_area_mm2(50e-12, SUMMIT_PROCESS)),
        "IP-L 40nH": (1.0, inductor_area_mm2(40e-9, SUMMIT_PROCESS)),
        "Filter SMD": (27.5, 27.5),
        "Filter integrated": (12.0, INTEGRATED_FILTER_AREA_MM2),
    }


def test_table1_rows(benchmark):
    rows = benchmark(regenerate_table1)
    print("\nTable 1 — area-relevant data [mm^2]")
    print(f"{'component':>18} | {'paper':>8} | {'measured':>8}")
    for name, (paper, measured) in rows.items():
        print(f"{name:>18} | {paper:>8.2f} | {measured:>8.3f}")
    for name, (paper, measured) in rows.items():
        assert measured == pytest.approx(paper, rel=0.05), name


def test_table1_sizing_rules(benchmark):
    """The two footnote rules of Table 1."""

    def apply_rules():
        from repro.area.footprint import Footprint, MountKind

        silicon = MCM_D_RULE.size(
            [Footprint("c", 100.0, MountKind.INTEGRATED)]
        )
        package = LAMINATE_RULE.size(silicon)
        return silicon, package

    silicon, package = benchmark(apply_rules)
    assert silicon.packed_area_mm2 == pytest.approx(110.0)
    assert package.side_mm == pytest.approx(silicon.side_mm + 10.0)
