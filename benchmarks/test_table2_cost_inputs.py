"""Table 2 — Cost and yield data for implementations 1-4.

Regenerates the Table 2 input matrix from the encoded constants and the
calibrated chip costs, and verifies the production flows consume exactly
these values.
"""

from __future__ import annotations

import pytest

from repro.gps import data
from repro.gps.buildups import flow_for, smd_count_for


def regenerate_table2():
    """Rebuild the Table 2 matrix (rows x implementations)."""
    costs = data.ChipCosts()
    table = {
        "RF chip cost": {
            1: costs.rf_packaged,
            2: costs.rf_bare,
            3: costs.rf_bare,
            4: costs.rf_bare,
        },
        "RF chip yield": {
            1: data.RF_CHIP_YIELD_PACKAGED,
            **{i: data.RF_CHIP_YIELD_BARE for i in (2, 3, 4)},
        },
        "DSP cost": {
            1: costs.dsp_packaged,
            **{i: costs.dsp_bare for i in (2, 3, 4)},
        },
        "substrate cost/cm2": dict(data.SUBSTRATE_COST_PER_CM2),
        "substrate yield": dict(data.SUBSTRATE_YIELD),
        "chip assembly cost": dict(data.CHIP_ASSEMBLY_COST),
        "chip assembly yield": dict(data.CHIP_ASSEMBLY_YIELD),
        "# SMDs": dict(data.SMD_COUNT),
        "SMD parts cost": dict(data.SMD_PARTS_COST),
        "packaging cost": dict(data.PACKAGING_COST),
        "final test cost": {i: data.FINAL_TEST_COST for i in (1, 2, 3, 4)},
    }
    return table


def test_table2_matrix(benchmark):
    table = benchmark(regenerate_table2)
    print("\nTable 2 — cost and yield inputs")
    header = f"{'row':>22} |" + "".join(f" {i:>9} |" for i in (1, 2, 3, 4))
    print(header)
    for row_name, row in table.items():
        cells = "".join(f" {row[i]:>9.4g} |" for i in (1, 2, 3, 4))
        print(f"{row_name:>22} |{cells}")

    assert table["substrate cost/cm2"] == {1: 0.1, 2: 1.75, 3: 2.25, 4: 2.25}
    assert table["# SMDs"] == {1: 112, 2: 112, 3: 0, 4: 12}
    assert table["packaging cost"][2] == 7.30


def test_flows_consume_table2(benchmark):
    """Each build-up flow embeds exactly its Table 2 column."""

    def build_all():
        return {i: flow_for(i) for i in (1, 2, 3, 4)}

    flows = benchmark(build_all)
    # Wire bond column: implementation 2 only, 212 bonds at 0.01.
    wb = next(s for s in flows[2].steps if s.name == "Wire bonding")
    assert wb.quantity == data.WIRE_BOND_COUNT
    assert wb.attach_cost == data.WIRE_BOND_COST
    # SMD counts match the table and the placed footprints.
    for i in (1, 2, 4):
        step = next(s for s in flows[i].steps if s.name == "SMD mounting")
        assert step.quantity == data.SMD_COUNT[i]
        assert smd_count_for(i) == data.SMD_COUNT[i]
    # Final test row is common.
    for i in (1, 2, 3, 4):
        test = next(
            s for s in flows[i].steps if s.name == "Functional test"
        )
        assert test.cost == data.FINAL_TEST_COST
        assert test.coverage == data.FINAL_TEST_COVERAGE


def test_confidential_chip_costs_plausible(benchmark):
    """The calibrated substitution respects the paper's qualitative
    statements: bare dice are cheaper, and chips dominate module cost."""

    def chip_cost_share():
        from repro.cost.moe import evaluate

        report = evaluate(flow_for(1))
        return report.chip_cost_per_unit / report.direct_cost_per_unit

    share = benchmark(chip_cost_share)
    print(f"\nchip share of impl-1 direct cost: {share:.0%}")
    costs = data.ChipCosts()
    assert costs.bare_total < costs.packaged_total
    assert share > 0.5  # "thereof: chip cost" dominates the Fig. 5 bar
