"""Ablation benches for the design choices DESIGN.md calls out.

* Monte Carlo vs analytic MOE evaluation (accuracy and speed);
* trivial 1.1x placement vs real shelf packing (Fig. 3 robustness);
* FoM weighting (the paper's "weighting factors can be introduced");
* final-test fault coverage (scrap cost vs shipped quality);
* flat vs area-based (Poisson) substrate yield.
"""

from __future__ import annotations

import pytest

from repro.area.placement import ShelfPlacer
from repro.area.substrate import LAMINATE_RULE, MCM_D_RULE, PCB_RULE
from repro.core.figure_of_merit import FomWeights
from repro.cost.moe import evaluate, simulate
from repro.cost.yieldmodels import PoissonYield
from repro.gps import data
from repro.gps.buildups import area_for, flow_for, footprints_for, get_buildup
from repro.gps.study import run_gps_study, summary_rows


class TestEvaluatorAblation:
    def test_analytic_evaluation_speed(self, benchmark):
        flow = flow_for(2)
        report = benchmark(evaluate, flow)
        assert report.final_cost_per_shipped > 0

    def test_monte_carlo_evaluation_speed(self, benchmark):
        flow = flow_for(2)
        report = benchmark(simulate, flow, 10_000, 0)
        assert report.final_cost_per_shipped > 0

    def test_agreement_all_buildups(self, benchmark):
        def gaps():
            out = {}
            for i in (1, 2, 3, 4):
                flow = flow_for(i)
                analytic = evaluate(flow)
                sampled = simulate(flow, units=40_000, seed=13)
                out[i] = abs(
                    sampled.final_cost_per_shipped
                    / analytic.final_cost_per_shipped
                    - 1.0
                )
            return out

        result = benchmark(gaps)
        print("\nMC/analytic relative gaps:", {
            i: f"{g:.2%}" for i, g in result.items()
        })
        assert all(gap < 0.02 for gap in result.values())


class TestPlacementAblation:
    def test_fig3_ordering_robust_to_real_placement(self, benchmark):
        """Replacing the 1.1x heuristic with shelf packing keeps the
        Fig. 3 ranking."""

        def shelf_areas():
            placer = ShelfPlacer()
            areas = {}
            for i in (1, 2, 3, 4):
                buildup = get_buildup(i)
                rule = MCM_D_RULE if buildup.is_mcm else PCB_RULE
                laminate = LAMINATE_RULE if buildup.is_mcm else None
                report = placer.place(footprints_for(i), rule, laminate)
                areas[i] = report.final_area_mm2
            return areas

        areas = benchmark(shelf_areas)
        trivial = {i: area_for(i).final_area_mm2 for i in (1, 2, 3, 4)}
        print("\nShelf vs trivial final areas [mm^2]:")
        for i in (1, 2, 3, 4):
            print(
                f"  impl {i}: shelf={areas[i]:7.0f}  "
                f"trivial={trivial[i]:7.0f}"
            )
        assert areas[1] > areas[2] > areas[3] > areas[4]


class TestFomWeightAblation:
    def test_performance_weighting_flips_decision(self, benchmark):
        """A performance-critical weighting (exponent 3) moves the win
        from the passives-optimized build to a full-spec build —
        the trade-off the paper's 'weighting factors' remark enables."""

        def winners():
            plain = run_gps_study()
            perf_heavy = run_gps_study(
                weights=FomWeights(performance=3.0)
            )
            return (
                plain.winner.assessment.name,
                perf_heavy.winner.assessment.name,
            )

        plain_winner, perf_winner = benchmark(winners)
        print(f"\nplain weights -> {plain_winner}")
        print(f"performance-cubed weights -> {perf_winner}")
        assert plain_winner == data.IMPLEMENTATION_NAMES[4]
        assert perf_winner != data.IMPLEMENTATION_NAMES[3]

    def test_cost_only_weighting_keeps_reference(self, benchmark):
        def winner():
            result = run_gps_study(
                weights=FomWeights(performance=0.0, size=0.0, cost=1.0)
            )
            return result.winner.assessment.name

        name = benchmark(winner)
        assert name == data.IMPLEMENTATION_NAMES[1]


class TestCoverageAblation:
    @pytest.mark.parametrize("coverage", [0.9, 0.99, 0.999])
    def test_coverage_quality_cost_tradeoff(self, benchmark, coverage):
        """Higher fault coverage ships cleaner modules at higher cost
        per shipped unit (more scrap absorbed)."""
        from dataclasses import replace

        def evaluate_with_coverage():
            flow = flow_for(3)
            steps = [
                replace(s, coverage=coverage)
                if s.name == "Functional test"
                else s
                for s in flow.steps
            ]
            flow.steps = steps
            return evaluate(flow)

        report = benchmark(evaluate_with_coverage)
        print(
            f"\ncoverage={coverage}: final={report.final_cost_per_shipped:.1f} "
            f"escapes={report.escape_fraction:.3%}"
        )
        if coverage >= 0.999:
            assert report.escape_fraction < 0.001


class TestSubstrateYieldAblation:
    def test_area_based_yield_widens_impl3_impl4_gap(self, benchmark):
        """Table 2 gives both IP substrates a flat 90 % yield.  Deriving
        a Poisson defect density from that number at the impl-3 area
        makes the small impl-4 substrate yield better, widening the cost
        gap — evidence the flat number hides an area effect."""

        def gap(flat: bool):
            areas = {i: area_for(i).substrate_area_cm2 for i in (3, 4)}
            if flat:
                yields = {i: 0.90 for i in (3, 4)}
            else:
                law = PoissonYield.from_reference(0.90, areas[3])
                yields = {
                    i: law.yield_for_area(areas[i]) for i in (3, 4)
                }
            finals = {}
            for i in (3, 4):
                flow = flow_for(i, areas[i])
                carrier = flow.steps[0]
                from dataclasses import replace

                flow.steps[0] = replace(
                    carrier, carrier_yield=yields[i]
                )
                finals[i] = evaluate(flow).final_cost_per_shipped
            return finals[3] - finals[4]

        def both():
            return gap(flat=True), gap(flat=False)

        flat_gap, poisson_gap = benchmark(both)
        print(
            f"\nimpl3-impl4 cost gap: flat yield {flat_gap:.1f}, "
            f"Poisson yield {poisson_gap:.1f}"
        )
        assert poisson_gap > flat_gap


class TestStudyEndToEnd:
    def test_full_study_runtime(self, benchmark):
        """The complete methodology (all four build-ups) as one unit."""
        result = benchmark(run_gps_study)
        rows = {r.implementation: r for r in summary_rows(result)}
        assert rows[4].figure_of_merit == max(
            rows[i].figure_of_merit for i in (1, 2, 3, 4)
        )
