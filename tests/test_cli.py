"""The repro-gps command-line interface.

Every subcommand is exercised end-to-end through ``main`` with output
captured via capsys, and every bad-argument path is pinned to argparse's
``SystemExit`` contract (exit code 2).
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        operands = {"flow": ["2"], "gather": ["."]}
        for command in (
            "study",
            "flow",
            "compare",
            "calibrate",
            "sweep",
            "gather",
        ):
            args = parser.parse_args([command, *operands.get(command, [])])
            assert hasattr(args, "func")

    def test_flow_requires_valid_implementation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["flow", "7"])

    def test_flow_requires_an_implementation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["flow"])

    def test_flow_rejects_non_integer(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["flow", "two"])

    def test_unknown_command_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["nonsense"])

    def test_study_rejects_bad_volume(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["study", "--volume", "lots"])

    def test_calibrate_rejects_bad_discount(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["calibrate", "--bare-discount", "cheap"])


class TestSweepArgumentErrors:
    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--volumes", "abc"],
            ["sweep", "--volumes", "-5"],
            ["sweep", "--volumes", ""],
            ["sweep", "--processes", "bogus"],
            ["sweep", "--substrates", "granite"],
            ["sweep", "--tolerances", "loose"],
            ["sweep", "--q-models", "bogus"],
            ["sweep", "--q-models", "tan=abc"],
            ["sweep", "--q-models", "tan=-0.1"],
            ["sweep", "--q-models", "tan=inf"],
            ["sweep", "--q-models", "tan=nan"],
            ["sweep", "--q-models", ""],
            ["sweep", "--nres", "moonshot"],
            ["sweep", "--fom-weights", "1:2"],
            ["sweep", "--fom-weights", "a:b:c"],
            ["sweep", "--fom-weights", "-1:1:1"],
            ["sweep", "--fom-weights", "nan:1:1"],
            ["sweep", "--fom-weights", "inf:1:1"],
            ["sweep", "--fom-weights", ""],
        ],
    )
    def test_bad_axis_values_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error" in err

    def test_unknown_process_names_alternatives(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--processes", "bogus"])
        err = capsys.readouterr().err
        assert "summit" in err
        assert "paper" in err

    def test_unknown_q_model_names_alternatives(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--q-models", "bogus"])
        err = capsys.readouterr().err
        assert "skin" in err
        assert "tan=<value>" in err
        assert "paper" in err


class TestCommands:
    def test_flow_command_prints_fig4(self, capsys):
        assert main(["flow", "2"]) == 0
        out = capsys.readouterr().out
        assert "Wire bonding" in out
        assert "SCRAP" in out

    def test_study_command_prints_tables(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Recommended build-up" in out

    def test_study_with_volume(self, capsys):
        assert main(["study", "--volume", "500"]) == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "area" in out
        assert "paper=" in out

    def test_calibrate_command(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "RF chip" in out
        assert "ordering preserved" in out

    def test_default_is_study(self, capsys):
        assert main([]) == 0
        assert "Fig. 6" in capsys.readouterr().out


class TestSweepCommand:
    def test_default_sweep_single_point(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "Design-space sweep: 1 points, 4 rows" in out
        assert "PCB/SMD (reference)" in out
        assert "Winner counts" in out
        assert "Memoised sub-results" in out

    def test_multi_axis_sweep(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--volumes",
                    "1e3,1e4",
                    "--tolerances",
                    "paper,precision",
                    "--processes",
                    "paper,si3n4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "8 points, 32 rows" in out
        assert "precision" in out
        assert "Best overall:" in out

    def test_substrate_axis(self, capsys):
        assert main(["sweep", "--substrates", "fine,coarse"]) == 0
        out = capsys.readouterr().out
        assert "fine-line" in out
        assert "coarse" in out

    def test_csv_output(self, capsys):
        assert main(["sweep", "--csv", "--volumes", "1e4"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("volume,substrate,process,tolerance")
        assert len(lines) == 1 + 4  # header + one row per build-up
        assert any("True" in line for line in lines[1:])  # a winner exists

    def test_winner_marked(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        winner_lines = [
            line for line in out.splitlines() if line.rstrip().endswith("WP")
        ]
        assert len(winner_lines) == 1
        assert "IP&SMD" in winner_lines[0]

    def test_q_model_axis(self, capsys):
        assert (
            main(["sweep", "--q-models", "paper,skin,tan=0.02"]) == 0
        )
        out = capsys.readouterr().out
        assert "3 points, 12 rows" in out
        assert "skin(Q0=40@1e" in out
        assert "tan=0.02" in out

    def test_nre_axis(self, capsys):
        assert main(["sweep", "--nres", "paper,zero,mask-heavy"]) == 0
        out = capsys.readouterr().out
        assert "3 points, 12 rows" in out
        assert "zero" in out
        assert "mask-heavy" in out

    def test_fom_weights_axis(self, capsys):
        assert main(["sweep", "--fom-weights", "paper,2:1:0.5"]) == 0
        out = capsys.readouterr().out
        assert "2 points, 8 rows" in out
        assert "2:1:0.5" in out

    def test_csv_carries_the_scenario_columns(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--csv",
                    "--q-models",
                    "measured",
                    "--nres",
                    "lean",
                    "--fom-weights",
                    "1:1:0",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split(",")
        assert header[:8] == [
            "volume",
            "substrate",
            "process",
            "tolerance",
            "q_model",
            "nre",
            "weights",
            "candidate",
        ]
        for line in lines[1:]:
            record = line.split(",")
            assert record[4] == "measured-summit"
            assert record[5] == "lean"
            assert record[6] == "1:1:0"


class TestSweepFill:
    """The --fill flag and the REPRO_SWEEP_BATCH env gate."""

    ARGS = ["sweep", "--csv", "--volumes", "1e3,1e4", "--tolerances",
            "paper,precision"]

    def test_scalar_fill_csv_identical_to_default(self, capsys):
        assert main(self.ARGS) == 0
        reference = capsys.readouterr().out
        assert main(self.ARGS + ["--fill", "scalar"]) == 0
        assert capsys.readouterr().out == reference
        assert main(self.ARGS + ["--fill", "batch"]) == 0
        assert capsys.readouterr().out == reference

    def test_invalid_fill_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--fill", "vector"])
        assert excinfo.value.code == 2

    def test_bad_env_gate_exits_2(self, capsys, monkeypatch):
        from repro.core.sweep import BATCH_FILL_ENV

        monkeypatch.setenv(BATCH_FILL_ENV, "bogus")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code == 2
        assert "REPRO_SWEEP_BATCH" in capsys.readouterr().err

    def test_fill_flag_restores_env(self, capsys, monkeypatch):
        """--fill must not leak its env override past the command."""
        import os

        from repro.core.sweep import BATCH_FILL_ENV

        monkeypatch.delenv(BATCH_FILL_ENV, raising=False)
        assert main(self.ARGS + ["--fill", "scalar"]) == 0
        capsys.readouterr()
        assert BATCH_FILL_ENV not in os.environ

        monkeypatch.setenv(BATCH_FILL_ENV, "1")
        assert main(self.ARGS + ["--fill", "scalar"]) == 0
        capsys.readouterr()
        assert os.environ[BATCH_FILL_ENV] == "1"

    def test_scalar_fill_env_csv_identical_to_default(
        self, capsys, monkeypatch
    ):
        from repro.core.sweep import BATCH_FILL_ENV

        monkeypatch.delenv(BATCH_FILL_ENV, raising=False)
        assert main(self.ARGS) == 0
        reference = capsys.readouterr().out
        monkeypatch.setenv(BATCH_FILL_ENV, "0")
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == reference


class TestSweepEngines:
    """The --engine / --jobs / --cache-stats surface."""

    @staticmethod
    def _table_lines(out: str) -> list[str]:
        # The memo tally is engine-dependent by design (each process
        # worker starts cold; the stacked engine pre-seeds); everything
        # else — every number in every row — must match exactly.
        return [
            line
            for line in out.splitlines()
            if not line.startswith("Memoised sub-results")
        ]

    @pytest.mark.parametrize(
        "engine", ["serial", "process", "stacked", "sharded", "async"]
    )
    def test_engines_print_identical_tables(self, engine, capsys):
        assert main(["sweep", "--engine", "serial"]) == 0
        reference = self._table_lines(capsys.readouterr().out)
        argv = ["sweep", "--engine", engine]
        if engine == "process":
            argv += ["--jobs", "2"]
        elif engine == "sharded":
            argv += ["--shards", "2"]
        elif engine == "async":
            argv += ["--jobs", "2"]
        assert main(argv) == 0
        assert self._table_lines(capsys.readouterr().out) == reference

    def test_cache_stats_prints_per_table_tally(self, capsys):
        assert main(["sweep", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "Evaluation cache (merged across workers):" in out
        for table in ("performance", "area", "cost"):
            assert table in out
        assert "entries" in out

    def test_cache_stats_with_stacked_engine(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--engine",
                    "stacked",
                    "--volumes",
                    "1e3,1e4",
                    "--cache-stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # The stacked engine pre-seeds every chain, so the per-point
        # evaluation hits the performance table on every lookup.
        assert "performance: 8 hits / 0 misses" in out

    def test_csv_keeps_stdout_clean_with_cache_stats(self, capsys):
        assert main(["sweep", "--csv", "--cache-stats"]) == 0
        captured = capsys.readouterr()
        assert "Evaluation cache" not in captured.out
        assert "cache:" in captured.err

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--engine", "quantum"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("jobs", ["0", "-2", "two"])
    def test_bad_jobs_rejected(self, jobs):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--jobs", jobs])
        assert excinfo.value.code == 2


class TestSweepEnvironmentErrors:
    """Bad REPRO_SWEEP_* values must exit 2 with a message, not dump a
    traceback — the regression behind the engine-resolution try/except
    in ``_cmd_sweep``."""

    def test_unknown_env_engine_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "quantum")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error" in err
        assert "quantum" in err
        assert "serial" in err  # the message names the alternatives

    def test_zero_env_jobs_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "process")
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code == 2
        assert "at least 1 worker" in capsys.readouterr().err

    def test_non_integer_env_jobs_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "process")
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "many")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code == 2
        assert "REPRO_SWEEP_JOBS" in capsys.readouterr().err

    def test_bad_env_shards_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "sharded")
        monkeypatch.setenv("REPRO_SWEEP_SHARDS", "abc")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep"])
        assert excinfo.value.code == 2
        assert "REPRO_SWEEP_SHARDS" in capsys.readouterr().err


class TestShardCli:
    """The cross-host surface: --shards/--shard-index/--shard-dir/--merge."""

    GRID = ["--volumes", "1e3,1e4"]

    def _shard(self, tmp_path, index, capsys):
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--shards",
                    "2",
                    "--shard-index",
                    str(index),
                    "--shard-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"Shard {index}/2" in out
        return out

    def test_shard_then_merge_matches_direct_sweep(self, tmp_path, capsys):
        assert main(["sweep", *self.GRID, "--csv"]) == 0
        reference = capsys.readouterr().out
        self._shard(tmp_path, 0, capsys)
        self._shard(tmp_path, 1, capsys)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "shard-0000-of-0002.json",
            "shard-0001-of-0002.json",
        ]
        assert main(["sweep", "--merge", str(tmp_path), "--csv"]) == 0
        assert capsys.readouterr().out == reference

    def test_merge_prints_the_standard_table(self, tmp_path, capsys):
        self._shard(tmp_path, 0, capsys)
        self._shard(tmp_path, 1, capsys)
        assert main(["sweep", "--merge", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Design-space sweep: 2 points, 8 rows" in out
        assert "Winner counts" in out
        assert "Best overall:" in out

    def test_merge_with_missing_shard_exits_2(self, tmp_path, capsys):
        self._shard(tmp_path, 0, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "missing" in capsys.readouterr().err

    def test_merge_empty_directory_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "no shard artifacts" in capsys.readouterr().err

    def test_merge_missing_directory_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_shard_index_requires_shards(self, monkeypatch, capsys):
        # With $REPRO_SWEEP_SHARDS exported, --shard-index alone is
        # legitimate (the env supplies the count) — so clear it.
        monkeypatch.delenv("REPRO_SWEEP_SHARDS", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--shard-index", "0"])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_shard_index_honours_env_shard_count(
        self, tmp_path, monkeypatch, capsys
    ):
        """--shards documents $REPRO_SWEEP_SHARDS as its default."""
        monkeypatch.setenv("REPRO_SWEEP_SHARDS", "2")
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--shard-index",
                    "1",
                    "--shard-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "Shard 1/2" in capsys.readouterr().out
        assert (tmp_path / "shard-0001-of-0002.json").exists()

    def test_merge_rejects_grid_axis_flags(self, tmp_path, capsys):
        """Axis flags alongside --merge would be silently ignored."""
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--merge",
                    str(tmp_path),
                    "--volumes",
                    "1e5,1e6",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--volumes" in err
        assert "from the shard artifacts" in err

    def test_merge_rejects_engine_flags(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--merge", str(tmp_path), "--engine", "process"]
            )
        assert excinfo.value.code == 2
        assert "--engine" in capsys.readouterr().err

    def test_shard_run_rejects_csv(self, tmp_path, capsys):
        """A shard run writes an artifact, not rows: --csv would lie."""
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--csv",
                ]
            )
        assert excinfo.value.code == 2
        assert "--csv" in capsys.readouterr().err

    def test_env_shards_alone_shards_in_process(
        self, monkeypatch, capsys
    ):
        """$REPRO_SWEEP_SHARDS is the documented --shards default."""
        assert main(["sweep"]) == 0
        reference = capsys.readouterr().out
        monkeypatch.setenv("REPRO_SWEEP_SHARDS", "2")
        assert main(["sweep"]) == 0
        assert capsys.readouterr().out == reference

    def test_shard_index_out_of_range_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--shards", "2", "--shard-index", "2"])
        assert excinfo.value.code == 2
        assert "out of range" in capsys.readouterr().err

    def test_negative_shard_index_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--shards", "2", "--shard-index", "-1"])
        assert excinfo.value.code == 2

    def test_merge_excludes_shard_flags(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--merge",
                    str(tmp_path),
                    "--shards",
                    "2",
                ]
            )
        assert excinfo.value.code == 2
        assert "cannot be mixed" in capsys.readouterr().err

    def test_resume_skips_a_completed_shard(self, tmp_path, capsys):
        """A valid artifact for the same grid+shard short-circuits."""
        self._shard(tmp_path, 0, capsys)
        artifact = tmp_path / "shard-0000-of-0002.json"
        before = artifact.read_bytes()
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skipping re-evaluation" in out
        assert artifact.read_bytes() == before

    def test_resume_reevaluates_on_grid_mismatch(self, tmp_path, capsys):
        """An artifact from a *different* grid must not be trusted."""
        self._shard(tmp_path, 0, capsys)
        assert (
            main(
                [
                    "sweep",
                    "--volumes",
                    "1e5,1e6",  # different grid, same shard geometry
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skipping" not in out
        assert "Shard 0/2" in out

    def test_resume_reevaluates_a_corrupt_artifact(self, tmp_path, capsys):
        path = tmp_path / "shard-0000-of-0002.json"
        path.write_text("not json{", encoding="utf-8")
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--resume",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skipping" not in out
        # The corrupt artifact was replaced by a real one.
        from repro.core.sharding import read_shard_artifact

        assert read_shard_artifact(path).shard_index == 0

    def test_resume_requires_a_shard_run(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--resume"])
        assert excinfo.value.code == 2
        assert "--shard-index" in capsys.readouterr().err

    def test_resume_rejected_with_merge(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path), "--resume"])
        assert excinfo.value.code == 2
        assert "--resume" in capsys.readouterr().err

    def test_shard_run_honours_cache_stats(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                    "--cache-stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache:" in out
        assert "performance=" in out


class TestMergeTornArtifact:
    """--merge on damaged artifacts: one-line exit 2, never a traceback."""

    GRID = ["--volumes", "1e3,1e4"]

    def _shards(self, tmp_path, capsys):
        for index in (0, 1):
            assert (
                main(
                    [
                        "sweep",
                        *self.GRID,
                        "--shards",
                        "2",
                        "--shard-index",
                        str(index),
                        "--shard-dir",
                        str(tmp_path),
                    ]
                )
                == 0
            )
        capsys.readouterr()

    def test_truncated_artifact_exits_2(self, tmp_path, capsys):
        self._shards(tmp_path, capsys)
        path = tmp_path / "shard-0001-of-0002.json"
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert path.name in err

    def test_torn_multibyte_utf8_exits_2(self, tmp_path, capsys):
        """The regression: a write cut mid multi-byte character used to
        escape as a UnicodeDecodeError traceback (exit 1)."""
        self._shards(tmp_path, capsys)
        path = tmp_path / "shard-0001-of-0002.json"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2] + b"\xc2")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "not valid UTF-8" in err
        assert "Traceback" not in err

    def test_foreign_format_artifact_exits_2(self, tmp_path, capsys):
        self._shards(tmp_path, capsys)
        path = tmp_path / "shard-0000-of-0002.json"
        payload = path.read_text(encoding="utf-8").replace(
            "repro-sweep-shard/2", "alien-format/7"
        )
        path.write_text(payload, encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--merge", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "alien-format/7" in capsys.readouterr().err


class TestQueueCli:
    """The service surface: sweep --queue-init / --queue."""

    GRID = ["--volumes", "1e3,1e4"]

    def _init(self, tmp_path, capsys, extra=()):
        manifest = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--queue-init",
                    str(manifest),
                    "--shards",
                    "2",
                    *extra,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Queue manifest: 2 points in 2 shards" in out
        return manifest

    def test_init_then_worker_then_gather_matches_sweep(
        self, tmp_path, capsys
    ):
        assert main(["sweep", *self.GRID, "--csv"]) == 0
        reference = capsys.readouterr().out
        manifest = self._init(tmp_path, capsys)
        assert main(["sweep", "--queue", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "2 evaluated" in out
        assert "queue drained" in out
        assert main(["gather", str(tmp_path), "--csv"]) == 0
        assert capsys.readouterr().out == reference

    def test_second_worker_skips_and_exits_0(self, tmp_path, capsys):
        manifest = self._init(tmp_path, capsys)
        assert main(["sweep", "--queue", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--queue", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "0 evaluated, 2 skipped" in out

    def test_queue_policy_lands_in_the_manifest(self, tmp_path, capsys):
        manifest = self._init(
            tmp_path,
            capsys,
            extra=["--lease-ttl", "7.5", "--max-attempts", "5"],
        )
        text = manifest.read_text(encoding="utf-8")
        assert '"lease_ttl": 7.5' in text
        assert '"max_attempts": 5' in text

    def test_init_requires_shards(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_SWEEP_SHARDS", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--queue-init", str(tmp_path / "m.json")])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_init_rejects_engine_flags(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--queue-init",
                    str(tmp_path / "m.json"),
                    "--shards",
                    "2",
                    "--engine",
                    "process",
                ]
            )
        assert excinfo.value.code == 2
        assert "--engine" in capsys.readouterr().err

    def test_init_and_queue_are_mutually_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "sweep",
                    "--queue-init",
                    str(tmp_path / "m.json"),
                    "--queue",
                    str(tmp_path / "m.json"),
                    "--shards",
                    "2",
                ]
            )
        assert excinfo.value.code == 2
        assert "one or the other" in capsys.readouterr().err

    def test_worker_rejects_grid_axis_flags(self, tmp_path, capsys):
        manifest = self._init(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--queue", str(manifest), "--volumes", "1e5"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--volumes" in err
        assert "from the manifest" in err

    def test_worker_rejects_shard_flags(self, tmp_path, capsys):
        manifest = self._init(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--queue", str(manifest), "--shards", "4"])
        assert excinfo.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_worker_rejects_csv(self, tmp_path, capsys):
        manifest = self._init(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--queue", str(manifest), "--csv"])
        assert excinfo.value.code == 2
        assert "gather" in capsys.readouterr().err

    def test_worker_rejects_queue_policy_flags(self, tmp_path, capsys):
        manifest = self._init(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--queue", str(manifest), "--lease-ttl", "5"]
            )
        assert excinfo.value.code == 2
        assert "--queue-init" in capsys.readouterr().err

    def test_policy_flags_need_a_queue(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--lease-ttl", "5"])
        assert excinfo.value.code == 2
        assert "--queue-init" in capsys.readouterr().err

    def test_worker_with_missing_manifest_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--queue", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_worker_refuses_manifest_without_grid_spec(
        self, tmp_path, capsys
    ):
        """An API-written manifest has no grid_spec: the CLI worker
        cannot rebuild the grid and must say so, not guess."""
        from repro.core.queue import manifest_for_grid, write_manifest
        from repro.core.sweep import SweepGrid

        manifest = manifest_for_grid(
            SweepGrid(volumes=(1e3, 1e4)), shards=2
        )
        path = write_manifest(tmp_path / "manifest.json", manifest)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--queue", str(path)])
        assert excinfo.value.code == 2
        assert "grid_spec" in capsys.readouterr().err

    def test_manifest_grid_spec_round_trips_every_axis(
        self, tmp_path, capsys
    ):
        """Registry axes, custom tan= and weight triples all survive
        the manifest round trip: worker output == direct sweep."""
        grid_flags = [
            "--volumes",
            "1e3",
            "--substrates",
            "paper",
            "--tolerances",
            "paper,precision",
            "--q-models",
            "tan=0.012",
            "--fom-weights",
            "2:1:0.5",
        ]
        assert main(["sweep", *grid_flags, "--csv"]) == 0
        reference = capsys.readouterr().out
        manifest = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "sweep",
                    *grid_flags,
                    "--queue-init",
                    str(manifest),
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        assert main(["sweep", "--queue", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["gather", str(tmp_path), "--csv"]) == 0
        assert capsys.readouterr().out == reference


class TestGatherCli:
    """The gather subcommand: one-shot merges and the watch loop."""

    GRID = ["--volumes", "1e3,1e4"]

    def _filled_queue(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--queue-init",
                    str(manifest),
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        assert main(["sweep", "--queue", str(manifest)]) == 0
        capsys.readouterr()
        return manifest

    def test_gather_prints_the_standard_table(self, tmp_path, capsys):
        self._filled_queue(tmp_path, capsys)
        assert main(["gather", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Design-space sweep: 2 points, 8 rows" in out
        assert "Best overall:" in out

    def test_gather_with_manifest_pins_the_grid(self, tmp_path, capsys):
        manifest = self._filled_queue(tmp_path, capsys)
        assert (
            main(
                ["gather", str(tmp_path), "--manifest", str(manifest)]
            )
            == 0
        )
        assert "Design-space sweep" in capsys.readouterr().out

    def test_incomplete_directory_exits_1(self, tmp_path, capsys):
        """Not-done-yet is exit 1 (retryable), not exit 2 (usage)."""
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--shard-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["gather", str(tmp_path)]) == 1
        assert "missing point indices" in capsys.readouterr().err

    def test_missing_directory_exits_1(self, tmp_path, capsys):
        assert main(["gather", str(tmp_path / "nope")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_poll_and_timeout_need_watch(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["gather", str(tmp_path), "--poll", "1"])
        assert excinfo.value.code == 2
        assert "--watch" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            main(["gather", str(tmp_path), "--timeout", "1"])
        assert excinfo.value.code == 2
        assert "--watch" in capsys.readouterr().err

    def test_bad_manifest_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "gather",
                    str(tmp_path),
                    "--manifest",
                    str(tmp_path / "nope.json"),
                ]
            )
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_watch_on_a_complete_directory_returns_at_once(
        self, tmp_path, capsys
    ):
        """A watch over an already-drained queue needs zero sleeps."""
        self._filled_queue(tmp_path, capsys)
        assert (
            main(
                [
                    "gather",
                    str(tmp_path),
                    "--watch",
                    "--timeout",
                    "5",
                    "--csv",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "gather: 2/2 points" in captured.err
        assert captured.out.startswith("volume,")

    def test_watch_timeout_exits_1(self, tmp_path, capsys):
        tmp_path.mkdir(exist_ok=True)
        assert (
            main(
                [
                    "gather",
                    str(tmp_path),
                    "--watch",
                    "--poll",
                    "0.01",
                    "--timeout",
                    "0.05",
                ]
            )
            == 1
        )
        assert "timed out" in capsys.readouterr().err


class TestWarehouseCli:
    """The warehouse verbs: every bad ask exits 2 with a one-line
    message on stderr (never a traceback), and the happy paths emit
    the query tier's canonical JSON on stdout."""

    def _build(self, tmp_path, capsys):
        directory = tmp_path / "wh"
        assert (
            main(
                [
                    "warehouse",
                    "build",
                    str(directory),
                    "--volumes",
                    "1e3,1e4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2/2 points" in out
        assert "(complete)" in out
        return directory

    def test_build_then_query_round_trips(self, tmp_path, capsys):
        import json

        directory = self._build(tmp_path, capsys)
        assert (
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "winners",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "winners"
        assert payload["points"] == 2
        assert sum(payload["winner_counts"].values()) == 2

    def test_query_output_is_the_servers_bytes(self, tmp_path, capsys):
        from repro.core.queryservice import QueryService, response_bytes

        directory = self._build(tmp_path, capsys)
        assert (
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "rerank",
                    "--fom-weights",
                    "2:1:0.5",
                    "--volume",
                    "1e4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        expected = response_bytes(
            QueryService(directory).execute(
                {
                    "kind": "rerank",
                    "fom_weights": "2:1:0.5",
                    "where": {"volume": 1e4},
                }
            )
        )
        assert out.encode() == expected

    def test_missing_manifest_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "query",
                    str(tmp_path / "nowhere"),
                    "--kind",
                    "winners",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot read warehouse manifest" in err
        assert "Traceback" not in err

    def test_bad_fingerprint_exits_2(self, tmp_path, capsys):
        directory = self._build(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "winners",
                    "--fingerprint",
                    "deadbeefdeadbeef",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "deadbeefdeadbeef" in err
        assert "Traceback" not in err

    def test_rebuild_into_existing_warehouse_exits_2(
        self, tmp_path, capsys
    ):
        directory = self._build(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "build",
                    str(directory),
                    "--volumes",
                    "1e3,1e4",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "already initialised" in err
        assert "Traceback" not in err

    def test_from_shards_rejects_grid_axis_flags(
        self, tmp_path, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "build",
                    str(tmp_path / "wh"),
                    "--from-shards",
                    str(tmp_path),
                    "--volumes",
                    "1e3",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--volumes" in err
        assert "Traceback" not in err

    def test_from_shards_rejects_engine_flags(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "build",
                    str(tmp_path / "wh"),
                    "--from-shards",
                    str(tmp_path),
                    "--engine",
                    "process",
                ]
            )
        assert excinfo.value.code == 2
        assert "--engine" in capsys.readouterr().err

    def test_from_shards_empty_directory_exits_2(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "build",
                    str(tmp_path / "wh"),
                    "--from-shards",
                    str(empty),
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no shard artifacts" in err
        assert "Traceback" not in err

    def test_rerank_query_requires_weights(self, tmp_path, capsys):
        directory = self._build(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "rerank",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fom_weights" in err
        assert "Traceback" not in err

    def test_pareto_query_rejects_weights(self, tmp_path, capsys):
        directory = self._build(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "pareto",
                    "--fom-weights",
                    "2:1:1",
                ]
            )
        assert excinfo.value.code == 2
        assert "weight-independent" in capsys.readouterr().err

    def test_sensitivity_query_requires_axis(self, tmp_path, capsys):
        directory = self._build(tmp_path, capsys)
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "sensitivity",
                ]
            )
        assert excinfo.value.code == 2
        assert "axis" in capsys.readouterr().err

    def test_unknown_kind_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "query",
                    str(tmp_path),
                    "--kind",
                    "everything",
                ]
            )
        assert excinfo.value.code == 2

    def test_warehouse_requires_a_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["warehouse"])
        assert excinfo.value.code == 2

    def test_serve_refuses_missing_warehouse(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "warehouse",
                    "serve",
                    str(tmp_path / "nowhere"),
                    "--port",
                    "0",
                ]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot read warehouse manifest" in err
        assert "Traceback" not in err

    def test_queue_to_warehouse_walkthrough(self, tmp_path, capsys):
        """The documented flow: queue-init, worker, build
        --from-shards twice (append, then skip), query."""
        import json

        manifest = tmp_path / "queue.json"
        assert (
            main(
                [
                    "sweep",
                    "--queue-init",
                    str(manifest),
                    "--shards",
                    "2",
                    "--volumes",
                    "1e3,1e4",
                ]
            )
            == 0
        )
        assert main(["sweep", "--queue", str(manifest)]) == 0
        directory = tmp_path / "wh"
        assert (
            main(
                [
                    "warehouse",
                    "build",
                    str(directory),
                    "--from-shards",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("appended") == 2
        assert (
            main(
                [
                    "warehouse",
                    "build",
                    str(directory),
                    "--from-shards",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("skipped") == 2
        assert (
            main(
                [
                    "warehouse",
                    "query",
                    str(directory),
                    "--kind",
                    "best",
                    "--volume",
                    "1e4",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["best"]["volume"] == 1e4
        assert payload["best"]["is_winner"] is True


class TestOutOfCoreCli:
    """The --max-rows-in-memory / --spill-dir surface.

    The contract under test: spilling through the chunked frame store
    never changes a single stdout byte — CSV and table alike — and
    every misuse (bad budget, budget-less --spill-dir, spill flags on
    artifact-writing paths, a corrupt spill store) exits 2 with a
    one-line message.
    """

    GRID = ["--volumes", "1e3,1e4", "--tolerances", "paper,precision"]

    def _reference_csv(self, capsys, monkeypatch) -> str:
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        assert main(["sweep", *self.GRID, "--csv"]) == 0
        return capsys.readouterr().out

    def test_spill_flag_csv_is_byte_identical(self, capsys, monkeypatch):
        reference = self._reference_csv(capsys, monkeypatch)
        assert (
            main(
                ["sweep", *self.GRID, "--csv", "--max-rows-in-memory", "5"]
            )
            == 0
        )
        assert capsys.readouterr().out == reference

    def test_spill_env_csv_is_byte_identical(self, capsys, monkeypatch):
        reference = self._reference_csv(capsys, monkeypatch)
        monkeypatch.setenv("REPRO_SWEEP_MAX_ROWS", "3")
        assert main(["sweep", *self.GRID, "--csv"]) == 0
        assert capsys.readouterr().out == reference

    def test_spill_table_is_byte_identical(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        assert main(["sweep", *self.GRID, "--cache-stats"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--cache-stats",
                    "--max-rows-in-memory",
                    "4",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == reference

    def test_csv_cache_stats_line_matches(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        assert main(["sweep", *self.GRID, "--csv", "--cache-stats"]) == 0
        reference = capsys.readouterr()
        assert (
            main(
                [
                    "sweep",
                    *self.GRID,
                    "--csv",
                    "--cache-stats",
                    "--max-rows-in-memory",
                    "5",
                ]
            )
            == 0
        )
        spilled = capsys.readouterr()
        assert spilled.out == reference.out
        assert spilled.err == reference.err

    def test_bad_env_budget_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_MAX_ROWS", "zero")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.GRID, "--csv"])
        assert excinfo.value.code == 2
        assert "REPRO_SWEEP_MAX_ROWS" in capsys.readouterr().err

    @pytest.mark.parametrize("raw", ["0", "-2", "many"])
    def test_bad_flag_budget_exits_2(self, capsys, raw):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--max-rows-in-memory", raw])
        assert excinfo.value.code == 2

    def test_spill_dir_without_budget_exits_2(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--spill-dir", str(tmp_path / "sp")])
        assert excinfo.value.code == 2
        assert "row budget" in capsys.readouterr().err

    def test_spill_dir_reuse_is_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        reference = self._reference_csv(capsys, monkeypatch)
        spill = ["--max-rows-in-memory", "5", "--spill-dir", str(tmp_path / "sp")]
        assert main(["sweep", *self.GRID, "--csv", *spill]) == 0
        first = capsys.readouterr()
        assert first.out == reference
        assert main(["sweep", *self.GRID, "--csv", *spill]) == 0
        second = capsys.readouterr()
        assert second.out == reference
        assert "reusing spilled frame store" in second.err

    def test_spill_dir_foreign_grid_exits_2(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        spill = ["--max-rows-in-memory", "5", "--spill-dir", str(tmp_path / "sp")]
        assert main(["sweep", *self.GRID, "--csv", *spill]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--volumes", "1e3", "--csv", *spill])
        assert excinfo.value.code == 2
        assert "different grid" in capsys.readouterr().err

    def test_corrupt_spill_chunk_exits_2(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        spill = ["--max-rows-in-memory", "5", "--spill-dir", str(tmp_path / "sp")]
        assert main(["sweep", *self.GRID, "--csv", *spill]) == 0
        capsys.readouterr()
        chunk = sorted((tmp_path / "sp").glob("chunk-*.json"))[0]
        payload = json.loads(chunk.read_text(encoding="utf-8"))
        payload["columns"]["volume"][0] = 1e9
        chunk.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.GRID, "--csv", *spill])
        assert excinfo.value.code == 2
        assert "digest" in capsys.readouterr().err

    def _shard_directory(self, tmp_path, capsys):
        directory = tmp_path / "shards"
        for index in range(3):
            assert (
                main(
                    [
                        "sweep",
                        *self.GRID,
                        "--shards",
                        "3",
                        "--shard-index",
                        str(index),
                        "--shard-dir",
                        str(directory),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        return directory

    def test_merge_spill_is_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        directory = self._shard_directory(tmp_path, capsys)
        assert main(["sweep", "--merge", str(directory), "--csv"]) == 0
        reference = capsys.readouterr().out
        assert (
            main(
                [
                    "sweep",
                    "--merge",
                    str(directory),
                    "--csv",
                    "--max-rows-in-memory",
                    "4",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == reference

    def test_gather_spill_is_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        directory = self._shard_directory(tmp_path, capsys)
        assert main(["gather", str(directory), "--csv", "--cache-stats"]) == 0
        reference = capsys.readouterr()
        assert (
            main(
                [
                    "gather",
                    str(directory),
                    "--csv",
                    "--cache-stats",
                    "--max-rows-in-memory",
                    "4",
                ]
            )
            == 0
        )
        spilled = capsys.readouterr()
        assert spilled.out == reference.out
        assert spilled.err == reference.err

    def test_gather_spill_dir_reuse(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        directory = self._shard_directory(tmp_path, capsys)
        spill = [
            "--max-rows-in-memory",
            "4",
            "--spill-dir",
            str(tmp_path / "gsp"),
        ]
        assert main(["gather", str(directory), "--csv", *spill]) == 0
        first = capsys.readouterr()
        assert main(["gather", str(directory), "--csv", *spill]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "reusing spilled frame store" in second.err

    def test_gather_missing_directory_still_exits_1(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_SWEEP_MAX_ROWS", raising=False)
        assert (
            main(
                [
                    "gather",
                    str(tmp_path / "nope"),
                    "--max-rows-in-memory",
                    "4",
                ]
            )
            == 1
        )
        assert "repro-gps gather:" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--queue-init", "q.json", "--shards", "2",
             "--max-rows-in-memory", "4"],
            ["sweep", "--queue", "q.json", "--max-rows-in-memory", "4"],
            ["sweep", "--shards", "2", "--shard-index", "0",
             "--max-rows-in-memory", "4"],
            ["sweep", "--shards", "2", "--shard-index", "0",
             "--spill-dir", "sp"],
            ["gather", "dir", "--watch", "--max-rows-in-memory", "4"],
            ["gather", "dir", "--watch", "--spill-dir", "sp"],
        ],
    )
    def test_spill_flags_refused_on_artifact_paths(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err
