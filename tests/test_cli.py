"""The repro-gps command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("study", "flow", "compare", "calibrate"):
            args = parser.parse_args(
                [command, "2"] if command == "flow" else [command]
            )
            assert hasattr(args, "func")

    def test_flow_requires_valid_implementation(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["flow", "7"])


class TestCommands:
    def test_flow_command_prints_fig4(self, capsys):
        assert main(["flow", "2"]) == 0
        out = capsys.readouterr().out
        assert "Wire bonding" in out
        assert "SCRAP" in out

    def test_study_command_prints_tables(self, capsys):
        assert main(["study"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "Recommended build-up" in out

    def test_compare_command(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "area" in out
        assert "paper=" in out

    def test_default_is_study(self, capsys):
        assert main([]) == 0
        assert "Fig. 6" in capsys.readouterr().out
