"""Shared fixtures: the GPS study result is expensive, so compute once."""

from __future__ import annotations

import pytest

from repro.gps.study import run_gps_study, summary_rows


@pytest.fixture(scope="session")
def gps_result():
    """The full GPS trade-off study (all four build-ups)."""
    return run_gps_study()


@pytest.fixture(scope="session")
def gps_rows(gps_result):
    """Per-implementation summary rows keyed by implementation number."""
    return {row.implementation: row for row in summary_rows(gps_result)}
