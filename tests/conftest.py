"""Shared fixtures: the GPS study result is expensive, so compute once."""

from __future__ import annotations

import gc

import pytest

from repro.gps.study import run_gps_study, summary_rows


def pytest_sessionfinish(session, exitstatus):
    """Collect asyncio garbage before pytest's terminal summary.

    The async sweep-engine tests leave cyclic event-loop garbage
    behind; on CPython 3.11 a cycle collection that happens to trigger
    *during* the hypothesis plugin's lazy ``ast.parse`` at terminal
    summary dies with ``SystemError: AST constructor recursion depth
    mismatch``.  Collecting here, at a safe point before the summary,
    keeps subset runs (``pytest tests/core/test_executors.py``) green.
    """
    del session, exitstatus
    gc.collect()


@pytest.fixture(scope="session")
def gps_result():
    """The full GPS trade-off study (all four build-ups)."""
    return run_gps_study()


@pytest.fixture(scope="session")
def gps_rows(gps_result):
    """Per-implementation summary rows keyed by implementation number."""
    return {row.implementation: row for row in summary_rows(gps_result)}
