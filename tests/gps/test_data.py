"""Published constants sanity (Tables 1/2 as encoded)."""

from __future__ import annotations

import pytest

from repro.gps import data


class TestTable1:
    def test_chip_areas(self):
        assert data.RF_CHIP_AREA == {
            "packaged": 225.0,
            "wire_bond": 28.0,
            "flip_chip": 13.0,
        }
        assert data.DSP_CHIP_AREA["packaged"] == 1165.0

    def test_passive_areas(self):
        assert data.SMD_0603_AREA == 3.75
        assert data.SMD_0805_AREA == 4.5
        assert data.IP_R_100K_AREA == 0.25
        assert data.IP_C_50PF_AREA == 0.30
        assert data.IP_L_40NH_AREA == 1.0

    def test_sizing_rules(self):
        assert data.MCM_PACKING_FACTOR == 1.1
        assert data.MCM_EDGE_CLEARANCE_MM == 1.0
        assert data.LAMINATE_EDGE_CLEARANCE_MM == 5.0


class TestTable2:
    def test_substrate_rows(self):
        assert data.SUBSTRATE_YIELD == {
            1: 0.9999,
            2: 0.99,
            3: 0.90,
            4: 0.90,
        }
        assert data.SUBSTRATE_COST_PER_CM2 == {
            1: 0.1,
            2: 1.75,
            3: 2.25,
            4: 2.25,
        }

    def test_assembly_rows(self):
        assert data.CHIP_ASSEMBLY_COST[1] == 0.15
        assert data.CHIP_ASSEMBLY_YIELD[1] == 0.933
        assert data.WIRE_BOND_COUNT == 212
        assert data.SMD_COUNT == {1: 112, 2: 112, 3: 0, 4: 12}
        assert data.SMD_PARTS_COST[2] == 8.6

    def test_packaging_and_test(self):
        assert data.PACKAGING_COST == {
            1: 0.0,
            2: 7.30,
            3: 4.70,
            4: 3.50,
        }
        assert data.PACKAGING_YIELD == 0.968
        assert data.FINAL_TEST_COST == 10.0
        assert data.FINAL_TEST_COVERAGE == 0.99

    def test_bare_dice_cheaper_but_lower_yield(self):
        """The '(cheaper) not fully tested chips' of §4.3."""
        costs = data.ChipCosts()
        assert costs.rf_bare < costs.rf_packaged
        assert costs.dsp_bare < costs.dsp_packaged
        assert data.RF_CHIP_YIELD_BARE < data.RF_CHIP_YIELD_PACKAGED
        assert data.DSP_CHIP_YIELD_BARE < data.DSP_CHIP_YIELD_PACKAGED

    def test_chip_cost_totals(self):
        costs = data.ChipCosts(10.0, 9.0, 20.0, 18.0)
        assert costs.packaged_total == 30.0
        assert costs.bare_total == 27.0


class TestPublishedResults:
    def test_paper_targets_encoded(self):
        assert data.PAPER_AREA_PERCENT[4] == 37.0
        assert data.PAPER_COST_PERCENT[3] == 112.8
        assert data.PAPER_PERFORMANCE[3] == 0.45
        assert data.PAPER_FOM[4] == 1.8

    def test_filter_chain_frequencies(self):
        assert data.GPS_L1_HZ == 1.575e9
        assert data.IMAGE_HZ == 1.225e9
        assert data.IF_HZ == 175e6
