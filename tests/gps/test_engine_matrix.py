"""Differential harness: every engine x every Q scenario, same bytes.

This is the systematic replacement for the ad-hoc per-engine
comparisons that used to live in ``test_engines.py``: one parametrised
matrix that runs a small GPS sweep through *every* execution engine
(process, stacked, sharded, async — serial is the reference) under
*every* Q-model scenario class (constant-Q, dispersive, custom
``tan=``) and asserts the rows are byte-identical to the serial
engine — dataclass equality on ``SweepRow`` compares every float
exactly, not approximately.

The cross-host path gets the same treatment: shard artifacts cut from
the scenario grids, round-tripped through JSON, must merge back to the
serial bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits.qfactor import (
    MEASURED_SUMMIT_TABLE,
    SubstrateLossQModel,
)
from repro.core.executors import make_executor
from repro.core.gather import gather_directory
from repro.core.queue import manifest_for_grid, write_manifest
from repro.core.sharding import (
    ShardedExecutor,
    artifact_to_payload,
    merge_shard_artifacts,
    payload_to_artifact,
)
from repro.core.sweep import SweepGrid
from repro.gps.study import (
    run_gps_queue_worker,
    run_gps_shard,
    run_gps_sweep,
    spill_gps_sweep,
)
from repro.passives.tolerance import PRECISION_CLASS

#: Engine name -> factory.  Serial is the reference, not a column.
ENGINES = {
    "process": lambda: make_executor("process", jobs=2),
    "stacked": lambda: make_executor("stacked"),
    "sharded": lambda: ShardedExecutor(shards=3),
    "async": lambda: make_executor("async", jobs=2),
}

#: Scenario name -> grid.  One grid per Q-model class the engines must
#: reproduce: the constant-Q golden path, genuinely dispersive models
#: (frequency-dependent Q re-evaluated at every stamped frequency),
#: and a custom ``tan=`` loss tangent; each grid carries a second axis
#: so sharding and async scheduling have real work to repartition.
SCENARIO_GRIDS = {
    "constant-q": SweepGrid(volumes=(1_000.0, 100_000.0)),
    "dispersive": SweepGrid(
        volumes=(1_000.0,),
        q_models=(SubstrateLossQModel(), MEASURED_SUMMIT_TABLE),
    ),
    "custom-tan": SweepGrid(
        volumes=(1_000.0,),
        q_models=(SubstrateLossQModel(tan_delta_ref=0.02),),
        tolerances=(None, PRECISION_CLASS),
    ),
}


@pytest.fixture(scope="module")
def serial_reports():
    """The serial-engine reference rows, one report per scenario."""
    return {
        scenario: run_gps_sweep(grid, executor=make_executor("serial"))
        for scenario, grid in SCENARIO_GRIDS.items()
    }


class TestEngineMatrix:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("scenario", sorted(SCENARIO_GRIDS))
    def test_rows_byte_identical_to_serial(
        self, serial_reports, engine, scenario
    ):
        report = run_gps_sweep(
            SCENARIO_GRIDS[scenario], executor=ENGINES[engine]()
        )
        reference = serial_reports[scenario]
        assert report.rows == reference.rows
        assert [cell.point for cell in report.cells] == [
            cell.point for cell in reference.cells
        ]

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_GRIDS))
    def test_scalar_fill_byte_identical_to_batched(
        self, serial_reports, scenario, monkeypatch
    ):
        """The serial reference runs the batched family fill by
        default; forcing the scalar per-point fill through the env gate
        must hit the same bytes under every scenario class."""
        from repro.core.sweep import BATCH_FILL_ENV

        monkeypatch.setenv(BATCH_FILL_ENV, "0")
        report = run_gps_sweep(
            SCENARIO_GRIDS[scenario], executor=make_executor("serial")
        )
        reference = serial_reports[scenario]
        assert report.rows == reference.rows
        assert [cell.point for cell in report.cells] == [
            cell.point for cell in reference.cells
        ]

    def test_scenarios_genuinely_differ(self, serial_reports):
        """The matrix is not vacuous: each scenario moves the numbers."""
        performances = {
            scenario: tuple(
                row.performance for row in report.rows
            )
            for scenario, report in serial_reports.items()
        }
        assert len(set(performances.values())) == len(performances)


class TestChunkedStoreMatrix:
    """The out-of-core column: spilling through the chunked frame
    store under every engine x scenario must stream back the exact
    serial bytes — frame, CSV lines and cache statistics alike."""

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("scenario", sorted(SCENARIO_GRIDS))
    def test_spilled_store_byte_identical_to_serial(
        self, serial_reports, engine, scenario, tmp_path
    ):
        store = spill_gps_sweep(
            SCENARIO_GRIDS[scenario],
            tmp_path / "store",
            max_rows_in_memory=3,
            executor=ENGINES[engine](),
        )
        reference = serial_reports[scenario]
        assert store.to_frame() == reference.frame
        assert list(store.csv_lines()) == reference.frame.csv_lines()

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_GRIDS))
    def test_serial_spill_matches_cache_stats(
        self, serial_reports, scenario, tmp_path
    ):
        store = spill_gps_sweep(
            SCENARIO_GRIDS[scenario],
            tmp_path / "store",
            max_rows_in_memory=1,
            executor=make_executor("serial"),
        )
        reference = serial_reports[scenario]
        assert store.to_frame() == reference.frame
        assert store.meta["cache_stats"] == reference.cache_stats


class TestCrossHostMatrix:
    """Shard -> JSON -> merge must hit the same bytes as serial."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_GRIDS))
    def test_merged_artifacts_byte_identical_to_serial(
        self, serial_reports, scenario
    ):
        grid = SCENARIO_GRIDS[scenario]
        artifacts = [
            payload_to_artifact(
                json.loads(
                    json.dumps(
                        artifact_to_payload(
                            run_gps_shard(grid, shards=2, shard_index=i)
                        )
                    )
                )
            )
            for i in range(2)
        ]
        merged = merge_shard_artifacts(reversed(artifacts))
        assert merged.rows == serial_reports[scenario].rows


class TestQueueFabricMatrix:
    """Queue worker + incremental gather must hit the serial bytes.

    The service tier gets the same differential treatment as the
    engines: a manifest-driven queue drained through each engine,
    gathered from the shard directory, must reproduce the serial rows
    exactly — scenario coverage rides on the serial column, engine
    coverage on the smallest dispersive grid.
    """

    def _drain_and_gather(self, tmp_path, grid, executor):
        manifest = manifest_for_grid(grid, shards=2)
        manifest_path = write_manifest(tmp_path / "manifest.json", manifest)
        report = run_gps_queue_worker(
            manifest_path, grid, executor=executor
        )
        assert report.queue_drained
        return gather_directory(tmp_path, expected=manifest)

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_GRIDS))
    def test_gathered_queue_byte_identical_per_scenario(
        self, serial_reports, scenario, tmp_path
    ):
        gathered = self._drain_and_gather(
            tmp_path, SCENARIO_GRIDS[scenario], make_executor("serial")
        )
        assert gathered.rows == serial_reports[scenario].rows

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_gathered_queue_byte_identical_per_engine(
        self, serial_reports, engine, tmp_path
    ):
        gathered = self._drain_and_gather(
            tmp_path, SCENARIO_GRIDS["dispersive"], ENGINES[engine]()
        )
        assert gathered.rows == serial_reports["dispersive"].rows
