"""Execution engines must not move a digit of the GPS reproduction.

The systematic engine x scenario identity matrix lives in
``test_engine_matrix.py`` (every engine, every Q-model scenario,
byte-identical rows).  What remains here is the anchor to the golden
files and the process-engine pickling contract:

* at the paper's own design point, every engine reproduces the
  golden-locked study numbers exactly;
* the GPS candidate factory survives the process boundary.
"""

from __future__ import annotations

import pytest

from repro.core.executors import ENGINE_NAMES, make_executor
from repro.core.sweep import DesignPoint
from repro.gps.study import (
    GpsSweepFactory,
    run_gps_study,
    run_gps_sweep,
)


class TestPaperPointIdentity:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_paper_point_matches_study_under_every_engine(self, engine):
        """Zero-NRE sweep at the paper's point == the golden-locked study."""
        study = run_gps_study()
        report = run_gps_sweep(
            [DesignPoint()],
            nre_scenario={i: 0.0 for i in (1, 2, 3, 4)},
            executor=make_executor(engine, jobs=2, shards=2),
        )
        (cell,) = report.cells
        for study_row, sweep_row in zip(study.rows, cell.result.rows):
            assert (
                sweep_row.fom.figure_of_merit
                == study_row.fom.figure_of_merit
            )
            assert sweep_row.area_percent == study_row.area_percent
            assert sweep_row.cost_percent == study_row.cost_percent


class TestFactoryPicklability:
    def test_gps_factory_round_trips_through_pickle(self):
        import pickle

        factory = GpsSweepFactory(
            nre_scenario={1: 0.0, 2: 1.0, 3: 2.0, 4: 3.0}
        )
        clone = pickle.loads(pickle.dumps(factory))
        point = DesignPoint()
        assert [c.name for c in clone(point)] == [
            c.name for c in factory(point)
        ]
