"""Execution engines must not move a digit of the GPS reproduction.

The acceptance contract of the engine layer: serial, process and
stacked scheduling produce **byte-identical** sweep rows (every float
exactly equal, not approximately).  This holds because the stacked
``(B, F, n, n)`` solves are bit-compatible with the per-circuit path
(LAPACK factorises each matrix independently of the batch shape) and
the process engine only repartitions the grid.

The golden files themselves (``tests/gps/goldens/``) are exercised by
``test_goldens.py`` through the serial study path; here the same
numbers are pinned across engines, including at the paper's design
point.
"""

from __future__ import annotations

import pytest

from repro.circuits.qfactor import (
    MEASURED_SUMMIT_TABLE,
    SubstrateLossQModel,
)
from repro.core.executors import make_executor
from repro.core.figure_of_merit import FomWeights
from repro.core.sweep import DesignPoint, SweepGrid
from repro.gps.study import (
    GpsSweepFactory,
    NRE_SCENARIOS,
    run_gps_study,
    run_gps_sweep,
)
from repro.passives.thin_film import SI3N4_PROCESS
from repro.passives.tolerance import PRECISION_CLASS

GRID = SweepGrid(
    volumes=(1_000.0, 100_000.0),
    processes=(None, SI3N4_PROCESS),
    tolerances=(None, PRECISION_CLASS),
)

#: The three scenario axes together, with a dispersive Q model in the
#: mix — the grid every engine must reproduce byte-for-byte.
SCENARIO_GRID = SweepGrid(
    volumes=(1_000.0,),
    q_models=(None, SubstrateLossQModel(), MEASURED_SUMMIT_TABLE),
    nres=(None, NRE_SCENARIOS["zero"]),
    fom_weights=(None, FomWeights(performance=2.0, size=1.0, cost=0.5)),
)


@pytest.fixture(scope="module")
def serial_report():
    return run_gps_sweep(GRID, executor=make_executor("serial"))


@pytest.fixture(scope="module")
def serial_scenario_report():
    return run_gps_sweep(SCENARIO_GRID, executor=make_executor("serial"))


class TestEngineIdentity:
    @pytest.mark.parametrize("engine", ["process", "stacked"])
    def test_rows_byte_identical_to_serial(self, serial_report, engine):
        jobs = 2 if engine == "process" else None
        report = run_gps_sweep(
            GRID, executor=make_executor(engine, jobs)
        )
        # Dataclass equality on SweepRow compares every float exactly:
        # identical bytes, not tolerances.
        assert report.rows == serial_report.rows
        assert [c.point for c in report.cells] == [
            c.point for c in serial_report.cells
        ]

    @pytest.mark.parametrize("engine", ["process", "stacked"])
    def test_scenario_axes_byte_identical_across_engines(
        self, serial_scenario_report, engine
    ):
        """Q-model / NRE / weights axes under every engine, same bytes.

        The Q axis carries dispersive (frequency-dependent) models, so
        this also pins that the stacked engine's family solves are
        bit-compatible with the per-circuit path for dispersive
        elements.
        """
        jobs = 2 if engine == "process" else None
        report = run_gps_sweep(
            SCENARIO_GRID, executor=make_executor(engine, jobs)
        )
        assert report.rows == serial_scenario_report.rows
        # The axes genuinely vary: every combination appears in rows.
        labels = {
            (r.q_model, r.nre, r.weights)
            for r in serial_scenario_report.rows
        }
        assert len(labels) == 12

    @pytest.mark.parametrize(
        "engine", ["serial", "process", "stacked"]
    )
    def test_paper_point_matches_study_under_every_engine(self, engine):
        """Zero-NRE sweep at the paper's point == the golden-locked study."""
        study = run_gps_study()
        report = run_gps_sweep(
            [DesignPoint()],
            nre_scenario={i: 0.0 for i in (1, 2, 3, 4)},
            executor=make_executor(engine, 2),
        )
        (cell,) = report.cells
        for study_row, sweep_row in zip(study.rows, cell.result.rows):
            assert (
                sweep_row.fom.figure_of_merit
                == study_row.fom.figure_of_merit
            )
            assert sweep_row.area_percent == study_row.area_percent
            assert sweep_row.cost_percent == study_row.cost_percent


class TestFactoryPicklability:
    def test_gps_factory_round_trips_through_pickle(self):
        import pickle

        factory = GpsSweepFactory(
            nre_scenario={1: 0.0, 2: 1.0, 3: 2.0, 4: 3.0}
        )
        clone = pickle.loads(pickle.dumps(factory))
        point = DesignPoint()
        assert [c.name for c in clone(point)] == [
            c.name for c in factory(point)
        ]
