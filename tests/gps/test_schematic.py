"""The Fig. 2 functional chain."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.gps.schematic import (
    Block,
    BlockKind,
    ON_MODULE_FILTERS,
    build_gps_chain,
)


class TestGpsChain:
    def test_filter_count_matches_fig2(self):
        """Fig. 2 shows four BP filters plus the PLL loop filter; one
        (the external antenna filter) stays off-module."""
        chain = build_gps_chain()
        filters = chain.filters()
        assert len(filters) == 5

    def test_on_module_filters_subset(self):
        chain = build_gps_chain()
        names = {block.name for block in chain.filters()}
        assert set(ON_MODULE_FILTERS) <= names

    def test_chain_ends_at_correlator(self):
        chain = build_gps_chain()
        assert chain.blocks[-1].kind is BlockKind.CORRELATOR

    def test_rf_functions_live_on_rf_chip(self):
        chain = build_gps_chain()
        assert chain.by_name("LNA").host_chip == "RF chip"
        assert chain.by_name("VCO").host_chip == "RF chip"

    def test_passive_blocks_have_no_host(self):
        chain = build_gps_chain()
        passive = chain.passive_blocks()
        assert chain.by_name("image reject filter") in passive

    def test_image_filter_at_l1(self):
        chain = build_gps_chain()
        assert chain.by_name("image reject filter").frequency_hz == (
            1.575e9
        )

    def test_if_filters_at_175mhz(self):
        chain = build_gps_chain()
        assert chain.by_name("IF filter 1").frequency_hz == 175e6

    def test_duplicate_block_rejected(self):
        chain = build_gps_chain()
        with pytest.raises(SpecificationError):
            chain.add(Block("LNA", BlockKind.AMPLIFIER))

    def test_unknown_block_raises(self):
        with pytest.raises(SpecificationError):
            build_gps_chain().by_name("flux capacitor")
