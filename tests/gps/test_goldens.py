"""Golden-file regression tests for the GPS case study.

The vectorised MNA engine must not move a single digit of the published
reproduction.  ``goldens/gps_study.json`` snapshots every number behind
Table 1, Fig. 3, Fig. 5 and Fig. 6 at full ``repr`` precision; the test
re-derives the same canonical JSON from a fresh :func:`run_gps_study`
and compares **byte for byte** — any silent drift (a reordered float
sum, a changed solver path) fails loudly.

Regenerate after an *intentional* numeric change with::

    PYTHONPATH=src python tests/gps/test_goldens.py --write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.area.footprint import CHIP_AREAS
from repro.gps.buildups import area_for
from repro.gps.study import run_gps_study, summary_rows
from repro.passives.smd import get_case
from repro.passives.thin_film import (
    INTEGRATED_FILTER_AREA_MM2,
    SUMMIT_PROCESS,
    capacitor_area_mm2,
    inductor_area_mm2,
    resistor_area_mm2,
)

GOLDEN_PATH = Path(__file__).parent / "goldens" / "gps_study.json"

IMPLEMENTATIONS = (1, 2, 3, 4)


def render_goldens() -> str:
    """Canonical JSON of every regression-locked number.

    Sorted keys, two-space indent, trailing newline; floats serialise
    via ``repr`` (shortest round-trip form), so equal bytes mean equal
    IEEE doubles.
    """
    result = run_gps_study()
    rows = {row.implementation: row for row in summary_rows(result)}

    table1 = {
        "rf_chip_tqfp_mm2": CHIP_AREAS["RF chip"].packaged_mm2,
        "rf_chip_wb_mm2": CHIP_AREAS["RF chip"].wire_bond_mm2,
        "rf_chip_fc_mm2": CHIP_AREAS["RF chip"].flip_chip_mm2,
        "dsp_pqfp_mm2": CHIP_AREAS["DSP correlator"].packaged_mm2,
        "dsp_wb_mm2": CHIP_AREAS["DSP correlator"].wire_bond_mm2,
        "dsp_fc_mm2": CHIP_AREAS["DSP correlator"].flip_chip_mm2,
        "smd_0603_mm2": get_case("0603").footprint_area_mm2,
        "smd_0805_mm2": get_case("0805").footprint_area_mm2,
        "ip_resistor_100k_mm2": resistor_area_mm2(100e3, SUMMIT_PROCESS),
        "ip_capacitor_50pf_mm2": capacitor_area_mm2(50e-12, SUMMIT_PROCESS),
        "ip_inductor_40nh_mm2": inductor_area_mm2(40e-9, SUMMIT_PROCESS),
        "integrated_filter_mm2": INTEGRATED_FILTER_AREA_MM2,
    }

    fig3 = {
        str(i): {
            "substrate_area_cm2": area_for(i).substrate_area_cm2,
            "final_area_mm2": area_for(i).final_area_mm2,
            "area_percent": rows[i].area_percent,
        }
        for i in IMPLEMENTATIONS
    }

    fig5 = {
        str(i): {
            "final_cost_per_shipped": result.row(
                rows[i].name
            ).assessment.final_cost,
            "cost_percent": rows[i].cost_percent,
        }
        for i in IMPLEMENTATIONS
    }

    fig6 = {
        str(i): {
            "performance": rows[i].performance,
            "figure_of_merit": rows[i].figure_of_merit,
        }
        for i in IMPLEMENTATIONS
    }

    payload = {
        "table1": table1,
        "fig3": fig3,
        "fig5": fig5,
        "fig6": fig6,
        "winner": result.winner.assessment.name,
        "reference": result.reference_name,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestGoldens:
    def test_golden_file_exists(self):
        assert GOLDEN_PATH.is_file(), (
            f"missing golden file {GOLDEN_PATH}; regenerate with "
            "PYTHONPATH=src python tests/gps/test_goldens.py --write"
        )

    def test_study_reproduces_goldens_byte_for_byte(self):
        expected = GOLDEN_PATH.read_text()
        actual = render_goldens()
        assert actual == expected, (
            "GPS study output drifted from tests/gps/goldens/"
            "gps_study.json.  If the change is intentional, regenerate "
            "with: PYTHONPATH=src python tests/gps/test_goldens.py --write"
        )


if __name__ == "__main__":
    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(render_goldens())
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
