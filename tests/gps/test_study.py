"""The headline reproduction: the full GPS study against the paper.

Acceptance is *shape*: orderings and rough factors must match the
published Figs. 3/5/6 and the §4.1 scores; exact magnitudes depend on
the confidential chip costs and unpublished BoM (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.gps import data
from repro.gps.study import paper_comparison, run_gps_study, summary_rows


class TestPerformanceReproduction:
    def test_scores_match_paper(self, gps_rows):
        """§4.1: 1 / 1 / 0.45 / 0.7."""
        assert gps_rows[1].performance == pytest.approx(1.0)
        assert gps_rows[2].performance == pytest.approx(1.0)
        assert gps_rows[3].performance == pytest.approx(0.45, abs=0.03)
        assert gps_rows[4].performance == pytest.approx(0.70, abs=0.03)


class TestAreaReproduction:
    def test_ordering(self, gps_rows):
        """Fig. 3 ordering: 100 > 79 > 60 > 37."""
        assert (
            gps_rows[1].area_percent
            > gps_rows[2].area_percent
            > gps_rows[3].area_percent
            > gps_rows[4].area_percent
        )

    def test_reference_is_100(self, gps_rows):
        assert gps_rows[1].area_percent == pytest.approx(100.0)

    def test_rough_factors(self, gps_rows):
        """Within ten points of the published percentages."""
        assert gps_rows[2].area_percent == pytest.approx(79.0, abs=10)
        assert gps_rows[3].area_percent == pytest.approx(60.0, abs=10)
        assert gps_rows[4].area_percent == pytest.approx(37.0, abs=10)

    def test_headline_reduction(self, gps_rows):
        """The paper's headline: passives-optimized shrinks the system
        to roughly a third of the PCB reference."""
        assert gps_rows[4].area_percent < 40.0


class TestCostReproduction:
    def test_ordering(self, gps_rows):
        """Fig. 5 ordering: 100 < 104.7 < 105.3 < 112.8 maps to
        impl1 < impl2 < impl4 < impl3."""
        assert (
            gps_rows[1].cost_percent
            < gps_rows[2].cost_percent
            < gps_rows[4].cost_percent
            < gps_rows[3].cost_percent
        )

    def test_penalties_in_published_band(self, gps_rows):
        """All MCM penalties are single-digit-to-low-teens percent."""
        for i in (2, 3, 4):
            assert 100.0 < gps_rows[i].cost_percent < 115.0

    def test_full_ip_worst(self, gps_rows):
        """'the full IP implementation suffers' — impl3 costs the most."""
        assert gps_rows[3].cost_percent == max(
            gps_rows[i].cost_percent for i in (1, 2, 3, 4)
        )


class TestFomReproduction:
    def test_ranking_matches_fig6(self, gps_rows):
        """Fig. 6 ranking: solution 4 > 2 > 1 > 3."""
        foms = {i: gps_rows[i].figure_of_merit for i in (1, 2, 3, 4)}
        assert foms[4] > foms[2] > foms[1] > foms[3]

    def test_reference_fom_unity(self, gps_rows):
        assert gps_rows[1].figure_of_merit == pytest.approx(1.0)

    def test_solution4_wins_decisively(self, gps_rows):
        """Fig. 6: solution 4 reaches ~1.8, the clear winner."""
        assert gps_rows[4].figure_of_merit > 1.5

    def test_solution3_below_reference(self, gps_rows):
        """Fig. 6: the full-IP build scores below the PCB reference."""
        assert gps_rows[3].figure_of_merit < 1.0

    def test_decision_matches_paper(self, gps_result):
        """§4.4: 'an adaptation of solution 4 has been chosen'."""
        assert gps_result.winner.assessment.name == (
            data.IMPLEMENTATION_NAMES[4]
        )


class TestComparisonExport:
    def test_every_published_number_covered(self, gps_result):
        comparison = paper_comparison(gps_result)
        assert set(comparison) == {"area", "cost", "performance", "fom"}
        for metric in comparison.values():
            assert set(metric) == {1, 2, 3, 4}
            for paper, measured in metric.values():
                assert paper > 0
                assert measured > 0

    def test_summary_rows_complete(self, gps_result):
        rows = summary_rows(gps_result)
        assert [r.implementation for r in rows] == [1, 2, 3, 4]

    def test_chip_cost_dominates_direct_cost(self, gps_result):
        """Fig. 5's 'thereof: chip cost' is the bulk of the direct bar."""
        for row in gps_result.rows:
            cost = row.assessment.cost
            assert (
                cost.chip_cost_per_unit
                > 0.5 * cost.direct_cost_per_unit
            )
