"""Golden query responses for a pinned GPS warehouse.

The query service's wire format is a reproduction surface: the Pareto
set, the winner tallies, the best candidate at the paper's 10k-unit
operating point and a re-rank under user weights are snapshotted for a
pinned GPS warehouse and compared **byte for byte** — every float at
full ``repr`` precision, every response exactly the canonical JSON the
HTTP server and ``repro-gps warehouse query`` emit.  Warehouse builds
are deterministic (content-addressed frames, no timestamps), so the
fingerprint and revision in the envelopes are stable too.

Regenerate after an *intentional* numeric change with::

    PYTHONPATH=src python tests/gps/test_warehouse_goldens.py --write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.queryservice import QueryService
from repro.core.sweep import SweepGrid
from repro.gps.study import build_gps_warehouse

GOLDEN_PATH = (
    Path(__file__).parent / "goldens" / "gps_warehouse_queries.json"
)

#: The pinned grid: the paper's 10k-unit operating point bracketed a
#: decade each way, over all four implementations.
GRID = SweepGrid(volumes=(1e3, 1e4, 1e5))

#: Named queries the goldens lock, in golden-file key order.
QUERIES = {
    "pareto_front": {"kind": "pareto"},
    "winner_counts": {"kind": "winners"},
    "best_at_operating_point": {
        "kind": "best",
        "where": {"volume": 1e4},
    },
    "rerank_2_1_1": {"kind": "rerank", "fom_weights": "2:1:1"},
    "volume_sensitivity": {"kind": "sensitivity", "axis": "volume"},
}


def render_goldens(tmp_dir: Path) -> str:
    """Canonical JSON of every locked query response.

    Builds a fresh warehouse under ``tmp_dir`` and runs each query
    through the same :class:`QueryService` the server uses; equal
    bytes mean equal IEEE doubles in every stored and re-ranked FoM.
    """
    directory = Path(tmp_dir) / "gps-warehouse"
    build_gps_warehouse(directory, GRID)
    service = QueryService(directory)
    payload = {
        name: service.execute(request)
        for name, request in QUERIES.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestWarehouseGoldens:
    def test_golden_file_exists(self):
        assert GOLDEN_PATH.is_file(), (
            f"missing golden file {GOLDEN_PATH}; regenerate with "
            "PYTHONPATH=src python tests/gps/test_warehouse_goldens.py "
            "--write"
        )

    def test_query_responses_reproduce_goldens_byte_for_byte(
        self, tmp_path
    ):
        expected = GOLDEN_PATH.read_text()
        actual = render_goldens(tmp_path)
        assert actual == expected, (
            "warehouse query responses drifted from tests/gps/goldens/"
            "gps_warehouse_queries.json.  If the change is "
            "intentional, regenerate with: PYTHONPATH=src python "
            "tests/gps/test_warehouse_goldens.py --write"
        )


if __name__ == "__main__":
    if "--write" in sys.argv:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp_dir:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(render_goldens(Path(tmp_dir)))
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
