"""The synthesised GPS bill of materials against the paper's aggregates."""

from __future__ import annotations

import pytest

from repro.gps.bom import (
    FILTER_NETWORK_PASSIVES_APPROX,
    GPS_BOM_SUMMARY,
    SMD_POSITIONS_KEPT_IN_BUILDUP_4,
    TOTAL_SMD_POSITIONS,
    build_gps_bom,
    validate_against_paper,
)
from repro.passives.component import PassiveKind, PassiveRole


class TestAggregates:
    def test_112_smd_positions(self):
        """Table 2: 112 SMDs in build-ups 1 and 2."""
        assert GPS_BOM_SUMMARY.smd_positions == TOTAL_SMD_POSITIONS
        assert build_gps_bom().total_count == 112

    def test_filter_network_about_60(self):
        """§4: 'about 60 passive components' in the filtering networks."""
        count = GPS_BOM_SUMMARY.filter_network_passives
        assert abs(count - FILTER_NETWORK_PASSIVES_APPROX) <= 10

    def test_buildup4_keeps_12_smds(self):
        """Table 2: 12 SMDs kept in the passives-optimized build."""
        from repro.gps.bom import (
            IF_FILTER_COUNT,
            SMD_INDUCTORS_PER_IF_FILTER,
        )

        kept = (
            GPS_BOM_SUMMARY.decap_count
            + IF_FILTER_COUNT * SMD_INDUCTORS_PER_IF_FILTER
        )
        assert kept == SMD_POSITIONS_KEPT_IN_BUILDUP_4

    def test_validation_report_all_green(self):
        checks = validate_against_paper(build_gps_bom())
        assert all(checks.values()), checks


class TestComposition:
    def test_kinds_present(self):
        counts = build_gps_bom().count_by_kind()
        assert counts[PassiveKind.RESISTOR] == 48
        assert counts[PassiveKind.CAPACITOR] == 56
        assert counts[PassiveKind.INDUCTOR] == 8

    def test_roles_present(self):
        counts = build_gps_bom().count_by_role()
        assert counts[PassiveRole.DECOUPLING] == 8
        assert counts[PassiveRole.PULL_UP] == 24
        assert PassiveRole.MATCHING in counts

    def test_matching_inductors_carry_q_requirement(self):
        bom = build_gps_bom()
        inductors = [
            line
            for line in bom
            if line.requirement.kind is PassiveKind.INDUCTOR
        ]
        assert all(
            line.requirement.min_q is not None for line in inductors
        )
