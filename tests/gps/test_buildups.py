"""Build-up footprints, areas and production flows."""

from __future__ import annotations

import pytest

from repro.area.footprint import MountKind
from repro.cost.moe.nodes import AttachStep, CarrierStep, TestStep
from repro.errors import TechnologyError
from repro.gps import data
from repro.gps.buildups import (
    area_for,
    flow_for,
    footprints_for,
    get_buildup,
    smd_count_for,
)


class TestBuildupLookup:
    def test_four_buildups(self):
        for i in (1, 2, 3, 4):
            assert get_buildup(i).number == i

    def test_invalid_raises(self):
        with pytest.raises(TechnologyError):
            get_buildup(5)

    def test_chip_mounts(self):
        assert get_buildup(1).chip_mount is MountKind.PACKAGED
        assert get_buildup(2).chip_mount is MountKind.WIRE_BOND
        assert get_buildup(3).chip_mount is MountKind.FLIP_CHIP
        assert get_buildup(4).chip_mount is MountKind.FLIP_CHIP


class TestFootprints:
    def test_impl1_all_smd_or_packaged(self):
        mounts = {f.mount for f in footprints_for(1)}
        assert mounts == {MountKind.PACKAGED, MountKind.SMD}

    def test_impl3_no_smd(self):
        """Table 2: SMD assembly is n/a for build-up 3."""
        mounts = {f.mount for f in footprints_for(3)}
        assert MountKind.SMD not in mounts

    def test_smd_counts_match_table2(self):
        assert smd_count_for(1) == data.SMD_COUNT[1]
        assert smd_count_for(2) == data.SMD_COUNT[2]
        assert smd_count_for(3) == data.SMD_COUNT[3]
        assert smd_count_for(4) == data.SMD_COUNT[4]

    def test_chip_areas_from_table1(self):
        by_name = {f.name: f for f in footprints_for(2)}
        assert by_name["RF chip"].area_mm2 == 28.0
        assert by_name["DSP correlator"].area_mm2 == 88.0

    def test_impl3_decaps_integrated_and_large(self):
        decaps = [
            f for f in footprints_for(3) if f.name.startswith("IP-Cdec")
        ]
        assert len(decaps) == 8
        assert all(f.area_mm2 > 5 * 4.5 for f in decaps)

    def test_impl4_decaps_smd_and_small(self):
        decaps = [
            f for f in footprints_for(4) if f.name.startswith("Cdec")
        ]
        assert len(decaps) == 8
        assert all(f.mount is MountKind.SMD for f in decaps)
        assert all(f.area_mm2 == 4.5 for f in decaps)


class TestAreas:
    def test_final_area_ordering_fig3(self):
        """Fig. 3 ordering: 1 > 2 > 3 > 4."""
        areas = [area_for(i).final_area_mm2 for i in (1, 2, 3, 4)]
        assert areas[0] > areas[1] > areas[2] > areas[3]

    def test_pcb_has_no_package(self):
        assert area_for(1).package is None

    def test_mcm_builds_have_laminate(self):
        for i in (2, 3, 4):
            assert area_for(i).package is not None

    def test_impl4_smallest_substrate(self):
        substrates = {
            i: area_for(i).substrate_area_cm2 for i in (2, 3, 4)
        }
        assert substrates[4] < substrates[3] < substrates[2]


class TestFlows:
    def test_flow_structure_has_fig4_node_types(self):
        flow = flow_for(2)
        assert any(isinstance(s, CarrierStep) for s in flow.steps)
        assert any(isinstance(s, AttachStep) for s in flow.steps)
        assert any(isinstance(s, TestStep) for s in flow.steps)

    def test_impl1_no_packaging(self):
        names = [s.name for s in flow_for(1).steps]
        assert "Mount on laminate" not in names

    def test_mcm_flows_have_packaging(self):
        for i in (2, 3, 4):
            names = [s.name for s in flow_for(i).steps]
            assert "Mount on laminate" in names

    def test_impl2_only_has_wire_bonding(self):
        assert "Wire bonding" in [s.name for s in flow_for(2).steps]
        for i in (1, 3, 4):
            assert "Wire bonding" not in [
                s.name for s in flow_for(i).steps
            ]

    def test_wire_bond_cost_table2(self):
        flow = flow_for(2)
        wb = next(s for s in flow.steps if s.name == "Wire bonding")
        assert wb.cost == pytest.approx(2.12)  # 212 bonds at 0.01

    def test_smd_parts_cost_table2(self):
        flow = flow_for(1)
        smd = next(s for s in flow.steps if s.name == "SMD mounting")
        assert smd.material_cost == pytest.approx(11.0)
        assert smd.operation_cost == pytest.approx(1.12)

    def test_impl3_has_no_smd_step(self):
        assert "SMD mounting" not in [s.name for s in flow_for(3).steps]

    def test_substrate_cost_scales_with_area(self):
        small = flow_for(3, substrate_area_cm2=2.0)
        large = flow_for(3, substrate_area_cm2=10.0)
        assert small.step("ID0").cost < large.step("ID0").cost

    def test_custom_chip_costs_propagate(self):
        costs = data.ChipCosts(10.0, 9.0, 20.0, 18.0)
        flow = flow_for(1, chip_costs=costs)
        rf = next(s for s in flow.steps if s.name == "RF chip")
        assert rf.component_cost == 10.0

    def test_bare_dice_in_mcm_builds(self):
        flow = flow_for(3)
        rf = next(s for s in flow.steps if s.name == "RF chip")
        assert rf.component_yield == data.RF_CHIP_YIELD_BARE
