"""Cross-module integration tests.

These exercise paths that span several substrates at once — the kind of
composition a downstream user would write: tolerance scatter fed into
circuit analysis, E-series snapping of synthesised ladders, the
optimizer driving the area engine, matching networks priced by the
passive library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.elements import lossy_capacitor, lossy_inductor
from repro.circuits.matching import design_l_match, matching_network_area_mm2
from repro.circuits.netlist import Circuit
from repro.circuits.performance import measure_filter
from repro.circuits.qfactor import DiscreteFilterBlockQModel
from repro.circuits.synthesis import build_bandpass_circuit, synthesize_bandpass
from repro.core.optimizer import optimize_passives
from repro.gps.bom import build_gps_bom
from repro.gps.filters_chain import if_filter_spec
from repro.passives.eseries import snap
from repro.passives.tolerance import ToleranceModel


def perturbed_filter_circuit(design, scale_factors, q=100.0):
    """Rebuild an IF filter with element values scaled per-resonator."""
    spec = design.spec
    circuit = Circuit(name="perturbed")
    f0 = spec.center_hz
    series, shunt = design.resonators
    ls, cs, lp, cp = scale_factors
    circuit.add(
        lossy_inductor(
            "L1", "in", "n1", series.inductance_h * ls, q, f0
        )
    )
    circuit.add(
        lossy_capacitor(
            "C1", "n1", "out", series.capacitance_f * cs, q * 5, f0
        )
    )
    circuit.add(
        lossy_inductor("L2", "out", "0", shunt.inductance_h * lp, q, f0)
    )
    circuit.add(
        lossy_capacitor(
            "C2", "out", "0", shunt.capacitance_f * cp, q * 5, f0
        )
    )
    circuit.port("p1", "in", design.source_impedance_ohm)
    circuit.port("p2", "out", design.load_impedance_ohm)
    return circuit


class TestToleranceShowKiller:
    """Paper §1: 'In certain cases, the tolerances of integrated
    passives do not suffice for the target application.'  Quantified:
    Monte Carlo the 15 % as-fabricated scatter through the IF filter and
    compare the spec-pass rate against laser-trimmed (1 %) components.
    """

    def center_losses(
        self, tolerance: float, trials: int = 80
    ) -> np.ndarray:
        from repro.circuits.twoport import measure_insertion_loss

        spec = if_filter_spec(1)
        design = synthesize_bandpass(spec)
        rng = np.random.default_rng(5)
        models = [ToleranceModel(1.0, tolerance) for _ in range(4)]
        losses = []
        for _ in range(trials):
            scales = [float(m.sample(rng)[0]) for m in models]
            circuit = perturbed_filter_circuit(design, scales)
            losses.append(measure_insertion_loss(circuit, 175e6))
        return np.array(losses)

    def test_trimmed_components_stay_tight(self):
        """1 % (laser-trimmed) parts barely move the centre loss."""
        losses = self.center_losses(0.01)
        assert losses.max() - losses.min() < 0.2

    def test_untrimmed_scatter_degrades_worst_case(self):
        """15 % scatter multiplies the worst-case centre loss several
        times over — the tolerance show-killer, quantified."""
        trimmed = self.center_losses(0.01)
        untrimmed = self.center_losses(0.15)
        assert untrimmed.max() > 3.0 * trimmed.max()
        assert untrimmed.std() > 5.0 * trimmed.std()

    def test_untrimmed_yield_drops_at_tight_budget(self):
        """At a 2.5 dB cascade loss budget the untrimmed build loses
        real yield while the trimmed build does not."""
        budget = 2.5
        trimmed_yield = (self.center_losses(0.01) <= budget).mean()
        untrimmed_yield = (self.center_losses(0.15) <= budget).mean()
        assert trimmed_yield == 1.0
        assert untrimmed_yield < 1.0


class TestEseriesDetuning:
    def test_snapped_smd_ladder_still_meets_spec(self):
        """Snapping the IF ladder to E24 values keeps the discrete
        filter within spec (the snap error is small against the
        fractional bandwidth)."""
        spec = if_filter_spec(1)
        design = synthesize_bandpass(spec)
        scales = []
        for resonator in design.resonators:
            scales.append(
                snap(resonator.inductance_h, "E24").snapped
                / resonator.inductance_h
            )
            scales.append(
                snap(resonator.capacitance_f, "E24").snapped
                / resonator.capacitance_f
            )
        ls, cs, lp, cp = scales
        circuit = perturbed_filter_circuit(design, (ls, cs, lp, cp))
        result = measure_filter(spec, circuit)
        assert result.meets_spec

    def test_e6_snapping_is_worse_than_e96(self):
        spec = if_filter_spec(1)
        design = synthesize_bandpass(spec)

        def loss_with(series: str) -> float:
            scales = []
            for resonator in design.resonators:
                scales.append(
                    snap(resonator.inductance_h, series).snapped
                    / resonator.inductance_h
                )
                scales.append(
                    snap(resonator.capacitance_f, series).snapped
                    / resonator.capacitance_f
                )
            circuit = perturbed_filter_circuit(design, tuple(scales))
            return measure_filter(spec, circuit).insertion_loss_db

        assert loss_with("E96") <= loss_with("E6") + 1e-9


class TestOptimizerAreaConsistency:
    def test_optimizer_matches_buildup4_smd_area(self):
        """The generic selector applied to the GPS BoM keeps exactly the
        decaps as SMDs; their footprint total matches what the build-up
        4 constructor places."""
        from repro.area.footprint import MountKind
        from repro.area.substrate import MCM_D_RULE
        from repro.gps.buildups import footprints_for

        report = optimize_passives(
            build_gps_bom().requirements(), substrate_rule=MCM_D_RULE
        )
        selector_smd_area = sum(
            r.area_mm2 for r in report.smd_realizations()
        )
        buildup4_decap_area = sum(
            f.area_mm2
            for f in footprints_for(4)
            if f.mount is MountKind.SMD and f.name.startswith("Cdec")
        )
        # Selector picks 0603 for decaps; the build-up uses Table 1's
        # 0805 decap case — same count, comparable area.
        assert report.smd_count == 8
        assert selector_smd_area == pytest.approx(
            buildup4_decap_area, rel=0.25
        )


class TestMatchingNetworkIntegration:
    def test_lna_match_area_consistent_with_bom_budget(self):
        """The §3 LNA 50-ohm match, synthesised and priced in thin film,
        fits inside the per-network budget the BoM allots (2 L + 2 C
        matching parts per network)."""
        design = design_l_match(50.0, 20.0, 1.575e9)
        area = matching_network_area_mm2(design, integrated=True)
        # One L-match: a ~1 mm^2 spiral + sub-mm^2 MIM.
        assert 0.1 < area < 3.0

    def test_match_realisable_with_table1_class_values(self):
        """Element values land in the range Table 1 prices (nH / pF)."""
        design = design_l_match(50.0, 20.0, 1.575e9)
        assert 0.1e-9 < design.series_element < 100e-9
        assert 0.1e-12 < design.shunt_element < 100e-12


class TestFullPipelineSmoke:
    def test_discrete_block_path(self):
        """Spec -> synthesis -> build -> measure, using the public API
        end to end for a filter not in the GPS chain."""
        from repro.passives.filters import FilterFamily, FilterSpec

        spec = FilterSpec(
            name="WLAN front end",
            family=FilterFamily.CHEBYSHEV,
            order=3,
            center_hz=2.45e9,
            bandwidth_hz=200e6,
            max_insertion_loss_db=3.0,
            ripple_db=0.2,
        )
        design = synthesize_bandpass(spec)
        circuit = build_bandpass_circuit(
            design, DiscreteFilterBlockQModel()
        )
        result = measure_filter(spec, circuit)
        assert result.meets_spec
