"""The resumable shard work queue.

Coordination is files in a directory, so everything here is exercised
through real paths: manifest round trips (atomic, like every control
file), lease acquisition races, expiry stealing under an injected
clock, the failure ledger and its attempt budget, and the worker loop
end to end — including that a worker refuses a manifest whose
fingerprint does not match the grid it resolved locally.
"""

from __future__ import annotations

import json

import pytest

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.core.methodology import CandidateBuildUp
from repro.core.queue import (
    QUEUE_FORMAT,
    QueueError,
    QueueManifest,
    ShardQueue,
    manifest_for_grid,
    manifest_to_payload,
    payload_to_manifest,
    read_manifest,
    run_queue_worker,
    write_manifest,
)
from repro.core.sharding import (
    merge_shard_artifacts,
    read_shard_artifact,
    run_shard,
)
from repro.core.sweep import DesignPoint, run_design_sweep
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import SpecificationError

POINTS = [
    DesignPoint(volume=volume) for volume in (1e3, 5e3, 1e4, 1e5, 1e6)
]


def _flow(area_cm2: float) -> ProductionFlow:
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


class FakeClock:
    """An injectable wall clock the tests can move by hand."""

    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def manifest_path(tmp_path):
    manifest = manifest_for_grid(
        POINTS, shards=3, lease_ttl=60.0, max_attempts=2
    )
    return write_manifest(tmp_path / "manifest.json", manifest)


class TestManifest:
    def test_payload_round_trip(self):
        manifest = manifest_for_grid(
            POINTS,
            shards=4,
            lease_ttl=12.5,
            max_attempts=5,
            grid_spec={"volumes": "1e3"},
        )
        payload = json.loads(json.dumps(manifest_to_payload(manifest)))
        assert payload["format"] == QUEUE_FORMAT
        assert payload_to_manifest(payload) == manifest

    def test_file_round_trip_is_atomic(self, tmp_path):
        manifest = manifest_for_grid(POINTS, shards=2)
        path = write_manifest(tmp_path / "manifest.json", manifest)
        assert read_manifest(path) == manifest
        # The atomic-write protocol leaves no temp sibling behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(QueueError, match="cannot read"):
            read_manifest(tmp_path / "nope.json")

    def test_junk_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("not json{", encoding="utf-8")
        with pytest.raises(QueueError, match="not valid JSON"):
            read_manifest(path)
        path.write_bytes(b'{"format": "\xc2')
        with pytest.raises(QueueError, match="not valid JSON"):
            read_manifest(path)

    def test_foreign_format_rejected(self):
        payload = manifest_to_payload(manifest_for_grid(POINTS, shards=2))
        payload["format"] = "repro-sweep-queue/99"
        with pytest.raises(QueueError, match=QUEUE_FORMAT):
            payload_to_manifest(payload)

    def test_bad_fields_rejected(self):
        for kwargs in (
            {"shards": 0},
            {"shards": 2.0},
            {"total_points": 0},
            {"lease_ttl": 0.0},
            {"lease_ttl": -5},
            {"max_attempts": 0},
        ):
            fields = {
                "fingerprint": "f",
                "order_digest": "o",
                "shards": 2,
                "total_points": 5,
            }
            fields.update(kwargs)
            with pytest.raises(SpecificationError):
                QueueManifest(**fields)

    def test_empty_grid_rejected(self):
        with pytest.raises(SpecificationError, match="at least one"):
            manifest_for_grid([], shards=2)


class TestShardQueue:
    def test_claim_is_exclusive(self, manifest_path):
        clock = FakeClock()
        ours = ShardQueue(manifest_path, owner="a", clock=clock)
        theirs = ShardQueue(manifest_path, owner="b", clock=clock)
        claim = ours.claim(0)
        assert claim is not None and claim.attempt == 1
        assert ours.shard_state(0) == "leased"
        # Both a rival and a re-claim by the holder bounce off.
        assert theirs.claim(0) is None
        assert ours.claim(0) is None

    def test_expired_lease_is_stolen(self, manifest_path):
        clock = FakeClock()
        ours = ShardQueue(manifest_path, owner="a", clock=clock)
        theirs = ShardQueue(manifest_path, owner="b", clock=clock)
        assert ours.claim(0) is not None
        clock.advance(61.0)  # past the 60 s lease TTL
        stolen = theirs.claim(0)
        assert stolen is not None
        assert json.loads(stolen.lease_path.read_text())["owner"] == "b"

    def test_straggler_cannot_release_stolen_lease(self, manifest_path):
        """Completing after a steal must not delete the thief's lease —
        that would invite a third evaluation of the same shard."""
        clock = FakeClock()
        ours = ShardQueue(manifest_path, owner="a", clock=clock)
        theirs = ShardQueue(manifest_path, owner="b", clock=clock)
        old_claim = ours.claim(1)
        clock.advance(61.0)
        new_claim = theirs.claim(1)
        artifact = run_shard(
            POINTS, fixed_candidates, shards=3, shard_index=1
        )
        ours.complete(old_claim, artifact)  # the straggler finishes late
        assert new_claim.lease_path.exists()  # thief's lease survives
        assert ours.valid_artifact(1)

    def test_complete_publishes_and_cleans_up(self, manifest_path):
        queue = ShardQueue(manifest_path, owner="a", clock=FakeClock())
        claim = queue.claim(0)
        artifact = run_shard(
            POINTS, fixed_candidates, shards=3, shard_index=0
        )
        path = queue.complete(claim, artifact)
        assert queue.shard_state(0) == "complete"
        assert not claim.lease_path.exists()
        assert read_shard_artifact(path).shard_index == 0
        # A completed shard is never claimable again.
        assert queue.claim(0) is None

    def test_failure_ledger_and_exhaustion(self, manifest_path):
        clock = FakeClock()
        queue = ShardQueue(manifest_path, owner="a", clock=clock)
        claim = queue.claim(2)
        queue.fail(claim, "RuntimeError: boom")
        assert queue.attempts(2) == 1
        assert queue.errors(2) == ["RuntimeError: boom"]
        assert queue.shard_state(2) == "available"  # one attempt left
        claim = queue.claim(2)
        assert claim.attempt == 2
        queue.fail(claim, "RuntimeError: boom again")
        # max_attempts=2 spent: exhausted, no further claims.
        assert queue.shard_state(2) == "exhausted"
        assert queue.claim(2) is None
        assert queue.exhausted() == [2]
        # Success elsewhere clears nothing for shard 2...
        assert queue.outstanding() == [0, 1, 2]

    def test_success_clears_the_ledger(self, manifest_path):
        queue = ShardQueue(manifest_path, owner="a", clock=FakeClock())
        claim = queue.claim(0)
        queue.fail(claim, "RuntimeError: transient")
        claim = queue.claim(0)
        artifact = run_shard(
            POINTS, fixed_candidates, shards=3, shard_index=0
        )
        queue.complete(claim, artifact)
        assert queue.attempts(0) == 0
        assert queue.errors(0) == []

    def test_torn_artifact_does_not_count_as_complete(self, manifest_path):
        queue = ShardQueue(manifest_path, owner="a", clock=FakeClock())
        queue.artifact_path(1).write_text(
            '{"format": "repro-sw', encoding="utf-8"
        )
        assert not queue.valid_artifact(1)
        assert queue.shard_state(1) == "available"
        assert queue.claim(1) is not None

    def test_foreign_artifact_does_not_count_as_complete(
        self, manifest_path
    ):
        """An artifact for a *different grid* at the right filename must
        not satisfy the queue (it would poison the gather)."""
        queue = ShardQueue(manifest_path, owner="a", clock=FakeClock())
        other_points = POINTS[:-1] + [DesignPoint(volume=7e7)]
        foreign = run_shard(
            other_points, fixed_candidates, shards=3, shard_index=1
        )
        from repro.core.sharding import write_shard_artifact

        write_shard_artifact(queue.artifact_path(1), foreign)
        assert not queue.valid_artifact(1)
        assert queue.claim(1) is not None

    def test_out_of_range_claim_rejected(self, manifest_path):
        queue = ShardQueue(manifest_path, owner="a", clock=FakeClock())
        with pytest.raises(QueueError, match="out of range"):
            queue.claim(3)

    def test_claim_next_prefers_lowest_index(self, manifest_path):
        queue = ShardQueue(manifest_path, owner="a", clock=FakeClock())
        assert queue.claim_next().shard_index == 0
        assert queue.claim_next().shard_index == 1
        assert queue.claim_next().shard_index == 2
        assert queue.claim_next() is None


class TestQueueWorker:
    def test_drains_and_merges_to_serial_bytes(self, manifest_path, tmp_path):
        events = []
        report = run_queue_worker(
            manifest_path,
            POINTS,
            fixed_candidates,
            owner="worker-1",
            on_event=lambda kind, index, detail: events.append(
                (kind, index)
            ),
        )
        assert report.evaluated == (0, 1, 2)
        assert report.queue_drained
        assert events == [
            ("claim", 0),
            ("complete", 0),
            ("claim", 1),
            ("complete", 1),
            ("claim", 2),
            ("complete", 2),
        ]
        merged = merge_shard_artifacts(
            [tmp_path / f"shard-000{i}-of-0003.json" for i in range(3)]
        )
        serial = run_design_sweep(POINTS, fixed_candidates)
        assert merged.rows == serial.rows

    def test_second_worker_skips_everything(self, manifest_path):
        run_queue_worker(manifest_path, POINTS, fixed_candidates)
        report = run_queue_worker(manifest_path, POINTS, fixed_candidates)
        assert report.evaluated == ()
        assert report.skipped == (0, 1, 2)
        assert report.queue_drained

    def test_interleaved_workers_split_the_queue(self, manifest_path):
        """Two workers alternating claims never duplicate a shard."""
        clock = FakeClock()
        first = ShardQueue(manifest_path, owner="a", clock=clock)
        second = ShardQueue(manifest_path, owner="b", clock=clock)
        taken = []
        for queue in (first, second, first, second):
            claim = queue.claim_next()
            if claim is None:
                continue
            artifact = run_shard(
                POINTS,
                fixed_candidates,
                shards=3,
                shard_index=claim.shard_index,
            )
            queue.complete(claim, artifact)
            taken.append((queue.owner, claim.shard_index))
        assert [index for _, index in taken] == [0, 1, 2]
        assert first.outstanding() == []

    def test_foreign_grid_refused(self, manifest_path):
        other_points = POINTS[:-1] + [DesignPoint(volume=7e7)]
        with pytest.raises(QueueError, match="wrong sweep"):
            run_queue_worker(manifest_path, other_points, fixed_candidates)

    def test_reordered_grid_refused(self, manifest_path):
        """Same content fingerprint, different canonical order: the
        shard indices would not line up, so the worker must refuse."""
        with pytest.raises(QueueError, match="different canonical order"):
            run_queue_worker(
                manifest_path, list(reversed(POINTS)), fixed_candidates
            )

    def test_specification_error_is_raised_not_retried(
        self, manifest_path
    ):
        def broken_factory(point):
            raise SpecificationError("no candidates for this point")

        with pytest.raises(SpecificationError, match="no candidates"):
            run_queue_worker(manifest_path, POINTS, broken_factory)

    def test_transient_failures_are_retried_in_place(self, manifest_path):
        calls = {"failed": False}

        def flaky_factory(point):
            if not calls["failed"]:
                calls["failed"] = True
                raise RuntimeError("transient fault")
            return fixed_candidates(point)

        report = run_queue_worker(manifest_path, POINTS, flaky_factory)
        assert report.queue_drained
        assert len(report.failures) == 1
        assert "transient fault" in report.failures[0][1]
