"""The passives-optimized per-component selector (build-up 4's rule)."""

from __future__ import annotations

import pytest

from repro.area.substrate import MCM_D_RULE
from repro.core.optimizer import optimize_passives, select_technology
from repro.passives.component import (
    PassiveKind,
    PassiveRequirement,
    PassiveRole,
)


def resistor(value=10e3, tolerance=0.15):
    return PassiveRequirement(PassiveKind.RESISTOR, value, tolerance)


def decap(value=10e-9):
    return PassiveRequirement(
        PassiveKind.CAPACITOR,
        value,
        tolerance=0.2,
        role=PassiveRole.DECOUPLING,
    )


def small_cap(value=22e-12):
    return PassiveRequirement(PassiveKind.CAPACITOR, value, tolerance=0.2)


def if_inductor():
    return PassiveRequirement(
        PassiveKind.INDUCTOR,
        100e-9,
        tolerance=0.1,
        min_q=25.0,
        q_frequency=175e6,
    )


def rf_inductor():
    return PassiveRequirement(
        PassiveKind.INDUCTOR,
        40e-9,
        tolerance=0.1,
        min_q=20.0,
        q_frequency=1.575e9,
    )


class TestAreaRule:
    def test_resistor_integrates(self):
        """0.05 mm^2 of film beats a 3.75 mm^2 0603."""
        decision = select_technology(resistor())
        assert decision.integrated
        assert "area" in decision.reason

    def test_small_cap_integrates(self):
        decision = select_technology(small_cap())
        assert decision.integrated

    def test_decap_stays_smd(self):
        """The paper's headline: big decaps are smaller as SMD."""
        decision = select_technology(decap())
        assert not decision.integrated
        assert "area" in decision.reason

    def test_crossover_capacitance(self):
        """Between 22 pF and 10 nF the area rule flips."""
        integrated_decision = select_technology(small_cap(100e-12))
        smd_decision = select_technology(small_cap(2e-9))
        assert integrated_decision.integrated
        assert not smd_decision.integrated

    def test_substrate_rule_shifts_crossover(self):
        """On MCM-D the SMD overhead factor pushes more parts to IP."""
        value = 800e-12  # close to the plain crossover
        plain = select_technology(small_cap(value))
        on_mcm = select_technology(
            small_cap(value), substrate_rule=MCM_D_RULE
        )
        if not plain.integrated:
            assert on_mcm.integrated or not plain.integrated


class TestPerformanceRule:
    def test_if_inductor_forced_smd(self):
        """§4.1: integrated spirals can't meet Q at 175 MHz."""
        decision = select_technology(if_inductor())
        assert not decision.integrated
        assert "performance" in decision.reason

    def test_rf_inductor_allowed_integrated(self):
        """At 1.575 GHz the SUMMIT spiral meets its Q spec."""
        decision = select_technology(rf_inductor())
        assert decision.integrated


class TestReport:
    def test_counts_and_area_saved(self):
        requirements = [resistor() for _ in range(10)]
        requirements.extend(decap() for _ in range(2))
        report = optimize_passives(requirements)
        assert report.integrated_count == 10
        assert report.smd_count == 2
        assert report.area_saved_mm2 > 0

    def test_smd_realizations_listed(self):
        report = optimize_passives([resistor(), decap()])
        smd = report.smd_realizations()
        assert len(smd) == 1
        assert smd[0].requirement.role is PassiveRole.DECOUPLING

    def test_gps_bom_matches_table2_smd_count(self):
        """Applying the selector to the GPS BoM keeps exactly the 8
        decaps as SMDs (the IF-filter inductors are decided at filter
        level)."""
        from repro.gps.bom import build_gps_bom

        report = optimize_passives(
            build_gps_bom().requirements(), substrate_rule=MCM_D_RULE
        )
        assert report.smd_count == 8
