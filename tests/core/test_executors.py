"""The pluggable sweep execution engines.

Engine selection (names, env defaults, argument validation), the
mergeable :class:`~repro.core.sweep.EvaluationCache`, and the engines'
core contract: identical cells regardless of how the grid is scheduled.
The heavyweight GPS-level identity check lives in
``tests/gps/test_engines.py``; here small synthetic factories keep the
focus on the scheduling machinery itself.
"""

from __future__ import annotations

import pytest

from repro.core.executors import (
    AsyncExecutor,
    ChunkedStackedExecutor,
    ENGINE_ENV,
    ENGINE_NAMES,
    JOBS_ENV,
    MultiprocessExecutor,
    SHARDS_ENV,
    SerialExecutor,
    _split_runs,
    default_executor,
    make_executor,
    resolve_executor,
)
from repro.core.methodology import CandidateBuildUp
from repro.core.sweep import (
    DesignPoint,
    EvaluationCache,
    run_design_sweep,
)
from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import SpecificationError


def _flow(area_cm2: float) -> ProductionFlow:
    """A minimal picklable carrier-plus-test production flow."""
    flow = ProductionFlow(name="toy")
    flow.add(
        CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2)
    )
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    """Module-level (hence picklable) two-candidate factory."""
    footprints = [
        Footprint("chip", 25.0, MountKind.PACKAGED),
    ]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


class TestMakeExecutor:
    def test_names(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("process", 2).name == "process"
        assert make_executor("stacked").name == "stacked"
        assert make_executor("sharded", shards=2).name == "sharded"
        assert make_executor("async", 2).name == "async"

    def test_every_registered_name_constructs(self):
        for name in ENGINE_NAMES:
            assert make_executor(name, jobs=2, shards=2).name == name

    def test_case_and_whitespace_tolerant(self):
        assert make_executor(" Serial ").name == "serial"

    def test_empty_name_defaults_to_serial(self):
        assert make_executor("").name == "serial"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SpecificationError) as excinfo:
            make_executor("quantum")
        assert "serial" in str(excinfo.value)

    def test_process_jobs_validated(self):
        with pytest.raises(SpecificationError):
            MultiprocessExecutor(0)
        assert MultiprocessExecutor(3).jobs == 3
        assert MultiprocessExecutor().jobs >= 1

    def test_stacked_chunk_size_validated(self):
        with pytest.raises(SpecificationError):
            ChunkedStackedExecutor(0)
        assert ChunkedStackedExecutor(8).chunk_size == 8

    def test_async_jobs_validated(self):
        with pytest.raises(SpecificationError):
            AsyncExecutor(0)
        assert AsyncExecutor(3).jobs == 3
        assert AsyncExecutor().jobs >= 1


class TestDefaultExecutor:
    def test_serial_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_executor().name == "serial"

    def test_env_selects_engine_and_jobs(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        monkeypatch.setenv(JOBS_ENV, "2")
        executor = default_executor()
        assert executor.name == "process"
        assert executor.jobs == 2

    def test_bad_jobs_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(SpecificationError):
            default_executor()

    def test_explicit_jobs_combine_with_env_engine(self, monkeypatch):
        """`--jobs 4` under REPRO_SWEEP_ENGINE=process means 4 workers."""
        monkeypatch.setenv(ENGINE_ENV, "process")
        monkeypatch.delenv(JOBS_ENV, raising=False)
        executor = resolve_executor(jobs=4)
        assert executor.name == "process"
        assert executor.jobs == 4

    def test_explicit_engine_picks_up_env_jobs(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        monkeypatch.setenv(JOBS_ENV, "3")
        executor = resolve_executor(engine="process")
        assert executor.jobs == 3

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        monkeypatch.setenv(JOBS_ENV, "7")
        executor = resolve_executor(engine="process", jobs=2)
        assert executor.jobs == 2
        assert resolve_executor(engine="serial").name == "serial"

    def test_env_selects_sharded_engine_and_shard_count(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "sharded")
        monkeypatch.setenv(SHARDS_ENV, "3")
        executor = default_executor()
        assert executor.name == "sharded"
        assert executor.shards == 3

    def test_bad_shards_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "sharded")
        monkeypatch.setenv(SHARDS_ENV, "many")
        with pytest.raises(SpecificationError):
            default_executor()

    def test_explicit_shards_beat_env(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV, "7")
        executor = resolve_executor(engine="sharded", shards=2)
        assert executor.shards == 2


class TestSplitRuns:
    @pytest.mark.parametrize("parts", [0, -1, -100])
    def test_nonpositive_parts_rejected(self, parts):
        """Regression: a broken worker count must fail loudly, not clamp."""
        with pytest.raises(ValueError) as excinfo:
            _split_runs(list(range(4)), parts)
        assert "positive" in str(excinfo.value)
        assert str(parts) in str(excinfo.value)

    def test_even_split(self):
        runs = _split_runs(list(range(6)), 3)
        assert runs == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_front_loads(self):
        runs = _split_runs(list(range(5)), 3)
        assert runs == [[0, 1], [2, 3], [4]]

    def test_more_parts_than_points(self):
        runs = _split_runs([1, 2], 8)
        assert runs == [[1], [2]]

    def test_order_is_preserved(self):
        items = list(range(11))
        runs = _split_runs(items, 4)
        assert [x for run in runs for x in run] == items


class TestCacheMerge:
    def test_merge_adds_counters_and_unions_tables(self):
        left = EvaluationCache()
        right = EvaluationCache()
        left.cost("flowA", 1.0, lambda: "a")
        right.cost("flowA", 1.0, lambda: "a")  # duplicate key
        right.cost("flowB", 1.0, lambda: "b")
        right.cost("flowB", 1.0, lambda: "b")  # one hit
        left.merge(right)
        stats = left.stats()
        assert stats["tables"]["cost"] == {
            "hits": 1,
            "misses": 3,
            "entries": 2,
        }
        assert stats["hits"] == 1 and stats["misses"] == 3

    def test_merge_is_first_wins(self):
        left = EvaluationCache()
        right = EvaluationCache()
        left.cost("flow", 1.0, lambda: "mine")
        right.cost("flow", 1.0, lambda: "theirs")
        left.merge(right)
        assert left.cost("flow", 1.0, lambda: "recomputed") == "mine"

    def test_seed_performance_counts_nothing(self):
        cache = EvaluationCache()
        key = EvaluationCache.performance_key([("spec", None)])
        cache.seed_performance(key, "chain")
        assert cache.has_performance(key)
        assert cache.hits == 0 and cache.misses == 0
        assert (
            cache.performance([("spec", None)], lambda: "recomputed")
            == "chain"
        )
        assert cache.hits == 1


class TestEnginesAgree:
    POINTS = [DesignPoint(volume=v) for v in (1e3, 1e4, 1e5, 1e6, 1e7)]

    def _cells(self, executor):
        report = run_design_sweep(
            self.POINTS, fixed_candidates, executor=executor
        )
        return report.cells, report.rows

    def test_process_engine_matches_serial(self):
        serial_cells, serial_rows = self._cells(SerialExecutor())
        process_cells, process_rows = self._cells(
            MultiprocessExecutor(jobs=2)
        )
        assert process_rows == serial_rows
        assert [c.point for c in process_cells] == [
            c.point for c in serial_cells
        ]

    def test_stacked_engine_matches_serial(self):
        _, serial_rows = self._cells(SerialExecutor())
        _, stacked_rows = self._cells(ChunkedStackedExecutor(chunk_size=2))
        assert stacked_rows == serial_rows

    def test_process_engine_merges_worker_caches(self):
        cache = EvaluationCache()
        run_design_sweep(
            self.POINTS,
            fixed_candidates,
            cache=cache,
            executor=MultiprocessExecutor(jobs=2),
        )
        stats = cache.stats()
        # Every worker evaluated area + cost for both candidates at each
        # of its points; the merged tally must account for all of them.
        area = stats["tables"]["area"]
        assert area["hits"] + area["misses"] == 2 * len(self.POINTS)
        assert area["entries"] == 2  # two distinct footprint sets
        assert stats["tables"]["cost"]["entries"] == 2 * len(self.POINTS)

    def test_async_engine_matches_serial(self):
        serial_cells, serial_rows = self._cells(SerialExecutor())
        async_cells, async_rows = self._cells(AsyncExecutor(jobs=3))
        assert async_rows == serial_rows
        assert [c.point for c in async_cells] == [
            c.point for c in serial_cells
        ]


class TestAsyncStreaming:
    """The async engine's streaming and progress surfaces."""

    POINTS = TestEnginesAgree.POINTS

    def test_progress_callback_counts_every_point(self):
        events = []
        executor = AsyncExecutor(
            jobs=2,
            progress=lambda done, total, cell: events.append(
                (done, total, cell.point)
            ),
        )
        run_design_sweep(
            self.POINTS, fixed_candidates, executor=executor
        )
        assert [done for done, _, _ in events] == list(
            range(1, len(self.POINTS) + 1)
        )
        assert all(total == len(self.POINTS) for _, total, _ in events)
        assert {point for _, _, point in events} == set(self.POINTS)

    def test_iter_cells_yields_every_index_exactly_once(self):
        executor = AsyncExecutor(jobs=3)
        from repro.core.figure_of_merit import FomWeights

        streamed = dict(
            executor.iter_cells(
                self.POINTS,
                fixed_candidates,
                0,
                FomWeights(),
                EvaluationCache(),
            )
        )
        assert sorted(streamed) == list(range(len(self.POINTS)))
        serial = SerialExecutor().run_sweep(
            self.POINTS,
            fixed_candidates,
            0,
            FomWeights(),
            EvaluationCache(),
        )
        for index, cell in streamed.items():
            assert cell.result.rows == serial[index].result.rows

    def test_stream_design_sweep_rows_match_run_design_sweep(self):
        from repro.core.sweep import stream_design_sweep

        report = run_design_sweep(
            self.POINTS, fixed_candidates, executor=SerialExecutor()
        )
        streamed = sorted(
            stream_design_sweep(
                self.POINTS,
                fixed_candidates,
                executor=AsyncExecutor(jobs=2),
            ),
            key=lambda item: item.index,
        )
        rows = tuple(row for item in streamed for row in item.rows)
        assert rows == report.rows

    def test_stream_design_sweep_falls_back_to_plain_executors(self):
        from repro.core.sweep import stream_design_sweep

        report = run_design_sweep(
            self.POINTS, fixed_candidates, executor=SerialExecutor()
        )
        streamed = list(
            stream_design_sweep(
                self.POINTS, fixed_candidates, executor=SerialExecutor()
            )
        )
        # Non-streaming engines yield in canonical order.
        assert [item.index for item in streamed] == list(
            range(len(self.POINTS))
        )
        rows = tuple(row for item in streamed for row in item.rows)
        assert rows == report.rows

    def test_errors_propagate_through_both_surfaces(self):
        from repro.core.figure_of_merit import FomWeights
        from repro.core.sweep import stream_design_sweep

        def exploding_factory(point):
            raise RuntimeError("boom at " + point.label())

        with pytest.raises(RuntimeError, match="boom"):
            AsyncExecutor(jobs=2).run_sweep(
                self.POINTS[:2],
                exploding_factory,
                0,
                FomWeights(),
                EvaluationCache(),
            )
        with pytest.raises(RuntimeError, match="boom"):
            list(
                stream_design_sweep(
                    self.POINTS[:2],
                    exploding_factory,
                    executor=AsyncExecutor(jobs=2),
                )
            )

    def test_failure_does_not_run_the_whole_queue(self):
        """An early error drops not-yet-started points before raising."""
        from repro.core.figure_of_merit import FomWeights

        import time

        calls = []

        def counting_exploder(point):
            calls.append(point)
            time.sleep(0.005)  # a realistically non-instant evaluation
            raise RuntimeError("boom")

        many = [DesignPoint(volume=float(v)) for v in range(1, 51)]
        # One worker: the first task fails, and the queued remainder
        # must be cancelled while it is still queued — not evaluated.
        with pytest.raises(RuntimeError, match="boom"):
            AsyncExecutor(jobs=1).run_sweep(
                many, counting_exploder, 0, FomWeights(), EvaluationCache()
            )
        assert len(calls) < len(many)

    def test_breaking_out_of_iter_cells_abandons_the_rest(self):
        """A consumer that stops early must not drag the sweep along."""
        from repro.core.figure_of_merit import FomWeights

        import time

        calls = []

        def counting_factory(point):
            calls.append(point)
            time.sleep(0.005)  # keep the worker from outracing close()
            return fixed_candidates(point)

        many = [DesignPoint(volume=float(v)) for v in range(1, 51)]
        iterator = AsyncExecutor(jobs=1).iter_cells(
            many, counting_factory, 0, FomWeights(), EvaluationCache()
        )
        next(iterator)
        iterator.close()  # the generator's finally joins the worker
        assert len(calls) < len(many)
