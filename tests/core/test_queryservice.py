"""The decision query service, locked by a differential harness.

The load-bearing property, checked with hypothesis: for *any* user
FoM weight vector, re-ranking the warehouse's stored frame
(:func:`~repro.core.queryservice.rerank_frame`) is **byte-identical**
to re-running the whole sweep through ``evaluate_cell`` with those
weights as the sweep-wide default — including on grids that carry
their own ``fom_weights`` axis, where non-``paper`` points must keep
their per-point ranking.  Equality is asserted on the JSON column
serialisation, so equal means equal IEEE doubles, not "close".

Around it: the query semantics of all six kinds, the contradictory-ask
matrix (every bad request is a :class:`QueryError`, never a
traceback), the stdlib HTTP surface, and the concurrency satellite —
reader threads hammering mixed queries while a writer appends a shard
must only ever observe complete, canonical warehouse states.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.core.figure_of_merit import FomWeights
from repro.core.methodology import CandidateBuildUp
from repro.core.queryservice import (
    QUERY_KINDS,
    QueryError,
    QueryService,
    parse_fom_weights,
    rerank_frame,
    response_bytes,
    serve_warehouse,
    weighted_fom,
)
from repro.core.sharding import run_shard
from repro.core.sweep import DesignPoint, SweepGrid, run_design_sweep
from repro.core.warehouse import (
    append_shard_artifact,
    build_warehouse,
    decision_frame_for_cells,
    init_warehouse,
    load_warehouse,
)
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import SpecificationError

#: The differential grid carries a fom_weights *axis* on purpose: the
#: non-``paper`` point must keep its own ranking under every re-rank.
GRID = SweepGrid(
    volumes=(1e3, 5e3, 1e4, 1e5),
    fom_weights=(None, FomWeights(performance=2.0, cost=0.5)),
)


def _flow(area_cm2: float) -> ProductionFlow:
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


@pytest.fixture(scope="module")
def warehouse_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("warehouse") / "wh"
    build_warehouse(directory, GRID, fixed_candidates)
    return directory


@pytest.fixture(scope="module")
def stored(warehouse_dir):
    return load_warehouse(warehouse_dir)


@pytest.fixture(scope="module")
def service(warehouse_dir):
    return QueryService(warehouse_dir)


#: Exponents stay in a band where FoM values neither overflow nor
#: denormalise — the regime the paper's weighting study lives in.
weight_values = st.floats(
    min_value=0.0,
    max_value=4.0,
    allow_nan=False,
    allow_infinity=False,
)


class TestDifferentialRerank:
    """The harness the tentpole is locked by."""

    @settings(max_examples=40, deadline=None)
    @given(
        performance=weight_values,
        size=weight_values,
        cost=weight_values,
    )
    def test_rerank_equals_fresh_sweep_byte_for_byte(
        self, stored, performance, size, cost
    ):
        weights = FomWeights(
            performance=performance, size=size, cost=cost
        )
        fresh = run_design_sweep(
            GRID, fixed_candidates, weights=weights
        )
        reranked = rerank_frame(stored, weights)
        assert reranked.to_json_columns() == (
            fresh.frame.to_json_columns()
        )

    def test_paper_weights_are_the_identity(self, stored):
        reranked = rerank_frame(stored, FomWeights())
        assert reranked.to_json_columns() == (
            stored.frame.to_json_columns()
        )

    def test_weighted_fom_matches_the_scalar_formula(self, stored):
        from repro.core.figure_of_merit import figure_of_merit

        weights = FomWeights(performance=1.7, size=0.3, cost=2.9)
        vector = weighted_fom(
            stored.frame.column("performance"),
            stored.size_ratio,
            stored.cost_ratio,
            weights,
        )
        scalar = [
            figure_of_merit(p, s, c, weights)
            for p, s, c in zip(
                stored.frame.column("performance").tolist(),
                stored.size_ratio.tolist(),
                stored.cost_ratio.tolist(),
            )
        ]
        assert vector.tolist() == scalar


class TestParseFomWeights:
    def test_string_forms(self):
        weights = parse_fom_weights("2:1:0.5")
        assert (weights.performance, weights.size, weights.cost) == (
            2.0,
            1.0,
            0.5,
        )
        assert parse_fom_weights("paper") == FomWeights()

    def test_list_form(self):
        assert parse_fom_weights([2, 1, 0.5]) == parse_fom_weights(
            "2:1:0.5"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "1:2",
            "a:b:c",
            "-1:1:1",
            "inf:1:1",
            [1, 2],
            [1, 2, True],
            {"performance": 1},
            None,
        ],
    )
    def test_bad_values_raise_query_errors(self, bad):
        with pytest.raises(QueryError):
            parse_fom_weights(bad)


class TestQueryKinds:
    def test_manifest_reports_coverage(self, service):
        payload = service.execute({"kind": "manifest"})
        assert payload["complete"] is True
        assert payload["covered_points"] == 8
        assert payload["total_points"] == 8

    def test_pareto_returns_only_front_rows(self, service, stored):
        payload = service.execute({"kind": "pareto"})
        front = stored.frame.filter(
            stored.frame.column("on_pareto_front")
        )
        assert payload["rows"] == front.to_json_columns()
        assert payload["count"] == len(front)

    def test_where_filters_compose(self, service, stored):
        payload = service.execute(
            {
                "kind": "pareto",
                "where": {"volume": 1e4, "candidate": "ref"},
            }
        )
        for volume in payload["rows"]["volume"]:
            assert volume == 1e4
        for name in payload["rows"]["candidate"]:
            assert name == "ref"

    def test_winners_counts_match_the_frame(self, service, stored):
        payload = service.execute({"kind": "winners"})
        assert payload["winner_counts"] == (
            stored.frame.winner_counts()
        )
        assert payload["points"] == 8

    def test_best_is_the_argmax_row(self, service, stored):
        payload = service.execute({"kind": "best"})
        best = stored.frame.row(stored.frame.best_index()).as_dict()
        assert payload["best"] == best

    def test_rerank_response_carries_ranking_artifacts(self, service):
        payload = service.execute(
            {"kind": "rerank", "fom_weights": "2:1:0.5"}
        )
        fresh = run_design_sweep(
            GRID,
            fixed_candidates,
            weights=FomWeights(performance=2.0, size=1.0, cost=0.5),
        )
        assert payload["rows"] == fresh.frame.to_json_columns()
        assert payload["winner_counts"] == (
            fresh.frame.winner_counts()
        )
        assert payload["best"] == fresh.frame.row(
            fresh.frame.best_index()
        ).as_dict()

    def test_sensitivity_slices_one_point_each(self, service):
        payload = service.execute(
            {
                "kind": "sensitivity",
                "axis": "volume",
                "where": {"weights": "paper"},
            }
        )
        assert [s["value"] for s in payload["slices"]] == [
            1e3,
            5e3,
            1e4,
            1e5,
        ]
        for entry in payload["slices"]:
            assert entry["winner"] in entry["fom"]
            assert set(entry["fom"]) == {"ref", "alt"}

    def test_sensitivity_under_user_weights(self, service):
        payload = service.execute(
            {
                "kind": "sensitivity",
                "axis": "volume",
                "where": {"weights": "paper"},
                "fom_weights": "0:0:1",
            }
        )
        fresh = run_design_sweep(
            GRID,
            fixed_candidates,
            weights=FomWeights(performance=0.0, size=0.0, cost=1.0),
        )
        mask = fresh.frame.column("weights") == "paper"
        sub = fresh.frame.filter(mask)
        for entry in payload["slices"]:
            vmask = sub.column("volume") == entry["value"]
            winners = sub.column("candidate")[
                vmask & sub.column("is_winner")
            ]
            assert entry["winner"] == winners[0]


class TestBadAsks:
    @pytest.mark.parametrize(
        "request_payload",
        [
            "not an object",
            {"kind": "nope"},
            {},
            {"kind": "pareto", "surprise": 1},
            {"kind": "pareto", "fom_weights": "2:1:1"},
            {"kind": "rerank"},
            {"kind": "rerank", "fom_weights": "1:2"},
            {"kind": "manifest", "where": {"volume": 1e3}},
            {"kind": "manifest", "fom_weights": "1:1:1"},
            {"kind": "winners", "axis": "volume"},
            {"kind": "sensitivity"},
            {"kind": "sensitivity", "axis": "candidate"},
            {
                "kind": "sensitivity",
                "axis": "volume",
                "where": {"volume": 1e3},
            },
            {"kind": "sensitivity", "axis": "volume"},
            {"kind": "pareto", "where": {"bogus": 1}},
            {"kind": "pareto", "where": {"volume": "lots"}},
            {"kind": "pareto", "where": {"volume": True}},
            {"kind": "pareto", "where": {"candidate": 7}},
            {"kind": "pareto", "where": "volume=1e3"},
            {"kind": "best", "where": {"volume": 77.0}},
        ],
    )
    def test_exit_contract_is_a_query_error(
        self, service, request_payload
    ):
        with pytest.raises(QueryError):
            service.execute(request_payload)

    def test_sensitivity_multi_point_slice_names_the_fix(
        self, service
    ):
        # Without pinning the weights axis, each volume slice covers
        # two grid points — ambiguous, and the error says how to fix.
        with pytest.raises(QueryError) as excinfo:
            service.execute({"kind": "sensitivity", "axis": "volume"})
        assert "pin the remaining" in str(excinfo.value)

    def test_missing_warehouse_is_a_specification_error(
        self, tmp_path
    ):
        with pytest.raises(SpecificationError):
            QueryService(tmp_path / "nowhere").execute(
                {"kind": "manifest"}
            )


class TestHttpSurface:
    @pytest.fixture(scope="class")
    def server(self, warehouse_dir):
        server = serve_warehouse(warehouse_dir)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _post(self, server, payload):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/query",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.read()

    def test_query_bytes_match_in_process_execution(
        self, server, service
    ):
        for request_payload in (
            {"kind": "manifest"},
            {"kind": "winners"},
            {"kind": "rerank", "fom_weights": "2:1:0.5"},
        ):
            assert self._post(server, request_payload) == (
                response_bytes(service.execute(request_payload))
            )

    def test_get_manifest_and_health(self, server, service):
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/manifest"
        ) as response:
            assert response.read() == response_bytes(
                service.execute({"kind": "manifest"})
            )
        with urllib.request.urlopen(
            f"http://{host}:{port}/health"
        ) as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"

    def test_health_exposes_rerank_cache_counters(self, server):
        host, port = server.server_address[:2]

        def health():
            with urllib.request.urlopen(
                f"http://{host}:{port}/health"
            ) as response:
                return json.loads(response.read())["rerank_cache"]

        before = health()
        assert set(before) == {"hits", "misses", "entries", "capacity"}
        self._post(
            server, {"kind": "rerank", "fom_weights": "3:1:0.25"}
        )
        self._post(
            server, {"kind": "winners", "fom_weights": "3:1:0.25"}
        )
        after = health()
        assert after["misses"] >= before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1

    def test_bad_asks_are_http_400(self, server):
        host, port = server.server_address[:2]
        for body in (b"{torn", json.dumps({"kind": "rerank"}).encode()):
            request = urllib.request.Request(
                f"http://{host}:{port}/query", data=body
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            assert "error" in json.loads(excinfo.value.read())

    def test_unknown_path_is_http_404(self, server):
        host, port = server.server_address[:2]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{host}:{port}/pareto")
        assert excinfo.value.code == 404


class TestConcurrentAppendAndQuery:
    """The torn-state satellite: readers during a writer append."""

    N_THREADS = 6
    N_QUERIES = 25

    def test_queries_only_see_complete_canonical_states(
        self, tmp_path
    ):
        grid = SweepGrid(volumes=(1e3, 2e3, 5e3, 1e4))
        artifacts = [
            run_shard(grid, fixed_candidates, shards=4, shard_index=i)
            for i in range(4)
        ]
        init_warehouse(tmp_path, grid)
        for artifact in artifacts[:3]:
            append_shard_artifact(tmp_path, artifact)

        # The only two states any reader may ever observe.
        def canonical(service):
            return {
                "winners": response_bytes(
                    service.execute({"kind": "winners"})
                ),
                "rerank": response_bytes(
                    service.execute(
                        {"kind": "rerank", "fom_weights": "2:1:0.5"}
                    )
                ),
            }

        before = canonical(QueryService(tmp_path))
        probe = tmp_path / ".probe"
        probe.mkdir()
        init_warehouse(probe, grid)
        for artifact in artifacts:
            append_shard_artifact(probe, artifact)
        # The probe's revision (init + 4 appends = 5) equals what the
        # shared warehouse reports after its own 4th append, so its
        # response bytes are exactly the expected "after" state.
        after = canonical(QueryService(probe))

        service = QueryService(tmp_path)
        failures: list = []
        seen_after = threading.Event()
        start = threading.Barrier(self.N_THREADS + 1)

        def hammer():
            start.wait()
            for index in range(self.N_QUERIES):
                kind = ("winners", "rerank")[index % 2]
                request_payload = (
                    {"kind": kind}
                    if kind == "winners"
                    else {"kind": kind, "fom_weights": "2:1:0.5"}
                )
                try:
                    body = response_bytes(
                        service.execute(request_payload)
                    )
                except Exception as exc:  # noqa: BLE001
                    failures.append(repr(exc))
                    continue
                if body == after[kind]:
                    seen_after.set()
                elif body != before[kind]:
                    failures.append(
                        f"non-canonical {kind} response: {body[:120]!r}"
                    )

        threads = [
            threading.Thread(target=hammer)
            for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        append_shard_artifact(tmp_path, artifacts[3])
        for thread in threads:
            thread.join()
        assert not failures, failures[:5]
        # After the append every new query reports the full grid.
        final = response_bytes(service.execute({"kind": "winners"}))
        assert final == after["winners"]


class TestRerankCache:
    """The re-rank LRU satellite: repeated weights skip the pow kernel."""

    def test_repeat_weights_hit_and_responses_stay_identical(
        self, warehouse_dir
    ):
        fresh = QueryService(warehouse_dir)
        request = {"kind": "rerank", "fom_weights": "2:1:0.5"}
        first = response_bytes(fresh.execute(request))
        stats = fresh.rerank_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = response_bytes(fresh.execute(request))
        stats = fresh.rerank_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert second == first

    def test_cache_is_shared_across_query_kinds(self, warehouse_dir):
        fresh = QueryService(warehouse_dir)
        fresh.execute({"kind": "rerank", "fom_weights": "2:1:1"})
        fresh.execute({"kind": "winners", "fom_weights": "2:1:1"})
        fresh.execute({"kind": "best", "fom_weights": "2:1:1"})
        stats = fresh.rerank_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 2

    def test_distinct_weights_miss_and_lru_evicts(self, warehouse_dir):
        fresh = QueryService(warehouse_dir, rerank_cache_capacity=2)
        for cost in ("0.5", "1.5", "2.5"):
            fresh.execute(
                {"kind": "rerank", "fom_weights": f"1:1:{cost}"}
            )
        stats = fresh.rerank_cache_stats()
        assert stats["misses"] == 3 and stats["entries"] == 2
        # The oldest entry (cost 0.5) was evicted: asking again misses.
        fresh.execute({"kind": "rerank", "fom_weights": "1:1:0.5"})
        assert fresh.rerank_cache_stats()["misses"] == 4

    def test_unweighted_queries_bypass_the_cache(self, warehouse_dir):
        fresh = QueryService(warehouse_dir)
        fresh.execute({"kind": "winners"})
        fresh.execute({"kind": "pareto"})
        stats = fresh.rerank_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_bad_capacity_rejected(self, warehouse_dir):
        with pytest.raises(SpecificationError):
            QueryService(warehouse_dir, rerank_cache_capacity=0)
