"""Pareto-front analysis of build-ups."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pareto import (
    ParetoPoint,
    analyze_study,
    pareto_front,
)
from repro.errors import SpecificationError
from repro.gps import data


def point(name="p", perf=1.0, size=1.0, cost=1.0):
    return ParetoPoint(name, perf, size, cost)


class TestDomination:
    def test_strictly_better_dominates(self):
        better = point("a", 1.0, 0.5, 0.9)
        worse = point("b", 0.8, 0.7, 1.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a, b = point("a"), point("b")
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        small = point("small", 0.7, 0.4, 1.1)
        cheap = point("cheap", 1.0, 1.0, 1.0)
        assert not small.dominates(cheap)
        assert not cheap.dominates(small)


class TestFront:
    def test_single_point_is_front(self):
        analysis = pareto_front([point()])
        assert len(analysis.front) == 1
        assert analysis.dominated == ()

    def test_dominated_point_removed(self):
        a = point("a", 1.0, 0.5, 0.9)
        b = point("b", 0.8, 0.7, 1.0)
        analysis = pareto_front([a, b])
        assert analysis.is_on_front("a")
        assert not analysis.is_on_front("b")
        assert analysis.dominator_of("b") == "a"

    def test_dominator_of_front_point_raises(self):
        analysis = pareto_front([point("a")])
        with pytest.raises(SpecificationError):
            analysis.dominator_of("a")

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            pareto_front([])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1.0),
                st.floats(min_value=0.1, max_value=2.0),
                st.floats(min_value=0.5, max_value=2.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_front_nonempty_and_mutually_nondominated(self, raw):
        points = [
            point(f"p{i}", *values) for i, values in enumerate(raw)
        ]
        analysis = pareto_front(points)
        assert len(analysis.front) >= 1
        for a in analysis.front:
            for b in analysis.front:
                if a is not b:
                    assert not a.dominates(b)


class TestGpsPareto:
    def test_solution3_is_dominated(self, gps_result):
        """The paper's full-IP build loses on every axis to the
        passives-optimized build — Pareto-dominated, so no weighting
        could ever rescue it."""
        analysis = analyze_study(gps_result)
        name3 = data.IMPLEMENTATION_NAMES[3]
        assert not analysis.is_on_front(name3)
        assert analysis.dominator_of(name3) == (
            data.IMPLEMENTATION_NAMES[4]
        )

    def test_reference_and_winner_on_front(self, gps_result):
        analysis = analyze_study(gps_result)
        assert analysis.is_on_front(data.IMPLEMENTATION_NAMES[1])
        assert analysis.is_on_front(data.IMPLEMENTATION_NAMES[4])
