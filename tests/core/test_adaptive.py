"""The adaptive Pareto-refinement driver, locked differentially.

The load-bearing properties, checked with hypothesis on random grids:

* every adaptive-front member is also on the exhaustive-grid front
  restricted to the evaluated points — in fact the two fronts are
  byte-identical over that restriction;
* the merged adaptive frame is byte-identical to the exhaustive frame
  filtered to the evaluated points, whatever engine ran the passes and
  in whatever order cells streamed in;
* the evaluated subset never depends on the engine, only on the grid,
  the coarse sampling and the margin.

Around it: the margin dominance kernel (``margin = 0`` coincides with
:func:`~repro.core.pareto.first_dominators` bit for bit, growing
margins only widen survival), budget exhaustion, the single-pass
"coarse covers everything = plain sweep" edge, spill integration and
the parameter-validation matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.circuits.qfactor import SubstrateLossQModel
from repro.core.adaptive import (
    AdaptiveReport,
    global_front_mask,
    run_adaptive_sweep,
    spill_adaptive_sweep,
)
from repro.core.executors import (
    AsyncExecutor,
    ChunkedStackedExecutor,
    SerialExecutor,
)
from repro.core.figure_of_merit import FomWeights
from repro.core.methodology import CandidateBuildUp
from repro.core.pareto import first_dominators, margin_dominators
from repro.core.sweep import (
    DesignPoint,
    SweepGrid,
    run_design_sweep,
)
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import SpecificationError

#: Volumes the random grids draw from — wide enough that NRE
#: amortisation moves the cost objective across the axis.
VOLUME_POOL = tuple(
    float(v)
    for v in (1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6)
)

WEIGHT_POOL = (
    None,
    FomWeights(performance=2.0),
    FomWeights(size=2.0),
    FomWeights(cost=0.5),
)


def _flow(area_cm2: float) -> ProductionFlow:
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def _nre_flow(area_cm2: float) -> ProductionFlow:
    # The NRE amortises over the volume axis, so this candidate's cost
    # ratio *varies along the axis* and front membership genuinely
    # moves — without it every volume would share one front verdict.
    flow = ProductionFlow(name="toy-nre", nre=30_000.0)
    flow.add(CarrierStep("ID1", "carrier", unit_cost=6.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def toy_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="lean",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
        CandidateBuildUp(
            name="tooled",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_nre_flow,
            fixed_performance=0.95,
        ),
    ]


def restricted_frame(exhaustive, grid, report):
    """The exhaustive frame filtered to the adaptive evaluated points."""
    rows_per_cell = len(exhaustive.frame) // len(grid)
    mask = np.zeros(len(exhaustive.frame), dtype=bool)
    for index in report.evaluated_indices:
        mask[index * rows_per_cell : (index + 1) * rows_per_cell] = True
    return exhaustive.frame.filter(mask)


grids = st.builds(
    SweepGrid,
    volumes=st.lists(
        st.sampled_from(VOLUME_POOL),
        min_size=1,
        max_size=8,
        unique=True,
    ).map(tuple),
    fom_weights=st.lists(
        st.sampled_from(WEIGHT_POOL),
        min_size=1,
        max_size=3,
        unique_by=id,
    ).map(tuple),
)


class TestDifferentialAdaptive:
    """The hypothesis harness behind the acceptance criteria."""

    @settings(max_examples=30, deadline=None)
    @given(
        grid=grids,
        coarse=st.integers(min_value=2, max_value=5),
        margin=st.sampled_from([0.0, 0.05, 0.5]),
    )
    def test_front_and_frame_match_exhaustive_restriction(
        self, grid, coarse, margin
    ):
        exhaustive = run_design_sweep(grid, toy_candidates)
        report = run_adaptive_sweep(
            grid, toy_candidates, coarse=coarse, refine_margin=margin
        )
        sub = restricted_frame(exhaustive, grid, report)
        # Merged frame byte-identical to the exhaustive restriction.
        assert report.frame.csv_lines() == sub.csv_lines()
        # Front members of the adaptive run are front members of the
        # exhaustive grid restricted to the evaluated points — same
        # rows, same bytes.
        adaptive_front = report.front_frame()
        sub_front = sub.filter(global_front_mask(sub))
        assert adaptive_front.csv_lines() == sub_front.csv_lines()
        # And every adaptive-front row really does appear on the full
        # exhaustive front (the evaluated points include the true
        # front — refinement only ever *adds* dominated context).
        full_front = exhaustive.frame.filter(
            global_front_mask(exhaustive.frame)
        )
        assert set(adaptive_front.csv_lines()) <= set(
            full_front.csv_lines()
        )

    @settings(max_examples=10, deadline=None)
    @given(grid=grids)
    def test_engine_and_interleaving_invariance(self, grid):
        reports = [
            run_adaptive_sweep(grid, toy_candidates, executor=executor)
            for executor in (
                SerialExecutor(),
                AsyncExecutor(jobs=3),
                ChunkedStackedExecutor(chunk_size=2),
            )
        ]
        baseline = reports[0]
        for other in reports[1:]:
            assert other.evaluated_indices == baseline.evaluated_indices
            assert other.frame == baseline.frame
            assert len(other.passes) == len(baseline.passes)

    def test_budget_exhaustion_truncates_in_canonical_order(self):
        grid = SweepGrid(volumes=VOLUME_POOL)
        report = run_adaptive_sweep(grid, toy_candidates, budget=3)
        assert report.budget_exhausted
        assert report.total_evaluations == 3
        assert not report.stable
        # Truncation is canonical-prefix: the evaluated cells are the
        # first three coarse proposals.
        coarse_run = run_adaptive_sweep(
            grid, toy_candidates, passes=1
        )
        assert (
            report.evaluated_indices
            == coarse_run.evaluated_indices[:3]
        )

    def test_single_full_pass_equals_plain_sweep(self):
        grid = SweepGrid(volumes=VOLUME_POOL[:6])
        exhaustive = run_design_sweep(grid, toy_candidates)
        report = run_adaptive_sweep(
            grid, toy_candidates, passes=1, coarse=len(VOLUME_POOL)
        )
        assert report.total_evaluations == len(grid)
        assert report.stable
        assert report.frame == exhaustive.frame
        assert report.report.frame == exhaustive.frame

    def test_margin_only_widens_the_evaluated_set(self):
        grid = SweepGrid(volumes=VOLUME_POOL)
        tight = run_adaptive_sweep(grid, toy_candidates)
        wide = run_adaptive_sweep(
            grid, toy_candidates, refine_margin=0.25
        )
        assert set(tight.evaluated_indices) <= set(
            wide.evaluated_indices
        )

    def test_pass_counters_account_for_every_evaluation(self):
        grid = SweepGrid(
            volumes=VOLUME_POOL[:7],
            fom_weights=(None, FomWeights(performance=2.0)),
        )
        report = run_adaptive_sweep(grid, toy_candidates)
        assert report.total_evaluations == sum(
            record.evaluated for record in report.passes
        )
        assert report.passes[-1].cumulative_evaluations == (
            report.total_evaluations
        )
        assert report.savings == (
            len(grid) / report.total_evaluations
        )
        assert isinstance(report, AdaptiveReport)


class TestRefinableAxes:
    def test_tan_axis_is_refined_and_named_scenarios_kept(self):
        tans = tuple(
            SubstrateLossQModel(tan_delta_ref=t)
            for t in (0.001, 0.002, 0.004, 0.008, 0.016)
        )
        grid = SweepGrid(volumes=(1e4,), q_models=(None,) + tans)
        report = run_adaptive_sweep(
            grid, toy_candidates, coarse=2
        )
        labels = {cell.point.q_model_label() for cell in report.cells}
        # The paper default (categorical) is always evaluated; the tan
        # endpoints are the coarse sample of the refinable span.
        assert "paper" in labels
        assert "tan=0.001" in labels and "tan=0.016" in labels

    def test_weights_axis_refined_by_exponent_order(self):
        weights = tuple(
            FomWeights(performance=p) for p in (0.5, 1.0, 2.0, 4.0)
        )
        grid = SweepGrid(volumes=(1e4,), fom_weights=(None,) + weights)
        report = run_adaptive_sweep(grid, toy_candidates, coarse=2)
        labels = {
            cell.point.weights_label() for cell in report.cells
        }
        assert "paper" in labels
        assert "0.5:1:1" in labels and "4:1:1" in labels


class TestSpill:
    def test_store_holds_the_merged_frame(self, tmp_path):
        grid = SweepGrid(volumes=VOLUME_POOL[:8])
        store, report = spill_adaptive_sweep(
            grid, toy_candidates, tmp_path / "store", 8
        )
        assert store.to_frame() == report.frame
        meta = store.meta["adaptive"]
        assert meta["grid_points"] == len(grid)
        assert meta["total_evaluations"] == report.total_evaluations
        assert store.meta["total_points"] == report.total_evaluations


class TestValidation:
    def test_bare_point_lists_are_rejected(self):
        with pytest.raises(SpecificationError):
            run_adaptive_sweep(
                [DesignPoint(volume=1e4)], toy_candidates
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"passes": 0},
            {"budget": 0},
            {"coarse": 1},
            {"refine_margin": -0.1},
            {"refine_margin": float("nan")},
        ],
    )
    def test_bad_knobs_are_specification_errors(self, kwargs):
        with pytest.raises(SpecificationError):
            run_adaptive_sweep(
                SweepGrid(), toy_candidates, **kwargs
            )


class TestMarginKernel:
    objective_arrays = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=4.0),
            st.floats(min_value=0.1, max_value=4.0),
            st.floats(min_value=0.1, max_value=4.0),
        ),
        min_size=1,
        max_size=40,
    )

    @settings(max_examples=60, deadline=None)
    @given(points=objective_arrays)
    def test_zero_margin_equals_first_dominators(self, points):
        perf, size, cost = (np.asarray(axis) for axis in zip(*points))
        assert margin_dominators(perf, size, cost, 0.0).tolist() == (
            first_dominators(perf, size, cost).tolist()
        )

    @settings(max_examples=60, deadline=None)
    @given(
        points=objective_arrays,
        margins=st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
    )
    def test_growing_margin_only_widens_survival(self, points, margins):
        perf, size, cost = (np.asarray(axis) for axis in zip(*points))
        low, high = sorted(margins)
        survives_low = margin_dominators(perf, size, cost, low) < 0
        survives_high = margin_dominators(perf, size, cost, high) < 0
        assert np.all(survives_high >= survives_low)

    def test_bad_margins_rejected(self):
        for bad in (-0.5, float("nan"), float("inf")):
            with pytest.raises(SpecificationError):
                margin_dominators([1.0], [1.0], [1.0], bad)
