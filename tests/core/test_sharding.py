"""The cross-host sharding layer.

The load-bearing property, checked exhaustively with hypothesis: for
*any* shard count and *any* order the shard artifacts come back in —
including a round-trip through their JSON serialisation — the merged
rows are byte-identical to what :class:`SerialExecutor` produces on
the same grid.  Around it: content addressing (grid fingerprints),
merge rejection of missing/duplicated/foreign shards with actionable
messages, and the shard-merge semantics of the
:class:`~repro.core.sweep.EvaluationCache` statistics (counters
additive, shared entries counted once).
"""

from __future__ import annotations

import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.core.executors import SerialExecutor
from repro.core.methodology import CandidateBuildUp
from repro.core.gather import gather_directory
from repro.core.queue import manifest_for_grid, run_queue_worker, write_manifest
from repro.core.sharding import (
    SHARD_FORMAT,
    ArtifactState,
    ShardedExecutor,
    ShardMergeError,
    artifact_state,
    artifact_to_payload,
    find_pending_artifacts,
    find_shard_artifacts,
    grid_fingerprint,
    merge_cache_states,
    merge_shard_artifacts,
    payload_to_artifact,
    pending_path,
    read_shard_artifact,
    run_shard,
    shard_filename,
    shard_indices,
    write_shard_artifact,
)
from repro.core.sweep import (
    DesignPoint,
    EvaluationCache,
    run_design_sweep,
)
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import SpecificationError

POINTS = [
    DesignPoint(volume=volume)
    for volume in (1e3, 2e3, 5e3, 1e4, 5e4, 1e5, 1e6)
]


def _flow(area_cm2: float) -> ProductionFlow:
    """A minimal carrier-plus-test production flow."""
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    """Cheap two-candidate factory (no MNA), shared by every test."""
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


@functools.lru_cache(maxsize=1)
def serial_rows() -> tuple:
    """The reference rows every shard/merge combination must hit."""
    report = run_design_sweep(
        POINTS, fixed_candidates, executor=SerialExecutor()
    )
    return report.rows


def make_artifacts(shards: int) -> list:
    return [
        run_shard(POINTS, fixed_candidates, shards=shards, shard_index=i)
        for i in range(shards)
    ]


class TestShardIndices:
    def test_partition_is_exact_and_ordered(self):
        for shards in range(1, 11):
            covered = [
                i
                for shard in range(shards)
                for i in shard_indices(len(POINTS), shards, shard)
            ]
            assert covered == list(range(len(POINTS)))

    def test_shards_beyond_points_are_empty(self):
        assert list(shard_indices(2, 4, 3)) == []
        assert len(shard_indices(2, 4, 0)) == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SpecificationError):
            shard_indices(5, 0, 0)
        with pytest.raises(SpecificationError):
            shard_indices(5, 2, 2)
        with pytest.raises(SpecificationError):
            shard_indices(5, 2, -1)


class TestFingerprint:
    def test_invariant_under_point_reordering(self):
        """Axis reordering must not change the grid's shard address."""
        assert grid_fingerprint(POINTS) == grid_fingerprint(
            list(reversed(POINTS))
        )

    def test_different_grids_differ(self):
        other = POINTS[:-1] + [DesignPoint(volume=7e7)]
        assert grid_fingerprint(POINTS) != grid_fingerprint(other)


class TestMergeIdentity:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_any_shard_count_and_order_merges_byte_identical(self, data):
        """The tentpole property: shards → merge == serial, exactly."""
        shards = data.draw(st.integers(1, 9), label="shards")
        artifacts = make_artifacts(shards)
        order = data.draw(
            st.permutations(range(shards)), label="artifact order"
        )
        merged = merge_shard_artifacts([artifacts[i] for i in order])
        assert merged.rows == serial_rows()

    @settings(max_examples=15, deadline=None)
    @given(shards=st.integers(1, 6))
    def test_json_round_trip_preserves_every_byte(self, shards):
        """Artifacts survive serialisation with exact floats."""
        artifacts = [
            payload_to_artifact(
                json.loads(json.dumps(artifact_to_payload(artifact)))
            )
            for artifact in make_artifacts(shards)
        ]
        merged = merge_shard_artifacts(artifacts)
        assert merged.rows == serial_rows()

    def test_mixed_producers_merge(self):
        """Shards cut with different executors still merge identically."""
        first = run_shard(
            POINTS, fixed_candidates, shards=2, shard_index=0,
            executor=ShardedExecutor(shards=2),
        )
        second = run_shard(
            POINTS, fixed_candidates, shards=2, shard_index=1
        )
        merged = merge_shard_artifacts([second, first])
        assert merged.rows == serial_rows()

    def test_file_round_trip(self, tmp_path):
        for artifact in make_artifacts(3):
            write_shard_artifact(
                tmp_path
                / shard_filename(artifact.shards, artifact.shard_index),
                artifact,
            )
        paths = find_shard_artifacts(tmp_path)
        assert [p.name for p in paths] == [
            "shard-0000-of-0003.json",
            "shard-0001-of-0003.json",
            "shard-0002-of-0003.json",
        ]
        merged = merge_shard_artifacts(paths)
        assert merged.rows == serial_rows()
        # A merged report has no cells, but winner counts still work
        # (one winning row per grid point).
        assert sum(merged.winner_counts().values()) == len(POINTS)

    def test_empty_shards_merge_cleanly(self):
        """More shards than points: trailing artifacts carry nothing."""
        two_points = POINTS[:2]
        artifacts = [
            run_shard(two_points, fixed_candidates, shards=4, shard_index=i)
            for i in range(4)
        ]
        assert [len(a.indices) for a in artifacts] == [1, 1, 0, 0]
        merged = merge_shard_artifacts(artifacts)
        reference = run_design_sweep(
            two_points, fixed_candidates, executor=SerialExecutor()
        )
        assert merged.rows == reference.rows


class TestMergeRejection:
    def test_empty_artifact_set(self):
        with pytest.raises(ShardMergeError, match="no shard artifacts"):
            merge_shard_artifacts([])

    def test_missing_shard_names_the_gap(self):
        artifacts = make_artifacts(3)
        with pytest.raises(ShardMergeError) as excinfo:
            merge_shard_artifacts([artifacts[0], artifacts[2]])
        message = str(excinfo.value)
        assert "missing" in message
        missing = list(artifacts[1].indices)
        assert ", ".join(str(i) for i in missing) in message

    def test_duplicated_shard_names_the_indices(self):
        artifacts = make_artifacts(2)
        with pytest.raises(ShardMergeError) as excinfo:
            merge_shard_artifacts(
                [artifacts[0], artifacts[0], artifacts[1]]
            )
        message = str(excinfo.value)
        assert "duplicated" in message
        assert str(artifacts[0].indices[0]) in message

    def test_reordered_grid_rejected_by_order_digest(self):
        """Same point set, different axis order: indices don't line up.

        The fingerprint matches (content addressing is order-blind),
        so without the order digest this would merge into a silently
        wrong report — volume 1e3 twice, 1e6 never.
        """
        reordered = list(reversed(POINTS))
        ours = run_shard(POINTS, fixed_candidates, shards=2, shard_index=0)
        theirs = run_shard(
            reordered, fixed_candidates, shards=2, shard_index=1
        )
        assert ours.fingerprint == theirs.fingerprint
        with pytest.raises(ShardMergeError, match="different point order"):
            merge_shard_artifacts([ours, theirs])

    def test_foreign_grid_rejected_by_fingerprint(self):
        other_points = POINTS[:-1] + [DesignPoint(volume=7e7)]
        ours = make_artifacts(2)
        theirs = run_shard(
            other_points, fixed_candidates, shards=2, shard_index=1
        )
        with pytest.raises(ShardMergeError, match="different grids"):
            merge_shard_artifacts([ours[0], theirs])

    def test_grid_size_disagreement_rejected(self):
        # Same fingerprint is impossible for different sizes, so build
        # the conflict directly at the payload level.
        artifacts = make_artifacts(2)
        payload = artifact_to_payload(artifacts[1])
        payload["total_points"] = 99
        payload["fingerprint"] = artifacts[0].fingerprint
        payload["order_digest"] = artifacts[0].order_digest
        with pytest.raises(ShardMergeError, match="grid size"):
            merge_shard_artifacts(
                [artifacts[0], payload_to_artifact(payload)]
            )

    def test_out_of_range_index_rejected(self):
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        payload["indices"][0] = len(POINTS) + 3
        with pytest.raises(ShardMergeError, match="outside"):
            merge_shard_artifacts([payload_to_artifact(payload)])

    def test_row_count_frame_mismatch_rejected(self):
        """Row counts must tie every frame row to a grid point."""
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        payload["row_counts"][0] += 1
        with pytest.raises(ShardMergeError, match="malformed"):
            payload_to_artifact(payload)

    def test_missing_column_rejected(self):
        """A columnar payload without every SweepRow column is junk."""
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        del payload["columns"]["figure_of_merit"]
        with pytest.raises(ShardMergeError, match="malformed"):
            payload_to_artifact(payload)

    def test_ragged_columns_rejected(self):
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        payload["columns"]["volume"].append(1.0)
        with pytest.raises(ShardMergeError, match="malformed"):
            payload_to_artifact(payload)

    def test_wrong_typed_column_values_rejected(self):
        """A non-numeric metric cell is a ShardMergeError, not a
        numpy ValueError traceback."""
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        payload["columns"]["volume"][0] = "abc"
        with pytest.raises(ShardMergeError, match="malformed"):
            payload_to_artifact(payload)

    def test_wrong_typed_geometry_rejected(self):
        """String/float shards, shard_index or total_points must die in
        validation, not crash the merge's numpy comparisons."""
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        for field_name, bad in (
            ("total_points", "12"),
            ("total_points", 12.0),
            ("shards", 0),
            ("shard_index", -1),
            ("shard_index", "0"),
        ):
            corrupt = json.loads(json.dumps(payload))
            corrupt[field_name] = bad
            with pytest.raises(ShardMergeError, match="malformed"):
                payload_to_artifact(corrupt)

    def test_negative_or_float_row_counts_rejected(self):
        """Counts feed np.repeat: a negative or fractional count must
        die in validation, not crash (or silently truncate) the merge."""
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        for bad_first in (-1, 2.5, "2"):
            corrupt = json.loads(json.dumps(payload))
            counts = corrupt["row_counts"]
            counts[0] = bad_first
            # Rebalance so the sum check alone cannot catch the -1.
            if bad_first == -1:
                counts[1] += 3
            with pytest.raises(ShardMergeError, match="malformed"):
                payload_to_artifact(corrupt)

    def test_non_bool_flag_values_rejected(self):
        """'false' must not truthiness-coerce into a True winner flag."""
        artifact = make_artifacts(1)[0]
        payload = artifact_to_payload(artifact)
        payload["columns"]["is_winner"] = [
            "false" for _ in payload["columns"]["is_winner"]
        ]
        with pytest.raises(ShardMergeError, match="malformed"):
            payload_to_artifact(payload)

    def test_unknown_format_rejected(self):
        payload = artifact_to_payload(make_artifacts(1)[0])
        payload["format"] = "repro-sweep-shard/99"
        with pytest.raises(ShardMergeError, match=SHARD_FORMAT):
            payload_to_artifact(payload)

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "shard-0000-of-0001.json"
        path.write_text("not json{", encoding="utf-8")
        with pytest.raises(ShardMergeError, match="not valid JSON"):
            read_shard_artifact(path)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ShardMergeError, match="does not exist"):
            find_shard_artifacts(tmp_path / "nope")


class TestAtomicWrite:
    """The torn-artifact fix: publication is rename, never in place.

    The regression these tests pin down: the old writer streamed JSON
    straight into the destination, so a concurrent reader (or a crash)
    could observe a prefix of the file — valid-looking bytes, torn
    payload.  With the tmp + ``os.replace`` protocol the destination
    path must be absent or fully valid at every instant, no matter
    where the writer dies.
    """

    def _truncating_dump(self, monkeypatch, after_chars: int):
        """Make the artifact serialiser die mid-write (simulated kill)."""
        import repro.core.sharding as sharding_module

        real_dump = json.dump

        def torn_dump(payload, handle, **kwargs):
            text = json.dumps(payload, **kwargs)
            handle.write(text[:after_chars])
            raise RuntimeError("injected kill mid-serialisation")

        monkeypatch.setattr(sharding_module.json, "dump", torn_dump)
        return real_dump

    def test_interrupted_write_leaves_destination_absent(
        self, tmp_path, monkeypatch
    ):
        artifact = make_artifacts(1)[0]
        path = tmp_path / shard_filename(1, 0)
        self._truncating_dump(monkeypatch, after_chars=40)
        with pytest.raises(RuntimeError, match="injected kill"):
            write_shard_artifact(path, artifact)
        # Absent-or-fully-valid: the destination never existed, and
        # the failed write cleaned up its temp file too.
        assert artifact_state(path) is ArtifactState.ABSENT
        assert not path.exists()
        assert not pending_path(path).exists()

    def test_interrupted_overwrite_preserves_previous_artifact(
        self, tmp_path, monkeypatch
    ):
        """Replacing a valid artifact can only succeed or change nothing."""
        artifact = make_artifacts(1)[0]
        path = tmp_path / shard_filename(1, 0)
        write_shard_artifact(path, artifact)
        before = path.read_bytes()
        self._truncating_dump(monkeypatch, after_chars=40)
        with pytest.raises(RuntimeError, match="injected kill"):
            write_shard_artifact(path, artifact)
        assert path.read_bytes() == before
        merged = merge_shard_artifacts([read_shard_artifact(path)])
        assert merged.rows == serial_rows()

    def test_state_protocol_absent_pending_complete(self, tmp_path):
        artifact = make_artifacts(1)[0]
        path = tmp_path / shard_filename(1, 0)
        assert artifact_state(path) is ArtifactState.ABSENT
        # A writer mid-flight: only the temp sibling exists.
        pending_path(path).write_text('{"form', encoding="utf-8")
        assert artifact_state(path) is ArtifactState.PENDING
        # Readers scanning the directory must not pick the temp file
        # up as an artifact — that is the whole point of the suffix.
        assert find_shard_artifacts(tmp_path) == []
        assert [p.name for p in find_pending_artifacts(tmp_path)] == [
            "shard-0000-of-0001.json.tmp"
        ]
        write_shard_artifact(path, artifact)
        assert artifact_state(path) is ArtifactState.COMPLETE
        assert find_shard_artifacts(tmp_path) == [path]

    def test_write_read_round_trip_after_interruption(
        self, tmp_path, monkeypatch
    ):
        """A retried write after a kill produces a fully valid artifact."""
        artifact = make_artifacts(1)[0]
        path = tmp_path / shard_filename(1, 0)
        self._truncating_dump(monkeypatch, after_chars=10)
        with pytest.raises(RuntimeError):
            write_shard_artifact(path, artifact)
        monkeypatch.undo()
        write_shard_artifact(path, artifact)
        assert read_shard_artifact(path).indices == artifact.indices

    def test_torn_multibyte_utf8_is_merge_error(self, tmp_path):
        """A file cut mid multi-byte character (legacy torn write) must
        raise ShardMergeError, not a UnicodeDecodeError traceback."""
        path = tmp_path / shard_filename(1, 0)
        artifact = make_artifacts(1)[0]
        write_shard_artifact(path, artifact)
        data = path.read_bytes()
        # Truncate mid multi-byte sequence: append a lone continuation
        # lead byte so decoding (not just JSON parsing) fails.
        path.write_bytes(data[: len(data) // 2] + b"\xc2")
        with pytest.raises(ShardMergeError, match="not valid UTF-8"):
            read_shard_artifact(path)


class _FaultPlanFactory:
    """Candidate factory that raises per a shard -> remaining-failures
    plan, simulating evaluations that die partway through the queue."""

    def __init__(self, plan: dict, n_points: int, shards: int):
        self.plan = plan
        self.shard_of_point = {}
        for shard in range(shards):
            for index in shard_indices(n_points, shards, shard):
                self.shard_of_point[index] = shard

    def __call__(self, point):
        index = next(
            i for i, candidate in enumerate(POINTS) if candidate == point
        )
        shard = self.shard_of_point[index]
        if self.plan.get(shard, 0) > 0:
            self.plan[shard] -= 1
            raise RuntimeError(f"injected fault on shard {shard}")
        return fixed_candidates(point)


class TestQueueFaultMatrix:
    """Kill/retry fault matrix over the queue + gather service tier.

    For any shard count, any per-shard injected-failure plan (within
    the retry budget) and optionally a dead worker's leftovers (stale
    lease + torn artifact), a worker draining the queue followed by a
    directory gather must reproduce the serial engine's bytes exactly
    — failure order can cost retries, never correctness.
    """

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_gather_byte_identical_to_serial_under_faults(
        self, data, tmp_path_factory
    ):
        shards = data.draw(st.integers(1, 5), label="shards")
        plan = {
            shard: data.draw(
                st.integers(0, 2), label=f"failures[{shard}]"
            )
            for shard in range(shards)
        }
        dead_worker_shard = data.draw(
            st.one_of(st.none(), st.integers(0, shards - 1)),
            label="dead worker shard",
        )
        directory = tmp_path_factory.mktemp("queue")
        manifest = manifest_for_grid(POINTS, shards=shards, max_attempts=3)
        manifest_path = write_manifest(
            directory / "manifest.json", manifest
        )
        if dead_worker_shard is not None:
            # A worker that died mid-shard: its lease expired long ago
            # and (pre-atomic-writes) it left torn bytes behind.  The
            # artifact name is claim-blocking only if it validates —
            # junk must be stolen and atomically replaced.
            lease = directory / (
                f"lease-{dead_worker_shard:04d}-of-{shards:04d}.json"
            )
            lease.write_text(
                json.dumps(
                    {"owner": "dead-host:1", "token": "t0", "expires": 1.0}
                ),
                encoding="utf-8",
            )
            torn = directory / shard_filename(shards, dead_worker_shard)
            torn.write_text('{"format": "repro-sw', encoding="utf-8")
        factory = _FaultPlanFactory(dict(plan), len(POINTS), shards)
        report = run_queue_worker(manifest_path, POINTS, factory)
        assert report.queue_drained
        assert not report.exhausted
        assert len(report.failures) == sum(plan.values())
        merged = gather_directory(directory, expected=manifest)
        assert merged.rows == serial_rows()

    def test_exhausted_shard_is_reported_not_raised(self, tmp_path):
        """A shard that fails more than max_attempts times poisons
        itself, not the fleet: the worker finishes the rest."""
        shards = 3
        manifest_path = write_manifest(
            tmp_path / "manifest.json",
            manifest_for_grid(POINTS, shards=shards, max_attempts=2),
        )
        factory = _FaultPlanFactory({1: 99}, len(POINTS), shards)
        report = run_queue_worker(manifest_path, POINTS, factory)
        assert report.exhausted == (1,)
        assert report.outstanding == (1,)
        assert not report.queue_drained
        assert sorted(report.evaluated) == [0, 2]
        # The retry budget bounds the damage.
        assert len(report.failures) == 2


class TestCacheStateMerge:
    """EvaluationCache statistics under cross-host shard merge."""

    def test_counters_additive_and_shared_entries_counted_once(self):
        # Both shards place the same two footprint sets (all volumes
        # share them), so each cold shard cache recomputes the same
        # two area entries: misses add up, the union stays at 2.
        artifacts = make_artifacts(2)
        merged = merge_shard_artifacts(artifacts)
        area = merged.cache_stats["tables"]["area"]
        assert area["misses"] == 4  # 2 candidates x 2 cold shard caches
        assert area["entries"] == 2  # ...but only 2 distinct sub-results
        # Cost keys depend on volume: every point's two evaluations
        # are distinct, nothing collapses.
        cost = merged.cache_stats["tables"]["cost"]
        assert cost["misses"] == 2 * len(POINTS)
        assert cost["entries"] == 2 * len(POINTS)
        # Totals mirror the per-table tallies.
        tables = merged.cache_stats["tables"].values()
        assert merged.cache_stats["hits"] == sum(
            table["hits"] for table in tables
        )

    def test_merged_stats_match_in_process_merge(self):
        """Artifact-level stats == EvaluationCache.merge of the caches."""
        caches = [EvaluationCache() for _ in range(2)]
        artifacts = [
            run_shard(
                POINTS,
                fixed_candidates,
                shards=2,
                shard_index=i,
                cache=caches[i],
            )
            for i in range(2)
        ]
        parent = EvaluationCache()
        for cache in caches:
            parent.merge(cache)
        via_artifacts = merge_cache_states(
            artifact.cache_state for artifact in artifacts
        )
        assert via_artifacts == parent.stats()

    def test_portable_state_digests_entries(self):
        cache = EvaluationCache()
        cache.cost("flowA", 1.0, lambda: "a")
        cache.cost("flowA", 1.0, lambda: "a")
        state = cache.portable_state()
        cost = state["tables"]["cost"]
        assert cost["hits"] == 1 and cost["misses"] == 1
        assert len(cost["keys"]) == 1
        # Digests, not raw keys: nothing content-bearing leaves the host.
        assert "flowA" not in cost["keys"][0]


class TestShardedExecutor:
    def test_matches_serial_for_every_shard_count(self):
        for shards in (1, 2, 3, 7, 12):
            report = run_design_sweep(
                POINTS,
                fixed_candidates,
                executor=ShardedExecutor(shards=shards),
            )
            assert report.rows == serial_rows()

    def test_shared_cache_spans_shard_boundaries(self):
        """In-process sharding keeps memoisation across shards."""
        cache = EvaluationCache()
        run_design_sweep(
            POINTS,
            fixed_candidates,
            cache=cache,
            executor=ShardedExecutor(shards=3),
        )
        serial_cache = EvaluationCache()
        run_design_sweep(
            POINTS,
            fixed_candidates,
            cache=serial_cache,
            executor=SerialExecutor(),
        )
        assert cache.stats() == serial_cache.stats()

    def test_shard_count_validated(self):
        with pytest.raises(SpecificationError):
            ShardedExecutor(shards=0)
        assert ShardedExecutor(shards=5).shards == 5
        assert ShardedExecutor().shards >= 1

    def test_inner_engine_is_pluggable(self):
        inner = SerialExecutor()
        executor = ShardedExecutor(shards=2, inner=inner)
        assert executor.inner is inner
