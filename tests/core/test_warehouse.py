"""The frame warehouse: content-addressed sweep materialisation.

The warehouse's contract is the queue fabric's, one level up: frame
files are immutable (their name *is* their content hash), the manifest
is the single mutable object and flips atomically, and existence means
completeness.  These tests pin the writer half — building, appending
shard artifacts, torn-file rejection, overlap refusal — plus the
:class:`~repro.core.warehouse.FrameCache` LRU the query tier leans on.
The reader/query semantics live in ``test_queryservice.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.core.executors import SerialExecutor
from repro.core.figure_of_merit import FomWeights
from repro.core.methodology import CandidateBuildUp
from repro.core.sharding import (
    payload_to_artifact,
    artifact_to_payload,
    run_shard,
    shard_filename,
    write_shard_artifact,
)
from repro.core.sweep import DesignPoint, SweepGrid, run_design_sweep
from repro.core.warehouse import (
    FrameCache,
    WarehouseError,
    append_shard_artifact,
    build_warehouse,
    canonical_json,
    decision_frame_for_cells,
    decision_frame_from_artifact,
    frame_digest,
    frame_filename,
    frame_payload,
    ingest_shard_directory,
    init_warehouse,
    load_warehouse,
    manifest_path,
    merge_decision_frames,
    read_warehouse_frame,
    read_warehouse_manifest,
)
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep

GRID = SweepGrid(volumes=(1e3, 2e3, 5e3, 1e4, 5e4, 1e5))


def _flow(area_cm2: float) -> ProductionFlow:
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    """Cheap two-candidate factory (no MNA), shared by every test."""
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


@pytest.fixture(scope="module")
def serial_report():
    return run_design_sweep(
        GRID, fixed_candidates, executor=SerialExecutor()
    )


@pytest.fixture(scope="module")
def artifacts():
    return [
        run_shard(GRID, fixed_candidates, shards=3, shard_index=i)
        for i in range(3)
    ]


class TestDecisionFrame:
    def test_from_cells_carries_ratio_columns(self, serial_report):
        dframe = decision_frame_for_cells(
            serial_report.cells, range(len(serial_report.cells))
        )
        assert len(dframe) == len(serial_report.frame)
        assert dframe.size_ratio.dtype == np.float64
        assert not dframe.size_ratio.flags.writeable
        assert np.all(dframe.size_ratio > 0)
        assert np.all(dframe.cost_ratio > 0)
        # The stored FoM must be reproducible from the stored inputs:
        # fom == perf**1 * (1/size)**1 * (1/cost)**1 at paper weights.
        recomputed = np.asarray(
            [
                p * (1.0 / s) * (1.0 / c)
                for p, s, c in zip(
                    dframe.frame.column("performance").tolist(),
                    dframe.size_ratio.tolist(),
                    dframe.cost_ratio.tolist(),
                )
            ]
        )
        assert recomputed.tolist() == (
            dframe.frame.column("figure_of_merit").tolist()
        )

    def test_point_of_row_repeats_indices(self, serial_report):
        dframe = decision_frame_for_cells(
            serial_report.cells, range(len(serial_report.cells))
        )
        point = dframe.point_of_row()
        assert point.shape == (len(dframe),)
        # Two candidates per point, canonical order.
        assert point.tolist() == [
            index // 2 for index in range(len(dframe))
        ]

    def test_from_artifact_needs_ratios(self, artifacts):
        payload = artifact_to_payload(artifacts[0])
        del payload["ratios"]
        legacy = payload_to_artifact(payload)
        assert legacy.ratios is None
        with pytest.raises(WarehouseError) as excinfo:
            decision_frame_from_artifact(legacy)
        assert "re-run" in str(excinfo.value)

    def test_merge_is_order_independent(self, artifacts, serial_report):
        frames = [decision_frame_from_artifact(a) for a in artifacts]
        merged = merge_decision_frames(frames)
        shuffled = merge_decision_frames(frames[::-1])
        assert merged == shuffled
        assert merged.frame.to_json_columns() == (
            serial_report.frame.to_json_columns()
        )

    def test_merge_rejects_overlap(self, artifacts):
        frame = decision_frame_from_artifact(artifacts[0])
        with pytest.raises(WarehouseError) as excinfo:
            merge_decision_frames([frame, frame])
        assert "overlap" in str(excinfo.value)


class TestFrameFiles:
    def test_payload_round_trips(self, artifacts, tmp_path):
        dframe = decision_frame_from_artifact(artifacts[0])
        payload = frame_payload(
            dframe,
            fingerprint="f" * 16,
            order_digest="o" * 16,
            total_points=6,
        )
        digest = frame_digest(payload)
        path = tmp_path / frame_filename(digest)
        path.write_text(canonical_json(payload) + "\n")
        loaded = read_warehouse_frame(path, expected_digest=digest)
        assert loaded == dframe

    def test_digest_mismatch_is_refused(self, artifacts, tmp_path):
        dframe = decision_frame_from_artifact(artifacts[0])
        payload = frame_payload(
            dframe,
            fingerprint="f" * 16,
            order_digest="o" * 16,
            total_points=6,
        )
        path = tmp_path / "frame-bad.json"
        path.write_text(canonical_json(payload) + "\n")
        with pytest.raises(WarehouseError) as excinfo:
            read_warehouse_frame(path, expected_digest="0" * 16)
        assert "tampered or mispaired" in str(excinfo.value)

    def test_torn_file_is_refused(self, artifacts, tmp_path):
        dframe = decision_frame_from_artifact(artifacts[0])
        payload = frame_payload(
            dframe,
            fingerprint="f" * 16,
            order_digest="o" * 16,
            total_points=6,
        )
        text = canonical_json(payload)
        path = tmp_path / "frame-torn.json"
        path.write_bytes(text.encode()[: len(text) // 2])
        with pytest.raises(WarehouseError):
            read_warehouse_frame(path)


class TestWriter:
    def test_build_matches_serial_sweep(self, tmp_path, serial_report):
        manifest = build_warehouse(
            tmp_path / "wh", GRID, fixed_candidates
        )
        assert manifest.complete
        assert manifest.covered_points == 6
        dframe = load_warehouse(tmp_path / "wh")
        assert dframe.frame.to_json_columns() == (
            serial_report.frame.to_json_columns()
        )

    def test_init_refuses_reinitialisation(self, tmp_path):
        init_warehouse(tmp_path, GRID)
        with pytest.raises(WarehouseError) as excinfo:
            init_warehouse(tmp_path, GRID)
        assert "already initialised" in str(excinfo.value)

    def test_shard_appends_reach_the_serial_frame(
        self, tmp_path, artifacts, serial_report
    ):
        init_warehouse(tmp_path, GRID)
        revisions = []
        for artifact in artifacts:
            manifest = append_shard_artifact(tmp_path, artifact)
            revisions.append(manifest.revision)
        assert revisions == [2, 3, 4]
        assert manifest.complete
        dframe = load_warehouse(tmp_path)
        assert dframe.frame.to_json_columns() == (
            serial_report.frame.to_json_columns()
        )

    def test_double_append_is_refused(self, tmp_path, artifacts):
        init_warehouse(tmp_path, GRID)
        append_shard_artifact(tmp_path, artifacts[0])
        with pytest.raises(WarehouseError) as excinfo:
            append_shard_artifact(tmp_path, artifacts[0])
        assert "already covers point index" in str(excinfo.value)

    def test_foreign_artifact_is_refused(self, tmp_path):
        init_warehouse(tmp_path, GRID)
        foreign = run_shard(
            SweepGrid(volumes=(123.0,)),
            fixed_candidates,
            shards=1,
            shard_index=0,
        )
        with pytest.raises(WarehouseError) as excinfo:
            append_shard_artifact(tmp_path, foreign)
        assert "fingerprint" in str(excinfo.value)

    def test_manifest_flip_is_atomic(self, tmp_path, artifacts):
        """No intermediate manifest state is ever on disk: the bytes
        at the manifest path always parse and always validate."""
        init_warehouse(tmp_path, GRID)
        path = manifest_path(tmp_path)
        before = path.read_bytes()
        append_shard_artifact(tmp_path, artifacts[0])
        after = path.read_bytes()
        assert before != after
        for raw in (before, after):
            json.loads(raw)  # both snapshots are complete documents
        # The referenced frame file landed before the manifest flipped.
        manifest = read_warehouse_manifest(tmp_path)
        for entry in manifest.frames:
            assert (tmp_path / entry.file).is_file()

    def test_ingest_directory_is_resumable(
        self, tmp_path, artifacts, serial_report
    ):
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        for artifact in artifacts[:2]:
            write_shard_artifact(
                shard_dir / shard_filename(3, artifact.shard_index),
                artifact,
            )
        wh = tmp_path / "wh"
        manifest, appended, skipped = ingest_shard_directory(
            wh, shard_dir
        )
        assert len(appended) == 2 and not skipped
        assert not manifest.complete
        write_shard_artifact(
            shard_dir / shard_filename(3, artifacts[2].shard_index),
            artifacts[2],
        )
        manifest, appended, skipped = ingest_shard_directory(
            wh, shard_dir
        )
        assert len(appended) == 1 and len(skipped) == 2
        assert manifest.complete
        dframe = load_warehouse(wh)
        assert dframe.frame.to_json_columns() == (
            serial_report.frame.to_json_columns()
        )

    def test_ingest_empty_directory_is_an_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(WarehouseError):
            ingest_shard_directory(tmp_path / "wh", empty)


class TestFrameCache:
    def test_hits_and_misses(self, tmp_path, artifacts):
        init_warehouse(tmp_path, GRID)
        append_shard_artifact(tmp_path, artifacts[0])
        cache = FrameCache(capacity=4)
        first = load_warehouse(tmp_path, cache=cache)
        second = load_warehouse(tmp_path, cache=cache)
        assert first == second
        assert cache.misses == 1
        assert cache.hits == 1

    def test_capacity_one_evicts(self, tmp_path, artifacts):
        init_warehouse(tmp_path, GRID)
        for artifact in artifacts[:2]:
            append_shard_artifact(tmp_path, artifact)
        cache = FrameCache(capacity=1)
        load_warehouse(tmp_path, cache=cache)
        assert len(cache) == 1
        assert cache.misses == 2
        # Reloading re-reads at least the evicted frame.
        load_warehouse(tmp_path, cache=cache)
        assert cache.misses >= 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(WarehouseError):
            FrameCache(capacity=0)
        with pytest.raises(WarehouseError):
            FrameCache(capacity=True)


class TestRerankWeightRespectsPointAxis:
    def test_warehouse_of_weighted_grid_round_trips(self, tmp_path):
        """A grid with its own fom_weights axis builds and reloads
        byte-identically — the stored per-point ranking survives."""
        grid = SweepGrid(
            volumes=(1e3, 1e4),
            fom_weights=(None, FomWeights(performance=2.0)),
        )
        build_warehouse(tmp_path / "wh", grid, fixed_candidates)
        dframe = load_warehouse(tmp_path / "wh")
        fresh = run_design_sweep(grid, fixed_candidates)
        assert dframe.frame.to_json_columns() == (
            fresh.frame.to_json_columns()
        )
