"""The out-of-core chunked frame store.

The load-bearing properties, checked with hypothesis:

* **byte identity** — for any rows, any chunk budget (including 1 and
  larger-than-the-frame) and any append granularity, the store's
  bridged frame, streamed CSV and chunk layout are bit-identical to
  the in-RAM reference;
* **chunked Pareto equivalence** — the carried-front kernel over any
  block cuts equals :func:`~repro.core.pareto.nondominated_mask` over
  the concatenated arrays, ties, NaNs and cross-chunk dominators
  included;
* **streaming merge** — for any shard count and any artifact order,
  :func:`merge_artifacts_to_store` reproduces
  :func:`~repro.core.sharding.merge_shard_artifacts` byte for byte
  (rows and merged cache statistics).

Around them: the atomic-publication discipline under fault injection
(a writer killed mid-chunk leaves absent-or-previous, never torn) and
the typed refusal of truncated, foreign or mispaired chunk files.
"""

from __future__ import annotations

import functools
import json
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.core import framestore
from repro.core.executors import SerialExecutor
from repro.core.framestore import (
    CHUNK_FORMAT,
    MANIFEST_NAME,
    MAX_ROWS_ENV,
    STORE_FORMAT,
    ChunkedFrameStore,
    FrameStoreError,
    chunked_nondominated_mask,
    max_rows_from_env,
    merge_artifacts_to_store,
    spill_design_sweep,
    store_matches,
)
from repro.core.methodology import CandidateBuildUp
from repro.core.pareto import first_dominators, nondominated_mask
from repro.core.resultframe import ResultFrame, SweepRow
from repro.core.sharding import (
    ShardMergeError,
    merge_shard_artifacts,
    run_shard,
    shard_filename,
    write_shard_artifact,
)
from repro.core.sweep import DesignPoint, run_design_sweep
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import SpecificationError

finite_floats = st.floats(allow_nan=False, allow_infinity=False)

# Labels stay comma/newline-free so CSV lines stay parseable; the real
# axis labels never carry either.
labels = st.text(
    alphabet=st.characters(
        blacklist_characters=",\n\r", blacklist_categories=("Cs",)
    ),
    max_size=12,
)

rows_strategy = st.lists(
    st.builds(
        SweepRow,
        volume=finite_floats,
        substrate=labels,
        process=labels,
        tolerance=labels,
        q_model=labels,
        nre=labels,
        weights=labels,
        candidate=labels,
        performance=finite_floats,
        area_percent=finite_floats,
        cost_percent=finite_floats,
        figure_of_merit=finite_floats,
        is_winner=st.booleans(),
        on_pareto_front=st.booleans(),
    ),
    max_size=25,
)


def _spill(frame: ResultFrame, directory, budget: int, splits) -> ChunkedFrameStore:
    """Append ``frame`` in the given row-count granularity, finish."""
    store = ChunkedFrameStore.create(
        directory, max_rows_in_memory=budget
    )
    start = 0
    for size in splits:
        stop = min(start + size, len(frame))
        store.append(frame.take(np.arange(start, stop)))
        start = stop
        if start >= len(frame):
            break
    if start < len(frame):
        store.append(frame.take(np.arange(start, len(frame))))
    return store.finish()


class TestStoreByteIdentity:
    @settings(max_examples=60)
    @given(
        rows=rows_strategy,
        budget=st.integers(min_value=1, max_value=40),
        splits=st.lists(
            st.integers(min_value=1, max_value=9), max_size=30
        ),
    )
    def test_round_trip_any_budget_any_granularity(
        self, rows, budget, splits
    ):
        """to_frame/CSV are bit-identical for every spill schedule."""
        reference = ResultFrame.from_rows(rows)
        with tempfile.TemporaryDirectory() as tmp:
            store = _spill(reference, Path(tmp) / "store", budget, splits)
            assert store.to_frame() == reference
            assert list(store.csv_lines()) == reference.csv_lines()
            assert store.total_rows == len(reference)
            # The last chunk is the only one allowed to run short.
            sizes = [entry.rows for entry in store._entries]
            assert sizes[:-1] == [budget] * max(0, len(sizes) - 1)
            reopened = ChunkedFrameStore.open(Path(tmp) / "store")
            assert reopened.complete
            assert reopened.to_frame() == reference

    @settings(max_examples=40)
    @given(
        rows=rows_strategy,
        budget=st.integers(min_value=1, max_value=40),
        splits=st.lists(
            st.integers(min_value=1, max_value=9), max_size=30
        ),
    )
    def test_chunk_layout_independent_of_append_granularity(
        self, rows, budget, splits
    ):
        """Chunk digests depend only on the row stream and the budget."""
        reference = ResultFrame.from_rows(rows)
        with tempfile.TemporaryDirectory() as tmp:
            whole = _spill(
                reference, Path(tmp) / "a", budget, [len(reference) or 1]
            )
            pieces = _spill(reference, Path(tmp) / "b", budget, splits)
            assert [
                (entry.file, entry.digest, entry.rows)
                for entry in whole._entries
            ] == [
                (entry.file, entry.digest, entry.rows)
                for entry in pieces._entries
            ]

    def test_budget_larger_than_frame_is_one_chunk(self):
        frame = ResultFrame.from_rows(
            [_row(volume=float(i)) for i in range(5)]
        )
        with tempfile.TemporaryDirectory() as tmp:
            store = _spill(frame, Path(tmp) / "s", 100, [5])
            assert store.chunk_count == 1
            assert store.to_frame() == frame

    def test_empty_appends_are_ignored(self, tmp_path):
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=3
        )
        store.append(ResultFrame.empty())
        store.finish()
        assert store.chunk_count == 0
        assert store.to_frame() == ResultFrame.empty()
        assert list(store.csv_lines()) == []

    def test_meta_survives_create_finish_open(self, tmp_path):
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=3, meta={"k": "v"}
        )
        store.finish(meta={"done": True})
        reopened = ChunkedFrameStore.open(tmp_path / "s")
        assert reopened.meta == {"k": "v", "done": True}


def _row(**overrides) -> SweepRow:
    """A fully-populated row with recognisable defaults."""
    base = dict(
        volume=1e4,
        substrate="pcb",
        process="none",
        tolerance="paper",
        q_model="paper",
        nre="paper",
        weights="paper",
        candidate="ref",
        performance=1.0,
        area_percent=100.0,
        cost_percent=100.0,
        figure_of_merit=1.0,
        is_winner=True,
        on_pareto_front=False,
    )
    base.update(overrides)
    return SweepRow(**base)


# Ties matter for Pareto semantics: sampled values collide often.
objective_floats = st.one_of(
    st.sampled_from([0.25, 0.5, 0.75, 1.0, 1.25]),
    st.floats(min_value=0.01, max_value=2.0),
    st.just(float("nan")),
)


def _cut(arrays, cuts):
    """Split three aligned arrays at the same sorted cut points."""
    perf, size, cost = arrays
    bounds = sorted({min(c, len(perf)) for c in cuts} | {0, len(perf)})
    return [
        (perf[a:b], size[a:b], cost[a:b])
        for a, b in zip(bounds, bounds[1:])
    ]


class TestChunkedPareto:
    @settings(max_examples=200)
    @given(
        raw=st.lists(
            st.tuples(objective_floats, objective_floats, objective_floats),
            max_size=40,
        ),
        cuts=st.lists(
            st.integers(min_value=0, max_value=40), max_size=6
        ),
    )
    def test_equivalent_to_in_ram_kernel_for_any_cuts(self, raw, cuts):
        perf = np.array([r[0] for r in raw], dtype=np.float64)
        size = np.array([r[1] for r in raw], dtype=np.float64)
        cost = np.array([r[2] for r in raw], dtype=np.float64)
        expected = nondominated_mask(perf, size, cost)
        blocks = _cut((perf, size, cost), cuts)
        actual = chunked_nondominated_mask(blocks)
        assert np.array_equal(actual, expected)

    def test_dominator_in_earlier_chunk(self):
        """A block-0 front member kills a block-2 point."""
        perf = np.array([2.0, 1.0, 1.5])
        size = np.array([1.0, 5.0, 2.0])
        cost = np.array([1.0, 5.0, 2.0])
        blocks = _cut((perf, size, cost), [1, 2])
        mask = chunked_nondominated_mask(blocks)
        assert list(mask) == [True, False, False]
        # Attribution agrees: the in-RAM kernel blames point 0.
        dominators = first_dominators(perf, size, cost)
        assert dominators[2] == 0

    def test_late_chunk_retires_earlier_front_member(self):
        """A later block rewrites an already-emitted mask bit."""
        perf = np.array([1.0, 0.5, 2.0])
        size = np.array([2.0, 9.0, 1.0])
        cost = np.array([2.0, 9.0, 1.0])
        blocks = _cut((perf, size, cost), [1, 2])
        mask = chunked_nondominated_mask(blocks)
        # Point 0 led the front after block 0, then point 2 (better on
        # every objective) landed two blocks later and retired it.
        assert list(mask) == [False, False, True]
        dominators = first_dominators(perf, size, cost)
        assert dominators[0] == 2

    def test_duplicates_survive_across_chunks(self):
        perf = np.array([1.0, 1.0])
        size = np.array([1.0, 1.0])
        cost = np.array([1.0, 1.0])
        mask = chunked_nondominated_mask(_cut((perf, size, cost), [1]))
        assert list(mask) == [True, True]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(SpecificationError, match="equally-long"):
            chunked_nondominated_mask(
                [(np.zeros(2), np.zeros(3), np.zeros(2))]
            )

    def test_no_blocks_is_empty_mask(self):
        assert chunked_nondominated_mask([]).shape == (0,)


# -- streaming merge differential -------------------------------------

POINTS = [
    DesignPoint(volume=volume)
    for volume in (1e3, 2e3, 5e3, 1e4, 5e4, 1e5, 1e6)
]


def _flow(area_cm2: float) -> ProductionFlow:
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


@functools.lru_cache(maxsize=8)
def make_artifacts(shards: int) -> tuple:
    return tuple(
        run_shard(POINTS, fixed_candidates, shards=shards, shard_index=i)
        for i in range(shards)
    )


class TestStreamingMerge:
    @settings(max_examples=25, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=5),
        budget=st.integers(min_value=1, max_value=20),
        order=st.permutations(list(range(5))),
    )
    def test_matches_in_ram_merge_for_any_order_and_budget(
        self, shards, budget, order
    ):
        artifacts = [
            make_artifacts(shards)[i] for i in order if i < shards
        ]
        reference = merge_shard_artifacts(artifacts)
        with tempfile.TemporaryDirectory() as tmp:
            store = merge_artifacts_to_store(
                artifacts, Path(tmp) / "store", budget
            )
            assert store.to_frame() == reference.frame
            assert list(store.csv_lines()) == reference.frame.csv_lines()
            assert store.meta["cache_stats"] == reference.cache_stats
            assert np.array_equal(
                store.pareto_mask(), reference.frame.pareto_mask()
            )

    def test_path_sources_round_trip_through_disk(self, tmp_path):
        artifacts = make_artifacts(3)
        paths = []
        for artifact in artifacts:
            path = tmp_path / shard_filename(3, artifact.shard_index)
            paths.append(write_shard_artifact(path, artifact))
        reference = merge_shard_artifacts(list(paths))
        store = merge_artifacts_to_store(paths, tmp_path / "store", 4)
        assert store.to_frame() == reference.frame
        assert store.meta["cache_stats"] == reference.cache_stats
        assert store_matches(
            store,
            fingerprint=artifacts[0].fingerprint,
            order_digest=artifacts[0].order_digest,
            total_points=artifacts[0].total_points,
        )

    def test_empty_input_rejected(self, tmp_path):
        with pytest.raises(ShardMergeError, match="no shard artifacts"):
            merge_artifacts_to_store([], tmp_path / "store", 4)

    def test_missing_shard_rejected_with_merge_message(self, tmp_path):
        artifacts = make_artifacts(3)
        with pytest.raises(ShardMergeError, match="missing"):
            merge_artifacts_to_store(
                artifacts[:2], tmp_path / "store", 4
            )

    def test_duplicate_shard_rejected(self, tmp_path):
        artifacts = make_artifacts(2)
        with pytest.raises(ShardMergeError, match="duplicated point"):
            merge_artifacts_to_store(
                [artifacts[0], artifacts[0], artifacts[1]],
                tmp_path / "store",
                4,
            )


class TestSpillDesignSweep:
    def test_matches_run_design_sweep(self, tmp_path):
        report = run_design_sweep(
            POINTS, fixed_candidates, executor=SerialExecutor()
        )
        store = spill_design_sweep(
            POINTS,
            fixed_candidates,
            tmp_path / "store",
            max_rows_in_memory=3,
            executor=SerialExecutor(),
        )
        assert store.to_frame() == report.frame
        assert store.meta["cache_stats"] == report.cache_stats
        assert store.winner_points() == len(POINTS)

    def test_empty_grid_rejected(self, tmp_path):
        with pytest.raises(SpecificationError, match="at least one"):
            spill_design_sweep(
                [], fixed_candidates, tmp_path / "s", max_rows_in_memory=3
            )


# -- fault injection ---------------------------------------------------


def _spilled_store(directory: Path) -> ChunkedFrameStore:
    frame = ResultFrame.from_rows(
        [_row(volume=float(i)) for i in range(10)]
    )
    return _spill(frame, directory, 3, [10])


class TestAtomicPublication:
    def test_writer_killed_before_chunk_lands(self, tmp_path, monkeypatch):
        """A crash writing the chunk file leaves the previous store."""
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=3
        )
        store.append(
            ResultFrame.from_rows([_row(volume=float(i)) for i in range(2)])
        )

        def explode(path, payload):
            raise OSError("disk gone")

        monkeypatch.setattr(framestore, "_write_json_atomic", explode)
        with pytest.raises(OSError):
            store.append(
                ResultFrame.from_rows([_row(volume=99.0)])
            )
        monkeypatch.undo()
        survivor = ChunkedFrameStore.open(tmp_path / "s")
        assert survivor.chunk_count == 0
        assert survivor.total_rows == 0
        assert not survivor.complete

    def test_writer_killed_between_chunk_and_manifest(
        self, tmp_path, monkeypatch
    ):
        """An orphan chunk file never reaches readers: the manifest is
        the source of truth, and it still references only the chunks
        published before the crash."""
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=3
        )
        real = framestore._write_json_atomic

        def crash_on_manifest(path, payload):
            if Path(path).name == MANIFEST_NAME:
                raise OSError("killed")
            real(path, payload)

        monkeypatch.setattr(
            framestore, "_write_json_atomic", crash_on_manifest
        )
        with pytest.raises(OSError):
            store.append(
                ResultFrame.from_rows(
                    [_row(volume=float(i)) for i in range(3)]
                )
            )
        monkeypatch.undo()
        # The chunk file landed but is unreferenced: absent-or-previous.
        assert list(tmp_path.glob("s/chunk-*.json"))
        survivor = ChunkedFrameStore.open(tmp_path / "s")
        assert survivor.chunk_count == 0
        assert survivor.total_rows == 0

    def test_interrupted_replace_leaves_no_tmp_litter(
        self, tmp_path, monkeypatch
    ):
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=2
        )

        def explode(src, dst):
            raise OSError("kill -9")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            store.append(
                ResultFrame.from_rows(
                    [_row(volume=float(i)) for i in range(2)]
                )
            )
        monkeypatch.undo()
        assert not list(tmp_path.glob("s/*.tmp"))


class TestChunkRefusals:
    def test_truncated_chunk_refused(self, tmp_path):
        store = _spilled_store(tmp_path / "s")
        chunk = sorted((tmp_path / "s").glob("chunk-*.json"))[0]
        chunk.write_text(chunk.read_text()[:40], encoding="utf-8")
        with pytest.raises(FrameStoreError, match="not valid JSON"):
            store.to_frame()

    def test_foreign_format_refused(self, tmp_path):
        store = _spilled_store(tmp_path / "s")
        chunk = sorted((tmp_path / "s").glob("chunk-*.json"))[0]
        payload = json.loads(chunk.read_text(encoding="utf-8"))
        payload["format"] = "alien/9"
        chunk.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(
            FrameStoreError, match="unsupported frame chunk format"
        ):
            store.to_frame()

    def test_tampered_content_refused_by_digest(self, tmp_path):
        store = _spilled_store(tmp_path / "s")
        chunk = sorted((tmp_path / "s").glob("chunk-*.json"))[0]
        payload = json.loads(chunk.read_text(encoding="utf-8"))
        payload["columns"]["volume"][0] = 123456.0
        chunk.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(FrameStoreError, match="digest"):
            store.to_frame()

    def test_mispaired_chunk_files_refused(self, tmp_path):
        store = _spilled_store(tmp_path / "s")
        chunks = sorted((tmp_path / "s").glob("chunk-*.json"))
        assert len(chunks) >= 2
        a_text = chunks[0].read_text(encoding="utf-8")
        chunks[0].write_text(
            chunks[1].read_text(encoding="utf-8"), encoding="utf-8"
        )
        chunks[1].write_text(a_text, encoding="utf-8")
        with pytest.raises(FrameStoreError, match="digest"):
            store.to_frame()

    def test_missing_chunk_refused(self, tmp_path):
        store = _spilled_store(tmp_path / "s")
        sorted((tmp_path / "s").glob("chunk-*.json"))[0].unlink()
        with pytest.raises(FrameStoreError, match="cannot read"):
            store.to_frame()


class TestStoreContracts:
    def test_create_refuses_existing_store(self, tmp_path):
        ChunkedFrameStore.create(tmp_path / "s", max_rows_in_memory=3)
        with pytest.raises(FrameStoreError, match="already exists"):
            ChunkedFrameStore.create(
                tmp_path / "s", max_rows_in_memory=3
            )

    def test_create_refuses_stray_chunks(self, tmp_path):
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "chunk-000000-dead.json").write_text("{}")
        with pytest.raises(FrameStoreError, match="crashed writer"):
            ChunkedFrameStore.create(
                tmp_path / "s", max_rows_in_memory=3
            )

    def test_append_after_finish_refused(self, tmp_path):
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=3
        )
        store.finish()
        with pytest.raises(FrameStoreError, match="complete"):
            store.append(ResultFrame.from_rows([_row()]))

    def test_double_finish_refused(self, tmp_path):
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=3
        )
        store.finish()
        with pytest.raises(FrameStoreError, match="already complete"):
            store.finish()

    def test_reading_with_unflushed_buffer_refused(self, tmp_path):
        store = ChunkedFrameStore.create(
            tmp_path / "s", max_rows_in_memory=10
        )
        store.append(ResultFrame.from_rows([_row()]))
        with pytest.raises(FrameStoreError, match="unflushed"):
            store.to_frame()

    @pytest.mark.parametrize("budget", [0, -1, 1.5, True, "3"])
    def test_bad_budget_refused(self, tmp_path, budget):
        with pytest.raises(FrameStoreError, match="positive integer"):
            ChunkedFrameStore.create(
                tmp_path / "s", max_rows_in_memory=budget
            )

    def test_open_refuses_missing_manifest(self, tmp_path):
        with pytest.raises(FrameStoreError, match="cannot read"):
            ChunkedFrameStore.open(tmp_path / "nope")

    def test_open_refuses_truncated_manifest(self, tmp_path):
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / MANIFEST_NAME).write_text('{"format": ')
        with pytest.raises(FrameStoreError, match="not valid JSON"):
            ChunkedFrameStore.open(tmp_path / "s")

    def test_open_refuses_foreign_format(self, tmp_path):
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / MANIFEST_NAME).write_text(
            json.dumps({"format": "alien/1"})
        )
        with pytest.raises(
            FrameStoreError, match="unsupported frame store format"
        ):
            ChunkedFrameStore.open(tmp_path / "s")

    def test_open_refuses_row_count_mismatch(self, tmp_path):
        _spilled_store(tmp_path / "s")
        manifest = tmp_path / "s" / MANIFEST_NAME
        payload = json.loads(manifest.read_text(encoding="utf-8"))
        payload["total_rows"] += 1
        manifest.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(FrameStoreError, match="total_rows"):
            ChunkedFrameStore.open(tmp_path / "s")


class TestMaxRowsEnv:
    def test_unset_or_blank_means_in_ram(self, monkeypatch):
        monkeypatch.delenv(MAX_ROWS_ENV, raising=False)
        assert max_rows_from_env() is None
        monkeypatch.setenv(MAX_ROWS_ENV, "   ")
        assert max_rows_from_env() is None

    def test_positive_budget_parses(self, monkeypatch):
        monkeypatch.setenv(MAX_ROWS_ENV, "8")
        assert max_rows_from_env() == 8

    @pytest.mark.parametrize("raw", ["0", "-3", "eight", "1.5"])
    def test_garbage_is_loud(self, monkeypatch, raw):
        monkeypatch.setenv(MAX_ROWS_ENV, raw)
        with pytest.raises(SpecificationError, match=MAX_ROWS_ENV):
            max_rows_from_env()
