"""The incremental gather service.

The headline regressions pinned here: (1) the same shard index
gathered twice — the lease-expiry race, where a straggler and a thief
both publish identical artifacts — must be ingested exactly once, so
frame rows *and* merged cache hit/miss counters stay correct; (2) a
PENDING temp file is progress display, never data; (3) a rejected file
is retried on the next scan, so the queue's atomic retry heals a
corrupt leftover without restarting the watcher.
"""

from __future__ import annotations

import pytest

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import PCB_RULE
from repro.core.gather import (
    GatherError,
    IncrementalGather,
    gather_directory,
    watch_directory,
)
from repro.core.methodology import CandidateBuildUp
from repro.core.queue import manifest_for_grid
from repro.core.sharding import (
    merge_cache_states,
    run_shard,
    shard_filename,
    write_shard_artifact,
)
from repro.core.sweep import DesignPoint, run_design_sweep
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep

POINTS = [
    DesignPoint(volume=volume) for volume in (1e3, 5e3, 1e4, 1e5, 1e6)
]


def _flow(area_cm2: float) -> ProductionFlow:
    flow = ProductionFlow(name="toy")
    flow.add(CarrierStep("ID1", "carrier", unit_cost=10.0 + area_cm2))
    flow.add(TestStep("ID2", "test", test_cost=1.0))
    return flow


def fixed_candidates(point: DesignPoint) -> list[CandidateBuildUp]:
    footprints = [Footprint("chip", 25.0, MountKind.PACKAGED)]
    return [
        CandidateBuildUp(
            name="ref",
            footprints=footprints,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=1.0,
        ),
        CandidateBuildUp(
            name="alt",
            footprints=footprints * 2,
            substrate_rule=PCB_RULE,
            flow_factory=_flow,
            fixed_performance=0.9,
        ),
    ]


def make_artifacts(shards: int) -> list:
    return [
        run_shard(POINTS, fixed_candidates, shards=shards, shard_index=i)
        for i in range(shards)
    ]


class TestIncrementalIngest:
    def test_artifacts_accumulate_into_the_serial_report(self):
        gather = IncrementalGather()
        for artifact in make_artifacts(3):
            assert gather.ingest(artifact) is True
        assert gather.complete
        serial = run_design_sweep(POINTS, fixed_candidates)
        assert gather.report().rows == serial.rows

    def test_duplicate_shard_ingested_exactly_once(self):
        """The lease-expiry race fix: the second copy of a shard must
        change *nothing* — not the frame, not the cache counters."""
        artifacts = make_artifacts(2)
        gather = IncrementalGather()
        assert gather.ingest(artifacts[0]) is True
        before = gather.snapshot()
        # The straggler's identical artifact lands a second time.
        assert gather.ingest(artifacts[0]) is False
        after = gather.snapshot()
        assert after.covered_points == before.covered_points
        assert after.frame.csv_lines() == before.frame.csv_lines()
        # Cache statistics count the shard once, exactly as if only
        # one worker had published it.
        assert after.cache_stats == merge_cache_states(
            [artifacts[0].cache_state]
        )
        gather.ingest(artifacts[1])
        assert gather.snapshot().cache_stats == merge_cache_states(
            [a.cache_state for a in artifacts]
        )

    def test_duplicate_does_not_double_cache_counters_end_to_end(self):
        """Counters with vs without the duplicate are identical."""
        artifacts = make_artifacts(2)
        clean = IncrementalGather()
        raced = IncrementalGather()
        for artifact in artifacts:
            clean.ingest(artifact)
            raced.ingest(artifact)
        raced.ingest(artifacts[1])  # the duplicate publication
        assert (
            raced.snapshot().cache_stats == clean.snapshot().cache_stats
        )
        assert raced.report().cache_stats == clean.report().cache_stats

    def test_partial_snapshot_is_canonically_ordered(self):
        artifacts = make_artifacts(3)
        gather = IncrementalGather()
        gather.ingest(artifacts[2])
        gather.ingest(artifacts[0])
        snapshot = gather.snapshot()
        assert not snapshot.complete
        assert snapshot.shards_seen == (0, 2)
        volumes = list(snapshot.frame.column("volume"))
        assert volumes == sorted(volumes)
        assert 0.0 < snapshot.progress < 1.0
        assert sum(snapshot.winner_counts().values()) == len(
            artifacts[0].indices
        ) + len(artifacts[2].indices)

    def test_foreign_artifact_rejected(self):
        other_points = POINTS[:-1] + [DesignPoint(volume=7e7)]
        foreign = run_shard(
            other_points, fixed_candidates, shards=2, shard_index=0
        )
        gather = IncrementalGather()
        gather.ingest(make_artifacts(2)[1])
        with pytest.raises(GatherError, match="different grid"):
            gather.ingest(foreign)

    def test_manifest_pins_the_grid_up_front(self):
        other_points = POINTS[:-1] + [DesignPoint(volume=7e7)]
        manifest = manifest_for_grid(POINTS, shards=2)
        gather = IncrementalGather(expected=manifest)
        foreign = run_shard(
            other_points, fixed_candidates, shards=2, shard_index=0
        )
        with pytest.raises(GatherError, match="different grid"):
            gather.ingest(foreign)

    def test_overlapping_point_coverage_rejected(self):
        """Two different shard cuts of one grid cover the same points;
        gathering across cuts must be refused, not double-counted."""
        same_grid_other_cut = run_shard(
            POINTS, fixed_candidates, shards=3, shard_index=0
        )
        gather = IncrementalGather()
        gather.ingest(make_artifacts(3)[0])
        mangled = same_grid_other_cut
        # Same shard geometry, different index, overlapping indices is
        # impossible from run_shard; fake the overlap via shards=3,
        # index 1 artifact carrying index-0 points is not constructible
        # either — so exercise the guard with a same-index duplicate
        # dressed as a different shard via payload surgery.
        from repro.core.sharding import (
            artifact_to_payload,
            payload_to_artifact,
        )

        payload = artifact_to_payload(mangled)
        payload["shard_index"] = 1
        with pytest.raises(GatherError, match="already-gathered"):
            gather.ingest(payload_to_artifact(payload))

    def test_incomplete_report_names_missing_indices(self):
        gather = IncrementalGather()
        gather.ingest(make_artifacts(3)[0])
        with pytest.raises(GatherError, match="missing point indices"):
            gather.report()


class TestDirectoryScan:
    def _write(self, directory, artifact):
        write_shard_artifact(
            directory / shard_filename(artifact.shards, artifact.shard_index),
            artifact,
        )

    def test_scan_ingests_only_new_files(self, tmp_path):
        artifacts = make_artifacts(2)
        self._write(tmp_path, artifacts[0])
        gather = IncrementalGather()
        assert gather.scan(tmp_path) == 1
        assert gather.scan(tmp_path) == 0  # nothing new
        self._write(tmp_path, artifacts[1])
        assert gather.scan(tmp_path) == 1
        assert gather.complete

    def test_pending_temp_files_are_progress_not_data(self, tmp_path):
        artifacts = make_artifacts(2)
        self._write(tmp_path, artifacts[0])
        (tmp_path / "shard-0001-of-0002.json.tmp").write_text(
            '{"form', encoding="utf-8"
        )
        gather = IncrementalGather()
        gather.scan(tmp_path)
        snapshot = gather.snapshot()
        assert snapshot.pending == ("shard-0001-of-0002.json.tmp",)
        assert snapshot.shards_seen == (0,)
        assert not snapshot.rejected

    def test_rejected_file_is_retried_and_healed(self, tmp_path):
        """A torn leftover is picked up the moment a queue retry
        atomically replaces it — no watcher restart needed."""
        artifacts = make_artifacts(2)
        self._write(tmp_path, artifacts[0])
        torn = tmp_path / shard_filename(2, 1)
        torn.write_text('{"format": "repro-sw', encoding="utf-8")
        gather = IncrementalGather()
        gather.scan(tmp_path)
        snapshot = gather.snapshot()
        assert len(snapshot.rejected) == 1
        assert snapshot.rejected[0][0] == torn.name
        assert not gather.complete
        # The retry heals the file in place (atomic replace)...
        self._write(tmp_path, artifacts[1])
        gather.scan(tmp_path)
        assert gather.snapshot().rejected == ()
        assert gather.complete

    def test_missing_directory_is_gather_error(self, tmp_path):
        gather = IncrementalGather()
        with pytest.raises(GatherError, match="does not exist"):
            gather.scan(tmp_path / "nope")


class TestOneShotGather:
    def test_round_trip_matches_serial(self, tmp_path):
        for artifact in make_artifacts(3):
            write_shard_artifact(
                tmp_path / shard_filename(3, artifact.shard_index),
                artifact,
            )
        report = gather_directory(tmp_path)
        serial = run_design_sweep(POINTS, fixed_candidates)
        assert report.rows == serial.rows

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(GatherError, match="no shard artifacts"):
            gather_directory(tmp_path)

    def test_strict_about_rejects(self, tmp_path):
        (tmp_path / shard_filename(1, 0)).write_text(
            "junk", encoding="utf-8"
        )
        with pytest.raises(GatherError, match="not valid JSON"):
            gather_directory(tmp_path)


class TestWatch:
    def test_watch_returns_when_the_last_artifact_lands(self, tmp_path):
        """Drive the poll loop with an injected sleep that publishes
        one artifact per tick — no real timing involved."""
        artifacts = make_artifacts(3)
        snapshots = []

        def sleep(seconds):
            index = len(
                [a for a in artifacts if a is None]
            )  # artifacts already published
            artifact = artifacts[index]
            write_shard_artifact(
                tmp_path / shard_filename(3, artifact.shard_index),
                artifact,
            )
            artifacts[index] = None

        report = watch_directory(
            tmp_path,
            sleep=sleep,
            on_snapshot=snapshots.append,
        )
        serial = run_design_sweep(POINTS, fixed_candidates)
        assert report.rows == serial.rows
        # One snapshot per scan: 3 empty-ish polls plus the final one.
        assert snapshots[-1].complete
        assert [s.covered_points for s in snapshots] == sorted(
            s.covered_points for s in snapshots
        )

    def test_timeout_names_whats_missing(self, tmp_path):
        artifacts = make_artifacts(3)
        write_shard_artifact(
            tmp_path / shard_filename(3, 0), artifacts[0]
        )
        clock = iter(range(100))
        with pytest.raises(GatherError, match="timed out") as excinfo:
            watch_directory(
                tmp_path,
                poll=1.0,
                timeout=3.0,
                clock=lambda: float(next(clock)),
                sleep=lambda seconds: None,
            )
        message = str(excinfo.value)
        assert "missing" in message

    def test_bad_poll_interval_rejected(self, tmp_path):
        with pytest.raises(GatherError, match="positive"):
            watch_directory(tmp_path, poll=0.0)
