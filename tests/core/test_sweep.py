"""The design-space sweep subsystem."""

from __future__ import annotations

import pytest

from repro.area.substrate import MCM_D_COARSE_RULE, MCM_D_FINE_RULE
from repro.circuits.qfactor import (
    SkinEffectQModel,
    SubstrateLossQModel,
)
from repro.core.executors import SerialExecutor
from repro.core.figure_of_merit import FomWeights
from repro.core.methodology import assess_candidate, assess_candidate_batch
from repro.core.sweep import (
    BATCH_FILL_ENV,
    DesignPoint,
    EvaluationCache,
    NreScenario,
    SweepGrid,
    batch_fill_enabled,
    evaluate_cells,
    family_runs,
    run_design_sweep,
)
from repro.errors import SpecificationError
from repro.gps.study import (
    NRE_SCENARIOS,
    run_gps_study,
    run_gps_sweep,
    sweep_candidates,
)
from repro.passives.thin_film import SI3N4_PROCESS
from repro.passives.tolerance import MATCHING_CLASS, PRECISION_CLASS

IMPL3 = "MCM-D(Si)/FC/IP"
IMPL4 = "MCM-D(Si)/FC/IP&SMD"


def empty_factory(point):
    """Module-level (hence picklable) factory returning no candidates."""
    return []


class TestGrid:
    def test_default_grid_is_one_point(self):
        grid = SweepGrid()
        assert len(grid) == 1
        assert grid.points() == [DesignPoint()]

    def test_cartesian_product(self):
        grid = SweepGrid(
            volumes=(1e3, 1e4),
            processes=(None, SI3N4_PROCESS),
            tolerances=(None, PRECISION_CLASS, MATCHING_CLASS),
        )
        assert len(grid) == 12
        assert len(grid.points()) == 12

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecificationError):
            SweepGrid(volumes=())

    def test_duplicate_axis_values_deduped(self):
        # Duplicates would double-evaluate and double-count the same
        # cell; the first occurrence wins, order preserved.
        grid = SweepGrid(volumes=(1e4, 1e3, 1e4, 1e3))
        assert grid.volumes == (1e4, 1e3)
        assert len(grid) == 2

    def test_dedup_uses_equality_not_repr(self):
        # 10000.0 and 1e4 are the same coordinate however spelled.
        grid = SweepGrid(volumes=(10_000.0, 1e4, 10_000.000001))
        assert grid.volumes == (10_000.0, 10_000.000001)

    def test_dedup_on_object_axes(self):
        grid = SweepGrid(
            tolerances=(None, PRECISION_CLASS, None, PRECISION_CLASS)
        )
        assert grid.tolerances == (None, PRECISION_CLASS)
        assert len(grid.points()) == 2

    def test_nonpositive_volume_rejected(self):
        with pytest.raises(SpecificationError):
            DesignPoint(volume=0.0)

    def test_point_label_names_axes(self):
        label = DesignPoint(
            volume=5000.0, tolerance=PRECISION_CLASS
        ).label()
        assert "volume=5000" in label
        assert "tolerance=precision" in label
        assert "process=paper" in label
        assert "q=paper" in label
        assert "nre=paper" in label
        assert "weights=paper" in label

    def test_scenario_axes_multiply_the_grid(self):
        grid = SweepGrid(
            volumes=(1e3, 1e4),
            q_models=(None, SkinEffectQModel()),
            nres=(None, NRE_SCENARIOS["zero"]),
            fom_weights=(None, FomWeights(performance=2.0)),
        )
        assert len(grid) == 16
        assert len(grid.points()) == 16

    def test_scenario_axis_labels(self):
        point = DesignPoint(
            q_model=SubstrateLossQModel(tan_delta_ref=0.02),
            nre=NRE_SCENARIOS["mask-heavy"],
            weights=FomWeights(performance=2.0, size=1.0, cost=0.5),
        )
        assert point.q_model_label() == "tan=0.02"
        assert point.nre_label() == "mask-heavy"
        assert point.weights_label() == "2:1:0.5"
        label = point.label()
        assert "q=tan=0.02" in label
        assert "nre=mask-heavy" in label
        assert "weights=2:1:0.5" in label

    def test_empty_scenario_axis_rejected(self):
        with pytest.raises(SpecificationError):
            SweepGrid(q_models=())
        with pytest.raises(SpecificationError):
            SweepGrid(nres=())
        with pytest.raises(SpecificationError):
            SweepGrid(fom_weights=())

    def test_negative_nre_rejected(self):
        with pytest.raises(SpecificationError):
            NreScenario(name="bad", by_candidate=((1, -5.0),))


class TestRunDesignSweep:
    def test_empty_points_rejected(self):
        with pytest.raises(SpecificationError):
            run_design_sweep([], sweep_candidates)

    def test_bad_reference_rejected(self):
        with pytest.raises(SpecificationError):
            run_design_sweep(
                [DesignPoint()], sweep_candidates, reference=9
            )

    def test_empty_factory_rejected(self):
        with pytest.raises(SpecificationError):
            run_design_sweep([DesignPoint()], empty_factory)

    def test_matches_run_study_at_paper_point(self):
        """One sweep point with zero NRE must equal the plain study."""
        study = run_gps_study()
        report = run_gps_sweep(
            [DesignPoint()], nre_scenario={i: 0.0 for i in (1, 2, 3, 4)}
        )
        (cell,) = report.cells
        for study_row, sweep_row in zip(study.rows, cell.result.rows):
            assert sweep_row.fom.figure_of_merit == pytest.approx(
                study_row.fom.figure_of_merit, rel=1e-12
            )
            assert sweep_row.area_percent == pytest.approx(
                study_row.area_percent, rel=1e-12
            )
            assert sweep_row.cost_percent == pytest.approx(
                study_row.cost_percent, rel=1e-12
            )

    def test_memoisation_shares_performance_and_area(self):
        # Hit/miss counts are a property of *one* shared cache, so this
        # pins the serial engine (workers of the process engine each
        # start cold and would tally differently).
        cache = EvaluationCache()
        run_gps_sweep(
            SweepGrid(volumes=(1e3, 1e4, 1e5)),
            cache=cache,
            executor=SerialExecutor(),
        )
        # Two follow-up volume points hit performance and area for all
        # four candidates (build-ups 1 and 2 even share one performance
        # key: identical discrete-filter assignments).
        assert cache.hits >= 2 * 4 * 2
        # The cost step genuinely depends on volume: four candidates
        # miss it at each of the three volumes.
        assert cache.misses >= 4 * 3

    def test_rows_are_pareto_ready(self):
        report = run_gps_sweep([DesignPoint()])
        assert len(report.rows) == 4
        winner_rows = [row for row in report.rows if row.is_winner]
        assert len(winner_rows) == 1
        assert winner_rows[0].candidate == IMPL4
        # Full integration (impl 3) is dominated by impl 4 on all axes.
        impl3 = next(r for r in report.rows if r.candidate == IMPL3)
        assert not impl3.on_pareto_front
        record = report.rows[0].as_dict()
        assert set(record) >= {
            "volume",
            "candidate",
            "performance",
            "area_percent",
            "cost_percent",
            "figure_of_merit",
            "on_pareto_front",
        }

    def test_winner_counts_and_best_row(self):
        report = run_gps_sweep(SweepGrid(volumes=(1e3, 1e5)))
        counts = report.winner_counts()
        assert sum(counts.values()) == 2
        best = report.best_row()
        assert best.figure_of_merit == max(
            row.figure_of_merit for row in report.rows
        )
        assert report.rows_for(IMPL4) == [
            row for row in report.rows if row.candidate == IMPL4
        ]


class TestBatchedFill:
    GRID = SweepGrid(
        volumes=(500.0, 1e4, 1e5),
        tolerances=(None, PRECISION_CLASS),
    )

    def test_env_gate_parsing(self, monkeypatch):
        for raw, expected in (
            ("", True),
            ("1", True),
            ("true", True),
            ("on", True),
            ("batch", True),
            ("0", False),
            ("false", False),
            ("off", False),
            ("scalar", False),
        ):
            monkeypatch.setenv(BATCH_FILL_ENV, raw)
            assert batch_fill_enabled() is expected
        monkeypatch.delenv(BATCH_FILL_ENV)
        assert batch_fill_enabled() is True

    def test_env_gate_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(BATCH_FILL_ENV, "bogus")
        with pytest.raises(SpecificationError, match=BATCH_FILL_ENV):
            batch_fill_enabled()

    def test_family_runs_groups_across_volume_major_stride(self):
        points = self.GRID.points()
        families = family_runs(points)
        # 3 volumes x 2 tolerances: two families of three points each,
        # strided across the run because volume varies slowest.
        assert sorted(pos for family in families for pos in family) == (
            list(range(len(points)))
        )
        assert len(families) == 2
        for family in families:
            assert len(family) == 3
            tolerances = {repr(points[pos].tolerance) for pos in family}
            assert len(tolerances) == 1
            volumes = [points[pos].volume for pos in family]
            assert len(set(volumes)) == 3

    def test_fills_produce_bit_identical_rows(self):
        batched = evaluate_cells(
            self.GRID.points(),
            sweep_candidates,
            0,
            FomWeights(),
            EvaluationCache(),
            fill="batch",
        )
        scalar = evaluate_cells(
            self.GRID.points(),
            sweep_candidates,
            0,
            FomWeights(),
            EvaluationCache(),
            fill="scalar",
        )
        assert len(batched) == len(scalar)
        for fast, slow in zip(batched, scalar):
            assert fast.point == slow.point
            for fast_row, slow_row in zip(
                fast.result.rows, slow.result.rows
            ):
                assert fast_row.fom == slow_row.fom
                assert fast_row.assessment.cost == slow_row.assessment.cost
                assert (
                    fast_row.assessment.area.final_area_mm2
                    == slow_row.assessment.area.final_area_mm2
                )

    def test_fills_report_equal_stat_totals(self):
        """Hit/miss *splits* may differ between the fills (the batched
        fill seeds placements ahead of the lookups) but the totals per
        table may not — every sub-result is still resolved exactly
        once per point."""
        batch_cache = EvaluationCache()
        scalar_cache = EvaluationCache()
        evaluate_cells(
            self.GRID.points(),
            sweep_candidates,
            0,
            FomWeights(),
            batch_cache,
            fill="batch",
        )
        evaluate_cells(
            self.GRID.points(),
            sweep_candidates,
            0,
            FomWeights(),
            scalar_cache,
            fill="scalar",
        )
        fast, slow = batch_cache.stats(), scalar_cache.stats()
        for table in fast["tables"]:
            assert (
                fast["tables"][table]["hits"]
                + fast["tables"][table]["misses"]
            ) == (
                slow["tables"][table]["hits"]
                + slow["tables"][table]["misses"]
            )

    def test_bad_fill_rejected(self):
        with pytest.raises(SpecificationError, match="fill"):
            evaluate_cells(
                [DesignPoint()],
                sweep_candidates,
                0,
                FomWeights(),
                EvaluationCache(),
                fill="vector",
            )

    def test_env_gate_controls_default_fill(self, monkeypatch):
        """With the env off, the default fill runs scalar — same rows."""
        monkeypatch.setenv(BATCH_FILL_ENV, "0")
        off = run_gps_sweep(self.GRID)
        monkeypatch.setenv(BATCH_FILL_ENV, "1")
        on = run_gps_sweep(self.GRID)
        assert on.rows == off.rows

    def test_unknown_factory_stays_scalar(self, monkeypatch):
        """A factory without the volume_invariant marker must not be
        re-grouped even when the env allows batching."""
        calls = []

        def counting_factory(point):
            calls.append(point)
            return sweep_candidates(point)

        monkeypatch.setenv(BATCH_FILL_ENV, "1")
        points = self.GRID.points()
        evaluate_cells(
            points,
            counting_factory,
            0,
            FomWeights(),
            EvaluationCache(),
        )
        # Scalar fill: the factory runs once per point, not per family.
        assert len(calls) == len(points)

    def test_assess_candidate_batch_matches_looped(self):
        volumes = (500.0, 1e4, 1e5)
        for candidate in sweep_candidates(DesignPoint()):
            batched = assess_candidate_batch(candidate, volumes)
            looped = tuple(
                assess_candidate(candidate, volume) for volume in volumes
            )
            assert batched == looped


class TestGpsAxes:
    def test_volume_moves_mcm_cost_through_nre(self):
        """Prototype volumes punish the MCM mask-set NRE."""
        report = run_gps_sweep(SweepGrid(volumes=(200.0, 100_000.0)))
        small, large = (
            next(
                r
                for r in report.rows
                if r.candidate == IMPL3 and r.volume == volume
            )
            for volume in (200.0, 100_000.0)
        )
        assert small.cost_percent > large.cost_percent + 5.0

    def test_tolerance_class_costs_yield_or_trim(self):
        """A tolerance class can only make build-ups 3/4 dearer."""
        report = run_gps_sweep(
            SweepGrid(tolerances=(None, MATCHING_CLASS, PRECISION_CLASS))
        )

        def cost(candidate, tolerance):
            return next(
                r.cost_percent
                for r in report.rows
                if r.candidate == candidate and r.tolerance == tolerance
            )

        for impl in (IMPL3, IMPL4):
            assert cost(impl, "matching") > cost(impl, "paper")
            assert cost(impl, "precision") > cost(impl, "paper")

    def test_substrate_axis_moves_area(self):
        report = run_gps_sweep(
            SweepGrid(substrates=(MCM_D_FINE_RULE, MCM_D_COARSE_RULE))
        )

        def area(candidate, substrate):
            return next(
                r.area_percent
                for r in report.rows
                if r.candidate == candidate and r.substrate == substrate
            )

        assert area(IMPL4, "MCM-D(Si) fine-line") < area(
            IMPL4, "MCM-D(Si) coarse"
        )

    def test_process_axis_resizes_integrated_passives(self):
        """A lower-density cap stack grows build-up 3's substrate."""
        report = run_gps_sweep(
            SweepGrid(processes=(None, SI3N4_PROCESS))
        )

        def area(process):
            return next(
                r.area_percent
                for r in report.rows
                if r.candidate == IMPL3 and r.process == process
            )

        assert area("Si3N4 thin film") > area("paper")

    def test_sweep_candidates_reject_nothing_silently(self):
        candidates = sweep_candidates(DesignPoint())
        assert [c.name for c in candidates] == [
            "PCB/SMD (reference)",
            "MCM-D(Si)/WB/SMD",
            IMPL3,
            IMPL4,
        ]

    def test_q_model_axis_moves_performance(self):
        """A lossier dielectric hurts the integrated build-ups only."""
        report = run_gps_sweep(
            SweepGrid(
                q_models=(
                    None,
                    SubstrateLossQModel(tan_delta_ref=0.005),
                    SubstrateLossQModel(tan_delta_ref=0.05),
                )
            )
        )
        assert len(report.rows) == 12

        def perf(candidate, q_model):
            return next(
                r.performance
                for r in report.rows
                if r.candidate == candidate and r.q_model == q_model
            )

        # The discrete build-up is untouched by the Q axis.
        assert perf("PCB/SMD (reference)", "paper") == perf(
            "PCB/SMD (reference)", "tan=0.05"
        )
        # The fully integrated build-up degrades with the loss tangent.
        assert perf(IMPL3, "tan=0.05") < perf(IMPL3, "tan=0.005")
        # The paper's constant-Q model differs from both scenarios.
        assert perf(IMPL3, "paper") not in (
            perf(IMPL3, "tan=0.005"),
            perf(IMPL3, "tan=0.05"),
        )

    def test_nre_axis_moves_cost(self):
        report = run_gps_sweep(
            SweepGrid(
                volumes=(500.0,),
                nres=(None, NRE_SCENARIOS["zero"], NRE_SCENARIOS["mask-heavy"]),
            )
        )

        def cost(nre):
            return next(
                r.cost_percent
                for r in report.rows
                if r.candidate == IMPL3 and r.nre == nre
            )

        # At prototype volume, dropping NRE is cheaper and doubling the
        # mask set dearer than the paper scenario.
        assert cost("zero") < cost("paper") < cost("mask-heavy")

    def test_weights_axis_reranks_without_touching_assessments(self):
        report = run_gps_sweep(
            SweepGrid(
                fom_weights=(None, FomWeights(performance=4.0))
            )
        )

        def row(candidate, weights):
            return next(
                r
                for r in report.rows
                if r.candidate == candidate and r.weights == weights
            )

        # Assessments (performance/area/cost) are weight-independent...
        for candidate in (IMPL3, IMPL4):
            plain = row(candidate, "paper")
            heavy = row(candidate, "4:1:1")
            assert plain.performance == heavy.performance
            assert plain.area_percent == heavy.area_percent
            assert plain.cost_percent == heavy.cost_percent
            # ...but the ranking number moves.
            assert plain.figure_of_merit != heavy.figure_of_merit
        # Weighting performance heavily dethrones the lossy build-up 4:
        # a perfect-performance candidate wins instead.
        assert row(IMPL4, "paper").is_winner
        assert not row(IMPL4, "4:1:1").is_winner

    def test_point_nre_wins_over_factory_scenario(self):
        explicit = {i: 10_000.0 for i in (1, 2, 3, 4)}
        report = run_gps_sweep(
            [
                DesignPoint(volume=500.0),
                DesignPoint(volume=500.0, nre=NRE_SCENARIOS["zero"]),
            ],
            nre_scenario=explicit,
        )

        def cost(nre):
            return next(
                r.cost_percent
                for r in report.rows
                if r.candidate == IMPL3 and r.nre == nre
            )

        # The explicit factory scenario applies at the plain point; the
        # point's own scenario overrides it.
        assert cost("zero") < cost("paper")

    def test_dispersive_q_axis_runs_through_the_circuit_engine(self):
        """A dispersive model on the axis reaches the MNA solves."""
        report = run_gps_sweep(
            [DesignPoint(q_model=SkinEffectQModel())]
        )
        impl3 = next(r for r in report.rows if r.candidate == IMPL3)
        assert 0.0 < impl3.performance <= 1.0
        assert impl3.q_model == "skin(Q0=40@1e+09Hz)"
