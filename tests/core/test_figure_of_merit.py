"""Figure-of-merit math (Fig. 6)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.figure_of_merit import (
    FomEntry,
    FomWeights,
    figure_of_merit,
    rank_buildups,
)
from repro.errors import SpecificationError


class TestFigureOfMerit:
    def test_reference_is_unity(self):
        assert figure_of_merit(1.0, 1.0, 1.0) == pytest.approx(1.0)

    def test_paper_solution_4_arithmetic(self):
        """Fig. 6 row 4: 0.7 / (0.37 * 1.06) = 1.8."""
        fom = figure_of_merit(0.7, 0.37, 1.06)
        assert fom == pytest.approx(1.8, abs=0.02)

    def test_paper_solution_2_arithmetic(self):
        """Fig. 6 row 2: 1 / (0.79 * 1.05) = 1.2."""
        assert figure_of_merit(1.0, 0.79, 1.05) == pytest.approx(
            1.2, abs=0.01
        )

    def test_paper_solution_3_arithmetic(self):
        """Fig. 6 row 3: 0.45 / (0.6 * 1.13) = 0.66."""
        assert figure_of_merit(0.45, 0.6, 1.13) == pytest.approx(
            0.66, abs=0.01
        )

    def test_less_area_is_better(self):
        assert figure_of_merit(1.0, 0.5, 1.0) > figure_of_merit(
            1.0, 1.0, 1.0
        )

    def test_less_cost_is_better(self):
        assert figure_of_merit(1.0, 1.0, 0.9) > figure_of_merit(
            1.0, 1.0, 1.1
        )

    def test_rejects_negative_performance(self):
        with pytest.raises(SpecificationError):
            figure_of_merit(-0.1, 1.0, 1.0)

    def test_rejects_nonpositive_ratios(self):
        with pytest.raises(SpecificationError):
            figure_of_merit(1.0, 0.0, 1.0)
        with pytest.raises(SpecificationError):
            figure_of_merit(1.0, 1.0, -1.0)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=0.5, max_value=2.0),
    )
    def test_monotone_in_performance(self, perf, size, cost):
        better = figure_of_merit(min(1.0, perf * 1.1), size, cost)
        assert better >= figure_of_merit(perf, size, cost)


class TestWeights:
    def test_zero_weight_removes_axis(self):
        weights = FomWeights(performance=1.0, size=0.0, cost=1.0)
        with_small = figure_of_merit(1.0, 0.1, 1.0, weights)
        with_large = figure_of_merit(1.0, 10.0, 1.0, weights)
        assert with_small == pytest.approx(with_large)

    def test_heavier_size_weight_amplifies(self):
        light = figure_of_merit(1.0, 0.5, 1.0, FomWeights(size=1.0))
        heavy = figure_of_merit(1.0, 0.5, 1.0, FomWeights(size=2.0))
        assert heavy > light

    def test_rejects_negative_weight(self):
        with pytest.raises(SpecificationError):
            FomWeights(performance=-1.0)


class TestRanking:
    def entries(self):
        return [
            FomEntry("a", 1.0, 1.0, 1.0, 1.0),
            FomEntry("b", 1.0, 0.79, 1.05, 1.2),
            FomEntry("c", 0.45, 0.6, 1.13, 0.66),
            FomEntry("d", 0.7, 0.37, 1.06, 1.8),
        ]

    def test_paper_ranking(self):
        """Fig. 6 order: solution 4 > 2 > 1 > 3."""
        ranked = rank_buildups(self.entries())
        assert [e.name for e in ranked] == ["d", "b", "a", "c"]

    def test_rejects_empty(self):
        with pytest.raises(SpecificationError):
            rank_buildups([])

    def test_reciprocals(self):
        entry = FomEntry("d", 0.7, 0.37, 1.06, 1.8)
        assert entry.size_reciprocal == pytest.approx(1 / 0.37)
        assert entry.cost_reciprocal == pytest.approx(1 / 1.06)
