"""The columnar ResultFrame spine.

The load-bearing properties, checked with hypothesis:

* the row bridge is exact in both directions —
  ``from_rows(to_rows(frame)) == frame`` and
  ``to_rows(from_rows(rows)) == rows`` bit for bit;
* floats survive the JSON column payload and the CSV formatting
  *exactly* (repr round-trip, never a tolerance);
* the vectorised Pareto dominance (`pareto_front`,
  `ResultFrame.pareto_mask`) is equivalent to the original per-point
  loop (`pareto_front_pointwise`), including dominator attribution.

Around them: the frame-vs-row byte-identical CSV on the GPS study and
unit coverage of the vectorised transforms and their error paths.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    ParetoPoint,
    first_dominators,
    nondominated_mask,
    pareto_front,
    pareto_front_pointwise,
)
from repro.core.resultframe import (
    BOOL_COLUMNS,
    COLUMN_ORDER,
    FLOAT_COLUMNS,
    LABEL_COLUMNS,
    ResultFrame,
    SweepRow,
)
from repro.core.sweep import DesignPoint
from repro.errors import SpecificationError

# Finite doubles across the full exponent range: repr-shortest float
# formatting (str/json) must survive every one of them exactly.
finite_floats = st.floats(allow_nan=False, allow_infinity=False)

# Labels stay comma/newline-free so CSV lines stay parseable; the real
# axis labels never carry either.
labels = st.text(
    alphabet=st.characters(
        blacklist_characters=",\n\r", blacklist_categories=("Cs",)
    ),
    max_size=12,
)

rows_strategy = st.lists(
    st.builds(
        SweepRow,
        volume=finite_floats,
        substrate=labels,
        process=labels,
        tolerance=labels,
        q_model=labels,
        nre=labels,
        weights=labels,
        candidate=labels,
        performance=finite_floats,
        area_percent=finite_floats,
        cost_percent=finite_floats,
        figure_of_merit=finite_floats,
        is_winner=st.booleans(),
        on_pareto_front=st.booleans(),
    ),
    max_size=25,
)


class TestRowBridge:
    @given(rows=rows_strategy)
    def test_round_trip_rows_to_frame_to_rows(self, rows):
        """to_rows(from_rows(rows)) == rows, bit for bit."""
        frame = ResultFrame.from_rows(rows)
        assert len(frame) == len(rows)
        assert frame.to_rows() == tuple(rows)

    @given(rows=rows_strategy)
    def test_round_trip_frame_to_rows_to_frame(self, rows):
        """from_rows(to_rows(frame)) == frame."""
        frame = ResultFrame.from_rows(rows)
        assert ResultFrame.from_rows(frame.to_rows()) == frame

    @given(rows=rows_strategy)
    def test_row_accessor_matches_to_rows(self, rows):
        frame = ResultFrame.from_rows(rows)
        bridged = frame.to_rows()
        for index in range(len(frame)):
            assert frame.row(index) == bridged[index]

    def test_row_values_are_python_scalars(self):
        frame = ResultFrame.from_rows(
            [SweepRow(1.5, "a", "b", "c", "d", "e", "f", "g",
                      0.5, 100.0, 90.0, 1.25, True, False)]
        )
        row = frame.row(0)
        assert type(row.volume) is float
        assert type(row.is_winner) is bool
        assert type(row.candidate) is str

    def test_row_index_out_of_range(self):
        frame = ResultFrame.empty()
        with pytest.raises(SpecificationError, match="out of range"):
            frame.row(0)


class TestSerialisation:
    @given(rows=rows_strategy)
    def test_json_columns_round_trip_exactly(self, rows):
        """Every float survives JSON serialisation bit for bit."""
        frame = ResultFrame.from_rows(rows)
        payload = json.loads(json.dumps(frame.to_json_columns()))
        assert ResultFrame.from_json_columns(payload) == frame

    @given(rows=rows_strategy)
    def test_csv_floats_round_trip_exactly(self, rows):
        """float(str(x)) == x for every metric cell in the CSV."""
        frame = ResultFrame.from_rows(rows)
        lines = frame.csv_lines()
        assert len(lines) == len(rows)
        float_slots = [
            COLUMN_ORDER.index(name) for name in FLOAT_COLUMNS
        ]
        for line, row in zip(lines, rows):
            cells = line.split(",")
            assert len(cells) == len(COLUMN_ORDER)
            for slot, name in zip(float_slots, FLOAT_COLUMNS):
                assert float(cells[slot]) == getattr(row, name)

    @given(rows=rows_strategy)
    def test_csv_matches_the_row_object_path(self, rows):
        """Byte-identical to ','.join(str(v)) over as_dict values."""
        frame = ResultFrame.from_rows(rows)
        legacy = [
            ",".join(str(value) for value in row.as_dict().values())
            for row in rows
        ]
        assert frame.csv_lines() == legacy

    def test_csv_header_is_the_as_dict_key_order(self):
        row = SweepRow(1.0, "s", "p", "t", "q", "n", "w", "c",
                       1.0, 100.0, 100.0, 1.0, True, True)
        assert ResultFrame.csv_header() == ",".join(row.as_dict())


class TestGpsCsvIdentity:
    def test_frame_csv_byte_identical_to_rows_on_gps(self):
        """The golden-locked GPS study prints the same CSV both ways."""
        from repro.gps.study import run_gps_sweep

        report = run_gps_sweep(
            [DesignPoint(), DesignPoint(volume=500.0)]
        )
        legacy = [
            ",".join(str(value) for value in row.as_dict().values())
            for row in report.rows
        ]
        assert report.frame.csv_lines() == legacy
        assert report.frame.csv_header() == ",".join(
            report.rows[0].as_dict()
        )


class TestVectorisedTransforms:
    def _frame(self):
        return ResultFrame.from_rows(
            [
                SweepRow(1e3, "s", "p", "t", "q", "n", "w", "A",
                         1.0, 100.0, 100.0, 1.0, True, True),
                SweepRow(1e3, "s", "p", "t", "q", "n", "w", "B",
                         0.9, 80.0, 110.0, 1.02, False, True),
                SweepRow(1e4, "s", "p", "t", "q", "n", "w", "A",
                         1.0, 100.0, 90.0, 1.11, False, True),
                SweepRow(1e4, "s", "p", "t", "q", "n", "w", "B",
                         0.9, 80.0, 85.0, 1.32, True, True),
            ]
        )

    def test_concat_is_row_concatenation(self):
        frame = self._frame()
        doubled = ResultFrame.concat([frame, frame])
        assert doubled.to_rows() == frame.to_rows() + frame.to_rows()
        assert ResultFrame.concat([]) == ResultFrame.empty()
        assert ResultFrame.concat([frame]) is frame

    def test_take_and_filter(self):
        frame = self._frame()
        rows = frame.to_rows()
        assert frame.take([3, 0]).to_rows() == (rows[3], rows[0])
        winners = frame.filter(frame.column("is_winner"))
        assert [row.candidate for row in winners.to_rows()] == ["A", "B"]
        with pytest.raises(SpecificationError, match="mask"):
            frame.filter([True])

    def test_sort_is_stable_and_primary_first(self):
        frame = self._frame()
        by_candidate = frame.sort(["candidate"])
        assert [r.candidate for r in by_candidate.to_rows()] == [
            "A", "A", "B", "B",
        ]
        # Stability: within each candidate the original (volume) order
        # survives.
        assert [r.volume for r in by_candidate.to_rows()] == [
            1e3, 1e4, 1e3, 1e4,
        ]
        with pytest.raises(SpecificationError):
            frame.sort([])

    def test_winner_counts_and_best_index(self):
        frame = self._frame()
        assert frame.winner_counts() == {"A": 1, "B": 1}
        assert frame.best_index() == 3
        assert ResultFrame.empty().winner_counts() == {}
        with pytest.raises(SpecificationError, match="empty"):
            ResultFrame.empty().best_index()

    def test_pareto_mask_orientation(self):
        # Row 1 dominates row 0 (better everywhere); rows 2/3 differ on
        # volume only, which is not an objective.
        frame = ResultFrame.from_rows(
            [
                SweepRow(1.0, "s", "p", "t", "q", "n", "w", "A",
                         0.5, 120.0, 120.0, 0.5, False, False),
                SweepRow(1.0, "s", "p", "t", "q", "n", "w", "B",
                         1.0, 80.0, 80.0, 1.5, True, True),
                SweepRow(2.0, "s", "p", "t", "q", "n", "w", "C",
                         1.0, 80.0, 80.0, 1.5, False, True),
            ]
        )
        assert frame.pareto_mask().tolist() == [False, True, True]

    def test_column_views_are_read_only(self):
        frame = self._frame()
        with pytest.raises(ValueError):
            frame.column("volume")[0] = 7.0
        with pytest.raises(SpecificationError, match="unknown result"):
            frame.column("bogus")

    def test_read_only_views_are_still_copied(self):
        """A read-only *view* aliases a writeable base; the frame must
        copy it or mutate when the base does."""
        frame = self._frame()
        base = np.array([5.0, 6.0, 7.0, 8.0])
        view = base[:]
        view.flags.writeable = False
        columns = dict(frame.to_json_columns())
        columns["volume"] = view
        aliased = ResultFrame.from_columns(columns)
        base[:] = -1.0
        assert aliased.column("volume").tolist() == [5.0, 6.0, 7.0, 8.0]

    def test_column_typing(self):
        frame = self._frame()
        for name in FLOAT_COLUMNS:
            assert frame.column(name).dtype == np.float64
        for name in BOOL_COLUMNS:
            assert frame.column(name).dtype == np.bool_
        for name in LABEL_COLUMNS:
            assert frame.column(name).dtype == object

    def test_malformed_columns_rejected(self):
        with pytest.raises(SpecificationError, match="missing"):
            ResultFrame.from_columns({"volume": [1.0]})
        good = {name: [] for name in COLUMN_ORDER}
        with pytest.raises(SpecificationError, match="unexpected"):
            ResultFrame.from_columns({**good, "extra": []})
        ragged = {name: [] for name in COLUMN_ORDER}
        ragged["volume"] = [1.0]
        with pytest.raises(SpecificationError, match="entries"):
            ResultFrame.from_columns(ragged)

    def test_non_bool_flag_values_rejected(self):
        """Truthiness coercion ('false' -> True) must never happen."""
        frame = self._frame()
        columns = frame.to_json_columns()
        for bad in (["false"] * 4, [0, 1, 0, 1], ["True"] * 4):
            with pytest.raises(SpecificationError, match="booleans"):
                ResultFrame.from_columns(
                    {**columns, "is_winner": bad}
                )
        # Actual booleans (plain or numpy) are of course fine.
        rebuilt = ResultFrame.from_columns(
            {**columns, "is_winner": [True, False, True, False]}
        )
        assert rebuilt.column("is_winner").tolist() == [
            True, False, True, False,
        ]

    def test_rendered_columns_is_the_shared_contract(self):
        frame = self._frame()
        rendered = frame.rendered_columns()
        assert [",".join(parts) for parts in zip(*rendered)] == (
            frame.csv_lines()
        )
        assert frame.rendered_columns(["candidate"]) == [
            ["A", "B", "A", "B"]
        ]


# Objective values drawn from a small pool force ties and duplicated
# points — the edge cases of dominance (equal points never dominate).
tied_floats = st.sampled_from([0.25, 0.5, 0.75, 1.0, 1.25])
objective_floats = st.one_of(
    tied_floats, st.floats(min_value=0.01, max_value=2.0)
)


class TestVectorisedPareto:
    @settings(max_examples=200)
    @given(
        raw=st.lists(
            st.tuples(objective_floats, objective_floats, objective_floats),
            min_size=1,
            max_size=30,
        )
    )
    def test_vectorised_front_equals_pointwise_loop(self, raw):
        """The tentpole equivalence: pareto_front == the O(n²) loop."""
        points = [
            ParetoPoint(f"p{i}", *values) for i, values in enumerate(raw)
        ]
        assert pareto_front(points) == pareto_front_pointwise(points)

    @settings(max_examples=100)
    @given(
        raw=st.lists(
            st.tuples(objective_floats, objective_floats, objective_floats),
            min_size=1,
            max_size=40,
        )
    )
    def test_first_dominators_matches_scalar_dominates(self, raw):
        points = [
            ParetoPoint(f"p{i}", *values) for i, values in enumerate(raw)
        ]
        dominators = first_dominators(
            [p.performance for p in points],
            [p.size_ratio for p in points],
            [p.cost_ratio for p in points],
        )
        for j, point in enumerate(points):
            expected = next(
                (
                    i
                    for i, other in enumerate(points)
                    if other.dominates(point)
                ),
                -1,
            )
            assert dominators[j] == expected
        mask = nondominated_mask(
            [p.performance for p in points],
            [p.size_ratio for p in points],
            [p.cost_ratio for p in points],
        )
        assert mask.tolist() == [d == -1 for d in dominators.tolist()]

    def test_blocked_sweep_covers_every_block_boundary(self):
        """Force multiple blocks through the kernel's block budget."""
        from repro.core import pareto as pareto_module

        n = 64
        rng = np.random.default_rng(7)
        perf = rng.uniform(0.1, 1.0, n)
        size = rng.uniform(0.5, 2.0, n)
        cost = rng.uniform(0.5, 2.0, n)
        whole = first_dominators(perf, size, cost)
        original = pareto_module._BLOCK_BUDGET
        try:
            pareto_module._BLOCK_BUDGET = n * 5  # block of 5 columns
            blocked = first_dominators(perf, size, cost)
        finally:
            pareto_module._BLOCK_BUDGET = original
        assert np.array_equal(whole, blocked)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SpecificationError):
            first_dominators([1.0, 2.0], [1.0], [1.0, 2.0])

    def test_empty_arrays_yield_empty_mask(self):
        assert nondominated_mask([], [], []).tolist() == []

    def test_nan_rows_stay_on_the_front(self):
        """NaN comparisons are all False, so nothing dominates a NaN
        row and a NaN row dominates nothing — the mask, the dominator
        kernel and the pointwise loop must all agree on that."""
        nan = float("nan")
        perf = [1.0, nan, 0.5, 0.5]
        size = [1.0, 1.0, nan, 2.0]
        cost = [1.0, 1.0, 1.0, 2.0]
        # Row 3 is dominated by row 0; rows 1/2 carry NaN and survive.
        assert nondominated_mask(perf, size, cost).tolist() == [
            True, True, True, False,
        ]
        assert first_dominators(perf, size, cost).tolist() == [
            -1, -1, -1, 0,
        ]
        points = [
            ParetoPoint(f"p{i}", p, s, c)
            for i, (p, s, c) in enumerate(zip(perf, size, cost))
        ]
        analysis = pareto_front_pointwise(points)
        assert [point.name for point in analysis.front] == [
            "p0", "p1", "p2",
        ]
