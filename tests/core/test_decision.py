"""Decision rendering (step 5) on the GPS study result."""

from __future__ import annotations

from repro.core.decision import (
    fig3_table,
    fig5_table,
    fig6_table,
    full_report,
    recommendation,
)


class TestTables:
    def test_fig3_table_rows(self, gps_result):
        table = fig3_table(gps_result)
        assert len(table) == 4
        text = table.render()
        assert "100%" in text
        assert "PCB/SMD" in text

    def test_fig5_table_has_breakdown_columns(self, gps_result):
        table = fig5_table(gps_result)
        assert "thereof: chip" in table.columns
        assert "Yield loss" in table.columns
        assert len(table) == 4

    def test_fig6_table_products(self, gps_result):
        text = fig6_table(gps_result).render()
        assert "Perf." in text
        assert "1/Size" in text

    def test_recommendation_names_winner(self, gps_result):
        text = recommendation(gps_result)
        assert "MCM-D(Si)/FC/IP&SMD" in text
        assert "figure of merit" in text

    def test_full_report_contains_everything(self, gps_result):
        text = full_report(gps_result)
        assert "Fig. 3" in text
        assert "Fig. 5" in text
        assert "Fig. 6" in text
        assert "Recommended build-up" in text
