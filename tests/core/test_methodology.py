"""The five-step methodology driver on synthetic candidates."""

from __future__ import annotations

import pytest

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import LAMINATE_RULE, MCM_D_RULE, PCB_RULE
from repro.core.figure_of_merit import FomWeights
from repro.core.methodology import (
    CandidateBuildUp,
    assess_candidate,
    run_study,
)
from repro.cost.moe.builder import FlowBuilder
from repro.errors import SpecificationError


def toy_flow(chip_cost: float):
    def factory(area_cm2: float):
        return (
            FlowBuilder("toy")
            .carrier("sub", cost=area_cm2 * 1.0, yield_=0.99)
            .attach(
                "chip",
                quantity=1,
                component_cost=chip_cost,
                component_yield=0.99,
                attach_cost=0.1,
                attach_yield=0.99,
            )
            .test("final", cost=1.0, coverage=0.99)
            .build()
        )

    return factory


def candidate(
    name="ref",
    area=1000.0,
    chip_cost=50.0,
    performance=1.0,
    mcm=False,
):
    return CandidateBuildUp(
        name=name,
        footprints=[Footprint("chip", area, MountKind.PACKAGED)],
        substrate_rule=MCM_D_RULE if mcm else PCB_RULE,
        laminate=LAMINATE_RULE if mcm else None,
        flow_factory=toy_flow(chip_cost),
        fixed_performance=performance,
    )


class TestCandidateValidation:
    def test_needs_performance_source(self):
        with pytest.raises(SpecificationError):
            CandidateBuildUp(
                name="bad",
                footprints=[Footprint("c", 1.0, MountKind.SMD)],
                substrate_rule=PCB_RULE,
                flow_factory=toy_flow(1.0),
            )

    def test_rejects_both_performance_sources(self):
        from repro.gps.filters_chain import technology_assignments

        with pytest.raises(SpecificationError):
            CandidateBuildUp(
                name="bad",
                footprints=[Footprint("c", 1.0, MountKind.SMD)],
                substrate_rule=PCB_RULE,
                flow_factory=toy_flow(1.0),
                filter_assignments=technology_assignments(1),
                fixed_performance=1.0,
            )


class TestAssessment:
    def test_fixed_performance_skips_circuit_analysis(self):
        assessment = assess_candidate(candidate(performance=0.8))
        assert assessment.performance == 0.8
        assert assessment.chain is None

    def test_area_feeds_cost(self):
        """Bigger substrate means higher substrate cost in the flow."""
        small = assess_candidate(candidate(area=100.0))
        large = assess_candidate(candidate(area=10_000.0))
        assert (
            large.cost.cost_by_tag[
                list(large.cost.cost_by_tag)[0]
            ]
            is not None
        )
        assert large.final_cost > small.final_cost


class TestStudy:
    def make_study(self):
        return run_study(
            [
                candidate("ref", area=1000.0, chip_cost=50.0),
                candidate(
                    "small",
                    area=300.0,
                    chip_cost=50.0,
                    performance=0.9,
                    mcm=True,
                ),
            ]
        )

    def test_reference_row_is_100_percent(self):
        result = self.make_study()
        row = result.row("ref")
        assert row.area_percent == pytest.approx(100.0)
        assert row.cost_percent == pytest.approx(100.0)
        assert row.fom.figure_of_merit == pytest.approx(1.0)

    def test_row_lookup_unknown_raises(self):
        with pytest.raises(SpecificationError):
            self.make_study().row("nope")

    def test_winner_is_top_ranked(self):
        result = self.make_study()
        ranked = result.ranked()
        assert result.winner is ranked[0]
        assert (
            ranked[0].fom.figure_of_merit
            >= ranked[-1].fom.figure_of_merit
        )

    def test_weights_change_ranking(self):
        """With a huge cost weight the cheap reference wins; with a huge
        size weight the small module wins."""
        candidates = [
            candidate("ref", area=1000.0, chip_cost=10.0),
            candidate(
                "small", area=200.0, chip_cost=30.0, mcm=True
            ),
        ]
        by_cost = run_study(
            candidates, weights=FomWeights(size=0.0, cost=5.0)
        )
        by_size = run_study(
            candidates, weights=FomWeights(size=5.0, cost=0.0)
        )
        assert by_cost.winner.assessment.name == "ref"
        assert by_size.winner.assessment.name == "small"

    def test_empty_candidates_rejected(self):
        with pytest.raises(SpecificationError):
            run_study([])

    def test_bad_reference_index_rejected(self):
        with pytest.raises(SpecificationError):
            run_study([candidate()], reference=3)
