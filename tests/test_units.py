"""Unit parsing, formatting and conversion helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitError
from repro.units import (
    check_yield,
    cm2_to_mm2,
    db,
    db_voltage,
    format_si,
    fraction,
    from_db,
    mm2_to_cm2,
    parse_quantity,
    percent,
)


class TestParseQuantity:
    def test_plain_number(self):
        assert parse_quantity("200") == 200.0

    def test_resistance_with_unit(self):
        assert parse_quantity("200 ohm") == 200.0

    def test_kilo_ohm(self):
        assert parse_quantity("100kohm") == pytest.approx(100e3)

    def test_picofarad(self):
        assert parse_quantity("50pF") == pytest.approx(50e-12)

    def test_nanohenry(self):
        assert parse_quantity("40nH") == pytest.approx(40e-9)

    def test_gigahertz(self):
        assert parse_quantity("1.575GHz") == pytest.approx(1.575e9)

    def test_megahertz(self):
        assert parse_quantity("175MHz") == pytest.approx(175e6)

    def test_negative_value(self):
        assert parse_quantity("-3") == -3.0

    def test_scientific_notation(self):
        assert parse_quantity("1e-9F") == pytest.approx(1e-9)

    def test_whitespace_tolerated(self):
        assert parse_quantity("  22 pF  ") == pytest.approx(22e-12)

    def test_expected_unit_match(self):
        assert parse_quantity("50pF", expect_unit="F") == pytest.approx(
            50e-12
        )

    def test_expected_unit_mismatch_raises(self):
        with pytest.raises(UnitError):
            parse_quantity("50pF", expect_unit="H")

    def test_garbage_raises(self):
        with pytest.raises(UnitError):
            parse_quantity("not a number")

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_quantity("5 parsec")


class TestFormatSi:
    def test_gigahertz(self):
        assert format_si(1.575e9, "Hz") == "1.57 GHz"

    def test_picofarad(self):
        assert format_si(50e-12, "F") == "50 pF"

    def test_zero(self):
        assert format_si(0.0, "H") == "0 H"

    def test_unity(self):
        assert format_si(1.0, "ohm") == "1 ohm"

    def test_negative(self):
        assert format_si(-3e-3, "F") == "-3 mF"

    @given(
        st.floats(
            min_value=1e-14, max_value=1e13, allow_nan=False
        )
    )
    def test_roundtrip_through_parse(self, value):
        """format -> parse recovers the value within format precision."""
        text = format_si(value, "Hz", digits=9)
        recovered = parse_quantity(text)
        assert recovered == pytest.approx(value, rel=1e-6)


class TestAreaConversions:
    def test_mm2_to_cm2(self):
        assert mm2_to_cm2(250.0) == pytest.approx(2.5)

    def test_cm2_to_mm2(self):
        assert cm2_to_mm2(2.5) == pytest.approx(250.0)

    @given(st.floats(min_value=1e-6, max_value=1e9, allow_nan=False))
    def test_roundtrip(self, area):
        assert cm2_to_mm2(mm2_to_cm2(area)) == pytest.approx(area)


class TestDecibels:
    def test_db_of_ten(self):
        assert db(10.0) == pytest.approx(10.0)

    def test_db_voltage_of_ten(self):
        assert db_voltage(10.0) == pytest.approx(20.0)

    def test_from_db_inverse(self):
        assert from_db(db(42.0)) == pytest.approx(42.0)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            db(0.0)
        with pytest.raises(UnitError):
            db_voltage(-1.0)

    @given(st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
    def test_db_monotonic_roundtrip(self, ratio):
        assert from_db(db(ratio)) == pytest.approx(ratio, rel=1e-9)


class TestPercentAndYield:
    def test_percent(self):
        assert percent(0.937) == pytest.approx(93.7)

    def test_fraction(self):
        assert fraction(93.7) == pytest.approx(0.937)

    def test_check_yield_accepts_valid(self):
        assert check_yield(0.99) == 0.99
        assert check_yield(1.0) == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.0001, math.inf])
    def test_check_yield_rejects_invalid(self, bad):
        with pytest.raises(UnitError):
            check_yield(bad)
