"""Rework policies in the MOE engine."""

from __future__ import annotations

import pytest

from repro.cost.moe import (
    FlowBuilder,
    ReworkPolicy,
    TestStep,
    evaluate,
    simulate,
)
from repro.cost.moe.flow import ProductionFlow
from repro.errors import CostModelError


def flow_with_rework(policy: ReworkPolicy | None) -> ProductionFlow:
    builder = FlowBuilder("rework-line")
    builder.carrier("sub", cost=10.0, yield_=0.80)
    builder.attach(
        "chip", 1, 100.0, 0.95, 0.1, 1.0,
    )
    flow = builder._flow  # append a test with rework manually
    flow.add(
        TestStep(
            "ID2", "final", test_cost=5.0, coverage=0.99, rework=policy
        )
    )
    flow.validate()
    return flow


class TestReworkPolicy:
    def test_recovery_fraction(self):
        policy = ReworkPolicy(1.0, 0.5, max_attempts=2)
        assert policy.recovery_fraction == pytest.approx(0.75)

    def test_expected_attempts(self):
        policy = ReworkPolicy(1.0, 0.5, max_attempts=2)
        assert policy.expected_attempts == pytest.approx(1.5)

    def test_expected_cost(self):
        policy = ReworkPolicy(2.0, 0.5, max_attempts=2)
        assert policy.expected_cost == pytest.approx(3.0)

    def test_perfect_rework(self):
        policy = ReworkPolicy(1.0, 1.0)
        assert policy.recovery_fraction == 1.0
        assert policy.expected_attempts == 1.0

    def test_validation(self):
        with pytest.raises(CostModelError):
            ReworkPolicy(-1.0, 0.5)
        with pytest.raises(CostModelError):
            ReworkPolicy(1.0, 0.0)
        with pytest.raises(CostModelError):
            ReworkPolicy(1.0, 0.5, max_attempts=0)


class TestAnalyticRework:
    def test_rework_ships_more_units(self):
        without = evaluate(flow_with_rework(None))
        with_rework = evaluate(
            flow_with_rework(ReworkPolicy(2.0, 0.8, max_attempts=2))
        )
        assert with_rework.shipped_fraction > without.shipped_fraction

    def test_rework_pays_when_units_are_expensive(self):
        """Repairing a 100-unit module for 2 beats scrapping it."""
        without = evaluate(flow_with_rework(None))
        with_rework = evaluate(
            flow_with_rework(ReworkPolicy(2.0, 0.8, max_attempts=2))
        )
        assert (
            with_rework.final_cost_per_shipped
            < without.final_cost_per_shipped
        )

    def test_expensive_rework_does_not_pay(self):
        """Repair costing more than the module is a losing game."""
        cheap = evaluate(
            flow_with_rework(ReworkPolicy(2.0, 0.8, max_attempts=2))
        )
        expensive = evaluate(
            flow_with_rework(ReworkPolicy(500.0, 0.8, max_attempts=2))
        )
        assert (
            expensive.final_cost_per_shipped
            > cheap.final_cost_per_shipped
        )

    def test_repaired_units_are_fault_free(self):
        """Escaped-unit *counts* come only from coverage misses, so
        rework leaves them unchanged (it only rescues detected units)."""
        with_rework = evaluate(
            flow_with_rework(ReworkPolicy(2.0, 1.0, max_attempts=1))
        )
        without = evaluate(flow_with_rework(None))
        escapes_with = with_rework.escape_fraction * (
            with_rework.shipped_units
        )
        escapes_without = without.escape_fraction * (
            without.shipped_units
        )
        assert escapes_with == pytest.approx(escapes_without, rel=1e-6)


class TestMonteCarloRework:
    def test_agreement_with_analytic(self):
        policy = ReworkPolicy(2.0, 0.7, max_attempts=3)
        analytic = evaluate(flow_with_rework(policy))
        sampled = simulate(
            flow_with_rework(policy), units=60_000, seed=21
        )
        assert sampled.final_cost_per_shipped == pytest.approx(
            analytic.final_cost_per_shipped, rel=0.02
        )
        assert sampled.shipped_fraction == pytest.approx(
            analytic.shipped_fraction, abs=0.01
        )

    def test_scrap_only_unrepairable(self):
        policy = ReworkPolicy(2.0, 1.0, max_attempts=1)
        sampled = simulate(
            flow_with_rework(policy), units=20_000, seed=2
        )
        # Perfect single-attempt repair: nothing is ever scrapped.
        assert sampled.scrapped_units == 0
