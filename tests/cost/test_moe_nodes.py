"""MOE step types."""

from __future__ import annotations

import pytest

from repro.cost.moe.nodes import (
    AttachStep,
    CarrierStep,
    CostTag,
    InspectStep,
    ProcessStep,
    TestStep,
    UnitState,
)
from repro.errors import CostModelError
from repro.units import UnitError


class TestCarrierStep:
    def test_cost_and_yield(self):
        step = CarrierStep("ID0", "PCB", unit_cost=2.3, carrier_yield=0.9999)
        assert step.cost == 2.3
        assert step.yield_ == 0.9999
        assert step.cost_tag is CostTag.SUBSTRATE

    def test_rejects_negative_cost(self):
        with pytest.raises(CostModelError):
            CarrierStep("ID0", "PCB", unit_cost=-1.0, carrier_yield=0.99)

    def test_rejects_bad_yield(self):
        with pytest.raises(UnitError):
            CarrierStep("ID0", "PCB", unit_cost=1.0, carrier_yield=0.0)


class TestProcessStep:
    def test_defaults(self):
        step = ProcessStep("ID1", "reroute", unit_cost=0.5)
        assert step.yield_ == 1.0
        assert step.cost_tag is CostTag.PROCESS

    def test_custom_tag(self):
        step = ProcessStep(
            "ID1", "pack", 7.3, 0.968, CostTag.PACKAGING
        )
        assert step.cost_tag is CostTag.PACKAGING


class TestAttachStep:
    def make(self, **overrides):
        defaults = dict(
            node_id="ID5",
            name="SMD",
            quantity=112,
            component_cost=0.1,
            component_yield=1.0,
            attach_cost=0.01,
            attach_yield=0.9999,
            per_operation=True,
        )
        defaults.update(overrides)
        return AttachStep(**defaults)

    def test_costs_scale_with_quantity(self):
        step = self.make()
        assert step.material_cost == pytest.approx(11.2)
        assert step.operation_cost == pytest.approx(1.12)
        assert step.cost == pytest.approx(12.32)

    def test_per_operation_yield_compounds(self):
        step = self.make()
        assert step.yield_ == pytest.approx(0.9999**112)

    def test_step_level_yield(self):
        step = self.make(per_operation=False, attach_yield=0.933)
        assert step.yield_ == pytest.approx(0.933)

    def test_component_yield_always_compounds(self):
        step = self.make(quantity=2, component_yield=0.95, attach_yield=1.0)
        assert step.yield_ == pytest.approx(0.95**2)

    def test_zero_quantity_neutral(self):
        step = self.make(quantity=0)
        assert step.cost == 0.0
        assert step.yield_ == 1.0

    def test_rejects_negative_quantity(self):
        with pytest.raises(CostModelError):
            self.make(quantity=-1)

    def test_rejects_negative_cost(self):
        with pytest.raises(CostModelError):
            self.make(component_cost=-0.1)


class TestTestStep:
    def test_coverage_bounds(self):
        step = TestStep("ID6", "final", test_cost=10.0, coverage=0.99)
        assert step.cost == 10.0
        assert step.cost_tag is CostTag.TEST
        with pytest.raises(CostModelError):
            TestStep("ID6", "final", test_cost=10.0, coverage=1.5)

    def test_inspect_is_free_and_perfect(self):
        step = InspectStep("ID8", "screen", 0.0, 1.0)
        assert step.cost == 0.0
        assert step.coverage == 1.0


class TestUnitState:
    def test_cost_accumulation_by_tag(self):
        state = UnitState()
        state.add_cost(5.0, CostTag.CHIP)
        state.add_cost(3.0, CostTag.CHIP)
        state.add_cost(1.0, CostTag.TEST)
        assert state.accumulated_cost == pytest.approx(9.0)
        assert state.cost_by_tag[CostTag.CHIP] == pytest.approx(8.0)
