"""Chip-cost calibration against the Fig. 5 targets."""

from __future__ import annotations

import pytest

from repro.cost.calibration import (
    CalibrationResult,
    FIG5_TARGET_RATIOS,
    calibrate_chip_costs,
)
from repro.errors import CalibrationError


def linear_toy_evaluator(rf_pkg, rf_bare, dsp_pkg, dsp_bare):
    """A toy cost structure with an exact solution, for fast tests."""
    base = 100.0 + rf_pkg + dsp_pkg
    return {
        2: (110.0 + rf_bare + dsp_bare) / base,
        3: (120.0 + rf_bare + dsp_bare) / base,
        4: (112.0 + rf_bare + dsp_bare) / base,
    }


class TestCalibrationMechanics:
    def test_toy_problem_converges(self):
        result = calibrate_chip_costs(
            evaluate_ratios=linear_toy_evaluator, bare_discount=1.0
        )
        assert isinstance(result, CalibrationResult)
        assert result.residual_norm < 0.5

    def test_rejects_bad_discount(self):
        with pytest.raises(CalibrationError):
            calibrate_chip_costs(
                evaluate_ratios=linear_toy_evaluator, bare_discount=0.0
            )

    def test_bare_discount_applied(self):
        result = calibrate_chip_costs(
            evaluate_ratios=linear_toy_evaluator, bare_discount=0.9
        )
        assert result.rf_bare == pytest.approx(0.9 * result.rf_packaged)
        assert result.dsp_bare == pytest.approx(0.9 * result.dsp_packaged)

    def test_targets_recorded(self):
        result = calibrate_chip_costs(
            evaluate_ratios=linear_toy_evaluator
        )
        assert result.target_ratios == FIG5_TARGET_RATIOS


@pytest.mark.slow
class TestFullCalibration:
    def test_gps_calibration_preserves_ordering(self):
        """The headline property: PCB < WB/SMD < FC/IP&SMD < FC/IP."""
        result = calibrate_chip_costs()
        assert result.ordering_preserved
        assert result.max_ratio_error < 0.05

    def test_gps_calibration_costs_positive(self):
        result = calibrate_chip_costs()
        assert result.rf_packaged > 0
        assert result.dsp_packaged > result.rf_packaged
