"""Production flow container and builder."""

from __future__ import annotations

import pytest

from repro.cost.moe.builder import FlowBuilder, flow_node_summary, render_flow
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import CarrierStep, TestStep
from repro.errors import FlowError


def simple_flow() -> ProductionFlow:
    return (
        FlowBuilder("test-line")
        .carrier("PCB", cost=2.0, yield_=0.99)
        .process("reroute", cost=1.0, yield_=0.999)
        .attach(
            "chips",
            quantity=2,
            component_cost=10.0,
            component_yield=0.95,
            attach_cost=0.1,
            attach_yield=0.99,
        )
        .test("final", cost=5.0, coverage=0.99)
        .build()
    )


class TestProductionFlow:
    def test_direct_cost_sums_steps(self):
        flow = simple_flow()
        assert flow.direct_cost() == pytest.approx(
            2.0 + 1.0 + 2 * 10.1 + 5.0
        )

    def test_overall_yield(self):
        flow = simple_flow()
        expected = 0.99 * 0.999 * (0.95**2) * (0.99**2)
        assert flow.overall_yield() == pytest.approx(expected)

    def test_step_lookup(self):
        flow = simple_flow()
        assert flow.step("ID0").name == "PCB"
        with pytest.raises(FlowError):
            flow.step("ID99")

    def test_duplicate_node_id_rejected(self):
        flow = ProductionFlow("t")
        flow.add(CarrierStep("ID0", "a", 1.0, 0.99))
        with pytest.raises(FlowError):
            flow.add(TestStep("ID0", "b", 1.0, 0.99))

    def test_validation_requires_test(self):
        flow = ProductionFlow("t")
        flow.add(CarrierStep("ID0", "a", 1.0, 0.99))
        with pytest.raises(FlowError):
            flow.validate()

    def test_validation_requires_carrier(self):
        flow = ProductionFlow("t")
        flow.add(TestStep("ID0", "b", 1.0, 0.99))
        with pytest.raises(FlowError):
            flow.validate()

    def test_validation_rejects_negative_nre(self):
        flow = simple_flow()
        flow.nre = -1.0
        with pytest.raises(FlowError):
            flow.validate()

    def test_typed_accessors(self):
        flow = simple_flow()
        assert len(flow.tests()) == 1
        assert len(flow.attach_steps()) == 1
        assert len(flow) == 4


class TestBuilder:
    def test_auto_node_ids_sequential(self):
        flow = simple_flow()
        assert [s.node_id for s in flow.steps] == [
            "ID0",
            "ID1",
            "ID2",
            "ID3",
        ]

    def test_explicit_node_id(self):
        flow = (
            FlowBuilder("t")
            .carrier("PCB", 1.0, 0.99, node_id="ID7")
            .test("final", 1.0, 0.99)
            .build()
        )
        assert flow.steps[0].node_id == "ID7"
        assert flow.steps[1].node_id == "ID8"

    def test_build_validates(self):
        builder = FlowBuilder("t").carrier("PCB", 1.0, 0.99)
        with pytest.raises(FlowError):
            builder.build()


class TestRendering:
    def test_render_mentions_all_steps(self):
        text = render_flow(simple_flow())
        for name in ("PCB", "reroute", "chips", "final"):
            assert name in text
        assert "SCRAP" in text
        assert "Modules to be shipped" in text

    def test_node_summary_includes_collector(self):
        rows = flow_node_summary(simple_flow())
        assert rows[-1] == ("ship", "Collector", "Modules to be shipped")
        kinds = [kind for _, kind, _ in rows]
        assert "Carrier" in kinds
        assert "Assembly" in kinds
        assert "Test" in kinds

    def test_node_summary_rejects_empty(self):
        with pytest.raises(FlowError):
            flow_node_summary(ProductionFlow("empty"))
