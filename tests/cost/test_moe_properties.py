"""Property-based invariants of the MOE evaluators.

Economic sanity laws that must hold for *any* production flow:

* the final cost per shipped unit is never below the direct cost;
* improving any yield never increases the final cost;
* raising test coverage never increases the shipped-defect fraction;
* scrap cost at a step never exceeds the cost sunk into those units.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.moe import FlowBuilder, evaluate


def build_flow(
    carrier_yield: float,
    chip_yield: float,
    coverage: float,
    chip_cost: float = 50.0,
):
    return (
        FlowBuilder("prop")
        .carrier("sub", cost=8.0, yield_=carrier_yield)
        .attach("chip", 2, chip_cost, chip_yield, 0.1, 0.999)
        .test("final", cost=4.0, coverage=coverage)
        .build()
    )


yields = st.floats(min_value=0.6, max_value=1.0)
coverages = st.floats(min_value=0.0, max_value=1.0)


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(yields, yields, coverages)
    def test_final_at_least_direct(self, cy, ky, cov):
        report = evaluate(build_flow(cy, ky, cov))
        assert report.final_cost_per_shipped >= (
            report.direct_cost_per_unit - 1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(yields, yields, st.floats(min_value=0.5, max_value=0.99))
    def test_better_carrier_yield_never_costs_more(self, cy, ky, cov):
        worse = evaluate(build_flow(cy * 0.9, ky, cov))
        better = evaluate(build_flow(cy, ky, cov))
        assert (
            better.final_cost_per_shipped
            <= worse.final_cost_per_shipped + 1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(yields, yields, st.floats(min_value=0.1, max_value=0.9))
    def test_more_coverage_fewer_escapes(self, cy, ky, cov):
        low = evaluate(build_flow(cy, ky, cov))
        high = evaluate(build_flow(cy, ky, min(1.0, cov + 0.1)))
        assert high.escape_fraction <= low.escape_fraction + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(yields, yields, coverages)
    def test_unit_conservation(self, cy, ky, cov):
        report = evaluate(build_flow(cy, ky, cov))
        assert report.shipped_units + report.scrapped_units == (
            pytest.approx(report.started_units)
        )

    @settings(max_examples=40, deadline=None)
    @given(yields, yields, coverages)
    def test_scrap_cost_bounded_by_sunk_cost(self, cy, ky, cov):
        report = evaluate(build_flow(cy, ky, cov))
        for step_report in report.steps:
            if step_report.scrap_units > 0:
                per_unit = step_report.scrap_cost / step_report.scrap_units
                assert per_unit <= report.direct_cost_per_unit + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        yields,
        yields,
        coverages,
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_final_monotone_in_chip_cost(self, cy, ky, cov, chip_cost):
        cheap = evaluate(build_flow(cy, ky, cov, chip_cost))
        pricey = evaluate(build_flow(cy, ky, cov, chip_cost * 1.2))
        assert (
            pricey.final_cost_per_shipped
            > cheap.final_cost_per_shipped
        )

    @settings(max_examples=30, deadline=None)
    @given(yields, yields)
    def test_zero_coverage_ships_everything(self, cy, ky):
        report = evaluate(build_flow(cy, ky, 0.0))
        assert report.shipped_fraction == pytest.approx(1.0)
        assert report.yield_loss_per_shipped == pytest.approx(0.0)
