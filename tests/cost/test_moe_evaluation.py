"""MOE evaluation: analytic expectations, Monte Carlo, and Eq. (1).

The central cross-check of the cost substrate: the closed-form evaluator
and the Monte Carlo simulator must agree (within sampling error) on
every quantity, for hand-built flows and for randomly generated ones.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.moe.analytic import evaluate
from repro.cost.moe.builder import FlowBuilder
from repro.cost.moe.nodes import CostTag
from repro.cost.moe.report import fig5_row
from repro.cost.moe.simulate import simulate
from repro.errors import FlowError


def perfect_flow():
    """Everything yields 100 %: final cost equals direct cost."""
    return (
        FlowBuilder("perfect")
        .carrier("sub", cost=2.0, yield_=1.0)
        .attach(
            "chip",
            quantity=1,
            component_cost=10.0,
            component_yield=1.0,
            attach_cost=0.5,
            attach_yield=1.0,
        )
        .test("final", cost=3.0, coverage=1.0)
        .build()
    )


def lossy_flow(carrier_yield=0.9, coverage=0.99, nre=0.0):
    return (
        FlowBuilder("lossy", nre=nre)
        .carrier("sub", cost=10.0, yield_=carrier_yield)
        .attach(
            "chip",
            quantity=2,
            component_cost=50.0,
            component_yield=0.95,
            attach_cost=0.1,
            attach_yield=0.99,
        )
        .test("final", cost=10.0, coverage=coverage)
        .build()
    )


class TestAnalyticBasics:
    def test_perfect_flow_no_yield_loss(self):
        report = evaluate(perfect_flow())
        assert report.yield_loss_per_shipped == pytest.approx(0.0)
        assert report.final_cost_per_shipped == pytest.approx(15.5)
        assert report.shipped_fraction == pytest.approx(1.0)
        assert report.escape_fraction == pytest.approx(0.0)

    def test_direct_cost_is_flow_direct_cost(self):
        flow = lossy_flow()
        report = evaluate(flow)
        assert report.direct_cost_per_unit == pytest.approx(
            flow.direct_cost()
        )

    def test_chip_cost_tagged(self):
        report = evaluate(lossy_flow())
        assert report.chip_cost_per_unit == pytest.approx(100.0)
        assert report.cost_by_tag[CostTag.SUBSTRATE] == pytest.approx(10.0)

    def test_eq1_identity(self):
        """Eq. (1): final = direct + scrap/shipped + NRE/shipped."""
        report = evaluate(lossy_flow())
        total_scrap = sum(s.scrap_cost for s in report.steps)
        expected = (
            report.direct_cost_per_unit
            + total_scrap / report.shipped_units
        )
        assert report.final_cost_per_shipped == pytest.approx(expected)

    def test_spend_conservation(self):
        """Money is conserved: spend = shipped*direct + scrap cost."""
        report = evaluate(lossy_flow(), volume=1.0)
        spend = (
            report.shipped_units * report.direct_cost_per_unit
            + sum(s.scrap_cost for s in report.steps)
        )
        per_shipped = spend / report.shipped_units
        assert per_shipped == pytest.approx(
            report.final_cost_per_shipped - report.nre_per_shipped
        )

    def test_full_coverage_no_escapes(self):
        report = evaluate(lossy_flow(coverage=1.0))
        assert report.escape_fraction == pytest.approx(0.0)

    def test_partial_coverage_escapes(self):
        report = evaluate(lossy_flow(coverage=0.9))
        assert report.escape_fraction > 0.0

    def test_nre_amortised_over_shipped(self):
        with_nre = evaluate(lossy_flow(nre=1000.0), volume=100.0)
        without = evaluate(lossy_flow(nre=0.0), volume=100.0)
        assert with_nre.nre_per_shipped == pytest.approx(
            1000.0 / with_nre.shipped_units
        )
        assert with_nre.final_cost_per_shipped > (
            without.final_cost_per_shipped
        )

    def test_worse_yield_raises_final_cost(self):
        good = evaluate(lossy_flow(carrier_yield=0.99))
        bad = evaluate(lossy_flow(carrier_yield=0.80))
        assert bad.final_cost_per_shipped > good.final_cost_per_shipped

    def test_rejects_bad_volume(self):
        with pytest.raises(FlowError):
            evaluate(lossy_flow(), volume=0.0)


class TestMonteCarloBasics:
    def test_perfect_flow_exact(self):
        report = simulate(perfect_flow(), units=500, seed=1)
        assert report.final_cost_per_shipped == pytest.approx(15.5)
        assert report.scrapped_units == 0

    def test_reproducible_with_seed(self):
        a = simulate(lossy_flow(), units=2000, seed=42)
        b = simulate(lossy_flow(), units=2000, seed=42)
        assert a.final_cost_per_shipped == b.final_cost_per_shipped

    def test_different_seeds_differ(self):
        a = simulate(lossy_flow(), units=2000, seed=1)
        b = simulate(lossy_flow(), units=2000, seed=2)
        assert a.scrapped_units != b.scrapped_units

    def test_unit_accounting(self):
        report = simulate(lossy_flow(), units=5000, seed=0)
        assert report.started_units == 5000
        assert (
            report.shipped_units + report.scrapped_units == 5000
        )

    def test_rejects_zero_units(self):
        with pytest.raises(FlowError):
            simulate(lossy_flow(), units=0)


class TestAnalyticMonteCarloAgreement:
    def test_gps_like_flow_agreement(self):
        flow = lossy_flow()
        analytic = evaluate(flow)
        sampled = simulate(flow, units=60_000, seed=3)
        assert sampled.final_cost_per_shipped == pytest.approx(
            analytic.final_cost_per_shipped, rel=0.02
        )
        assert sampled.shipped_fraction == pytest.approx(
            analytic.shipped_fraction, abs=0.01
        )
        assert sampled.yield_loss_per_shipped == pytest.approx(
            analytic.yield_loss_per_shipped, rel=0.10
        )

    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=0.7, max_value=1.0),
        st.floats(min_value=0.8, max_value=1.0),
        st.floats(min_value=0.5, max_value=1.0),
        st.integers(min_value=1, max_value=8),
    )
    def test_random_flows_agree(
        self, carrier_yield, component_yield, coverage, quantity
    ):
        """Property: the two evaluators agree on arbitrary flows."""
        flow = (
            FlowBuilder("random")
            .carrier("sub", cost=5.0, yield_=carrier_yield)
            .attach(
                "parts",
                quantity=quantity,
                component_cost=20.0,
                component_yield=component_yield,
                attach_cost=0.2,
                attach_yield=0.999,
            )
            .test("final", cost=8.0, coverage=coverage)
            .build()
        )
        analytic = evaluate(flow)
        sampled = simulate(flow, units=40_000, seed=11)
        assert sampled.final_cost_per_shipped == pytest.approx(
            analytic.final_cost_per_shipped, rel=0.05
        )

    def test_two_test_steps_agreement(self):
        """Scrap at an intermediate test loses only cost-so-far."""
        flow = (
            FlowBuilder("two-tests")
            .carrier("sub", cost=10.0, yield_=0.9)
            .test("pre-test", cost=1.0, coverage=0.95)
            .attach(
                "chip",
                quantity=1,
                component_cost=100.0,
                component_yield=0.95,
                attach_cost=0.1,
                attach_yield=1.0,
            )
            .test("final", cost=10.0, coverage=0.99)
            .build()
        )
        analytic = evaluate(flow)
        sampled = simulate(flow, units=60_000, seed=5)
        assert sampled.final_cost_per_shipped == pytest.approx(
            analytic.final_cost_per_shipped, rel=0.02
        )
        # Early scrap is cheap: pre-test scrap cost per unit ~ 11, final
        # test scrap ~ 121.
        pre = analytic.steps[1]
        final = analytic.steps[3]
        assert pre.scrap_cost / max(pre.scrap_units, 1e-12) < 12.0
        assert final.scrap_cost / max(final.scrap_units, 1e-12) > 100.0


class TestEarlyTestEconomics:
    def test_early_test_reduces_final_cost_when_carrier_is_bad(self):
        """Screening a bad substrate before mounting expensive chips is
        cheaper — the classic known-good-die argument the paper makes."""

        def flow(with_pretest: bool):
            builder = FlowBuilder("kgd")
            builder.carrier("sub", cost=5.0, yield_=0.80)
            if with_pretest:
                builder.test("substrate test", cost=0.5, coverage=0.99)
            builder.attach(
                "chip",
                quantity=1,
                component_cost=200.0,
                component_yield=1.0,
                attach_cost=0.1,
                attach_yield=1.0,
            )
            builder.test("final", cost=10.0, coverage=0.99)
            return builder.build()

        screened = evaluate(flow(True))
        unscreened = evaluate(flow(False))
        assert (
            screened.final_cost_per_shipped
            < unscreened.final_cost_per_shipped
        )


class TestFig5Row:
    def test_reference_row_is_100(self):
        report = evaluate(lossy_flow())
        row = fig5_row(report, report)
        assert row["final"] == pytest.approx(100.0)

    def test_row_components_sum(self):
        report = evaluate(lossy_flow())
        row = fig5_row(report, report)
        assert row["direct"] + row["yield_loss"] == pytest.approx(
            row["final"]
        )
        assert row["chip"] < row["direct"]
