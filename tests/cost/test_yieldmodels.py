"""Yield model laws."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cost.yieldmodels import (
    MurphyYield,
    PerOperationYield,
    PoissonYield,
    SeedsYield,
    StepYield,
    compound_yield,
    defect_probability,
)
from repro.errors import CostModelError
from repro.units import UnitError


class TestStepAndPerOperation:
    def test_step_yield_ignores_count(self):
        assert StepYield(0.933).effective(100) == 0.933

    def test_per_operation_compounds(self):
        """Table 2's wire bonds: 0.9999^212 ~ 97.9 %."""
        y = PerOperationYield(0.9999).effective(212)
        assert y == pytest.approx(0.9790, abs=1e-3)

    def test_per_operation_zero_ops(self):
        assert PerOperationYield(0.9).effective(0) == 1.0

    def test_negative_ops_rejected(self):
        with pytest.raises(CostModelError):
            PerOperationYield(0.9).effective(-1)

    def test_invalid_yield_rejected(self):
        with pytest.raises(UnitError):
            StepYield(1.5)
        with pytest.raises(UnitError):
            PerOperationYield(0.0)


class TestAreaLaws:
    def test_poisson_reference_roundtrip(self):
        model = PoissonYield.from_reference(0.90, 7.0)
        assert model.yield_for_area(7.0) == pytest.approx(0.90)

    def test_poisson_small_substrate_yields_better(self):
        """The build-up 3 vs 4 effect: less area, better substrate yield."""
        model = PoissonYield.from_reference(0.90, 7.0)
        assert model.yield_for_area(2.9) > 0.90

    def test_poisson_zero_defects_perfect(self):
        assert PoissonYield(0.0).yield_for_area(100.0) == 1.0

    def test_murphy_between_poisson_and_one(self):
        d0 = 0.05
        area = 5.0
        poisson = PoissonYield(d0).yield_for_area(area)
        murphy = MurphyYield(d0).yield_for_area(area)
        assert poisson < murphy < 1.0

    def test_law_ordering_at_moderate_ad(self):
        """At moderate A*D0: Poisson < Murphy < Seeds (textbook order)."""
        d0, area = 0.05, 5.0
        poisson = PoissonYield(d0).yield_for_area(area)
        murphy = MurphyYield(d0).yield_for_area(area)
        seeds = SeedsYield(d0).yield_for_area(area)
        assert poisson < murphy < seeds

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_all_laws_are_probabilities(self, d0, area):
        for model in (PoissonYield(d0), MurphyYield(d0), SeedsYield(d0)):
            y = model.yield_for_area(area)
            assert 0.0 < y <= 1.0

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_all_laws_monotone_decreasing_in_area(self, d0, area):
        for model in (PoissonYield(d0), MurphyYield(d0), SeedsYield(d0)):
            assert model.yield_for_area(area) >= model.yield_for_area(
                area * 2
            )

    def test_rejects_nonpositive_area(self):
        with pytest.raises(CostModelError):
            PoissonYield(0.1).yield_for_area(0.0)

    def test_rejects_negative_density(self):
        with pytest.raises(CostModelError):
            MurphyYield(-0.1)


class TestHelpers:
    def test_compound(self):
        assert compound_yield(0.9, 0.9) == pytest.approx(0.81)

    def test_defect_probability(self):
        assert defect_probability(0.95) == pytest.approx(0.05)

    def test_compound_validates(self):
        with pytest.raises(UnitError):
            compound_yield(0.9, 1.2)
