"""Yield model laws."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cost.yieldmodels import (
    MurphyYield,
    PerOperationYield,
    PoissonYield,
    SeedsYield,
    StepYield,
    compound_yield,
    defect_probability,
)
from repro.errors import CostModelError
from repro.units import UnitError


class TestStepAndPerOperation:
    def test_step_yield_ignores_count(self):
        assert StepYield(0.933).effective(100) == 0.933

    def test_per_operation_compounds(self):
        """Table 2's wire bonds: 0.9999^212 ~ 97.9 %."""
        y = PerOperationYield(0.9999).effective(212)
        assert y == pytest.approx(0.9790, abs=1e-3)

    def test_per_operation_zero_ops(self):
        assert PerOperationYield(0.9).effective(0) == 1.0

    def test_negative_ops_rejected(self):
        with pytest.raises(CostModelError):
            PerOperationYield(0.9).effective(-1)

    def test_invalid_yield_rejected(self):
        with pytest.raises(UnitError):
            StepYield(1.5)
        with pytest.raises(UnitError):
            PerOperationYield(0.0)


class TestAreaLaws:
    def test_poisson_reference_roundtrip(self):
        model = PoissonYield.from_reference(0.90, 7.0)
        assert model.yield_for_area(7.0) == pytest.approx(0.90)

    def test_poisson_small_substrate_yields_better(self):
        """The build-up 3 vs 4 effect: less area, better substrate yield."""
        model = PoissonYield.from_reference(0.90, 7.0)
        assert model.yield_for_area(2.9) > 0.90

    def test_poisson_zero_defects_perfect(self):
        assert PoissonYield(0.0).yield_for_area(100.0) == 1.0

    def test_murphy_between_poisson_and_one(self):
        d0 = 0.05
        area = 5.0
        poisson = PoissonYield(d0).yield_for_area(area)
        murphy = MurphyYield(d0).yield_for_area(area)
        assert poisson < murphy < 1.0

    def test_law_ordering_at_moderate_ad(self):
        """At moderate A*D0: Poisson < Murphy < Seeds (textbook order)."""
        d0, area = 0.05, 5.0
        poisson = PoissonYield(d0).yield_for_area(area)
        murphy = MurphyYield(d0).yield_for_area(area)
        seeds = SeedsYield(d0).yield_for_area(area)
        assert poisson < murphy < seeds

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_all_laws_are_probabilities(self, d0, area):
        for model in (PoissonYield(d0), MurphyYield(d0), SeedsYield(d0)):
            y = model.yield_for_area(area)
            assert 0.0 < y <= 1.0

    @given(
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_all_laws_monotone_decreasing_in_area(self, d0, area):
        for model in (PoissonYield(d0), MurphyYield(d0), SeedsYield(d0)):
            assert model.yield_for_area(area) >= model.yield_for_area(
                area * 2
            )

    def test_rejects_nonpositive_area(self):
        with pytest.raises(CostModelError):
            PoissonYield(0.1).yield_for_area(0.0)

    def test_rejects_negative_density(self):
        with pytest.raises(CostModelError):
            MurphyYield(-0.1)


class TestFromReference:
    @given(
        st.floats(min_value=0.05, max_value=0.999),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_murphy_roundtrip(self, reference_yield, area):
        model = MurphyYield.from_reference(reference_yield, area)
        assert model.yield_for_area(area) == pytest.approx(
            reference_yield, abs=1e-12
        )

    @given(
        st.floats(min_value=0.05, max_value=0.999),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_seeds_roundtrip(self, reference_yield, area):
        model = SeedsYield.from_reference(reference_yield, area)
        assert model.yield_for_area(area) == pytest.approx(
            reference_yield, abs=1e-12
        )

    def test_perfect_reference_gives_zero_density(self):
        for law in (PoissonYield, MurphyYield, SeedsYield):
            model = law.from_reference(1.0, 7.0)
            assert model.defect_density_per_cm2 == 0.0

    def test_laws_calibrated_to_same_point_still_ordered(self):
        """Calibrated through (7 cm^2, 90 %), the tails keep the
        Poisson < Murphy < Seeds order at larger area."""
        poisson = PoissonYield.from_reference(0.90, 7.0)
        murphy = MurphyYield.from_reference(0.90, 7.0)
        seeds = SeedsYield.from_reference(0.90, 7.0)
        assert (
            poisson.yield_for_area(20.0)
            < murphy.yield_for_area(20.0)
            < seeds.yield_for_area(20.0)
        )

    def test_rejects_invalid_reference(self):
        for factory in (
            PoissonYield.from_reference,
            MurphyYield.from_reference,
            SeedsYield.from_reference,
        ):
            with pytest.raises((CostModelError, UnitError)):
                factory(0.0, 7.0)
            with pytest.raises((CostModelError, UnitError)):
                factory(1.2, 7.0)
            with pytest.raises(CostModelError):
                factory(0.9, 0.0)


class TestArrayBroadcasting:
    AREAS = (1e-300, 1e-6, 0.5, 7.0, 123.4, 1e6)

    def test_area_laws_match_scalar_bitwise(self):
        areas = np.asarray(self.AREAS, dtype=np.float64)
        for model in (
            PoissonYield(0.015),
            MurphyYield(0.015),
            SeedsYield(0.015),
            MurphyYield(0.0),
        ):
            vectorised = model.yield_for_area(areas)
            assert isinstance(vectorised, np.ndarray)
            for index, area in enumerate(self.AREAS):
                assert vectorised[index] == model.yield_for_area(area)

    def test_scalar_input_returns_python_float(self):
        result = PoissonYield(0.015).yield_for_area(7.0)
        assert type(result) is float

    def test_array_shape_preserved(self):
        areas = np.asarray(self.AREAS).reshape(2, 3)
        assert PoissonYield(0.015).yield_for_area(areas).shape == (2, 3)

    def test_rejects_array_with_bad_area(self):
        with pytest.raises(CostModelError, match="area must be positive"):
            PoissonYield(0.1).yield_for_area(np.asarray([1.0, -2.0, 3.0]))
        with pytest.raises(CostModelError, match="area must be positive"):
            SeedsYield(0.1).yield_for_area(np.asarray([0.0]))

    def test_effective_matches_scalar_bitwise(self):
        counts = np.asarray([0, 1, 87, 212, 500])
        for law in (StepYield(0.933), PerOperationYield(0.9999)):
            vectorised = law.effective(counts)
            assert isinstance(vectorised, np.ndarray)
            for index, count in enumerate(counts.tolist()):
                assert vectorised[index] == law.effective(count)

    def test_effective_rejects_negative_array(self):
        with pytest.raises(CostModelError, match="cannot be negative"):
            PerOperationYield(0.9).effective(np.asarray([1, -2]))

    def test_compound_yield_broadcasts_bitwise(self):
        lanes = np.asarray([0.7, 0.85, 1.0])
        vectorised = compound_yield(0.9, lanes, 0.95)
        assert isinstance(vectorised, np.ndarray)
        for index, lane in enumerate(lanes.tolist()):
            assert vectorised[index] == compound_yield(0.9, lane, 0.95)

    def test_compound_yield_rejects_bad_array(self):
        with pytest.raises(UnitError):
            compound_yield(0.9, np.asarray([0.9, 1.2]))


class TestHelpers:
    def test_compound(self):
        assert compound_yield(0.9, 0.9) == pytest.approx(0.81)

    def test_defect_probability(self):
        assert defect_probability(0.95) == pytest.approx(0.05)

    def test_compound_validates(self):
        with pytest.raises(UnitError):
            compound_yield(0.9, 1.2)
