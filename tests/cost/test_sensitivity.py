"""Cost-driver sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.cost.moe import FlowBuilder
from repro.cost.sensitivity import (
    Knob,
    rank_cost_drivers,
    rank_cost_drivers_pointwise,
    sensitivity_of,
)
from repro.errors import CostModelError
from repro.gps.buildups import flow_for


def toy_flow():
    return (
        FlowBuilder("toy")
        .carrier("sub", cost=10.0, yield_=0.9)
        .attach("chip", 1, 100.0, 0.95, 0.1, 0.99)
        .test("final", cost=5.0, coverage=0.99)
        .build()
    )


class TestSensitivityOf:
    def test_cost_elasticity_bounded_by_cost_share_and_one(self):
        """For a cost knob the elasticity is at least that cost's share
        of the final cost (direct contribution) and below one: the chip
        cost also scales the scrap losses, but not the other costs."""
        flow = toy_flow()
        sensitivity = sensitivity_of(flow, "ID1", Knob.COST)
        from repro.cost.moe import evaluate

        report = evaluate(flow)
        direct_share = 100.0 / report.final_cost_per_shipped
        assert direct_share < sensitivity.elasticity < 1.0

    def test_yield_elasticity_negative(self):
        """Better yield means lower final cost."""
        flow = toy_flow()
        sensitivity = sensitivity_of(flow, "ID0", Knob.YIELD)
        assert sensitivity.elasticity < 0

    def test_unknown_node_raises(self):
        with pytest.raises(CostModelError):
            sensitivity_of(toy_flow(), "ID99", Knob.COST)

    def test_missing_knob_raises(self):
        with pytest.raises(CostModelError):
            sensitivity_of(toy_flow(), "ID0", Knob.COVERAGE)

    def test_bad_step_size_rejected(self):
        with pytest.raises(CostModelError):
            sensitivity_of(toy_flow(), "ID0", Knob.COST, relative_step=0.9)

    def test_label(self):
        sensitivity = sensitivity_of(toy_flow(), "ID0", Knob.COST)
        assert "sub" in sensitivity.label
        assert "cost" in sensitivity.label


class TestRanking:
    def test_yields_are_top_drivers_toy(self):
        """Module-level yields have elasticity near -1 (losing a unit
        loses everything spent on it), outranking any single cost."""
        drivers = rank_cost_drivers(toy_flow())
        assert drivers[0].knob is Knob.YIELD
        assert drivers[0].elasticity < -0.9

    def test_chip_cost_is_top_cost_knob_toy(self):
        drivers = [
            d for d in rank_cost_drivers(toy_flow())
            if d.knob is Knob.COST
        ]
        assert drivers[0].step_name == "chip"

    def test_trivial_knobs_skipped(self):
        drivers = rank_cost_drivers(toy_flow())
        for driver in drivers:
            assert driver.base_value != 0.0

    def test_sorted_by_magnitude(self):
        drivers = rank_cost_drivers(toy_flow())
        magnitudes = [abs(d.elasticity) for d in drivers]
        assert magnitudes == sorted(magnitudes, reverse=True)


class TestZeroBaseline:
    def test_zero_base_cost_raises_named_error(self):
        """Regression: a finite-difference elasticity at a zero base
        value would divide by zero; the error must name the step and
        knob instead of propagating a warning or a NaN."""
        flow = (
            FlowBuilder("free-carrier")
            .carrier("freebie", cost=0.0, yield_=0.9)
            .attach("chip", 1, 100.0, 0.95, 0.1, 0.99)
            .test("final", cost=5.0, coverage=0.99)
            .build()
        )
        with pytest.raises(CostModelError, match="zero base value"):
            sensitivity_of(flow, "ID0", Knob.COST)
        with pytest.raises(CostModelError, match="freebie"):
            sensitivity_of(flow, "ID0", Knob.COST)

    def test_ranking_skips_zero_base_knobs(self):
        """rank_cost_drivers must silently skip the knobs that
        sensitivity_of would reject."""
        flow = (
            FlowBuilder("free-carrier")
            .carrier("freebie", cost=0.0, yield_=0.9)
            .attach("chip", 1, 100.0, 0.95, 0.1, 0.99)
            .test("final", cost=5.0, coverage=0.99)
            .build()
        )
        drivers = rank_cost_drivers(flow)
        assert drivers  # the non-trivial knobs still rank
        assert all(
            not (d.node_id == "ID0" and d.knob is Knob.COST)
            for d in drivers
        )


class TestBatchedRankingEquivalence:
    def test_toy_flow_matches_pointwise_exactly(self):
        batched = rank_cost_drivers(toy_flow())
        pointwise = rank_cost_drivers_pointwise(toy_flow())
        assert len(batched) == len(pointwise)
        for fast, slow in zip(batched, pointwise):
            assert fast.node_id == slow.node_id
            assert fast.knob is slow.knob
            assert fast.base_value == slow.base_value
            assert fast.elasticity == slow.elasticity

    def test_gps_flows_match_pointwise_exactly(self):
        for implementation in (1, 2, 3, 4):
            batched = rank_cost_drivers(flow_for(implementation))
            pointwise = rank_cost_drivers_pointwise(
                flow_for(implementation)
            )
            assert [
                (d.node_id, d.knob, d.elasticity) for d in batched
            ] == [(d.node_id, d.knob, d.elasticity) for d in pointwise]

    def test_bad_step_size_rejected_by_both(self):
        for ranker in (rank_cost_drivers, rank_cost_drivers_pointwise):
            with pytest.raises(CostModelError):
                ranker(toy_flow(), relative_step=0.9)


class TestGpsDrivers:
    def test_chips_dominate_cost_knobs_every_buildup(self):
        """Among cost knobs the chips are the top driver of every
        build-up, consistent with Fig. 5's 'thereof: chip cost'."""
        for i in (1, 3):
            cost_drivers = [
                d
                for d in rank_cost_drivers(flow_for(i))
                if d.knob is Knob.COST
            ]
            assert cost_drivers[0].step_name in (
                "RF chip",
                "DSP correlator",
            )

    def test_impl3_substrate_yield_among_drivers(self):
        """Build-up 3's 90 % substrate yield is a visible cost driver."""
        drivers = rank_cost_drivers(flow_for(3))
        substrate_yield = next(
            d
            for d in drivers
            if d.step_name == "Substrate (MCM-D/PCB)"
            and d.knob is Knob.YIELD
        )
        # Negative (better yield, lower cost) and non-trivial.
        assert substrate_yield.elasticity < -0.05
