"""Batch/scalar equivalence of the vectorised assessment spine.

The batched fast paths (`evaluate_batch`, `final_costs_for_variants`,
array yield laws) must be **bit-identical** to the scalar references —
not approximately equal.  Hypothesis generates random production flows
(every step type, optional rework), random volume families and random
area arrays; every `CostReport` field (including `cost_by_tag` and the
per-step reports) is compared with exact dataclass equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.moe.analytic import (
    evaluate,
    evaluate_batch,
    final_costs_for_variants,
)
from repro.cost.moe.flow import ProductionFlow
from repro.cost.moe.nodes import (
    AttachStep,
    CarrierStep,
    ProcessStep,
    ReworkPolicy,
    TestStep,
)
from repro.cost.yieldmodels import (
    MurphyYield,
    PerOperationYield,
    PoissonYield,
    SeedsYield,
    StepYield,
    compound_yield,
)
from repro.errors import FlowError

# Yields and coverages stay off the degenerate corners so every
# generated flow ships units (lost == 1 needs faulty == coverage == 1
# with no rework).
costs = st.floats(min_value=0.0, max_value=500.0)
yields = st.floats(min_value=0.5, max_value=1.0)
coverages = st.floats(min_value=0.0, max_value=0.999)
volumes = st.lists(
    st.floats(min_value=1e-3, max_value=1e9),
    min_size=1,
    max_size=8,
)


@st.composite
def flows(draw) -> ProductionFlow:
    """A random production flow exercising every step type."""
    steps = [
        CarrierStep(
            "ID0",
            "carrier",
            unit_cost=draw(costs),
            carrier_yield=draw(yields),
        )
    ]
    for index in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["process", "attach", "test"]))
        node_id = f"ID{index + 1}"
        if kind == "process":
            steps.append(
                ProcessStep(
                    node_id,
                    f"process {index}",
                    unit_cost=draw(costs),
                    process_yield=draw(yields),
                )
            )
        elif kind == "attach":
            steps.append(
                AttachStep(
                    node_id,
                    f"attach {index}",
                    quantity=draw(st.integers(min_value=0, max_value=20)),
                    component_cost=draw(costs),
                    component_yield=draw(yields),
                    attach_cost=draw(costs),
                    attach_yield=draw(yields),
                    per_operation=draw(st.booleans()),
                )
            )
        else:
            rework = None
            if draw(st.booleans()):
                rework = ReworkPolicy(
                    attempt_cost=draw(costs),
                    success_probability=draw(
                        st.floats(min_value=0.1, max_value=1.0)
                    ),
                    max_attempts=draw(st.integers(min_value=1, max_value=4)),
                )
            steps.append(
                TestStep(
                    node_id,
                    f"test {index}",
                    test_cost=draw(costs),
                    coverage=draw(coverages),
                    rework=rework,
                )
            )
    steps.append(
        TestStep("IDF", "final test", test_cost=draw(costs), coverage=1.0)
    )
    flow = ProductionFlow(
        name="random", nre=draw(st.floats(min_value=0.0, max_value=1e6))
    )
    flow.steps = steps
    return flow


class TestEvaluateBatch:
    @settings(max_examples=120, deadline=None)
    @given(flows(), volumes)
    def test_bit_identical_to_looped_evaluate(self, flow, family):
        batch = evaluate_batch(flow, family)
        looped = tuple(evaluate(flow, volume) for volume in family)
        # Frozen-dataclass equality compares every CostReport field —
        # cost_by_tag dicts and the per-step StepReport tuples included
        # — with exact float equality.
        assert batch.to_reports() == looped

    @settings(max_examples=60, deadline=None)
    @given(flows(), volumes)
    def test_columns_match_scalar_fields(self, flow, family):
        batch = evaluate_batch(flow, family)
        assert len(batch) == len(family)
        for column, volume in enumerate(family):
            report = evaluate(flow, volume)
            assert batch.started_units[column] == report.started_units
            assert batch.shipped_units[column] == report.shipped_units
            assert batch.scrapped_units[column] == report.scrapped_units
            assert batch.nre_per_shipped[column] == report.nre_per_shipped
            assert (
                batch.final_cost_per_shipped[column]
                == report.final_cost_per_shipped
            )
            step_matrix = batch.step_units_processed
            for row, step_report in enumerate(report.steps):
                assert step_matrix[row, column] == (
                    step_report.units_processed
                )

    def test_rejects_empty_family(self):
        flow = ProductionFlow(name="empty-family")
        flow.steps = [
            CarrierStep("ID0", "carrier", 1.0, 0.9),
            TestStep("ID1", "test", 1.0, 1.0),
        ]
        with pytest.raises(FlowError, match="at least one volume"):
            evaluate_batch(flow, [])

    def test_rejects_nonpositive_volume(self):
        flow = ProductionFlow(name="bad-volume")
        flow.steps = [
            CarrierStep("ID0", "carrier", 1.0, 0.9),
            TestStep("ID1", "test", 1.0, 1.0),
        ]
        with pytest.raises(FlowError, match="volume must be positive"):
            evaluate_batch(flow, [1e3, 0.0])


class TestVariantBatch:
    @settings(max_examples=60, deadline=None)
    @given(flows(), st.floats(min_value=1.0, max_value=1e6))
    def test_bit_identical_to_rebuilt_flows(self, flow, volume):
        from dataclasses import replace

        variants = []
        for index, step in enumerate(flow.steps):
            if isinstance(step, CarrierStep):
                variants.append(
                    (index, replace(step, unit_cost=step.unit_cost + 1.0))
                )
            elif isinstance(step, TestStep):
                variants.append(
                    (index, replace(step, coverage=step.coverage / 2.0))
                )
        batched = final_costs_for_variants(flow, variants, volume=volume)
        for lane, (index, replacement) in enumerate(variants):
            modified = ProductionFlow(name=flow.name, nre=flow.nre)
            modified.steps = list(flow.steps)
            modified.steps[index] = replacement
            scalar = evaluate(modified, volume=volume)
            assert float(batched[lane]) == scalar.final_cost_per_shipped

    def test_rejects_type_change(self):
        flow = ProductionFlow(name="typed")
        flow.steps = [
            CarrierStep("ID0", "carrier", 1.0, 0.9),
            TestStep("ID1", "test", 1.0, 1.0),
        ]
        with pytest.raises(FlowError, match="keep its type"):
            final_costs_for_variants(
                flow, [(0, ProcessStep("ID0", "carrier", 1.0, 0.9))]
            )

    def test_empty_variant_list(self):
        flow = ProductionFlow(name="empty")
        flow.steps = [
            CarrierStep("ID0", "carrier", 1.0, 0.9),
            TestStep("ID1", "test", 1.0, 1.0),
        ]
        assert final_costs_for_variants(flow, []).shape == (0,)


#: Edge areas the array laws must agree on: denormal-adjacent, tiny,
#: paper-sized, huge.
EDGE_AREAS = (1e-300, 1e-12, 1e-3, 0.5, 7.0, 123.456, 1e6, 1e12)


class TestArrayYieldLaws:
    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=5.0),
        st.lists(
            st.floats(min_value=1e-6, max_value=1e4),
            min_size=1,
            max_size=12,
        ),
    )
    def test_laws_elementwise_equal_scalar(self, density, areas):
        array = np.asarray(areas, dtype=np.float64)
        for law in (
            PoissonYield(density),
            MurphyYield(density),
            SeedsYield(density),
        ):
            vectorised = law.yield_for_area(array)
            assert isinstance(vectorised, np.ndarray)
            for index, area in enumerate(areas):
                assert vectorised[index] == law.yield_for_area(area)

    def test_edge_areas_elementwise_equal_scalar(self):
        array = np.asarray(EDGE_AREAS, dtype=np.float64)
        for law in (
            PoissonYield(0.015),
            MurphyYield(0.015),
            SeedsYield(0.015),
            PoissonYield(0.0),
            MurphyYield(0.0),
        ):
            vectorised = law.yield_for_area(array)
            for index, area in enumerate(EDGE_AREAS):
                assert vectorised[index] == law.yield_for_area(area)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=1.0),
        st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=1,
            max_size=8,
        ),
    )
    def test_effective_elementwise_equal_scalar(self, value, operations):
        counts = np.asarray(operations)
        for law in (StepYield(value), PerOperationYield(value)):
            vectorised = law.effective(counts)
            assert isinstance(vectorised, np.ndarray)
            for index, count in enumerate(operations):
                assert vectorised[index] == law.effective(count)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=1.0),
            min_size=2,
            max_size=4,
        ),
        st.lists(
            st.floats(min_value=0.5, max_value=1.0),
            min_size=1,
            max_size=6,
        ),
    )
    def test_compound_yield_broadcasts(self, scalars, lanes):
        array = np.asarray(lanes, dtype=np.float64)
        vectorised = compound_yield(*scalars, array)
        assert isinstance(vectorised, np.ndarray)
        for index, lane in enumerate(lanes):
            assert vectorised[index] == compound_yield(*scalars, lane)
