"""E-series preferred-value utilities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ComponentError
from repro.passives.eseries import (
    E_SERIES_BASES,
    SERIES_TOLERANCE,
    max_snap_error,
    series_values,
    snap,
    snap_all,
)


class TestSeries:
    def test_series_sizes(self):
        assert len(E_SERIES_BASES["E12"]) == 12
        assert len(E_SERIES_BASES["E24"]) == 24
        assert len(E_SERIES_BASES["E96"]) == 96

    def test_classic_values_present(self):
        assert 4.7 in E_SERIES_BASES["E12"]
        assert 3.3 in E_SERIES_BASES["E6"]

    def test_tolerances_tighten_with_series(self):
        assert (
            SERIES_TOLERANCE["E6"]
            > SERIES_TOLERANCE["E12"]
            > SERIES_TOLERANCE["E24"]
            > SERIES_TOLERANCE["E96"]
        )

    def test_series_values_span_decades(self):
        values = series_values("E12", decade_min=0, decade_max=1)
        assert 1.0 in values
        assert 82.0 in values
        assert len(values) == 24


class TestSnap:
    def test_exact_value_unchanged(self):
        result = snap(4.7e3, "E12")
        assert result.snapped == pytest.approx(4.7e3)
        assert result.relative_error == pytest.approx(0.0)

    def test_snaps_to_nearest(self):
        assert snap(5.0e3, "E12").snapped == pytest.approx(4.7e3)
        assert snap(5.3e3, "E12").snapped == pytest.approx(5.6e3)

    def test_small_values(self):
        result = snap(47e-12, "E12")
        assert result.snapped == pytest.approx(47e-12)

    def test_decade_boundary(self):
        assert snap(0.97, "E12").snapped == pytest.approx(1.0)
        assert snap(9.0, "E12").snapped == pytest.approx(8.2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ComponentError):
            snap(0.0)

    def test_unknown_series_rejected(self):
        with pytest.raises(ComponentError):
            snap(1.0, "E7")

    @given(
        st.floats(min_value=1e-12, max_value=1e9),
        st.sampled_from(["E6", "E12", "E24", "E96"]),
    )
    def test_property_snap_error_bounded(self, value, series):
        result = snap(value, series)
        bound = max_snap_error(series)
        assert abs(math.log10(result.snapped / value)) <= (
            math.log10(1.0 + bound) + 1e-9
        )

    def test_finer_series_smaller_error(self):
        value = 1.37e3
        coarse = abs(snap(value, "E6").relative_error)
        fine = abs(snap(value, "E96").relative_error)
        assert fine <= coarse


class TestSnapAll:
    def test_ladder_snapping(self):
        """Snapping a synthesised ladder to E24 keeps errors within the
        series bound — the extra detuning an SMD build must absorb."""
        from repro.circuits.synthesis import synthesize_bandpass
        from repro.gps.filters_chain import if_filter_spec

        design = synthesize_bandpass(if_filter_spec(1))
        values = design.inductances() + design.capacitances()
        snapped = snap_all(values, "E24")
        assert len(snapped) == len(values)
        bound = max_snap_error("E24")
        for result in snapped:
            assert abs(result.relative_error) <= bound + 0.01
