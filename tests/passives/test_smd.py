"""SMD catalog: Fig. 1 data and Table 1 footprints."""

from __future__ import annotations

import pytest

from repro.errors import ComponentError
from repro.passives.component import (
    MountingStyle,
    PassiveKind,
    PassiveRequirement,
)
from repro.passives.smd import (
    CASE_SIZES,
    FIG1_ORDER,
    SMD_FILTER_AREA_MM2,
    fig1_series,
    get_case,
    realize_smd,
)


class TestCatalog:
    def test_table1_0603_footprint(self):
        """Table 1: 0603 consumes 3.75 mm^2."""
        assert get_case("0603").footprint_area_mm2 == 3.75

    def test_table1_0805_footprint(self):
        """Table 1: 0805 consumes 4.5 mm^2."""
        assert get_case("0805").footprint_area_mm2 == 4.5

    def test_unknown_case_raises(self):
        with pytest.raises(ComponentError):
            get_case("9999")

    def test_body_areas_standard_imperial(self):
        assert get_case("0805").body_area_mm2 == pytest.approx(2.5)
        assert get_case("0603").body_area_mm2 == pytest.approx(1.28)
        assert get_case("0402").body_area_mm2 == pytest.approx(0.5)
        assert get_case("0201").body_area_mm2 == pytest.approx(0.18)

    def test_footprint_exceeds_body_everywhere(self):
        for case in CASE_SIZES.values():
            assert case.footprint_area_mm2 > case.body_area_mm2


class TestFig1Trend:
    """The point of Fig. 1: bodies shrink fast, footprints don't."""

    def test_series_order(self):
        series = fig1_series()
        assert [code for code, _, _ in series] == list(FIG1_ORDER)

    def test_body_area_strictly_decreasing(self):
        series = fig1_series()
        bodies = [body for _, body, _ in series]
        assert bodies == sorted(bodies, reverse=True)

    def test_footprint_area_decreasing(self):
        series = fig1_series()
        footprints = [fp for _, _, fp in series]
        assert footprints == sorted(footprints, reverse=True)

    def test_mounting_overhead_roughly_constant(self):
        """Soldering overhead stays ~2 mm^2 while bodies shrink 14x."""
        overheads = [
            CASE_SIZES[code].mounting_overhead_mm2 for code in FIG1_ORDER
        ]
        assert max(overheads) / min(overheads) < 1.5

    def test_overhead_dominates_small_cases(self):
        """For 0201, the footprint is >90 % mounting overhead."""
        case = get_case("0201")
        assert case.mounting_overhead_mm2 / case.footprint_area_mm2 > 0.9


class TestRealizeSmd:
    def test_resistor_realization(self):
        req = PassiveRequirement(PassiveKind.RESISTOR, 10_000.0)
        real = realize_smd(req, "0603")
        assert real.mounting is MountingStyle.SURFACE_MOUNT
        assert real.area_mm2 == 3.75
        assert real.needs_assembly

    def test_filter_uses_block_footprint(self):
        req = PassiveRequirement(
            PassiveKind.FILTER, 0.0, tolerance=1.0
        )
        real = realize_smd(req)
        assert real.area_mm2 == SMD_FILTER_AREA_MM2

    def test_custom_tolerance_and_cost(self):
        req = PassiveRequirement(PassiveKind.CAPACITOR, 1e-11)
        real = realize_smd(req, "0805", tolerance=0.02, unit_cost=0.5)
        assert real.tolerance == 0.02
        assert real.unit_cost == 0.5

    def test_default_tolerances_by_kind(self):
        r = realize_smd(PassiveRequirement(PassiveKind.RESISTOR, 1e3))
        c = realize_smd(PassiveRequirement(PassiveKind.CAPACITOR, 1e-11))
        assert r.tolerance < c.tolerance
