"""Filter-block specs and realizations."""

from __future__ import annotations

import pytest

from repro.errors import ComponentError
from repro.passives.component import MountingStyle
from repro.passives.filters import (
    FilterBank,
    FilterFamily,
    FilterSpec,
    realize_integrated_filter,
    realize_smd_filter,
)


def if_spec(**overrides):
    defaults = dict(
        name="IF",
        family=FilterFamily.CHEBYSHEV,
        order=2,
        center_hz=175e6,
        bandwidth_hz=25e6,
        max_insertion_loss_db=4.5,
    )
    defaults.update(overrides)
    return FilterSpec(**defaults)


class TestFilterSpec:
    def test_fractional_bandwidth(self):
        assert if_spec().fractional_bandwidth == pytest.approx(25 / 175)

    def test_rejects_bad_order(self):
        with pytest.raises(ComponentError):
            if_spec(order=0)

    def test_rejects_nonpositive_center(self):
        with pytest.raises(ComponentError):
            if_spec(center_hz=0.0)

    def test_rejects_excessive_bandwidth(self):
        with pytest.raises(ComponentError):
            if_spec(bandwidth_hz=400e6)

    def test_rejects_nonpositive_loss_spec(self):
        with pytest.raises(ComponentError):
            if_spec(max_insertion_loss_db=0.0)

    def test_stopband_pair_required_together(self):
        with pytest.raises(ComponentError):
            if_spec(stop_attenuation_db=30.0)

    def test_requirement_wraps_spec(self):
        req = if_spec().requirement()
        assert req.name == "IF"


class TestRealizations:
    def test_smd_block_area(self):
        real = realize_smd_filter(if_spec())
        assert real.area_mm2 == 27.5
        assert real.mounting is MountingStyle.SURFACE_MOUNT

    def test_integrated_3stage_area(self):
        real = realize_integrated_filter(if_spec(), stages=3)
        assert real.area_mm2 == pytest.approx(12.0)

    def test_integrated_scales_with_stages(self):
        two = realize_integrated_filter(if_spec(), stages=2)
        four = realize_integrated_filter(if_spec(), stages=4)
        assert two.area_mm2 < 12.0 < four.area_mm2

    def test_integrated_rejects_zero_stages(self):
        with pytest.raises(ComponentError):
            realize_integrated_filter(if_spec(), stages=0)

    def test_integrated_needs_no_assembly(self):
        assert not realize_integrated_filter(if_spec()).needs_assembly


class TestFilterBank:
    def test_add_and_lookup(self):
        bank = FilterBank()
        bank.add(if_spec())
        bank.add(if_spec(name="IF2"))
        assert bank.by_name("IF2").name == "IF2"
        assert len(bank) == 2

    def test_missing_name_raises(self):
        with pytest.raises(ComponentError):
            FilterBank().by_name("nope")
