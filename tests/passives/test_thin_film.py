"""Thin-film integrated passive models against the paper's anchors."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ComponentError, TechnologyError
from repro.passives.component import (
    MountingStyle,
    PassiveKind,
    PassiveRequirement,
)
from repro.passives.thin_film import (
    INTEGRATED_FILTER_AREA_MM2,
    NICR_PROCESS,
    SI3N4_PROCESS,
    SUMMIT_PROCESS,
    ThinFilmProcess,
    capacitor_area_mm2,
    design_spiral_inductor,
    inductor_area_mm2,
    realize_capacitor,
    realize_inductor,
    realize_integrated,
    realize_resistor,
    resistor_area_mm2,
    resistor_squares,
    with_cap_density,
)


class TestResistorModel:
    def test_paper_sheet_resistance_squares(self):
        """§2: 200 ohm at 360 ohm/sq is 0.56 squares."""
        assert resistor_squares(200.0, SUMMIT_PROCESS) == pytest.approx(
            200.0 / 360.0
        )

    def test_table1_100k_area(self):
        """Table 1 anchor: IP-R (100 kohm) occupies ~0.25 mm^2."""
        area = resistor_area_mm2(100e3, SUMMIT_PROCESS)
        assert area == pytest.approx(0.25, rel=0.02)

    def test_small_resistor_order_of_magnitude(self):
        """§2 example: a 200 ohm resistor needs ~0.01 mm^2 of film.

        With a wide (power-capable) line the film area itself is of the
        order 10^-3..10^-2 mm^2; contact pads dominate the total.
        """
        area = resistor_area_mm2(200.0, SUMMIT_PROCESS, line_width_mm=0.1)
        assert area < 0.05

    def test_area_monotonic_in_value(self):
        small = resistor_area_mm2(1e3, SUMMIT_PROCESS)
        large = resistor_area_mm2(1e6, SUMMIT_PROCESS)
        assert large > small

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ComponentError):
            resistor_area_mm2(0.0, SUMMIT_PROCESS)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ComponentError):
            resistor_area_mm2(1e3, SUMMIT_PROCESS, line_width_mm=0.0)

    @given(st.floats(min_value=1.0, max_value=1e7))
    def test_area_always_exceeds_pads(self, resistance):
        area = resistor_area_mm2(resistance, SUMMIT_PROCESS)
        assert area > 2 * SUMMIT_PROCESS.resistor_pad_area_mm2


class TestRealizeResistor:
    def test_auto_trim_when_tight_tolerance(self):
        req = PassiveRequirement(PassiveKind.RESISTOR, 1e4, tolerance=0.01)
        real = realize_resistor(req)
        assert real.tolerance <= 0.01
        assert "trimmed" in real.detail

    def test_no_trim_when_loose(self):
        req = PassiveRequirement(PassiveKind.RESISTOR, 1e4, tolerance=0.20)
        real = realize_resistor(req)
        assert real.tolerance == SUMMIT_PROCESS.resistor_tolerance
        assert real.unit_cost == 0.0

    def test_integrated_mounting_no_assembly(self):
        req = PassiveRequirement(PassiveKind.RESISTOR, 1e4)
        real = realize_resistor(req)
        assert real.mounting is MountingStyle.INTEGRATED
        assert not real.needs_assembly

    def test_wrong_kind_raises(self):
        req = PassiveRequirement(PassiveKind.CAPACITOR, 1e-11)
        with pytest.raises(ComponentError):
            realize_resistor(req)


class TestCapacitorModel:
    def test_table1_50pf_area(self):
        """Table 1 anchor: IP-C (50 pF) occupies 0.3 mm^2."""
        assert capacitor_area_mm2(50e-12, SUMMIT_PROCESS) == pytest.approx(
            0.30, rel=0.01
        )

    def test_si3n4_density_paper_quote(self):
        """§2: 'capacitors up to 100 pF/mm^2' with Si3N4."""
        assert SI3N4_PROCESS.cap_density_pf_mm2 == 100.0

    def test_decap_is_several_smd_footprints(self):
        """The paper's decap show-killer: 10 nF >> an 0805 footprint."""
        area = capacitor_area_mm2(10e-9, SUMMIT_PROCESS)
        assert area > 5 * 4.5

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ComponentError):
            capacitor_area_mm2(0.0, SUMMIT_PROCESS)

    @given(st.floats(min_value=1e-13, max_value=1e-7))
    def test_area_linear_in_value_above_overhead(self, capacitance):
        area = capacitor_area_mm2(capacitance, SUMMIT_PROCESS)
        plate = capacitance * 1e12 / SUMMIT_PROCESS.cap_density_pf_mm2
        assert area == pytest.approx(
            plate + SUMMIT_PROCESS.cap_overhead_mm2
        )

    def test_with_cap_density_variant(self):
        dense = with_cap_density(SUMMIT_PROCESS, 400.0)
        assert capacitor_area_mm2(50e-12, dense) < capacitor_area_mm2(
            50e-12, SUMMIT_PROCESS
        )


class TestSpiralInductor:
    def test_table1_40nh_area(self):
        """Table 1 anchor: IP-L (40 nH) occupies ~1 mm^2."""
        assert inductor_area_mm2(40e-9) == pytest.approx(1.0, rel=0.05)

    def test_40nh_turn_count_reasonable(self):
        design = design_spiral_inductor(40e-9)
        assert 4 < design.turns < 9

    def test_q_rises_with_frequency(self):
        design = design_spiral_inductor(40e-9)
        assert design.q_factor(1.575e9) > design.q_factor(175e6)

    def test_summit_q_good_at_rf(self):
        """§2/[3]: 'high-Q inductors' in the GHz range."""
        design = design_spiral_inductor(40e-9)
        assert design.q_factor(1.575e9) > 20

    def test_small_if_inductor_poor_conductor_q(self):
        """The §4.1 killer: small spirals have single-digit Q at the IF."""
        design = design_spiral_inductor(9.2e-9)
        assert design.q_factor(175e6) < 5

    def test_inductance_monotonic_area(self):
        assert inductor_area_mm2(100e-9) > inductor_area_mm2(10e-9)

    def test_rejects_nonpositive_inductance(self):
        with pytest.raises(ComponentError):
            design_spiral_inductor(0.0)

    def test_rejects_bad_fill_ratio(self):
        with pytest.raises(ComponentError):
            design_spiral_inductor(40e-9, fill_ratio=1.0)

    def test_rejects_nonpositive_frequency(self):
        design = design_spiral_inductor(40e-9)
        with pytest.raises(ComponentError):
            design.q_factor(0.0)

    def test_minimum_one_turn(self):
        design = design_spiral_inductor(1e-12)
        assert design.turns == 1.0

    @given(st.floats(min_value=1e-10, max_value=1e-6))
    def test_wheeler_scaling_monotonic(self, inductance):
        design = design_spiral_inductor(inductance)
        assert design.area_mm2 > 0
        assert design.series_resistance_ohm > 0
        assert math.isfinite(design.outer_dim_mm)


class TestRealizeDispatch:
    def test_all_kinds_dispatch(self):
        reqs = [
            PassiveRequirement(PassiveKind.RESISTOR, 1e4),
            PassiveRequirement(PassiveKind.CAPACITOR, 1e-11),
            PassiveRequirement(PassiveKind.INDUCTOR, 1e-8),
            PassiveRequirement(PassiveKind.FILTER, 0.0, tolerance=1.0),
        ]
        for req in reqs:
            real = realize_integrated(req)
            assert real.mounting is MountingStyle.INTEGRATED

    def test_filter_area_is_table1(self):
        req = PassiveRequirement(PassiveKind.FILTER, 0.0, tolerance=1.0)
        assert realize_integrated(req).area_mm2 == (
            INTEGRATED_FILTER_AREA_MM2
        )

    def test_kind_mismatch_raises(self):
        req = PassiveRequirement(PassiveKind.RESISTOR, 1e4)
        with pytest.raises(ComponentError):
            realize_capacitor(req)
        with pytest.raises(ComponentError):
            realize_inductor(req)


class TestProcessValidation:
    def test_rejects_nonpositive_sheet_resistance(self):
        with pytest.raises(TechnologyError):
            ThinFilmProcess(name="bad", sheet_resistance_ohm_sq=0.0)

    def test_rejects_nonpositive_cap_density(self):
        with pytest.raises(TechnologyError):
            ThinFilmProcess(
                name="bad",
                sheet_resistance_ohm_sq=360.0,
                cap_density_pf_mm2=0.0,
            )

    def test_nicr_preset_differs(self):
        assert (
            NICR_PROCESS.sheet_resistance_ohm_sq
            != SUMMIT_PROCESS.sheet_resistance_ohm_sq
        )
