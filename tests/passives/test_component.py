"""Requirement/realization abstractions and bills of materials."""

from __future__ import annotations

import pytest

from repro.errors import ComponentError
from repro.passives.component import (
    BillOfMaterials,
    MountingStyle,
    PassiveKind,
    PassiveRealization,
    PassiveRequirement,
    PassiveRole,
)


def requirement(kind=PassiveKind.RESISTOR, value=200.0, **kwargs):
    return PassiveRequirement(kind=kind, value=value, **kwargs)


class TestPassiveRequirement:
    def test_valid_resistor(self):
        req = requirement()
        assert req.kind is PassiveKind.RESISTOR
        assert req.value == 200.0

    def test_filter_allows_zero_value(self):
        req = requirement(kind=PassiveKind.FILTER, value=0.0, tolerance=1.0)
        assert req.value == 0.0

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ComponentError):
            requirement(value=0.0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ComponentError):
            requirement(tolerance=0.0)
        with pytest.raises(ComponentError):
            requirement(tolerance=1.5)

    def test_min_q_requires_frequency(self):
        with pytest.raises(ComponentError):
            requirement(kind=PassiveKind.INDUCTOR, value=1e-8, min_q=20.0)

    def test_q_pair_accepted(self):
        req = requirement(
            kind=PassiveKind.INDUCTOR,
            value=1e-8,
            min_q=20.0,
            q_frequency=1e9,
        )
        assert req.min_q == 20.0

    def test_base_units(self):
        assert PassiveKind.RESISTOR.base_unit == "ohm"
        assert PassiveKind.CAPACITOR.base_unit == "F"
        assert PassiveKind.INDUCTOR.base_unit == "H"
        assert PassiveKind.FILTER.base_unit == ""


class TestPassiveRealization:
    def make(self, tolerance=0.01, area=3.75):
        return PassiveRealization(
            requirement=requirement(tolerance=0.05),
            mounting=MountingStyle.SURFACE_MOUNT,
            technology="0603",
            area_mm2=area,
            tolerance=tolerance,
        )

    def test_meets_tolerance(self):
        assert self.make(tolerance=0.01).meets_tolerance

    def test_misses_tolerance(self):
        assert not self.make(tolerance=0.15).meets_tolerance

    def test_rejects_nonpositive_area(self):
        with pytest.raises(ComponentError):
            self.make(area=0.0)

    def test_describe_mentions_technology(self):
        text = self.make().describe()
        assert "0603" in text
        assert "smd" in text


class TestBillOfMaterials:
    def build(self):
        bom = BillOfMaterials(name="test")
        bom.add(requirement(role=PassiveRole.PULL_UP), quantity=10)
        bom.add(
            requirement(
                kind=PassiveKind.CAPACITOR,
                value=1e-11,
                role=PassiveRole.DECOUPLING,
            ),
            quantity=4,
        )
        return bom

    def test_total_count(self):
        assert self.build().total_count == 14

    def test_count_by_kind(self):
        counts = self.build().count_by_kind()
        assert counts[PassiveKind.RESISTOR] == 10
        assert counts[PassiveKind.CAPACITOR] == 4

    def test_count_by_role(self):
        counts = self.build().count_by_role()
        assert counts[PassiveRole.PULL_UP] == 10
        assert counts[PassiveRole.DECOUPLING] == 4

    def test_requirements_flattened(self):
        flat = self.build().requirements()
        assert len(flat) == 14

    def test_rejects_zero_quantity(self):
        bom = BillOfMaterials()
        with pytest.raises(ComponentError):
            bom.add(requirement(), quantity=0)

    def test_len_counts_lines_not_instances(self):
        assert len(self.build()) == 2

    def test_iteration(self):
        lines = list(self.build())
        assert lines[0].quantity == 10
