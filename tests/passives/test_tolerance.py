"""Tolerance scatter and laser-trim planning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ComponentError
from repro.passives.component import PassiveKind, PassiveRequirement
from repro.passives.tolerance import (
    MATCHING_CLASS,
    PRECISION_CLASS,
    TOLERANCE_CLASSES,
    ToleranceClass,
    ToleranceModel,
    UNCRITICAL_CLASS,
    monte_carlo_network_yield,
    network_value_yield,
    trim_plan,
    value_yield,
)


class TestToleranceModel:
    def test_sigma_is_third_of_band(self):
        model = ToleranceModel(nominal=100.0, tolerance=0.15)
        assert model.sigma == pytest.approx(5.0)

    def test_within_full_band_is_three_sigma(self):
        model = ToleranceModel(nominal=100.0, tolerance=0.15)
        assert model.within(0.15) == pytest.approx(0.9973, abs=1e-3)

    def test_within_narrow_window_small(self):
        model = ToleranceModel(nominal=100.0, tolerance=0.15)
        assert model.within(0.01) < 0.2

    def test_rejects_bad_nominal(self):
        with pytest.raises(ComponentError):
            ToleranceModel(nominal=0.0, tolerance=0.1)

    def test_rejects_bad_window(self):
        model = ToleranceModel(nominal=1.0, tolerance=0.1)
        with pytest.raises(ComponentError):
            model.within(0.0)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.001, max_value=0.5),
    )
    def test_within_is_probability(self, tolerance, window):
        model = ToleranceModel(nominal=1.0, tolerance=tolerance)
        probability = model.within(window)
        assert 0.0 <= probability <= 1.0

    def test_sampling_centres_on_nominal(self):
        import numpy as np

        model = ToleranceModel(nominal=100.0, tolerance=0.15)
        rng = np.random.default_rng(42)
        values = model.sample(rng, size=20_000)
        assert values.mean() == pytest.approx(100.0, rel=0.01)
        assert values.std() == pytest.approx(model.sigma, rel=0.05)


class TestValueYield:
    def test_tight_process_high_yield(self):
        req = PassiveRequirement(PassiveKind.RESISTOR, 1e3, tolerance=0.05)
        assert value_yield(req, achieved_tolerance=0.01) > 0.999

    def test_loose_process_poor_yield(self):
        """The paper's show-killer: 15 % film on a 5 % requirement."""
        req = PassiveRequirement(PassiveKind.RESISTOR, 1e3, tolerance=0.05)
        assert value_yield(req, achieved_tolerance=0.15) < 0.75


class TestTrimPlan:
    def make_reqs(self):
        return [
            PassiveRequirement(PassiveKind.RESISTOR, 1e3, tolerance=0.01),
            PassiveRequirement(PassiveKind.RESISTOR, 1e4, tolerance=0.20),
            PassiveRequirement(PassiveKind.CAPACITOR, 1e-11, tolerance=0.01),
        ]

    def test_trims_only_tight_resistors(self):
        plan = trim_plan(self.make_reqs())
        assert plan.trim_count == 1
        assert plan.decisions[0].trim
        assert not plan.decisions[1].trim
        assert not plan.decisions[2].trim

    def test_trim_cost(self):
        plan = trim_plan(self.make_reqs(), trim_cost_each=0.05)
        assert plan.total_trim_cost == pytest.approx(0.05)

    def test_capacitors_never_trimmed(self):
        plan = trim_plan(self.make_reqs())
        assert plan.decisions[2].reason == "not a resistor"


class TestNetworkYield:
    def test_product_rule(self):
        models = [
            ToleranceModel(1.0, 0.15),
            ToleranceModel(2.0, 0.15),
        ]
        joint = network_value_yield(models, [0.15, 0.15])
        single = models[0].within(0.15)
        assert joint == pytest.approx(single * single)

    def test_length_mismatch_raises(self):
        with pytest.raises(ComponentError):
            network_value_yield([ToleranceModel(1.0, 0.1)], [0.1, 0.1])

    @settings(deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_monte_carlo_matches_analytic(self, n):
        models = [ToleranceModel(1.0, 0.15) for _ in range(n)]
        windows = [0.10] * n
        analytic = network_value_yield(models, windows)
        sampled = monte_carlo_network_yield(
            models, windows, trials=20_000, seed=7
        )
        assert sampled == pytest.approx(analytic, abs=0.02)

    def test_monte_carlo_rejects_no_trials(self):
        with pytest.raises(ComponentError):
            monte_carlo_network_yield(
                [ToleranceModel(1.0, 0.1)], [0.1], trials=0
            )


class TestToleranceClass:
    def test_registry_contains_standard_classes(self):
        assert TOLERANCE_CLASSES["uncritical"] is UNCRITICAL_CLASS
        assert TOLERANCE_CLASSES["matching"] is MATCHING_CLASS
        assert TOLERANCE_CLASSES["precision"] is PRECISION_CLASS

    def test_component_yield_orders_by_window_tightness(self):
        """Uncritical windows pass more often than matching windows."""
        assert (
            UNCRITICAL_CLASS.component_yield()
            > MATCHING_CLASS.component_yield()
        )
        for cls in (UNCRITICAL_CLASS, MATCHING_CLASS, PRECISION_CLASS):
            assert 0.0 < cls.component_yield() <= 1.0

    def test_trimming_buys_back_yield(self):
        """Precision (trimmed to 1 %) beats untrimmed matching yield."""
        assert (
            PRECISION_CLASS.component_yield()
            > MATCHING_CLASS.component_yield()
        )

    def test_module_yield_compounds(self):
        single = MATCHING_CLASS.component_yield()
        assert MATCHING_CLASS.module_yield(10) == pytest.approx(single**10)
        assert MATCHING_CLASS.module_yield(0) == 1.0

    def test_trim_cost_scales_with_count(self):
        assert PRECISION_CLASS.trim_cost(100) == pytest.approx(
            100 * PRECISION_CLASS.trim_cost_each
        )
        assert UNCRITICAL_CLASS.trim_cost(100) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ComponentError):
            PRECISION_CLASS.module_yield(-1)
        with pytest.raises(ComponentError):
            PRECISION_CLASS.trim_cost(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ComponentError):
            ToleranceClass("bad", achieved_tolerance=0.0, acceptance_window=0.1)
        with pytest.raises(ComponentError):
            ToleranceClass("bad", achieved_tolerance=0.1, acceptance_window=0.0)
        with pytest.raises(ComponentError):
            ToleranceClass(
                "bad",
                achieved_tolerance=0.1,
                acceptance_window=0.1,
                trim_cost_each=-1.0,
            )
