"""Text table rendering."""

from __future__ import annotations

import pytest

from repro.core.resultframe import COLUMN_ORDER, ResultFrame, SweepRow
from repro.reporting.tables import (
    Table,
    TableError,
    format_percent_map,
    frame_table,
)


def _sample_frame() -> ResultFrame:
    return ResultFrame.from_rows(
        [
            SweepRow(1e3, "s", "p", "t", "q", "n", "w", "A",
                     1.0, 100.0, 100.0, 1.0, True, True),
            SweepRow(1e4, "s", "p", "t", "q", "n", "w", "B",
                     0.9, 80.0, 85.0, 1.32, False, True),
        ]
    )


class TestTable:
    def test_render_alignment(self):
        table = Table(columns=("name", "value"))
        table.add_row("a", "1")
        table.add_row("longer", "22")
        lines = table.render().splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_rendered_first(self):
        table = Table(columns=("a",), title="My Table")
        table.add_row("x")
        assert table.render().splitlines()[0] == "My Table"

    def test_wrong_cell_count_rejected(self):
        table = Table(columns=("a", "b"))
        with pytest.raises(TableError):
            table.add_row("only one")

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            Table().render()

    def test_non_string_cells_coerced(self):
        table = Table(columns=("n",))
        table.add_row(42)
        assert "42" in table.render()

    def test_len(self):
        table = Table(columns=("a",))
        table.add_row("x")
        assert len(table) == 1


def test_format_percent_map():
    text = format_percent_map({1: 100.0, 4: 37.0})
    assert text == "1: 100%  4: 37%"


class TestFrameTable:
    def test_all_columns_by_default(self):
        table = frame_table(_sample_frame())
        assert tuple(table.columns) == COLUMN_ORDER
        assert len(table) == 2
        rendered = table.render()
        assert "figure_of_merit" in rendered
        assert "1.32" in rendered

    def test_column_selection_and_order(self):
        table = frame_table(
            _sample_frame(), columns=("candidate", "volume")
        )
        assert tuple(table.columns) == ("candidate", "volume")
        assert table.rows == [("A", "1000.0"), ("B", "10000.0")]

    def test_cells_use_the_exact_float_contract(self):
        table = frame_table(_sample_frame(), columns=("figure_of_merit",))
        assert table.rows == [("1.0",), ("1.32",)]

    def test_empty_frame_renders_header_only(self):
        table = frame_table(ResultFrame.empty())
        assert len(table) == 0
        assert table.render().splitlines()[0].startswith("volume")
