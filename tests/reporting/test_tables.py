"""Text table rendering."""

from __future__ import annotations

import pytest

from repro.reporting.tables import Table, TableError, format_percent_map


class TestTable:
    def test_render_alignment(self):
        table = Table(columns=("name", "value"))
        table.add_row("a", "1")
        table.add_row("longer", "22")
        lines = table.render().splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title_rendered_first(self):
        table = Table(columns=("a",), title="My Table")
        table.add_row("x")
        assert table.render().splitlines()[0] == "My Table"

    def test_wrong_cell_count_rejected(self):
        table = Table(columns=("a", "b"))
        with pytest.raises(TableError):
            table.add_row("only one")

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            Table().render()

    def test_non_string_cells_coerced(self):
        table = Table(columns=("n",))
        table.add_row(42)
        assert "42" in table.render()

    def test_len(self):
        table = Table(columns=("a",))
        table.add_row("x")
        assert len(table) == 1


def test_format_percent_map():
    text = format_percent_map({1: 100.0, 4: 37.0})
    assert text == "1: 100%  4: 37%"
