"""Markdown report rendering."""

from __future__ import annotations

import pytest

from repro.core.resultframe import COLUMN_ORDER, ResultFrame, SweepRow
from repro.reporting.markdown import (
    MarkdownError,
    markdown_table,
    paper_vs_measured_table,
    study_report_markdown,
    sweep_frame_markdown,
)


class TestSweepFrameMarkdown:
    def _frame(self) -> ResultFrame:
        return ResultFrame.from_rows(
            [
                SweepRow(1e3, "s", "p", "t", "q", "n", "w", "A",
                         1.0, 100.0, 100.0, 1.0, True, True),
                SweepRow(1e3, "s", "p", "t", "q", "n", "w", "B",
                         0.9, 80.0, 85.0, 1.32, False, True),
                SweepRow(1e4, "s", "p", "t", "q", "n", "w", "B",
                         0.9, 80.0, 70.0, 1.6, True, True),
            ]
        )

    def test_renders_table_and_winner_summary(self):
        text = sweep_frame_markdown(self._frame(), title="My sweep")
        lines = text.splitlines()
        assert lines[0] == "# My sweep"
        header = next(line for line in lines if line.startswith("|"))
        assert header == "| " + " | ".join(COLUMN_ORDER) + " |"
        assert "Winners: A (1), B (1)" in text
        assert "| 1.32 |" in text  # exact-float cell formatting

    def test_one_table_row_per_sweep_row(self):
        text = sweep_frame_markdown(self._frame())
        table_rows = [
            line
            for line in text.splitlines()
            if line.startswith("|") and "---" not in line
        ]
        assert len(table_rows) == 1 + 3  # header + rows

    def test_empty_frame_rejected(self):
        with pytest.raises(MarkdownError):
            sweep_frame_markdown(ResultFrame.empty())


class TestMarkdownTable:
    def test_basic_shape(self):
        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_empty_header_rejected(self):
        with pytest.raises(MarkdownError):
            markdown_table([], [])

    def test_ragged_row_rejected(self):
        with pytest.raises(MarkdownError):
            markdown_table(["a", "b"], [[1]])


class TestPaperVsMeasured:
    def test_sorted_by_implementation(self):
        text = paper_vs_measured_table(
            {2: (79.0, 81.6), 1: (100.0, 100.0)}
        )
        lines = text.splitlines()
        assert "| 1 | 100.00 | 100.00 |" == lines[2]
        assert lines[3].startswith("| 2 |")

    def test_custom_format(self):
        text = paper_vs_measured_table(
            {1: (1.0, 1.0)}, value_format="{:.0f}"
        )
        assert "| 1 | 1 | 1 |" in text


class TestStudyReport:
    def test_gps_report_sections(self, gps_result):
        text = study_report_markdown(gps_result, title="GPS study")
        assert text.startswith("# GPS study")
        for section in ("## Area", "## Cost", "## Figure of merit",
                        "## Decision"):
            assert section in text
        assert "MCM-D(Si)/FC/IP&SMD" in text
        assert "Recommended build-up" in text

    def test_report_is_valid_markdown_tables(self, gps_result):
        text = study_report_markdown(gps_result)
        table_lines = [
            line for line in text.splitlines() if line.startswith("|")
        ]
        widths = {line.count("|") for line in table_lines}
        # All table rows are well-formed (consistent per table: 4-6 cols).
        assert all(w >= 4 for w in widths)
