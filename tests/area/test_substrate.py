"""Substrate and laminate sizing rules (Table 1 footnotes)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.area.footprint import Footprint, MountKind
from repro.area.substrate import (
    LAMINATE_RULE,
    LaminateRule,
    MCM_D_RULE,
    PCB_RULE,
    SubstrateRule,
)
from repro.errors import PlacementError


def fp(area, mount=MountKind.INTEGRATED, name="x"):
    return Footprint(name, area, mount)


class TestSubstrateRule:
    def test_paper_rule_literal(self):
        """1.1 * total component area, +1 mm clearance each side."""
        size = MCM_D_RULE.size([fp(100.0)])
        assert size.packed_area_mm2 == pytest.approx(110.0)
        assert size.side_mm == pytest.approx(math.sqrt(110.0) + 2.0)

    def test_area_is_side_squared(self):
        size = MCM_D_RULE.size([fp(100.0)])
        assert size.area_mm2 == pytest.approx(size.side_mm**2)

    def test_cm2_conversion(self):
        size = MCM_D_RULE.size([fp(100.0)])
        assert size.area_cm2 == pytest.approx(size.area_mm2 / 100.0)

    def test_smd_factor_applies_only_to_smd(self):
        smd = fp(10.0, MountKind.SMD)
        integrated = fp(10.0, MountKind.INTEGRATED)
        assert MCM_D_RULE.effective_area(smd) == pytest.approx(15.0)
        assert MCM_D_RULE.effective_area(integrated) == pytest.approx(10.0)

    def test_pcb_has_no_smd_overhead(self):
        smd = fp(10.0, MountKind.SMD)
        assert PCB_RULE.effective_area(smd) == pytest.approx(10.0)

    def test_empty_component_list_rejected(self):
        with pytest.raises(PlacementError):
            MCM_D_RULE.size([])

    def test_rejects_packing_below_one(self):
        with pytest.raises(PlacementError):
            SubstrateRule(name="bad", packing_factor=0.9)

    def test_rejects_negative_clearance(self):
        with pytest.raises(PlacementError):
            SubstrateRule(name="bad", edge_clearance_mm=-1.0)

    @given(st.floats(min_value=1.0, max_value=1e5))
    def test_monotonic_in_component_area(self, area):
        small = MCM_D_RULE.size([fp(area)])
        large = MCM_D_RULE.size([fp(area * 2)])
        assert large.area_mm2 > small.area_mm2


class TestLaminateRule:
    def test_paper_rule_literal(self):
        """Laminate side = silicon side + 5 mm each side."""
        silicon = MCM_D_RULE.size([fp(100.0)])
        package = LAMINATE_RULE.size(silicon)
        assert package.side_mm == pytest.approx(silicon.side_mm + 10.0)

    def test_package_bigger_than_silicon(self):
        silicon = MCM_D_RULE.size([fp(100.0)])
        package = LaminateRule(5.0).size(silicon)
        assert package.area_mm2 > silicon.area_mm2

    def test_laminate_overhead_relatively_larger_for_small_modules(self):
        """The BGA rim penalises small modules more — a driver of the
        Fig. 3 ratios."""
        small = LAMINATE_RULE.size(MCM_D_RULE.size([fp(100.0)]))
        large = LAMINATE_RULE.size(MCM_D_RULE.size([fp(1000.0)]))
        overhead_small = small.area_mm2 / small.silicon.area_mm2
        overhead_large = large.area_mm2 / large.silicon.area_mm2
        assert overhead_small > overhead_large
