"""Trivial placement and the shelf packer."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.area.footprint import Footprint, MountKind
from repro.area.placement import (
    ShelfPlacer,
    area_breakdown,
    area_ratio,
    trivial_placement,
    trivial_placement_batch,
)
from repro.area.substrate import LAMINATE_RULE, MCM_D_RULE, PCB_RULE
from repro.errors import PlacementError


def fp(area, mount=MountKind.INTEGRATED, name="x"):
    return Footprint(name, area, mount)


class TestTrivialPlacement:
    def test_pcb_report_has_no_package(self):
        report = trivial_placement([fp(100.0)], PCB_RULE)
        assert report.package is None
        assert report.final_area_mm2 == report.substrate.area_mm2

    def test_mcm_report_final_is_laminate(self):
        report = trivial_placement([fp(100.0)], MCM_D_RULE, LAMINATE_RULE)
        assert report.package is not None
        assert report.final_area_mm2 == report.package.area_mm2
        assert report.final_area_mm2 > report.substrate.area_mm2

    def test_breakdown_by_mount_kind(self):
        report = trivial_placement(
            [
                fp(10.0, MountKind.SMD),
                fp(20.0, MountKind.SMD),
                fp(5.0, MountKind.INTEGRATED),
            ],
            MCM_D_RULE,
        )
        assert report.breakdown_mm2["smd"] == pytest.approx(30.0)
        assert report.breakdown_mm2["integrated"] == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            trivial_placement([], PCB_RULE)

    def test_area_ratio(self):
        small = trivial_placement([fp(50.0)], PCB_RULE)
        large = trivial_placement([fp(500.0)], PCB_RULE)
        assert area_ratio(small, large) < 1.0

    def test_area_breakdown_helper(self):
        totals = area_breakdown(
            [fp(1.0, MountKind.SMD), fp(2.0, MountKind.SMD)]
        )
        assert totals == {"smd": 3.0}


class TestTrivialPlacementBatch:
    def families(self):
        """Ragged mixed-mount families, including a single-component
        one, exercising the zero-padded batch path."""
        return [
            [fp(100.0)],
            [
                fp(10.0, MountKind.SMD, "r1"),
                fp(20.0, MountKind.SMD, "r2"),
                fp(5.0, MountKind.INTEGRATED, "l"),
            ],
            [fp(3.75, MountKind.SMD, f"c{i}") for i in range(50)]
            + [fp(88.0, MountKind.WIRE_BOND, "chip")],
        ]

    def test_bit_identical_to_looped_scalar(self):
        for rule, laminate in (
            (PCB_RULE, None),
            (MCM_D_RULE, None),
            (MCM_D_RULE, LAMINATE_RULE),
        ):
            batched = trivial_placement_batch(
                self.families(), rule, laminate
            )
            looped = [
                trivial_placement(family, rule, laminate)
                for family in self.families()
            ]
            assert len(batched) == len(looped)
            for fast, slow in zip(batched, looped):
                assert fast.substrate.side_mm == slow.substrate.side_mm
                assert (
                    fast.substrate.component_area_mm2
                    == slow.substrate.component_area_mm2
                )
                assert (
                    fast.substrate.packed_area_mm2
                    == slow.substrate.packed_area_mm2
                )
                assert fast.final_area_mm2 == slow.final_area_mm2
                assert fast.breakdown_mm2 == slow.breakdown_mm2
                if laminate is None:
                    assert fast.package is None
                else:
                    assert fast.package.area_mm2 == slow.package.area_mm2

    def test_empty_family_rejected(self):
        with pytest.raises(PlacementError):
            trivial_placement_batch([[fp(1.0)], []], PCB_RULE)

    def test_no_families_is_empty(self):
        assert trivial_placement_batch([], PCB_RULE) == []

    def test_generator_input_accepted(self):
        batched = trivial_placement_batch(
            (family for family in self.families()), PCB_RULE
        )
        assert len(batched) == 3


class TestShelfPlacer:
    def test_all_components_placed(self):
        footprints = [fp(float(i + 1), name=f"c{i}") for i in range(20)]
        layout = ShelfPlacer().pack(footprints)
        assert len(layout.placements) == 20

    def test_no_overlaps(self):
        footprints = [fp(float(i % 5 + 1), name=f"c{i}") for i in range(30)]
        layout = ShelfPlacer(spacing_mm=0.0).pack(footprints)
        rects = [
            (p.x_mm, p.y_mm, p.x_mm + p.width_mm, p.y_mm + p.height_mm)
            for p in layout.placements
        ]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                overlap_x = min(a[2], b[2]) - max(a[0], b[0])
                overlap_y = min(a[3], b[3]) - max(a[1], b[1])
                assert not (overlap_x > 1e-9 and overlap_y > 1e-9)

    def test_all_within_bounds(self):
        footprints = [fp(2.0, name=f"c{i}") for i in range(25)]
        layout = ShelfPlacer().pack(footprints)
        for p in layout.placements:
            assert p.x_mm + p.width_mm <= layout.width_mm + 1e-9
            assert p.y_mm + p.height_mm <= layout.height_mm + 1e-9

    def test_utilization_reasonable(self):
        """Equal squares pack efficiently (> 60 %)."""
        footprints = [fp(4.0, name=f"c{i}") for i in range(16)]
        layout = ShelfPlacer(spacing_mm=0.0).pack(footprints)
        assert layout.utilization > 0.6

    def test_comparable_to_trivial_rule(self):
        """Shelf packing of the GPS-like mix lands within ~50 % of the
        1.1x heuristic — the ablation the paper's rule implies."""
        footprints = [fp(3.75, MountKind.SMD, f"c{i}") for i in range(50)]
        footprints.append(fp(88.0, MountKind.WIRE_BOND, "chip"))
        trivial = trivial_placement(footprints, PCB_RULE)
        shelf = ShelfPlacer().place(footprints, PCB_RULE)
        ratio = shelf.final_area_mm2 / trivial.final_area_mm2
        assert 0.6 < ratio < 1.6

    def test_rejects_negative_spacing(self):
        with pytest.raises(PlacementError):
            ShelfPlacer(spacing_mm=-0.1)

    def test_rejects_empty(self):
        with pytest.raises(PlacementError):
            ShelfPlacer().pack([])

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_contains_total_area(self, areas):
        """Bounding box always >= sum of component areas."""
        footprints = [fp(a, name=f"c{i}") for i, a in enumerate(areas)]
        layout = ShelfPlacer(spacing_mm=0.0).pack(footprints)
        assert layout.area_mm2 >= sum(areas) - 1e-6

    def test_place_produces_report(self):
        footprints = [fp(4.0, name=f"c{i}") for i in range(10)]
        report = ShelfPlacer().place(footprints, MCM_D_RULE, LAMINATE_RULE)
        assert report.package is not None
        assert report.substrate.side_mm > 0
