"""Chip footprints (Table 1 rows)."""

from __future__ import annotations

import pytest

from repro.area.footprint import (
    CHIP_AREAS,
    ChipAreas,
    Footprint,
    MountKind,
    TABLE1_FILTER_AREAS,
    TABLE1_IP_AREAS,
)
from repro.errors import PlacementError


class TestChipAreas:
    def test_rf_chip_table1(self):
        chip = CHIP_AREAS["RF chip"]
        assert chip.packaged_mm2 == 225.0
        assert chip.wire_bond_mm2 == 28.0
        assert chip.flip_chip_mm2 == 13.0

    def test_dsp_table1(self):
        chip = CHIP_AREAS["DSP correlator"]
        assert chip.packaged_mm2 == 1165.0
        assert chip.wire_bond_mm2 == 88.0
        assert chip.flip_chip_mm2 == 59.0

    def test_footprint_selection(self):
        chip = CHIP_AREAS["RF chip"]
        assert chip.footprint(MountKind.FLIP_CHIP).area_mm2 == 13.0
        assert chip.footprint(MountKind.WIRE_BOND).area_mm2 == 28.0
        assert chip.footprint(MountKind.PACKAGED).area_mm2 == 225.0

    def test_invalid_mount_for_chip(self):
        chip = CHIP_AREAS["RF chip"]
        with pytest.raises(PlacementError):
            chip.footprint(MountKind.SMD)

    def test_flip_chip_smallest(self):
        for chip in CHIP_AREAS.values():
            assert (
                chip.flip_chip_mm2
                < chip.wire_bond_mm2
                < chip.packaged_mm2
            )


class TestFootprint:
    def test_rejects_nonpositive_area(self):
        with pytest.raises(PlacementError):
            Footprint("x", 0.0, MountKind.SMD)

    def test_table1_reference_dicts(self):
        assert TABLE1_IP_AREAS["IP-L 40nH"] == 1.0
        assert TABLE1_FILTER_AREAS["SMD"] == 27.5
