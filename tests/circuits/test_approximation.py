"""Attenuation functions and order estimation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.approximation import (
    bandpass_selectivity,
    butterworth_attenuation_db,
    chebyshev_attenuation_db,
    elliptic_attenuation_db,
    minimum_order,
    required_order,
)
from repro.errors import SynthesisError
from repro.gps.filters_chain import rf_image_reject_spec
from repro.passives.filters import FilterFamily


class TestButterworth:
    def test_3db_at_corner(self):
        assert butterworth_attenuation_db(4, 1.0) == pytest.approx(
            3.0103, abs=1e-3
        )

    def test_rolloff_6n_db_per_octave(self):
        order = 3
        a2 = butterworth_attenuation_db(order, 2.0)
        a4 = butterworth_attenuation_db(order, 4.0)
        assert a4 - a2 == pytest.approx(6.02 * order, abs=0.5)

    def test_dc_no_attenuation(self):
        assert butterworth_attenuation_db(5, 0.0) == 0.0


class TestChebyshev:
    def test_ripple_at_corner(self):
        assert chebyshev_attenuation_db(3, 0.5, 1.0) == pytest.approx(
            0.5, abs=1e-6
        )

    def test_steeper_than_butterworth(self):
        """Same order, Chebyshev rejects more in the stopband."""
        assert chebyshev_attenuation_db(
            3, 0.5, 2.0
        ) > butterworth_attenuation_db(3, 2.0)

    def test_bounded_by_ripple_in_passband(self):
        for w in (0.0, 0.3, 0.6, 0.9, 1.0):
            assert chebyshev_attenuation_db(4, 0.5, w) <= 0.5 + 1e-9

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=1.1, max_value=10.0),
    )
    def test_monotone_in_stopband(self, order, w):
        a1 = chebyshev_attenuation_db(order, 0.5, w)
        a2 = chebyshev_attenuation_db(order, 0.5, w * 1.5)
        assert a2 >= a1


class TestElliptic:
    def test_ripple_bounded_in_passband(self):
        for w in (0.1, 0.5, 0.9):
            assert elliptic_attenuation_db(3, 0.5, 40.0, w) <= 0.5 + 0.01

    def test_stopband_floor_reached(self):
        """Deep in the stopband the attenuation is at least A_stop."""
        attenuation = elliptic_attenuation_db(3, 0.5, 40.0, 5.0)
        assert attenuation >= 40.0 - 0.5

    def test_sharper_than_chebyshev(self):
        """Just past the corner, elliptic rejects harder."""
        w = 1.3
        assert elliptic_attenuation_db(
            3, 0.5, 40.0, w
        ) > chebyshev_attenuation_db(3, 0.5, w)

    def test_rejects_inconsistent_spec(self):
        with pytest.raises(SynthesisError):
            elliptic_attenuation_db(3, 1.0, 0.5, 2.0)


class TestMinimumOrder:
    def test_butterworth_textbook(self):
        """40 dB at 2x corner needs n >= 7 for Butterworth."""
        order = minimum_order(
            FilterFamily.BUTTERWORTH, 3.0, 40.0, 2.0
        )
        assert order == 7

    def test_chebyshev_needs_fewer(self):
        cheb = minimum_order(FilterFamily.CHEBYSHEV, 0.5, 40.0, 2.0)
        butter = minimum_order(FilterFamily.BUTTERWORTH, 0.5, 40.0, 2.0)
        assert cheb < butter

    def test_elliptic_needs_fewest(self):
        elliptic = minimum_order(FilterFamily.CAUER, 0.5, 40.0, 2.0)
        cheb = minimum_order(FilterFamily.CHEBYSHEV, 0.5, 40.0, 2.0)
        assert elliptic <= cheb

    def test_rejects_bad_selectivity(self):
        with pytest.raises(SynthesisError):
            minimum_order(FilterFamily.CHEBYSHEV, 0.5, 40.0, 1.0)

    def test_unreachable_spec_raises(self):
        with pytest.raises(SynthesisError):
            minimum_order(
                FilterFamily.BUTTERWORTH, 3.0, 200.0, 1.01, max_order=5
            )


class TestGpsImageReject:
    def test_selectivity_of_image(self):
        """The 1.225 GHz image maps well outside the lowpass corner."""
        spec = rf_image_reject_spec()
        assert bandpass_selectivity(spec) > 1.5

    def test_cauer_order_for_full_band_rejection(self):
        """A true elliptic needs order 4 for 30 dB over the whole
        stopband at this selectivity; the extracted-pole (trap) design
        achieves the *spot* rejection at the image with order 3 — which
        is why Table 1's 3-stage filter suffices (the image is a single
        frequency, not a band)."""
        spec = rf_image_reject_spec()
        assert required_order(spec) == 4

        from repro.circuits.performance import analyze_filter
        from repro.circuits.qfactor import IdealQModel

        measured = analyze_filter(spec, IdealQModel())
        assert measured.rejection_db >= 30.0  # order 3 + trap

    def test_butterworth_would_need_more_stages(self):
        """The Cauer choice buys stages: a Butterworth needs more."""
        from dataclasses import replace

        spec = replace(
            rf_image_reject_spec(), family=FilterFamily.BUTTERWORTH
        )
        assert required_order(spec) > 3

    def test_spec_without_stopband_rejected(self):
        from repro.gps.filters_chain import if_filter_spec

        with pytest.raises(SynthesisError):
            required_order(if_filter_spec(1))
