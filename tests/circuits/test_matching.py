"""L-network matching synthesis (§3's 50 ohm matching networks)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.matching import (
    LNetworkTopology,
    build_l_match_circuit,
    design_l_match,
    match_return_loss_db,
    matching_network_area_mm2,
)
from repro.circuits.qfactor import SummitQModel
from repro.circuits.twoport import two_port_sparameters
from repro.errors import CircuitError, SynthesisError


class TestDesign:
    def test_q_from_impedance_ratio(self):
        design = design_l_match(50.0, 10.0, 1e9)
        assert design.q_factor == pytest.approx(2.0)

    def test_lowpass_element_kinds(self):
        design = design_l_match(50.0, 10.0, 1e9)
        assert design.series_is_inductor
        assert design.series_element > 0
        assert design.shunt_element > 0

    def test_textbook_values(self):
        """50 -> 10 ohm at 1 GHz: Xs = 20 ohm, Xp = 25 ohm."""
        design = design_l_match(50.0, 10.0, 1e9)
        omega = 2 * math.pi * 1e9
        assert design.series_element * omega == pytest.approx(20.0)
        assert 1 / (design.shunt_element * omega) == pytest.approx(25.0)

    def test_shunt_on_high_side(self):
        up = design_l_match(50.0, 10.0, 1e9)
        down = design_l_match(10.0, 50.0, 1e9)
        assert up.shunt_at_source
        assert not down.shunt_at_source

    def test_degenerate_equal_impedances(self):
        design = design_l_match(50.0, 50.0, 1e9)
        assert design.q_factor == 0.0
        assert design.bandwidth_hz == math.inf

    def test_highpass_swaps_elements(self):
        lp = design_l_match(50.0, 10.0, 1e9)
        hp = design_l_match(
            50.0, 10.0, 1e9, LNetworkTopology.HIGHPASS
        )
        assert not hp.series_is_inductor
        # Same reactance magnitudes, different realisations.
        omega = 2 * math.pi * 1e9
        assert 1 / (hp.series_element * omega) == pytest.approx(
            lp.series_element * omega
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(SynthesisError):
            design_l_match(0.0, 10.0, 1e9)
        with pytest.raises(SynthesisError):
            design_l_match(50.0, 10.0, 0.0)


class TestBuiltMatch:
    def test_lossless_match_is_perfect(self):
        """An exact lossless L-match reflects nothing at f0."""
        design = design_l_match(50.0, 10.0, 1.575e9)
        loss = match_return_loss_db(design)
        assert loss > 40.0

    def test_power_is_delivered(self):
        design = design_l_match(50.0, 10.0, 1.575e9)
        circuit = build_l_match_circuit(design)
        s = two_port_sparameters(circuit, 1.575e9)
        assert abs(s.s21) == pytest.approx(1.0, abs=1e-3)

    def test_summit_technology_degrades_match(self):
        design = design_l_match(50.0, 10.0, 1.575e9)
        lossless = match_return_loss_db(design)
        lossy = match_return_loss_db(design, SummitQModel())
        assert lossy < lossless

    def test_match_narrowband(self):
        """Off-frequency the match deteriorates (finite Q bandwidth)."""
        design = design_l_match(50.0, 5.0, 1.575e9)
        circuit = build_l_match_circuit(design)
        at_f0 = two_port_sparameters(circuit, 1.575e9)
        off = two_port_sparameters(circuit, 2.4e9)
        assert abs(off.s11) > abs(at_f0.s11)

    def test_degenerate_cannot_build(self):
        with pytest.raises(CircuitError):
            build_l_match_circuit(design_l_match(50.0, 50.0, 1e9))

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=5.0, max_value=500.0),
        st.floats(min_value=5.0, max_value=500.0),
        st.floats(min_value=1e8, max_value=5e9),
    )
    def test_property_lossless_match_always_works(self, rs, rl, freq):
        """Any real-to-real lossless L-match achieves > 30 dB RL."""
        if abs(rs / rl - 1.0) < 0.05:
            return  # near-degenerate: nothing to match
        design = design_l_match(rs, rl, freq)
        assert match_return_loss_db(design) > 30.0


class TestAreaPricing:
    def test_integrated_smaller_than_smd(self):
        """Matching networks integrate well (small L and C at RF) —
        why the paper integrates the LNA/mixer matching in §4.1."""
        design = design_l_match(50.0, 10.0, 1.575e9)
        integrated = matching_network_area_mm2(design, integrated=True)
        smd = matching_network_area_mm2(design, integrated=False)
        assert integrated < smd

    def test_degenerate_has_zero_area(self):
        design = design_l_match(50.0, 50.0, 1e9)
        assert matching_network_area_mm2(design) == 0.0
