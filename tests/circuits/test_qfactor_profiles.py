"""Vectorised Q-profile evaluation against the scalar models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.qfactor import (
    ConstantQModel,
    IdealQModel,
    MixedQModel,
    SmdQModel,
    SummitQModel,
    capacitor_q_profile,
    combined_q_profile,
    combined_q_profiles,
    combined_unloaded_q,
    inductor_q_profile,
    inductor_q_profiles,
)
from repro.errors import CircuitError

GRID = np.geomspace(50e6, 5e9, 25)


class TestInductorProfiles:
    def test_summit_profile_matches_scalar(self):
        model = SummitQModel()
        profile = inductor_q_profile(model, 40e-9, GRID)
        scalar = [model.inductor_q(40e-9, float(f)) for f in GRID]
        np.testing.assert_allclose(profile, scalar, rtol=1e-12)

    def test_summit_profile_peaks_in_low_ghz(self):
        """The published SUMMIT behaviour: Q peaks in the 1-2 GHz range."""
        profile = inductor_q_profile(SummitQModel(), 40e-9, GRID)
        peak_hz = GRID[int(np.argmax(profile))]
        assert 5e8 < peak_hz < 3e9

    def test_generic_fallback_matches_scalar(self):
        model = SmdQModel()
        profile = inductor_q_profile(model, 100e-9, GRID)
        np.testing.assert_allclose(profile, model.inductor_q_value)

    def test_mixed_model_delegates(self):
        mixed = MixedQModel(
            inductor_model=SmdQModel(inductor_q_value=17.0),
            capacitor_model=SummitQModel(),
        )
        profile = inductor_q_profile(mixed, 100e-9, GRID)
        np.testing.assert_allclose(profile, 17.0)

    def test_scalar_frequency_accepted(self):
        profile = inductor_q_profile(SummitQModel(), 40e-9, 1e9)
        assert profile.shape == (1,)
        assert profile[0] == pytest.approx(
            SummitQModel().inductor_q(40e-9, 1e9), rel=1e-12
        )

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(CircuitError):
            inductor_q_profile(SummitQModel(), 40e-9, [1e9, 0.0])
        with pytest.raises(CircuitError):
            inductor_q_profile(SmdQModel(), 40e-9, [])


class TestCombinedProfiles:
    def test_combined_matches_scalar(self):
        model = SummitQModel()
        profile = combined_q_profile(model, 40e-9, 10e-12, GRID)
        scalar = [
            combined_unloaded_q(model, 40e-9, 10e-12, float(f))
            for f in GRID
        ]
        np.testing.assert_allclose(profile, scalar, rtol=1e-12)

    def test_ideal_model_is_infinite(self):
        profile = combined_q_profile(IdealQModel(), 1e-9, 1e-12, GRID)
        assert np.all(np.isinf(profile))

    def test_capacitor_profile_constant_model(self):
        profile = capacitor_q_profile(
            ConstantQModel(30.0, 400.0), 1e-12, GRID
        )
        np.testing.assert_allclose(profile, 400.0)

    def test_combined_below_either_leg(self):
        model = ConstantQModel(30.0, 400.0)
        profile = combined_q_profile(model, 1e-9, 1e-12, GRID)
        expected = 1.0 / (1.0 / 30.0 + 1.0 / 400.0)
        np.testing.assert_allclose(profile, expected)
        assert np.all(profile < 30.0)


INDUCTANCES = np.array([10e-9, 40e-9, 100e-9, 250e-9])


class TestStackedProfiles:
    """The ``(B, F)`` profile block against the per-value grid path."""

    def test_summit_stack_matches_per_value_profiles(self):
        model = SummitQModel()
        stacked = inductor_q_profiles(model, INDUCTANCES, GRID)
        assert stacked.shape == (INDUCTANCES.size, GRID.size)
        for row, value in zip(stacked, INDUCTANCES):
            np.testing.assert_allclose(
                row,
                inductor_q_profile(model, float(value), GRID),
                rtol=1e-12,
            )

    def test_fallback_stack_matches_per_value_profiles(self):
        model = SmdQModel(inductor_q_value=17.0)
        stacked = inductor_q_profiles(model, INDUCTANCES, GRID)
        np.testing.assert_allclose(stacked, 17.0)
        assert stacked.shape == (INDUCTANCES.size, GRID.size)

    def test_mixed_model_delegates_stack(self):
        mixed = MixedQModel(
            inductor_model=SummitQModel(),
            capacitor_model=SmdQModel(),
        )
        stacked = inductor_q_profiles(mixed, INDUCTANCES, GRID)
        np.testing.assert_allclose(
            stacked,
            inductor_q_profiles(SummitQModel(), INDUCTANCES, GRID),
            rtol=1e-12,
        )

    def test_combined_stack_matches_per_pair(self):
        model = SummitQModel()
        capacitances = np.array([5e-12, 10e-12, 22e-12, 47e-12])
        stacked = combined_q_profiles(
            model, INDUCTANCES, capacitances, GRID
        )
        for row, value, cap in zip(stacked, INDUCTANCES, capacitances):
            np.testing.assert_allclose(
                row,
                combined_q_profile(model, float(value), float(cap), GRID),
                rtol=1e-12,
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            combined_q_profiles(
                SummitQModel(), INDUCTANCES, np.array([1e-12]), GRID
            )

    def test_bad_inductances_rejected(self):
        with pytest.raises(CircuitError):
            inductor_q_profiles(SmdQModel(), [], GRID)
        with pytest.raises(CircuitError):
            inductor_q_profiles(SummitQModel(), [40e-9, -1e-9], GRID)

    def test_bad_frequencies_rejected(self):
        with pytest.raises(CircuitError):
            inductor_q_profiles(SummitQModel(), INDUCTANCES, [1e9, 0.0])
