"""Nodal analysis against closed-form circuit theory."""

from __future__ import annotations

import math

import pytest

from repro.circuits.mna import AcAnalysis, node_admittance_matrix, node_index
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError


def voltage_divider() -> Circuit:
    c = Circuit("divider")
    c.resistor("R1", "in", "mid", 100.0)
    c.resistor("R2", "mid", "0", 100.0)
    return c


class TestMatrixStamping:
    def test_divider_matrix(self):
        c = voltage_divider()
        idx = node_index(c)
        y = node_admittance_matrix(c, 2 * math.pi * 1e6, idx)
        i_in, i_mid = idx["in"], idx["mid"]
        assert y[i_in, i_in] == pytest.approx(0.01)
        assert y[i_mid, i_mid] == pytest.approx(0.02)
        assert y[i_in, i_mid] == pytest.approx(-0.01)

    def test_matrix_symmetric(self):
        c = voltage_divider()
        y = node_admittance_matrix(c, 1e6)
        assert (y == y.T).all()

    def test_rejects_dc(self):
        with pytest.raises(CircuitError):
            node_admittance_matrix(voltage_divider(), 0.0)


class TestAcAnalysis:
    def test_driving_point_impedance_divider(self):
        """Looking into 'in': R1 + R2 in series = 200 ohm."""
        analysis = AcAnalysis(voltage_divider())
        z = analysis.driving_point_impedance("in", 1e6)
        assert z.real == pytest.approx(200.0)
        assert z.imag == pytest.approx(0.0, abs=1e-9)

    def test_transfer_impedance_divider(self):
        """1 A into 'in' puts 1 A through R2: V(mid) = 100 V."""
        analysis = AcAnalysis(voltage_divider())
        z = analysis.transfer_impedance("in", "mid", 1e6)
        assert z.real == pytest.approx(100.0)

    def test_rc_lowpass_corner(self):
        """RC lowpass: |V(out)/V(in)| = 1/sqrt(2) at f = 1/(2 pi RC)."""
        c = Circuit("rc")
        c.resistor("R", "in", "out", 1e3)
        c.capacitor("C", "out", "0", 1e-9)
        corner = 1 / (2 * math.pi * 1e3 * 1e-9)
        analysis = AcAnalysis(c)
        v = analysis.voltages_for_injection("in", corner)
        ratio = abs(v["out"] / v["in"])
        assert ratio == pytest.approx(1 / math.sqrt(2), rel=1e-6)

    def test_lc_resonance_peak(self):
        """Parallel LC driven through R peaks at f0 = 1/(2 pi sqrt(LC))."""
        c = Circuit("tank")
        c.resistor("R", "in", "out", 1e3)
        c.inductor("L", "out", "0", 100e-9, series_resistance=0.5)
        c.capacitor("C", "out", "0", 10e-12)
        f0 = 1 / (2 * math.pi * math.sqrt(100e-9 * 10e-12))
        analysis = AcAnalysis(c)
        at_res = abs(analysis.transfer_impedance("in", "out", f0))
        off_res = abs(analysis.transfer_impedance("in", "out", f0 / 3))
        assert at_res > 10 * off_res

    def test_floating_subcircuit_raises(self):
        c = Circuit("floating")
        c.resistor("R1", "a", "b", 100.0)  # no path to ground
        c.resistor("R2", "c", "0", 100.0)
        analysis = AcAnalysis.__new__(AcAnalysis)
        analysis.circuit = c
        analysis._index = node_index(c)
        with pytest.raises(CircuitError):
            analysis.impedance_matrix(1e6)

    def test_unknown_node_raises(self):
        analysis = AcAnalysis(voltage_divider())
        with pytest.raises(CircuitError):
            analysis.driving_point_impedance("nope", 1e6)

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            AcAnalysis(Circuit("empty"))

    def test_reciprocity(self):
        """Passive network: Z_ab == Z_ba."""
        c = Circuit("recip")
        c.resistor("R1", "a", "b", 75.0)
        c.capacitor("C1", "b", "0", 1e-12)
        c.inductor("L1", "a", "0", 5e-9)
        analysis = AcAnalysis(c)
        z_ab = analysis.transfer_impedance("a", "b", 2e9)
        z_ba = analysis.transfer_impedance("b", "a", 2e9)
        assert z_ab == pytest.approx(z_ba)
