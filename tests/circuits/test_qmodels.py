"""Frequency-dependent Q models and their dispersive elements.

Covers the dispersive hierarchy (skin effect, substrate loss tangent,
tabulated profiles, the dispersive wrapper), the
``DispersiveInductor`` / ``DispersiveCapacitor`` elements they are
realised as, bit-identity of the stacked ``(B, F)`` evaluation against
the per-circuit path, and the constant-vs-dispersive routing of
``build_bandpass_circuit``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.elements import (
    Capacitor,
    DispersiveCapacitor,
    DispersiveInductor,
    Inductor,
    dispersive_capacitor,
    dispersive_inductor,
    stacked_admittances,
)
from repro.circuits.netlist import Circuit
from repro.circuits.performance import (
    assess_chain,
    assess_chain_many,
    measure_filter,
    measure_filter_family,
)
from repro.circuits.qfactor import (
    DispersiveQModel,
    MEASURED_SUMMIT_TABLE,
    MixedQModel,
    Q_MODEL_SCENARIOS,
    SkinEffectQModel,
    SmdQModel,
    SubstrateLossQModel,
    SummitQModel,
    TabulatedQModel,
    capacitor_q_profile,
    capacitor_q_profiles,
    inductor_q_profile,
    inductor_q_profiles,
    is_dispersive,
    process_q_model,
)
from repro.circuits.synthesis import build_bandpass_circuit, synthesize_bandpass
from repro.circuits.twoport import sweep_grid, sweep_grid_stacked
from repro.errors import CircuitError
from repro.gps.filters_chain import if_filter_spec, technology_assignments
from repro.passives.thin_film import SUMMIT_PROCESS, with_loss

GRID = np.geomspace(50e6, 5e9, 23)

DISPERSIVE_MODELS = [
    SkinEffectQModel(),
    SubstrateLossQModel(),
    MEASURED_SUMMIT_TABLE,
    DispersiveQModel(SummitQModel()),
]


class TestModelLaws:
    def test_skin_effect_follows_sqrt_law(self):
        model = SkinEffectQModel(q0_inductor=40.0, f0_hz=1e9)
        assert model.inductor_q(10e-9, 1e9) == pytest.approx(40.0)
        assert model.inductor_q(10e-9, 4e9) == pytest.approx(80.0)
        profile = inductor_q_profile(model, 10e-9, GRID)
        np.testing.assert_allclose(
            profile, 40.0 * np.sqrt(GRID / 1e9), rtol=1e-12
        )

    def test_skin_effect_capacitor_scales_too(self):
        model = SkinEffectQModel(q0_capacitor=300.0, f0_hz=1e9)
        assert model.capacitor_q(1e-12, 0.25e9) == pytest.approx(150.0)

    def test_substrate_loss_tangent_grows_with_frequency(self):
        model = SubstrateLossQModel(
            tan_delta_ref=0.005, f_ref_hz=1e9, slope=1.0, conductor_q=40.0
        )
        assert model.capacitor_q(1e-12, 1e9) == pytest.approx(200.0)
        assert model.capacitor_q(1e-12, 2e9) == pytest.approx(100.0)
        # Inductor Q approaches the conductor limit at low frequency.
        assert model.inductor_q(1e-9, 1e6) == pytest.approx(40.0, rel=1e-3)
        assert model.inductor_q(1e-9, 1e9) < 40.0

    def test_substrate_loss_flat_when_slope_zero(self):
        model = SubstrateLossQModel(slope=0.0)
        profile = capacitor_q_profile(model, 1e-12, GRID)
        np.testing.assert_allclose(profile, profile[0])

    def test_tabulated_interpolates_and_clamps(self):
        model = TabulatedQModel(
            frequencies_hz=(1e8, 1e9),
            inductor_q_table=(10.0, 30.0),
            capacitor_q_table=(100.0, 200.0),
        )
        assert model.inductor_q(1e-9, 0.55e9) == pytest.approx(20.0)
        # Outside the table: clamped to the end values.
        assert model.inductor_q(1e-9, 1e7) == pytest.approx(10.0)
        assert model.inductor_q(1e-9, 1e10) == pytest.approx(30.0)

    def test_tabulated_validation(self):
        with pytest.raises(CircuitError):
            TabulatedQModel((1e9,), (10.0,), (100.0,))
        with pytest.raises(CircuitError):
            TabulatedQModel((1e9, 1e8), (10.0, 20.0), (1.0, 2.0))
        with pytest.raises(CircuitError):
            TabulatedQModel((1e8, 1e9), (10.0,), (1.0, 2.0))
        with pytest.raises(CircuitError):
            TabulatedQModel((1e8, 1e9), (10.0, -1.0), (1.0, 2.0))

    def test_parameter_validation(self):
        with pytest.raises(CircuitError):
            SkinEffectQModel(q0_inductor=0.0)
        with pytest.raises(CircuitError):
            SkinEffectQModel(f0_hz=-1.0)
        with pytest.raises(CircuitError):
            SubstrateLossQModel(tan_delta_ref=0.0)
        with pytest.raises(CircuitError):
            SubstrateLossQModel(slope=-1.0)
        with pytest.raises(CircuitError):
            SubstrateLossQModel(conductor_q=0.0)

    def test_nonfinite_parameters_rejected(self):
        """Regression: an infinite loss tangent would yield Q = 0,
        which the lossless-Q element convention would invert into a
        perfect component — so non-finite parameters must not get in."""
        with pytest.raises(CircuitError):
            SubstrateLossQModel(tan_delta_ref=math.inf)
        with pytest.raises(CircuitError):
            SubstrateLossQModel(tan_delta_ref=math.nan)
        with pytest.raises(CircuitError):
            SkinEffectQModel(q0_inductor=math.nan)
        with pytest.raises(CircuitError):
            SkinEffectQModel(f0_hz=math.inf)
        with pytest.raises(CircuitError):
            TabulatedQModel(
                (1e8, 1e9), (10.0, math.inf), (100.0, 200.0)
            )
        with pytest.raises(CircuitError):
            TabulatedQModel(
                (1e8, math.nan), (10.0, 20.0), (100.0, 200.0)
            )

    def test_dispersive_wrapper_delegates(self):
        wrapped = DispersiveQModel(SummitQModel())
        assert wrapped.inductor_q(40e-9, 1e9) == SummitQModel().inductor_q(
            40e-9, 1e9
        )
        np.testing.assert_array_equal(
            wrapped.inductor_q_profile(40e-9, GRID),
            inductor_q_profile(SummitQModel(), 40e-9, GRID),
        )

    def test_dispersive_flags(self):
        for model in DISPERSIVE_MODELS:
            assert is_dispersive(model)
        for model in (SummitQModel(), SmdQModel(), None):
            assert not is_dispersive(model)
        # A mixed model is dispersive exactly when a delegate is.
        assert not is_dispersive(MixedQModel())
        assert is_dispersive(
            MixedQModel(capacitor_model=SkinEffectQModel())
        )

    def test_scenario_registry_is_dispersive_and_labelled(self):
        for name, model in Q_MODEL_SCENARIOS.items():
            assert is_dispersive(model), name
            assert isinstance(model.label, str) and model.label


class TestProfileConsistency:
    """Vectorised grid and stacked evaluations vs the scalar methods."""

    @pytest.mark.parametrize("model", DISPERSIVE_MODELS)
    def test_grid_profile_matches_scalar(self, model):
        profile = inductor_q_profile(model, 40e-9, GRID)
        scalar = [model.inductor_q(40e-9, float(f)) for f in GRID]
        np.testing.assert_allclose(profile, scalar, rtol=1e-12)
        profile_c = capacitor_q_profile(model, 10e-12, GRID)
        scalar_c = [model.capacitor_q(10e-12, float(f)) for f in GRID]
        np.testing.assert_allclose(profile_c, scalar_c, rtol=1e-12)

    @pytest.mark.parametrize("model", DISPERSIVE_MODELS)
    def test_stacked_profiles_bit_identical_to_rows(self, model):
        """The contract the stacked element fast path relies on."""
        inductances = np.array([5e-9, 40e-9, 120e-9])
        stacked = inductor_q_profiles(model, inductances, GRID)
        for row, value in zip(stacked, inductances):
            np.testing.assert_array_equal(
                row, inductor_q_profile(model, float(value), GRID)
            )
        capacitances = np.array([1e-12, 10e-12, 47e-12])
        stacked_c = capacitor_q_profiles(model, capacitances, GRID)
        for row, value in zip(stacked_c, capacitances):
            np.testing.assert_array_equal(
                row, capacitor_q_profile(model, float(value), GRID)
            )


class TestDispersiveElements:
    def test_inductor_scalar_matches_vector(self):
        element = dispersive_inductor(
            "L1", "a", "b", 10e-9, SkinEffectQModel()
        )
        omegas = 2.0 * math.pi * GRID
        vector = element.admittances(omegas)
        for omega, y in zip(omegas, vector):
            assert element.admittance(float(omega)) == complex(y)

    def test_capacitor_scalar_matches_vector(self):
        element = dispersive_capacitor(
            "C1", "a", "b", 10e-12, SubstrateLossQModel()
        )
        omegas = 2.0 * math.pi * GRID
        vector = element.admittances(omegas)
        for omega, y in zip(omegas, vector):
            assert element.admittance(float(omega)) == complex(y)

    def test_inductor_loss_tracks_model_q(self):
        model = SkinEffectQModel(q0_inductor=25.0, f0_hz=1e9)
        element = dispersive_inductor("L1", "a", "b", 10e-9, model)
        omega = 2.0 * math.pi * 1e9
        y = element.admittance(omega)
        z = 1.0 / y
        assert z.imag / z.real == pytest.approx(25.0, rel=1e-12)

    def test_capacitor_loss_tangent_tracks_model(self):
        model = SubstrateLossQModel(tan_delta_ref=0.01, slope=0.0)
        element = dispersive_capacitor("C1", "a", "b", 10e-12, model)
        y = element.admittance(2.0 * math.pi * 1e9)
        assert y.real / y.imag == pytest.approx(0.01, rel=1e-12)

    def test_validation(self):
        with pytest.raises(CircuitError):
            dispersive_inductor("L1", "a", "b", 0.0, SkinEffectQModel())
        with pytest.raises(CircuitError):
            DispersiveInductor("L1", "a", "b", 1e-9, None)
        with pytest.raises(CircuitError):
            dispersive_capacitor("C1", "a", "b", -1e-12, SkinEffectQModel())
        with pytest.raises(CircuitError):
            DispersiveCapacitor("C1", "a", "b", 1e-12, None)
        with pytest.raises(CircuitError):
            dispersive_inductor(
                "L1", "a", "b", 1e-9, SkinEffectQModel(), c_par=-1e-15
            )

    def test_nonpositive_omega_rejected(self):
        element = dispersive_inductor(
            "L1", "a", "b", 1e-9, SkinEffectQModel()
        )
        with pytest.raises(CircuitError):
            element.admittance(0.0)
        with pytest.raises(CircuitError):
            element.admittances(np.array([1.0, -1.0]))

    def test_infinite_q_is_lossless(self):
        table = TabulatedQModel(
            frequencies_hz=(1e8, 1e9),
            inductor_q_table=(1e12, 1e12),
            capacitor_q_table=(1e12, 1e12),
        )
        element = dispersive_inductor("L1", "a", "b", 1e-9, table)
        y = element.admittance(2.0 * math.pi * 5e8)
        assert abs((1.0 / y).real) < 1e-6


class TestStackedDispersiveSlots:
    """``stacked_admittances`` over dispersive element families."""

    OMEGAS = 2.0 * math.pi * np.linspace(100e6, 2e9, 17)

    def test_shared_model_fast_path_bit_identical(self):
        model = SkinEffectQModel()
        members = [
            dispersive_inductor(f"L{i}", "a", "b", (10 + 5 * i) * 1e-9, model)
            for i in range(6)
        ]
        stacked = stacked_admittances(members, self.OMEGAS)
        for row, element in zip(stacked, members):
            np.testing.assert_array_equal(
                row, element.admittances(self.OMEGAS)
            )

    def test_shared_model_capacitors_bit_identical(self):
        model = SubstrateLossQModel()
        members = [
            dispersive_capacitor(f"C{i}", "a", "b", (5 + i) * 1e-12, model)
            for i in range(6)
        ]
        stacked = stacked_admittances(members, self.OMEGAS)
        for row, element in zip(stacked, members):
            np.testing.assert_array_equal(
                row, element.admittances(self.OMEGAS)
            )

    def test_mixed_models_fall_back_bit_identically(self):
        members = [
            dispersive_inductor(
                f"L{i}", "a", "b", 20e-9, SkinEffectQModel(q0_inductor=20 + i)
            )
            for i in range(4)
        ]
        stacked = stacked_admittances(members, self.OMEGAS)
        for row, element in zip(stacked, members):
            np.testing.assert_array_equal(
                row, element.admittances(self.OMEGAS)
            )

    def test_mixed_element_kinds_fall_back(self):
        members = [
            dispersive_inductor("L0", "a", "b", 20e-9, SkinEffectQModel()),
            Inductor("L1", "a", "b", 20e-9, series_resistance=0.5),
        ]
        stacked = stacked_admittances(members, self.OMEGAS)
        for row, element in zip(stacked, members):
            np.testing.assert_array_equal(
                row, element.admittances(self.OMEGAS)
            )

    def test_c_par_rows_guarded(self):
        model = SkinEffectQModel()
        members = [
            dispersive_inductor("L0", "a", "b", 20e-9, model),
            dispersive_inductor("L1", "a", "b", 30e-9, model, c_par=1e-13),
        ]
        stacked = stacked_admittances(members, self.OMEGAS)
        for row, element in zip(stacked, members):
            np.testing.assert_array_equal(
                row, element.admittances(self.OMEGAS)
            )


class TestBuildRouting:
    SPEC = if_filter_spec(1)

    def test_constant_models_keep_plain_elements(self):
        design = synthesize_bandpass(self.SPEC)
        circuit = build_bandpass_circuit(design, SummitQModel())
        kinds = {type(e) for e in circuit.elements}
        assert kinds == {Inductor, Capacitor}

    @pytest.mark.parametrize("model", DISPERSIVE_MODELS)
    def test_dispersive_models_get_dispersive_elements(self, model):
        design = synthesize_bandpass(self.SPEC)
        circuit = build_bandpass_circuit(design, model)
        kinds = {type(e) for e in circuit.elements}
        assert kinds == {DispersiveInductor, DispersiveCapacitor}
        for element in circuit.elements:
            assert element.q_model == model

    def test_dispersive_loss_differs_from_frozen_at_band_edges(self):
        """The point of the exercise: Q(f) vs Q(f0) changes the loss."""
        design = synthesize_bandpass(self.SPEC)
        model = SkinEffectQModel(
            q0_inductor=12.0,
            q0_capacitor=300.0,
            f0_hz=self.SPEC.center_hz,
        )
        frozen = build_bandpass_circuit(
            design,
            SmdQModel(inductor_q_value=12.0, capacitor_q_value=300.0),
        )
        dispersive = build_bandpass_circuit(design, model)
        low_edge = self.SPEC.center_hz - self.SPEC.bandwidth_hz / 2.0
        grid = np.array([low_edge, self.SPEC.center_hz])
        frozen_losses = sweep_grid(frozen, grid).insertion_loss_db
        disp_losses = sweep_grid(dispersive, grid).insertion_loss_db
        # At the centre the skin-effect Q equals the frozen Q, so the
        # two circuits carry identical loss there.
        assert disp_losses[1] == pytest.approx(frozen_losses[1], rel=1e-6)
        # Below centre the skin-effect series resistance shrinks like
        # sqrt(f/f0) while the frozen circuit keeps its f0 resistance,
        # so the dispersive realisation dissipates *less* there — the
        # frequency dependence is visible in the solved response.
        assert disp_losses[0] < frozen_losses[0]
        assert disp_losses[0] != frozen_losses[0]

    def test_family_measurement_bit_identical_per_filter(self):
        design = synthesize_bandpass(self.SPEC)
        models = [
            SummitQModel(),
            SkinEffectQModel(),
            MEASURED_SUMMIT_TABLE,
            DispersiveQModel(SummitQModel()),
        ]
        circuits = [build_bandpass_circuit(design, m) for m in models]
        family = measure_filter_family(self.SPEC, circuits)
        for circuit, stacked_result in zip(circuits, family):
            single = measure_filter(self.SPEC, circuit)
            assert single == stacked_result

    def test_stacked_family_sweep_bit_identical(self):
        design = synthesize_bandpass(self.SPEC)
        circuits = [
            build_bandpass_circuit(design, SkinEffectQModel(q0_inductor=q))
            for q in (10.0, 20.0, 40.0)
        ]
        grid = np.linspace(170e6, 180e6, 31)
        stacked = sweep_grid_stacked(circuits, grid)
        for member, circuit in enumerate(circuits):
            np.testing.assert_array_equal(
                stacked.s_matrices[member],
                sweep_grid(circuit, grid).s_matrices,
            )

    def test_assess_chain_many_matches_per_chain_with_dispersive(self):
        chains = [
            technology_assignments(3),
            technology_assignments(3, q_model=SubstrateLossQModel()),
            technology_assignments(4, q_model=MEASURED_SUMMIT_TABLE),
        ]
        stacked = assess_chain_many(chains)
        for chain, result in zip(chains, stacked):
            assert assess_chain(chain) == result


class TestProcessThreading:
    def test_process_q_model_matches_historic_construction(self):
        assert process_q_model(SUMMIT_PROCESS) == SummitQModel(
            process=SUMMIT_PROCESS
        )

    def test_with_loss_flows_into_the_model(self):
        lossy = with_loss(
            SUMMIT_PROCESS, cap_tan_delta=0.02, substrate_q_ref=50.0
        )
        model = process_q_model(lossy)
        assert model.cap_tan_delta == 0.02
        assert model.q_sub_ref == 50.0
        # A lossier dielectric means a lower capacitor Q.
        assert model.capacitor_q(10e-12, 175e6) == pytest.approx(50.0)

    def test_dispersive_process_model(self):
        model = process_q_model(SUMMIT_PROCESS, dispersive=True)
        assert is_dispersive(model)
        assert model.model == SummitQModel(process=SUMMIT_PROCESS)

    def test_assignments_q_override_only_touches_integrated(self):
        override = SkinEffectQModel()
        chain = technology_assignments(4, q_model=override)
        rf_model = chain[0][1]
        if_model = chain[1][1]
        assert rf_model == override
        assert isinstance(if_model, MixedQModel)
        assert if_model.capacitor_model == override
        assert isinstance(if_model.inductor_model, SmdQModel)
        # Build-ups 1/2 keep their bought filter blocks.
        blocks = technology_assignments(1, q_model=override)
        assert all(m != override for _, m in blocks)

    def test_dispersive_chain_solves_in_circuit(self):
        """End-to-end: a dispersive assignment flows through MNA."""
        chain = technology_assignments(
            3, q_model=process_q_model(SUMMIT_PROCESS, dispersive=True)
        )
        result = assess_chain(chain)
        assert 0.0 < result.score <= 1.0

    def test_mixed_dispersive_builds_dispersive_elements(self):
        mixed = MixedQModel(
            inductor_model=SmdQModel(),
            capacitor_model=SkinEffectQModel(),
        )
        design = synthesize_bandpass(if_filter_spec(1))
        circuit = build_bandpass_circuit(design, mixed)
        kinds = {type(e) for e in circuit.elements}
        assert kinds == {DispersiveInductor, DispersiveCapacitor}


def test_stacked_gps_family_circuit() -> None:
    """A realistic mixed family: constant and dispersive members stack."""
    spec = if_filter_spec(2)
    design = synthesize_bandpass(spec)
    members = [
        build_bandpass_circuit(design, SummitQModel()),
        build_bandpass_circuit(design, SkinEffectQModel()),
        build_bandpass_circuit(design, None),
    ]
    grid = np.linspace(165e6, 185e6, 11)
    stacked = sweep_grid_stacked(members, grid)
    for member, circuit in enumerate(members):
        np.testing.assert_array_equal(
            stacked.s_matrices[member], sweep_grid(circuit, grid).s_matrices
        )


def test_circuit_convenience_constructors() -> None:
    circuit = Circuit("disp")
    circuit.dispersive_inductor("L1", "in", "out", 10e-9, SkinEffectQModel())
    circuit.dispersive_capacitor("C1", "out", "0", 5e-12, SkinEffectQModel())
    circuit.port("p1", "in")
    circuit.port("p2", "out")
    result = sweep_grid(circuit, np.array([1e9]))
    assert np.isfinite(result.insertion_loss_db).all()
