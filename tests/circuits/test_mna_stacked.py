"""Property tests: circuit-stacked MNA solves against the scalar path.

A *family* is ``B`` structurally identical circuits (same topology,
different element values — what tolerance classes, E-series snapping and
candidate sweeps produce).  The stacked engine stamps the whole family
as one ``(B, F, n, n)`` tensor and solves it with a single batched
``numpy.linalg.solve``; these tests assert, over seeded random RLC
families, that every member agrees with the per-circuit
:func:`node_admittance_matrix` / :func:`solve_nodal` reference to 1e-12
and that the scalar error contract (``omega <= 0`` raises
:class:`~repro.errors.CircuitError`) survives stacking.

The two-port layer gets the stronger check: stacked S-parameters must be
*bit-identical* to per-circuit :func:`sweep_grid` results, which is what
lets the execution engines promise byte-identical sweep reports.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.elements import Capacitor, Inductor, Resistor
from repro.circuits.mna import (
    StampPlan,
    batch_admittance_matrix,
    batch_solve_nodal,
    family_admittance_matrix,
    node_admittance_matrix,
    node_index,
    solve_nodal,
)
from repro.circuits.netlist import Circuit
from repro.circuits.twoport import (
    sweep_grid,
    sweep_grid_stacked,
    sweep_stacked,
    two_port_sparameters,
    two_port_sparameters_stacked,
)
from repro.errors import CircuitError

from test_mna_batch import (
    random_frequencies,
    random_rlc_circuit,
    random_two_port,
)

RTOL = 1e-12


def perturbed_copy(circuit: Circuit, seed: int, tag: int) -> Circuit:
    """A same-topology copy with every element value re-drawn nearby.

    Node and element names are preserved; only the R/L/C values (and
    loss terms) change — the exact shape of a tolerance-class or
    E-series family member.
    """
    rng = np.random.default_rng(seed * 1000 + tag)

    def scale() -> float:
        return float(rng.uniform(0.5, 2.0))

    copy = Circuit(f"{circuit.name}-member{tag}")
    for element in circuit.elements:
        if isinstance(element, Resistor):
            member = replace(element, resistance=element.resistance * scale())
        elif isinstance(element, Capacitor):
            member = replace(
                element,
                capacitance=element.capacitance * scale(),
                tan_delta=element.tan_delta * scale(),
                esr=element.esr * scale(),
            )
        elif isinstance(element, Inductor):
            member = replace(
                element,
                inductance=element.inductance * scale(),
                series_resistance=element.series_resistance * scale(),
                c_par=element.c_par * scale(),
            )
        else:  # pragma: no cover - only R/L/C exist today
            member = element
        copy.elements.append(member)
    copy.ports = list(circuit.ports)
    return copy


def random_family(seed: int, n_nodes: int, members: int) -> list[Circuit]:
    """A random same-topology RLC family of ``members`` circuits."""
    base = random_rlc_circuit(seed, n_nodes)
    return [base] + [
        perturbed_copy(base, seed, tag) for tag in range(1, members)
    ]


family_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=6),
)


class TestFamilyStamping:
    @settings(max_examples=40, deadline=None)
    @given(family_params)
    def test_family_matches_scalar_stamping(self, params):
        seed, n_nodes, members = params
        family = random_family(seed, n_nodes, members)
        index = node_index(family[0])
        omegas = 2.0 * math.pi * random_frequencies(seed, count=5)
        stacked = family_admittance_matrix(family, omegas)
        for b, circuit in enumerate(family):
            for k, omega in enumerate(omegas):
                scalar = node_admittance_matrix(
                    circuit, float(omega), index
                )
                np.testing.assert_allclose(
                    stacked[b, k], scalar, rtol=RTOL, atol=1e-300
                )

    @settings(max_examples=30, deadline=None)
    @given(family_params)
    def test_family_is_bitwise_stack_of_batches(self, params):
        """Each member's slice equals its own batched stamp, bit for bit."""
        seed, n_nodes, members = params
        family = random_family(seed, n_nodes, members)
        omegas = 2.0 * math.pi * random_frequencies(seed, count=5)
        stacked = family_admittance_matrix(family, omegas)
        for b, circuit in enumerate(family):
            np.testing.assert_array_equal(
                stacked[b], batch_admittance_matrix(circuit, omegas)
            )


class TestStackedSolve:
    @settings(max_examples=40, deadline=None)
    @given(family_params)
    def test_stacked_solve_matches_scalar_solve(self, params):
        """The acceptance property: B stacked solves == B scalar solves."""
        seed, n_nodes, members = params
        family = random_family(seed, n_nodes, members)
        index = node_index(family[0])
        omegas = 2.0 * math.pi * random_frequencies(seed, count=5)
        rng = np.random.default_rng(seed + 3)
        rhs = rng.normal(size=len(index)) + 1j * rng.normal(
            size=len(index)
        )

        stacked = batch_solve_nodal(
            family_admittance_matrix(family, omegas), rhs
        )
        assert stacked.shape == (members, omegas.size, len(index))
        for b, circuit in enumerate(family):
            for k, omega in enumerate(omegas):
                scalar = solve_nodal(
                    node_admittance_matrix(circuit, float(omega), index),
                    rhs,
                )
                np.testing.assert_allclose(
                    stacked[b, k], scalar, rtol=RTOL
                )

    def test_stacked_solve_accepts_per_member_rhs(self):
        family = random_family(7, 4, 3)
        omegas = 2.0 * math.pi * random_frequencies(7, count=4)
        matrices = family_admittance_matrix(family, omegas)
        n = matrices.shape[-1]
        rng = np.random.default_rng(99)
        rhs = rng.normal(size=(3, 1, n, 2)) + 0j
        full = np.broadcast_to(rhs, matrices.shape[:2] + (n, 2))
        solution = batch_solve_nodal(matrices, full)
        assert solution.shape == (3, omegas.size, n, 2)
        for b in range(3):
            member = batch_solve_nodal(matrices[b], rhs[b, 0])
            np.testing.assert_array_equal(solution[b], member)


class TestStackedErrorContract:
    """Stacking must keep every scalar-path error contract."""

    def test_zero_omega_rejected(self):
        family = random_family(0, 3, 3)
        with pytest.raises(CircuitError):
            family_admittance_matrix(family, np.array([1e6, 0.0, 1e7]))

    def test_negative_omega_rejected(self):
        family = random_family(1, 3, 3)
        with pytest.raises(CircuitError):
            family_admittance_matrix(family, np.array([-1e6]))

    def test_empty_grid_rejected(self):
        family = random_family(2, 3, 3)
        with pytest.raises(CircuitError):
            family_admittance_matrix(family, np.array([]))

    def test_empty_family_rejected(self):
        with pytest.raises(CircuitError):
            family_admittance_matrix([], np.array([1e6]))

    def test_element_count_mismatch_rejected(self):
        base = random_rlc_circuit(3, 3)
        other = random_rlc_circuit(3, 3)
        other.resistor("Rextra", other.nodes()[0], "0", 42.0)
        with pytest.raises(CircuitError):
            family_admittance_matrix([base, other], np.array([1e6]))

    def test_topology_mismatch_rejected(self):
        base = Circuit("base")
        base.resistor("R1", "a", "b", 10.0)
        base.resistor("R2", "b", "0", 20.0)
        twisted = Circuit("twisted")
        twisted.resistor("R1", "a", "0", 10.0)
        twisted.resistor("R2", "a", "b", 20.0)
        with pytest.raises(CircuitError):
            family_admittance_matrix([base, twisted], np.array([1e6]))

    def test_renamed_nodes_same_structure_accepted(self):
        base = Circuit("base")
        base.resistor("R1", "a", "b", 10.0)
        base.capacitor("C1", "b", "0", 1e-12)
        renamed = Circuit("renamed")
        renamed.resistor("R1", "x", "y", 33.0)
        renamed.capacitor("C1", "y", "0", 2e-12)
        omegas = np.array([2.0 * math.pi * 1e9])
        stacked = family_admittance_matrix([base, renamed], omegas)
        np.testing.assert_array_equal(
            stacked[1], batch_admittance_matrix(renamed, omegas)
        )

    def test_singular_family_raises_circuit_error(self):
        member = Circuit("floating")
        member.resistor("R1", "a", "b", 100.0)
        member.resistor("R2", "c", "0", 100.0)
        matrices = family_admittance_matrix(
            [member, perturbed_copy(member, 5, 1)],
            np.array([2.0 * math.pi * 1e6]),
        )
        rhs = np.zeros(3, dtype=complex)
        rhs[0] = 1.0
        with pytest.raises(CircuitError):
            batch_solve_nodal(matrices, rhs)


def random_two_port_family(
    seed: int, n_nodes: int, members: int
) -> list[Circuit]:
    base = random_two_port(seed, n_nodes)
    return [base] + [
        perturbed_copy(base, seed, tag) for tag in range(1, members)
    ]


class TestStackedTwoPort:
    @settings(max_examples=30, deadline=None)
    @given(family_params)
    def test_stacked_sweep_is_bitwise_per_circuit_sweep(self, params):
        """The engine-identity guarantee: stacked == per-circuit, exactly."""
        seed, n_nodes, members = params
        family = random_two_port_family(seed, n_nodes, members)
        frequencies = random_frequencies(seed, count=7)
        stacked = sweep_grid_stacked(family, frequencies)
        assert len(stacked) == members
        for b, circuit in enumerate(family):
            np.testing.assert_array_equal(
                stacked.s_matrices[b],
                sweep_grid(circuit, frequencies).s_matrices,
            )

    def test_member_views_and_db_shapes(self):
        family = random_two_port_family(11, 5, 4)
        stacked = sweep_stacked(family, 1e7, 1e9, points=21)
        assert stacked.insertion_loss_db.shape == (4, 21)
        assert stacked.return_loss_db.shape == (4, 21)
        member = stacked.result(2)
        np.testing.assert_array_equal(
            member.insertion_loss_db, stacked.insertion_loss_db[2]
        )
        assert len(stacked.results()) == 4

    def test_single_frequency_stack(self):
        family = random_two_port_family(13, 4, 3)
        points = two_port_sparameters_stacked(family, 250e6)
        assert len(points) == 3
        for point, circuit in zip(points, family):
            scalar = two_port_sparameters(circuit, 250e6)
            assert point.s21 == pytest.approx(scalar.s21, rel=RTOL)
            assert point.s11 == pytest.approx(scalar.s11, rel=RTOL)

    def test_empty_family_rejected(self):
        with pytest.raises(CircuitError):
            sweep_grid_stacked([], [1e6])

    def test_nonpositive_frequency_rejected(self):
        family = random_two_port_family(3, 3, 2)
        with pytest.raises(CircuitError):
            sweep_grid_stacked(family, [1e6, -1e6])
        with pytest.raises(CircuitError):
            sweep_grid_stacked(family, [])

    def test_port_row_mismatch_rejected(self):
        # A member with reversed ports maps port 1 to a different matrix
        # row; the family path refuses rather than silently swapping
        # S11/S22 roles for that member.
        base = random_two_port(17, 4)
        other = perturbed_copy(base, 17, 1)
        other.ports = list(reversed(other.ports))
        with pytest.raises(CircuitError):
            sweep_grid_stacked([base, other], [1e8])
