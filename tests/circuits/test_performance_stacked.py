"""Stacked chain assessment against the per-chain reference.

:func:`~repro.circuits.performance.assess_chain_many` groups same-spec
filters across chains into circuit families and measures each family
with one stacked solve; these tests pin its contract: *exact* equality
with ``[assess_chain(c) for c in chains]`` (the execution engines rely
on it for byte-identical sweep reports), order preservation, and the
scalar error contract.
"""

from __future__ import annotations

import pytest

from repro.circuits.performance import (
    assess_chain,
    assess_chain_many,
    measure_filter,
    measure_filter_family,
)
from repro.circuits.qfactor import (
    ConstantQModel,
    DiscreteFilterBlockQModel,
    SmdQModel,
)
from repro.circuits.synthesis import (
    build_bandpass_circuit,
    synthesize_bandpass,
)
from repro.errors import SpecificationError
from repro.gps.filters_chain import technology_assignments
from repro.passives.filters import FilterFamily, FilterSpec

IF_SPEC = FilterSpec(
    name="IF test",
    family=FilterFamily.CHEBYSHEV,
    order=2,
    center_hz=175e6,
    bandwidth_hz=30e6,
    max_insertion_loss_db=3.0,
)


class TestAssessChainMany:
    def test_matches_per_chain_reference_exactly(self):
        """The four GPS technology assignments, assessed both ways."""
        chains = [technology_assignments(i) for i in (1, 2, 3, 4)]
        stacked = assess_chain_many(chains)
        reference = [assess_chain(chain) for chain in chains]
        assert stacked == reference  # dataclass equality == float equality

    def test_single_chain_matches_assess_chain(self):
        chain = technology_assignments(3)
        assert assess_chain_many([chain]) == [assess_chain(chain)]

    def test_order_preserved_with_shared_specs(self):
        """Same spec under different Q models keeps chain order."""
        chains = [
            [(IF_SPEC, ConstantQModel(q, q * 10))]
            for q in (8.0, 20.0, 50.0, 120.0)
        ]
        results = assess_chain_many(chains)
        # Higher Q -> lower loss -> monotonically better score.
        scores = [result.score for result in results]
        assert scores == sorted(scores)
        for chain, result in zip(chains, results):
            assert result == assess_chain(chain)

    def test_passband_points_forwarded(self):
        chain = [(IF_SPEC, SmdQModel())]
        coarse = assess_chain_many([chain], passband_points=11)[0]
        assert coarse == assess_chain(chain, passband_points=11)

    def test_empty_chain_list_rejected(self):
        with pytest.raises(SpecificationError):
            assess_chain_many([])

    def test_empty_chain_rejected(self):
        with pytest.raises(SpecificationError):
            assess_chain_many([technology_assignments(1), []])


class TestMeasureFilterFamily:
    def test_matches_measure_filter_exactly(self):
        design = synthesize_bandpass(IF_SPEC)
        models = [
            None,
            SmdQModel(),
            ConstantQModel(15.0, 200.0),
            DiscreteFilterBlockQModel(),
        ]
        circuits = [build_bandpass_circuit(design, m) for m in models]
        family = measure_filter_family(IF_SPEC, circuits)
        for circuit, performance in zip(circuits, family):
            assert performance == measure_filter(IF_SPEC, circuit)

    def test_single_member_family(self):
        design = synthesize_bandpass(IF_SPEC)
        circuit = build_bandpass_circuit(design, SmdQModel())
        (performance,) = measure_filter_family(IF_SPEC, [circuit])
        assert performance == measure_filter(IF_SPEC, circuit)

    def test_empty_family_rejected(self):
        with pytest.raises(SpecificationError):
            measure_filter_family(IF_SPEC, [])
