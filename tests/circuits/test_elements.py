"""Element admittance models."""

from __future__ import annotations

import cmath
import math

import pytest

from repro.circuits.elements import (
    Capacitor,
    Inductor,
    Port,
    Resistor,
    lossy_capacitor,
    lossy_inductor,
)
from repro.errors import CircuitError

OMEGA = 2 * math.pi * 1e9


class TestResistor:
    def test_admittance(self):
        r = Resistor("R1", "a", "b", 50.0)
        assert r.admittance(OMEGA) == pytest.approx(0.02)

    def test_rejects_nonpositive(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", 0.0)

    def test_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "a", 50.0)


class TestCapacitor:
    def test_ideal_admittance(self):
        c = Capacitor("C1", "a", "b", 1e-12)
        assert c.admittance(OMEGA) == pytest.approx(1j * OMEGA * 1e-12)

    def test_loss_tangent_real_part(self):
        c = Capacitor("C1", "a", "b", 1e-12, tan_delta=0.01)
        y = c.admittance(OMEGA)
        assert y.real == pytest.approx(0.01 * OMEGA * 1e-12)

    def test_esr_limits_admittance(self):
        lossless = Capacitor("C1", "a", "b", 1e-9)
        with_esr = Capacitor("C2", "a", "b", 1e-9, esr=1.0)
        assert abs(with_esr.admittance(OMEGA)) < abs(
            lossless.admittance(OMEGA)
        )

    def test_rejects_dc(self):
        c = Capacitor("C1", "a", "b", 1e-12)
        with pytest.raises(CircuitError):
            c.admittance(0.0)

    def test_rejects_negative_loss(self):
        with pytest.raises(CircuitError):
            Capacitor("C1", "a", "b", 1e-12, tan_delta=-0.1)


class TestInductor:
    def test_ideal_admittance(self):
        l = Inductor("L1", "a", "b", 1e-9)
        assert l.admittance(OMEGA) == pytest.approx(1 / (1j * OMEGA * 1e-9))

    def test_series_resistance_shifts_phase(self):
        l = Inductor("L1", "a", "b", 1e-9, series_resistance=1.0)
        y = l.admittance(OMEGA)
        assert y.real > 0

    def test_self_resonance(self):
        l = Inductor("L1", "a", "b", 40e-9, c_par=0.5e-12)
        srf = l.self_resonance_hz
        assert srf == pytest.approx(
            1 / (2 * math.pi * math.sqrt(40e-9 * 0.5e-12))
        )
        # At resonance the parallel LC admittance is minimal (imag ~ 0).
        y = l.admittance(2 * math.pi * srf)
        assert abs(y.imag) < 1e-9

    def test_no_cpar_infinite_srf(self):
        l = Inductor("L1", "a", "b", 1e-9)
        assert l.self_resonance_hz == math.inf


class TestLossyFactories:
    def test_lossy_inductor_q(self):
        l = lossy_inductor("L1", "a", "b", 40e-9, q=30.0, at_hz=1e9)
        omega = 2 * math.pi * 1e9
        q = omega * l.inductance / l.series_resistance
        assert q == pytest.approx(30.0)

    def test_infinite_q_lossless(self):
        l = lossy_inductor("L1", "a", "b", 40e-9, q=math.inf, at_hz=1e9)
        assert l.series_resistance == 0.0

    def test_lossy_capacitor_tan_delta(self):
        c = lossy_capacitor("C1", "a", "b", 1e-12, q=200.0)
        assert c.tan_delta == pytest.approx(1 / 200.0)

    def test_lossy_inductor_rejects_bad_inputs(self):
        with pytest.raises(CircuitError):
            lossy_inductor("L1", "a", "b", 0.0, q=30.0, at_hz=1e9)
        with pytest.raises(CircuitError):
            lossy_inductor("L1", "a", "b", 1e-9, q=30.0, at_hz=0.0)


class TestPort:
    def test_rejects_ground_port(self):
        with pytest.raises(CircuitError):
            Port("p1", "0")

    def test_rejects_nonpositive_impedance(self):
        with pytest.raises(CircuitError):
            Port("p1", "in", impedance=0.0)
