"""Property tests: the batched MNA engine against the scalar reference.

Seeded random RLC networks of varying node count and topology are
stamped and solved both ways; the batched ``(F, n, n)`` path must agree
with the per-frequency :func:`node_admittance_matrix` /
:func:`solve_nodal` reference to 1e-12 relative tolerance, and must
reproduce the scalar error contract (``omega <= 0`` raises
:class:`~repro.errors.CircuitError`).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.mna import (
    AcAnalysis,
    StampPlan,
    batch_admittance_matrix,
    batch_solve_nodal,
    node_admittance_matrix,
    node_index,
    solve_nodal,
)
from repro.circuits.netlist import Circuit
from repro.circuits.twoport import (
    sweep,
    sweep_grid,
    sweep_pointwise,
    two_port_sparameters,
)
from repro.errors import CircuitError

RTOL = 1e-12


def random_rlc_circuit(seed: int, n_nodes: int) -> Circuit:
    """A random connected RLC network with a guaranteed ground path.

    A spanning chain ``n0 - n1 - ... - ground`` keeps the admittance
    matrix non-singular; extra elements between random node pairs vary
    the topology.
    """
    rng = np.random.default_rng(seed)
    nodes = [f"n{i}" for i in range(n_nodes)]
    circuit = Circuit(f"random-{seed}-{n_nodes}")

    def add_element(name: str, node_a: str, node_b: str) -> None:
        kind = rng.integers(0, 3)
        if kind == 0:
            circuit.resistor(name, node_a, node_b, float(rng.uniform(1, 1e4)))
        elif kind == 1:
            circuit.capacitor(
                name,
                node_a,
                node_b,
                float(rng.uniform(1e-13, 1e-9)),
                tan_delta=float(rng.uniform(0, 0.05)),
                esr=float(rng.uniform(0, 2.0)),
            )
        else:
            circuit.inductor(
                name,
                node_a,
                node_b,
                float(rng.uniform(1e-9, 1e-6)),
                series_resistance=float(rng.uniform(0, 5.0)),
                c_par=float(rng.uniform(0, 1e-12)),
            )

    chain = nodes + ["0"]
    for i in range(len(chain) - 1):
        add_element(f"E{i}", chain[i], chain[i + 1])
    extra = int(rng.integers(0, 2 * n_nodes))
    all_nodes = nodes + ["0"]
    added = 0
    for j in range(10 * extra + 10):
        if added >= extra:
            break
        a, b = rng.choice(len(all_nodes), size=2, replace=False)
        add_element(f"X{j}", all_nodes[a], all_nodes[b])
        added += 1
    return circuit


def random_frequencies(seed: int, count: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed + 1)
    return np.sort(rng.uniform(1e5, 5e9, size=count))


network_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=7),
)


class TestBatchedStamping:
    @settings(max_examples=60, deadline=None)
    @given(network_params)
    def test_matches_scalar_stamping(self, params):
        seed, n_nodes = params
        circuit = random_rlc_circuit(seed, n_nodes)
        index = node_index(circuit)
        frequencies = random_frequencies(seed)
        omegas = 2.0 * math.pi * frequencies
        batched = batch_admittance_matrix(circuit, omegas, index)
        for k, omega in enumerate(omegas):
            scalar = node_admittance_matrix(circuit, float(omega), index)
            np.testing.assert_allclose(
                batched[k], scalar, rtol=RTOL, atol=1e-300
            )

    @settings(max_examples=40, deadline=None)
    @given(network_params)
    def test_batch_solve_matches_scalar_solve(self, params):
        seed, n_nodes = params
        circuit = random_rlc_circuit(seed, n_nodes)
        index = node_index(circuit)
        omegas = 2.0 * math.pi * random_frequencies(seed)
        rng = np.random.default_rng(seed + 2)
        rhs = rng.normal(size=len(index)) + 1j * rng.normal(size=len(index))

        batched = batch_solve_nodal(
            batch_admittance_matrix(circuit, omegas, index), rhs
        )
        for k, omega in enumerate(omegas):
            scalar = solve_nodal(
                node_admittance_matrix(circuit, float(omega), index), rhs
            )
            np.testing.assert_allclose(batched[k], scalar, rtol=RTOL)

    def test_plan_reuse_is_consistent(self):
        circuit = random_rlc_circuit(7, 5)
        plan = StampPlan(circuit)
        omegas = 2.0 * math.pi * random_frequencies(7)
        first = batch_admittance_matrix(circuit, omegas, plan=plan)
        second = batch_admittance_matrix(circuit, omegas, plan=plan)
        np.testing.assert_array_equal(first, second)


class TestOmegaValidation:
    """The batched path must keep the scalar ``omega <= 0`` contract."""

    def test_zero_omega_rejected(self):
        circuit = random_rlc_circuit(0, 3)
        with pytest.raises(CircuitError):
            batch_admittance_matrix(circuit, np.array([1e6, 0.0, 1e7]))

    def test_negative_omega_rejected(self):
        circuit = random_rlc_circuit(1, 3)
        with pytest.raises(CircuitError):
            batch_admittance_matrix(circuit, np.array([-1e6]))

    def test_empty_grid_rejected(self):
        circuit = random_rlc_circuit(2, 3)
        with pytest.raises(CircuitError):
            batch_admittance_matrix(circuit, np.array([]))

    def test_element_admittances_reject_nonpositive(self):
        circuit = random_rlc_circuit(3, 3)
        for element in circuit.elements:
            with pytest.raises(CircuitError):
                element.admittances(np.array([0.0]))

    def test_singular_batch_raises_circuit_error(self):
        floating = Circuit("floating")
        floating.resistor("R1", "a", "b", 100.0)
        floating.resistor("R2", "c", "0", 100.0)
        omegas = np.array([2.0 * math.pi * 1e6])
        matrices = batch_admittance_matrix(floating, omegas)
        rhs = np.zeros(3, dtype=complex)
        rhs[0] = 1.0
        with pytest.raises(CircuitError):
            batch_solve_nodal(matrices, rhs)


class TestAcAnalysisSweeps:
    @settings(max_examples=25, deadline=None)
    @given(network_params)
    def test_driving_point_sweep_matches_scalar(self, params):
        seed, n_nodes = params
        circuit = random_rlc_circuit(seed, n_nodes)
        analysis = AcAnalysis(circuit)
        node = circuit.nodes()[0]
        frequencies = random_frequencies(seed, count=5)
        batched = analysis.driving_point_impedance_sweep(node, frequencies)
        scalar = np.array(
            [
                analysis.driving_point_impedance(node, float(f))
                for f in frequencies
            ]
        )
        np.testing.assert_allclose(batched, scalar, rtol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(network_params)
    def test_transfer_sweep_matches_scalar(self, params):
        seed, n_nodes = params
        circuit = random_rlc_circuit(seed, n_nodes)
        analysis = AcAnalysis(circuit)
        nodes = circuit.nodes()
        src, dst = nodes[0], nodes[-1]
        frequencies = random_frequencies(seed, count=5)
        batched = analysis.transfer_impedance_sweep(src, dst, frequencies)
        scalar = np.array(
            [
                analysis.transfer_impedance(src, dst, float(f))
                for f in frequencies
            ]
        )
        np.testing.assert_allclose(batched, scalar, rtol=1e-9)

    def test_voltage_sweep_matches_scalar(self):
        circuit = random_rlc_circuit(11, 4)
        analysis = AcAnalysis(circuit)
        node = circuit.nodes()[0]
        frequencies = random_frequencies(11, count=4)
        batched = analysis.voltages_for_injection_sweep(node, frequencies)
        for k, f in enumerate(frequencies):
            scalar = analysis.voltages_for_injection(node, float(f))
            for name, value in scalar.items():
                assert batched[name][k] == pytest.approx(value, rel=RTOL)

    def test_unknown_node_raises(self):
        analysis = AcAnalysis(random_rlc_circuit(5, 3))
        with pytest.raises(CircuitError):
            analysis.driving_point_impedance_sweep("nope", [1e6])
        with pytest.raises(CircuitError):
            analysis.transfer_impedance_sweep("n0", "nope", [1e6])


def random_two_port(seed: int, n_nodes: int) -> Circuit:
    """A random RLC two-port: the chain from ``in`` to ``out``."""
    circuit = random_rlc_circuit(seed, n_nodes)
    nodes = circuit.nodes()
    circuit.port("p1", nodes[0], 50.0)
    circuit.port("p2", nodes[-1], 50.0)
    return circuit


class TestBatchedTwoPort:
    @settings(max_examples=40, deadline=None)
    @given(network_params)
    def test_sweep_grid_matches_pointwise(self, params):
        seed, n_nodes = params
        circuit = random_two_port(seed, n_nodes)
        frequencies = random_frequencies(seed, count=9)
        batched = sweep_grid(circuit, frequencies)
        for k, f in enumerate(frequencies):
            scalar = two_port_sparameters(circuit, float(f))
            np.testing.assert_allclose(
                batched.s_matrices[k],
                [[scalar.s11, scalar.s12], [scalar.s21, scalar.s22]],
                rtol=RTOL,
                atol=1e-300,
            )

    def test_sweep_matches_sweep_pointwise(self):
        circuit = random_two_port(42, 6)
        batched = sweep(circuit, 1e7, 1e9, points=101)
        loop = sweep_pointwise(circuit, 1e7, 1e9, points=101)
        np.testing.assert_allclose(
            batched.s_matrices, loop.s_matrices, rtol=RTOL, atol=1e-300
        )
        np.testing.assert_allclose(
            batched.insertion_loss_db, loop.insertion_loss_db, rtol=1e-9
        )

    def test_sweep_grid_rejects_nonpositive_frequency(self):
        circuit = random_two_port(3, 3)
        with pytest.raises(CircuitError):
            sweep_grid(circuit, [1e6, -1e6])
        with pytest.raises(CircuitError):
            sweep_grid(circuit, [])
