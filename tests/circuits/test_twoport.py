"""Two-port S-parameter extraction."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.netlist import Circuit
from repro.circuits.twoport import (
    input_impedance,
    measure_insertion_loss,
    measure_rejection,
    sweep,
    two_port_sparameters,
)
from repro.errors import CircuitError


def through_line() -> Circuit:
    """A direct through connection via a tiny series resistor."""
    c = Circuit("through")
    c.resistor("R", "in", "out", 1e-6)
    c.port("p1", "in", 50.0)
    c.port("p2", "out", 50.0)
    return c


def series_resistor(r: float) -> Circuit:
    c = Circuit("series")
    c.resistor("R", "in", "out", r)
    c.port("p1", "in", 50.0)
    c.port("p2", "out", 50.0)
    return c


def shunt_resistor(r: float) -> Circuit:
    c = Circuit("shunt")
    c.resistor("Rthrough", "in", "out", 1e-6)
    c.resistor("Rshunt", "out", "0", r)
    c.port("p1", "in", 50.0)
    c.port("p2", "out", 50.0)
    return c


class TestKnownNetworks:
    def test_through_is_lossless(self):
        s = two_port_sparameters(through_line(), 1e9)
        assert abs(s.s21) == pytest.approx(1.0, abs=1e-6)
        assert abs(s.s11) == pytest.approx(0.0, abs=1e-6)

    def test_series_resistor_textbook(self):
        """Series R in Z0 system: S21 = 2 Z0 / (2 Z0 + R)."""
        r = 50.0
        s = two_port_sparameters(series_resistor(r), 1e9)
        expected = 2 * 50.0 / (2 * 50.0 + r)
        assert abs(s.s21) == pytest.approx(expected, rel=1e-9)
        assert abs(s.s11) == pytest.approx(r / (2 * 50 + r), rel=1e-9)

    def test_shunt_resistor_textbook(self):
        """Shunt G in Z0 system: S21 = 2 / (2 + Z0 G)."""
        r = 100.0
        s = two_port_sparameters(shunt_resistor(r), 1e9)
        expected = 2 / (2 + 50.0 / r)
        assert abs(s.s21) == pytest.approx(expected, rel=1e-6)

    def test_insertion_loss_6db_pad(self):
        """R = 2 Z0 series gives S21 = 0.5 -> 6.02 dB."""
        loss = measure_insertion_loss(series_resistor(100.0), 1e9)
        assert loss == pytest.approx(6.02, abs=0.01)

    def test_symmetric_network_s11_equals_s22(self):
        s = two_port_sparameters(series_resistor(75.0), 1e9)
        assert s.s11 == pytest.approx(s.s22)

    def test_reciprocal_s12_equals_s21(self):
        s = two_port_sparameters(shunt_resistor(80.0), 1e9)
        assert s.s12 == pytest.approx(s.s21)


class TestPassivity:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1e-12, max_value=1e-9),
        st.floats(min_value=1e-9, max_value=1e-7),
        st.floats(min_value=1e6, max_value=5e9),
    )
    def test_random_rlc_never_gains(self, r, c_val, l_val, freq):
        """|S21| <= 1 for any passive RLC network (energy conservation)."""
        c = Circuit("random")
        c.resistor("R", "in", "mid", r)
        c.capacitor("C", "mid", "0", c_val)
        c.inductor("L", "mid", "out", l_val, series_resistance=0.1)
        c.port("p1", "in", 50.0)
        c.port("p2", "out", 50.0)
        s = two_port_sparameters(c, freq)
        assert s.is_passive


class TestSweep:
    def test_sweep_grid(self):
        result = sweep(series_resistor(50.0), 1e8, 1e9, points=11)
        assert len(result.points) == 11
        assert result.frequencies_hz[0] == 1e8
        assert result.frequencies_hz[-1] == 1e9

    def test_log_spacing(self):
        result = sweep(
            series_resistor(50.0), 1e6, 1e9, points=4, log_spacing=True
        )
        ratios = result.frequencies_hz[1:] / result.frequencies_hz[:-1]
        assert ratios == pytest.approx([10.0, 10.0, 10.0])

    def test_at_picks_nearest(self):
        result = sweep(series_resistor(50.0), 1e8, 1e9, points=10)
        point = result.at(5.4e8)
        assert point.frequency_hz == pytest.approx(
            result.frequencies_hz[
                abs(result.frequencies_hz - 5.4e8).argmin()
            ]
        )

    def test_rejects_bad_range(self):
        with pytest.raises(CircuitError):
            sweep(series_resistor(50.0), 1e9, 1e8)

    def test_rejects_single_point(self):
        with pytest.raises(CircuitError):
            sweep(series_resistor(50.0), 1e8, 1e9, points=1)


class TestMeasurements:
    def test_rejection_positive_for_lowpass(self):
        c = Circuit("lp")
        c.resistor("Rsrc", "in", "out", 1e-6)
        c.capacitor("C", "out", "0", 30e-12)
        c.port("p1", "in", 50.0)
        c.port("p2", "out", 50.0)
        rejection = measure_rejection(c, 1e7, 1e9)
        assert rejection > 10.0

    def test_input_impedance_matched_through(self):
        z = input_impedance(through_line(), 1e9)
        assert z.real == pytest.approx(50.0, rel=1e-6)

    def test_two_ports_required(self):
        c = Circuit("oneport")
        c.resistor("R", "in", "0", 50.0)
        c.port("p1", "in", 50.0)
        with pytest.raises(CircuitError):
            two_port_sparameters(c, 1e9)
