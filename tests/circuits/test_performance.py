"""Performance scoring: the paper's §4.1 scores fall out of the physics."""

from __future__ import annotations

import pytest

from repro.circuits.performance import (
    analyze_filter,
    assess_chain,
    loss_score,
)
from repro.circuits.qfactor import (
    DiscreteFilterBlockQModel,
    IdealQModel,
    MixedQModel,
    SmdQModel,
    SummitQModel,
)
from repro.errors import SpecificationError
from repro.gps.filters_chain import (
    if_filter_spec,
    rf_image_reject_spec,
    technology_assignments,
)


class TestLossScore:
    def test_meeting_spec_scores_one(self):
        assert loss_score(4.0, 3.0) == 1.0

    def test_proportional_above_spec(self):
        assert loss_score(4.0, 8.0) == pytest.approx(0.5)

    def test_zero_loss_scores_one(self):
        assert loss_score(4.0, 0.0) == 1.0

    def test_rejects_nonpositive_spec(self):
        with pytest.raises(SpecificationError):
            loss_score(0.0, 1.0)


class TestFilterAnalysis:
    def test_ideal_if_filter_perfect(self):
        result = analyze_filter(if_filter_spec(1), IdealQModel())
        assert result.score == 1.0
        assert result.meets_spec

    def test_discrete_block_meets_spec(self):
        """Build-ups 1/2: bought filter blocks meet spec (§4.1)."""
        result = analyze_filter(
            if_filter_spec(1), DiscreteFilterBlockQModel()
        )
        assert result.meets_spec
        assert result.score == 1.0

    def test_all_integrated_if_excessive_loss(self):
        """Build-up 3: 'excessive insertion losses at the IF'."""
        result = analyze_filter(if_filter_spec(1), SummitQModel())
        assert not result.meets_spec
        assert result.insertion_loss_db > 2 * 4.5
        assert result.score == pytest.approx(0.45, abs=0.03)

    def test_mixed_if_borderline(self):
        """Build-up 4: 'the performance is borderline' -> ~0.7."""
        mixed = MixedQModel(
            inductor_model=SmdQModel(inductor_q_value=10.5),
            capacitor_model=SummitQModel(),
        )
        result = analyze_filter(if_filter_spec(1), mixed)
        assert result.score == pytest.approx(0.70, abs=0.03)

    def test_integrated_rf_filter_meets_spec(self):
        """§4.1: the Cauer LNA filter 'has losses of 3 dB ... meeting
        the performance specifications'."""
        result = analyze_filter(rf_image_reject_spec(), SummitQModel())
        assert result.meets_spec
        assert result.insertion_loss_db == pytest.approx(3.0, abs=0.35)

    def test_rf_filter_rejects_image(self):
        """§4.1: 'good rejection at the image frequency' (1.225 GHz)."""
        result = analyze_filter(rf_image_reject_spec(), SummitQModel())
        assert result.rejection_db is not None
        assert result.rejection_db >= 30.0

    def test_margin_sign(self):
        good = analyze_filter(if_filter_spec(1), IdealQModel())
        bad = analyze_filter(if_filter_spec(1), SummitQModel())
        assert good.margin_db > 0
        assert bad.margin_db < 0


class TestChainScores:
    @pytest.mark.parametrize(
        "implementation,expected",
        [(1, 1.0), (2, 1.0), (3, 0.45), (4, 0.70)],
    )
    def test_paper_performance_scores(self, implementation, expected):
        """§4.1: solutions score 1 / 1 / 0.45 / 0.7."""
        chain = assess_chain(technology_assignments(implementation))
        assert chain.score == pytest.approx(expected, abs=0.03)

    def test_chain_score_is_minimum(self):
        chain = assess_chain(technology_assignments(3))
        assert chain.score == min(f.score for f in chain.filters)

    def test_chain_lookup_by_name(self):
        chain = assess_chain(technology_assignments(3))
        result = chain.by_name("IF filter 1")
        assert result.spec.name == "IF filter 1"
        with pytest.raises(SpecificationError):
            chain.by_name("nope")

    def test_empty_chain_rejected(self):
        with pytest.raises(SpecificationError):
            assess_chain([])
