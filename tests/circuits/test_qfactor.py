"""Technology Q models (the §4.1 physics)."""

from __future__ import annotations

import math

import pytest

from repro.circuits.qfactor import (
    ConstantQModel,
    DiscreteFilterBlockQModel,
    IdealQModel,
    MixedQModel,
    SmdQModel,
    SummitQModel,
    combined_unloaded_q,
)
from repro.errors import CircuitError


class TestSummitQModel:
    def test_paper_quote_good_in_ghz_range(self):
        """'quite good in the 1-2 GHz range' — Q > 20 for a 40 nH spiral."""
        model = SummitQModel()
        assert model.inductor_q(40e-9, 1.575e9) > 20

    def test_paper_quote_decreases_toward_if(self):
        """'decreases with frequency' — IF Q is far below RF Q."""
        model = SummitQModel()
        q_rf = model.inductor_q(40e-9, 1.575e9)
        q_if = model.inductor_q(40e-9, 175e6)
        assert q_if < q_rf / 3

    def test_if_inductor_single_digit_q(self):
        """The resonator inductors an IF filter needs are lossy."""
        model = SummitQModel()
        assert model.inductor_q(9.2e-9, 175e6) < 5

    def test_substrate_loss_caps_high_frequency(self):
        """Beyond the peak, substrate loss pulls Q down again."""
        model = SummitQModel()
        q_peak_region = model.inductor_q(40e-9, 2e9)
        q_high = model.inductor_q(40e-9, 20e9)
        assert q_high < q_peak_region

    def test_capacitor_q_is_inverse_tan_delta(self):
        model = SummitQModel(cap_tan_delta=0.005)
        assert model.capacitor_q(1e-11, 1e9) == pytest.approx(200.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(CircuitError):
            SummitQModel().inductor_q(40e-9, 0.0)


class TestOtherModels:
    def test_ideal_infinite(self):
        model = IdealQModel()
        assert model.inductor_q(1e-9, 1e9) == math.inf
        assert model.capacitor_q(1e-12, 1e9) == math.inf

    def test_constant_model(self):
        model = ConstantQModel(30.0, 100.0)
        assert model.inductor_q(1e-9, 1e9) == 30.0
        assert model.capacitor_q(1e-12, 1e9) == 100.0

    def test_smd_defaults(self):
        model = SmdQModel()
        assert model.inductor_q(100e-9, 175e6) == pytest.approx(12.0)
        assert model.capacitor_q(1e-12, 175e6) == pytest.approx(500.0)

    def test_filter_block_high_q(self):
        model = DiscreteFilterBlockQModel()
        assert model.inductor_q(1e-9, 175e6) >= 100.0

    def test_mixed_model_delegates(self):
        mixed = MixedQModel(
            inductor_model=SmdQModel(inductor_q_value=10.5),
            capacitor_model=SummitQModel(),
        )
        assert mixed.inductor_q(1e-7, 175e6) == pytest.approx(10.5)
        assert mixed.capacitor_q(1e-11, 175e6) == pytest.approx(200.0)


class TestCombinedQ:
    def test_parallel_combination(self):
        model = ConstantQModel(10.0, 40.0)
        q = combined_unloaded_q(model, 1e-9, 1e-12, 1e9)
        assert q == pytest.approx(8.0)

    def test_infinite_components(self):
        q = combined_unloaded_q(IdealQModel(), 1e-9, 1e-12, 1e9)
        assert q == math.inf

    def test_one_finite_component(self):
        mixed = MixedQModel(
            inductor_model=ConstantQModel(10.0, 1.0),
            capacitor_model=IdealQModel(),
        )
        q = combined_unloaded_q(mixed, 1e-9, 1e-12, 1e9)
        assert q == pytest.approx(10.0)
