"""Filter synthesis against textbook prototype values and MNA analysis."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.qfactor import ConstantQModel, IdealQModel
from repro.circuits.synthesis import (
    build_bandpass_circuit,
    butterworth_g_values,
    chebyshev_g_values,
    dissipation_loss_db,
    synthesize_bandpass,
)
from repro.circuits.twoport import measure_insertion_loss, sweep
from repro.errors import SynthesisError
from repro.passives.filters import FilterFamily, FilterSpec


def chebyshev_spec(order=2, **overrides):
    defaults = dict(
        name="test",
        family=FilterFamily.CHEBYSHEV,
        order=order,
        center_hz=175e6,
        bandwidth_hz=25e6,
        max_insertion_loss_db=4.5,
        ripple_db=0.5,
    )
    defaults.update(overrides)
    return FilterSpec(**defaults)


def cauer_spec(**overrides):
    defaults = dict(
        name="cauer",
        family=FilterFamily.CAUER,
        order=3,
        center_hz=1.575e9,
        bandwidth_hz=500e6,
        max_insertion_loss_db=3.0,
        ripple_db=0.5,
        stop_attenuation_db=30.0,
        stop_offset_hz=350e6,
    )
    defaults.update(overrides)
    return FilterSpec(**defaults)


class TestButterworthGValues:
    def test_order_1(self):
        assert butterworth_g_values(1) == pytest.approx([2.0, 1.0])

    def test_order_3_textbook(self):
        g = butterworth_g_values(3)
        assert g == pytest.approx([1.0, 2.0, 1.0, 1.0])

    def test_order_5_textbook(self):
        g = butterworth_g_values(5)
        assert g[:5] == pytest.approx(
            [0.618, 1.618, 2.0, 1.618, 0.618], abs=1e-3
        )

    def test_rejects_order_zero(self):
        with pytest.raises(SynthesisError):
            butterworth_g_values(0)

    @given(st.integers(min_value=1, max_value=15))
    def test_symmetric(self, order):
        g = butterworth_g_values(order)[:-1]
        assert g == pytest.approx(list(reversed(g)))


class TestChebyshevGValues:
    def test_order_2_half_db_textbook(self):
        """Matthaei table: n=2, 0.5 dB -> g = 1.4029, 0.7071, 1.9841."""
        g = chebyshev_g_values(2, 0.5)
        assert g == pytest.approx([1.4029, 0.7071, 1.9841], abs=1e-3)

    def test_order_3_half_db_textbook(self):
        """Matthaei table: n=3, 0.5 dB -> 1.5963, 1.0967, 1.5963, 1.0."""
        g = chebyshev_g_values(3, 0.5)
        assert g == pytest.approx([1.5963, 1.0967, 1.5963, 1.0], abs=1e-3)

    def test_order_5_tenth_db_textbook(self):
        """Matthaei table: n=5, 0.1 dB."""
        g = chebyshev_g_values(5, 0.1)
        assert g[:5] == pytest.approx(
            [1.1468, 1.3712, 1.9750, 1.3712, 1.1468], abs=1e-3
        )

    def test_odd_order_unity_load(self):
        assert chebyshev_g_values(3, 0.5)[-1] == pytest.approx(1.0)

    def test_even_order_transformed_load(self):
        assert chebyshev_g_values(2, 0.5)[-1] > 1.5

    def test_rejects_nonpositive_ripple(self):
        with pytest.raises(SynthesisError):
            chebyshev_g_values(2, 0.0)

    @given(
        st.integers(min_value=1, max_value=9),
        st.floats(min_value=0.01, max_value=3.0),
    )
    def test_all_positive(self, order, ripple):
        assert all(g > 0 for g in chebyshev_g_values(order, ripple))


class TestBandpassSynthesis:
    def test_resonators_at_center(self):
        design = synthesize_bandpass(chebyshev_spec())
        for resonator in design.resonators:
            assert resonator.resonance_hz == pytest.approx(
                175e6, rel=1e-9
            )

    def test_series_shunt_alternation(self):
        design = synthesize_bandpass(chebyshev_spec(order=3))
        topologies = [r.topology for r in design.resonators]
        assert topologies == ["series", "shunt", "series"]

    def test_even_order_matched_load(self):
        design = synthesize_bandpass(chebyshev_spec())
        g_load = design.g_values[-1]
        assert design.load_impedance_ohm == pytest.approx(50.0 * g_load)

    def test_unmatched_load_option(self):
        design = synthesize_bandpass(chebyshev_spec(), match_load=False)
        assert design.load_impedance_ohm == 50.0

    def test_cauer_has_traps(self):
        design = synthesize_bandpass(cauer_spec())
        assert len(design.traps) >= 1
        for trap in design.traps:
            f_trap = 1 / (
                2
                * math.pi
                * math.sqrt(trap.inductance_h * trap.capacitance_f)
            )
            assert f_trap == pytest.approx(1.225e9, rel=1e-9)

    def test_chebyshev_has_no_traps(self):
        assert synthesize_bandpass(chebyshev_spec()).traps == ()

    def test_cauer_without_stopband_raises(self):
        spec = chebyshev_spec()
        object.__setattr__(spec, "family", FilterFamily.CAUER)
        with pytest.raises(SynthesisError):
            synthesize_bandpass(spec)

    def test_element_count(self):
        design = synthesize_bandpass(chebyshev_spec(order=2))
        assert design.element_count == 4


class TestBuiltCircuits:
    def test_lossless_chebyshev_flat_passband(self):
        """Ideal elements + matched load: passband floor ~ 0 dB.

        Note even-order Chebyshev peaks *at* the centre (ripple there),
        so the floor is taken over the ripple bandwidth.
        """
        design = synthesize_bandpass(chebyshev_spec())
        circuit = build_bandpass_circuit(design, IdealQModel())
        band = sweep(circuit, 175e6 - 12.5e6, 175e6 + 12.5e6, points=201)
        assert band.min_insertion_loss_db() == pytest.approx(0.0, abs=0.05)
        # And the centre sits at the design ripple for even order.
        assert measure_insertion_loss(circuit, 175e6) == pytest.approx(
            0.5, abs=0.1
        )

    def test_lossless_ripple_bounded(self):
        """In-band loss never exceeds the design ripple (lossless).

        The lowpass-to-bandpass transform maps band edges geometrically
        (f_low * f_high = f0^2), so the ripple band is evaluated on the
        geometric edges, not f0 +/- BW/2.
        """
        spec = chebyshev_spec()
        design = synthesize_bandpass(spec)
        circuit = build_bandpass_circuit(design, IdealQModel())
        fbw = spec.fractional_bandwidth
        half = math.sqrt(1.0 + (fbw / 2.0) ** 2)
        f_low = spec.center_hz * (half - fbw / 2.0)
        f_high = spec.center_hz * (half + fbw / 2.0)
        band = sweep(circuit, f_low, f_high, points=201)
        assert band.insertion_loss_db.max() <= 0.5 + 0.05

    def test_skirts_attenuate(self):
        design = synthesize_bandpass(chebyshev_spec())
        circuit = build_bandpass_circuit(design, IdealQModel())
        out_of_band = measure_insertion_loss(circuit, 175e6 * 2.0)
        assert out_of_band > 20.0

    def test_finite_q_matches_classical_formula(self):
        """MNA dissipation loss agrees with 4.343 sum(g)/(w Qu).

        Measured as the passband floor so the even-order ripple peak at
        the centre does not contaminate the dissipation estimate.
        """
        qu = 30.0
        spec = chebyshev_spec()
        design = synthesize_bandpass(spec)
        circuit = build_bandpass_circuit(
            design, ConstantQModel(2 * qu, 2 * qu)
        )
        band = sweep(circuit, 175e6 - 12.5e6, 175e6 + 12.5e6, points=201)
        measured = band.min_insertion_loss_db()
        predicted = dissipation_loss_db(
            list(design.g_values), spec.fractional_bandwidth, qu
        )
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_cauer_trap_creates_transmission_zero(self):
        design = synthesize_bandpass(cauer_spec())
        circuit = build_bandpass_circuit(design, IdealQModel())
        at_zero = measure_insertion_loss(circuit, 1.225e9)
        at_pass = measure_insertion_loss(circuit, 1.575e9)
        assert at_zero - at_pass > 40.0

    def test_order_3_builds_and_passes(self):
        design = synthesize_bandpass(chebyshev_spec(order=3))
        circuit = build_bandpass_circuit(design, IdealQModel())
        assert measure_insertion_loss(circuit, 175e6) < 0.6

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_lossless_circuits_are_passive(self, order, ripple):
        spec = chebyshev_spec(order=order, ripple_db=ripple)
        design = synthesize_bandpass(spec)
        circuit = build_bandpass_circuit(design, IdealQModel())
        band = sweep(circuit, 150e6, 200e6, points=21)
        assert all(p.is_passive for p in band.points)


class TestDissipationFormula:
    def test_known_value(self):
        g = [1.4029, 0.7071, 1.9841]
        loss = dissipation_loss_db(g, 0.1, 50.0)
        assert loss == pytest.approx(4.343 * (1.4029 + 0.7071) / 5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SynthesisError):
            dissipation_loss_db([1.0, 1.0], 0.0, 50.0)
        with pytest.raises(SynthesisError):
            dissipation_loss_db([1.0, 1.0], 0.1, 0.0)
