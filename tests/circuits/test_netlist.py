"""Netlist container behaviour."""

from __future__ import annotations

import pytest

from repro.circuits.elements import Resistor
from repro.circuits.netlist import Circuit
from repro.errors import CircuitError


class TestConstruction:
    def test_convenience_constructors(self):
        c = Circuit("t")
        c.resistor("R1", "a", "0", 50.0)
        c.capacitor("C1", "a", "b", 1e-12)
        c.inductor("L1", "b", "0", 1e-9)
        assert len(c) == 3

    def test_duplicate_element_name_rejected(self):
        c = Circuit("t")
        c.resistor("R1", "a", "0", 50.0)
        with pytest.raises(CircuitError):
            c.resistor("R1", "b", "0", 50.0)

    def test_duplicate_port_name_rejected(self):
        c = Circuit("t")
        c.resistor("R1", "a", "0", 50.0)
        c.port("p1", "a")
        with pytest.raises(CircuitError):
            c.port("p1", "a")

    def test_extend(self):
        c = Circuit("t")
        c.extend(
            [
                Resistor("R1", "a", "0", 50.0),
                Resistor("R2", "a", "b", 50.0),
            ]
        )
        assert len(c) == 2


class TestInspection:
    def make(self):
        c = Circuit("t")
        c.resistor("R1", "in", "mid", 50.0)
        c.capacitor("C1", "mid", "0", 1e-12)
        return c

    def test_nodes_in_order_without_ground(self):
        assert self.make().nodes() == ["in", "mid"]

    def test_element_lookup(self):
        c = self.make()
        assert c.element("C1").capacitance == 1e-12
        with pytest.raises(CircuitError):
            c.element("X9")

    def test_component_count(self):
        counts = self.make().component_count()
        assert counts == {"Resistor": 1, "Capacitor": 1}


class TestValidation:
    def test_valid_circuit_passes(self):
        c = Circuit("t")
        c.resistor("R1", "in", "0", 50.0)
        c.port("p1", "in")
        c.validate()

    def test_empty_circuit_fails(self):
        with pytest.raises(CircuitError):
            Circuit("t").validate()

    def test_unconnected_port_fails(self):
        c = Circuit("t")
        c.resistor("R1", "in", "0", 50.0)
        c.port("p1", "elsewhere")
        with pytest.raises(CircuitError):
            c.validate()

    def test_no_ground_fails(self):
        c = Circuit("t")
        c.resistor("R1", "a", "b", 50.0)
        with pytest.raises(CircuitError):
            c.validate()
