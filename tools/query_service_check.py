"""CI gate: warehouse query responses equal fresh serial sweeps.

The ``tier1-query-service`` job runs this script (with
``PYTHONPATH=src``).  It drives the documented decision-service flow
end to end and diffs every wire byte against ground truth recomputed
from scratch:

1. **queue-run the sweep** — a 4-shard GPS work queue is initialised
   and drained by one worker (the same fabric the cross-host story
   uses), so the warehouse is fed from shard artifacts, not a
   privileged in-process build;
2. **build the warehouse** — ``ingest_shard_directory`` appends every
   artifact; a second ingest must skip them all (resumability);
3. **serve it** — a real :class:`~repro.core.queryservice.
   WarehouseServer` on an ephemeral port, queried over actual HTTP;
4. **replay scripted queries** — Pareto, winner counts, best
   candidate, re-ranks under three user weight vectors and a volume
   sensitivity; every HTTP response body must be **byte-identical**
   to the envelope computed from a fresh serial
   :func:`~repro.gps.study.run_gps_sweep` (re-run with the query's
   weights where the query re-ranks).

Any deviation — a torn frame, a stale manifest, one float one ulp
off the scalar formula — fails the job.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro.core.figure_of_merit import FomWeights
from repro.core.queue import manifest_for_grid, run_queue_worker, write_manifest
from repro.core.queryservice import response_bytes, serve_warehouse
from repro.core.sweep import SweepGrid
from repro.core.warehouse import ingest_shard_directory, read_warehouse_manifest
from repro.gps.study import GpsSweepFactory, run_gps_sweep

SHARDS = 4
GRID = SweepGrid(volumes=(1e3, 1e4, 1e5, 1e6))

#: The scripted replay: (name, request) pairs sent over POST /query.
SCRIPT = (
    ("pareto", {"kind": "pareto"}),
    ("pareto@1e4", {"kind": "pareto", "where": {"volume": 1e4}}),
    ("winners", {"kind": "winners"}),
    ("best@1e4", {"kind": "best", "where": {"volume": 1e4}}),
    ("rerank 2:1:1", {"kind": "rerank", "fom_weights": "2:1:1"}),
    ("rerank 1:2:1", {"kind": "rerank", "fom_weights": "1:2:1"}),
    (
        "rerank 0.5:1:3",
        {"kind": "rerank", "fom_weights": "0.5:1:3"},
    ),
    ("sensitivity", {"kind": "sensitivity", "axis": "volume"}),
)


def expected_envelope(name: str, request: dict, manifest) -> dict:
    """Ground truth for one scripted query, from a fresh serial sweep.

    Deliberately *not* the warehouse code path: the sweep runs again
    through ``evaluate_cell`` (with the query's weights as the
    sweep-wide default when the query re-ranks) and the envelope is
    assembled from that fresh frame with plain column operations.
    """
    weights = None
    if "fom_weights" in request:
        parts = [float(p) for p in request["fom_weights"].split(":")]
        weights = FomWeights(
            performance=parts[0], size=parts[1], cost=parts[2]
        )
    frame = run_gps_sweep(GRID, weights=weights).frame
    where = request.get("where", {})
    mask = frame.column("volume") == frame.column("volume")
    for axis, value in where.items():
        mask = mask & (frame.column(axis) == value)
    envelope = {
        "kind": request["kind"],
        "fingerprint": manifest.fingerprint,
        "revision": manifest.revision,
    }
    if request["kind"] == "pareto":
        selected = frame.filter(mask & frame.column("on_pareto_front"))
        envelope["rows"] = selected.to_json_columns()
        envelope["count"] = len(selected)
    elif request["kind"] == "winners":
        selected = frame.filter(mask)
        envelope["winner_counts"] = selected.winner_counts()
        envelope["points"] = int(
            selected.column("is_winner").sum()
        )
        envelope["count"] = len(selected)
    elif request["kind"] == "best":
        selected = frame.filter(mask)
        envelope["best"] = selected.row(selected.best_index()).as_dict()
    elif request["kind"] == "rerank":
        selected = frame.filter(mask)
        envelope["fom_weights"] = [
            weights.performance,
            weights.size,
            weights.cost,
        ]
        envelope["rows"] = selected.to_json_columns()
        envelope["count"] = len(selected)
        envelope["winner_counts"] = selected.winner_counts()
        envelope["best"] = selected.row(selected.best_index()).as_dict()
    elif request["kind"] == "sensitivity":
        selected = frame.filter(mask)
        slices = []
        column = selected.column("volume")
        for value in dict.fromkeys(column.tolist()):
            vmask = column == value
            sub = selected.filter(vmask)
            winners = sub.column("candidate")[sub.column("is_winner")]
            slices.append(
                {
                    "value": value,
                    "winner": str(winners[0]),
                    "fom": {
                        str(candidate): float(fom)
                        for candidate, fom in zip(
                            sub.column("candidate").tolist(),
                            sub.column("figure_of_merit").tolist(),
                        )
                    },
                }
            )
        envelope["axis"] = "volume"
        envelope["slices"] = slices
        envelope["count"] = len(selected)
    else:
        raise AssertionError(f"unscripted kind in {name}")
    return envelope


def main() -> int:
    directory = Path(tempfile.mkdtemp(prefix="query-service-"))
    shard_dir = directory / "shards"
    shard_dir.mkdir()

    # 1. Feed the warehouse from a drained 4-shard queue run.
    manifest_path = write_manifest(
        shard_dir / "queue.json",
        manifest_for_grid(GRID, shards=SHARDS),
    )
    report = run_queue_worker(
        manifest_path, GRID, GpsSweepFactory(), reference=0
    )
    if len(report.evaluated) != SHARDS:
        print(
            f"FAIL: queue worker evaluated {len(report.evaluated)} "
            f"of {SHARDS} shards"
        )
        return 1

    # 2. Build (then resume) the warehouse from the artifacts.
    warehouse_dir = directory / "warehouse"
    _, appended, skipped = ingest_shard_directory(
        warehouse_dir, shard_dir
    )
    if len(appended) != SHARDS or skipped:
        print(f"FAIL: first ingest appended {appended}, skip {skipped}")
        return 1
    manifest, appended, skipped = ingest_shard_directory(
        warehouse_dir, shard_dir
    )
    if appended or len(skipped) != SHARDS:
        print(f"FAIL: second ingest not a no-op: {appended}")
        return 1
    if not manifest.complete:
        print("FAIL: warehouse incomplete after full ingest")
        return 1
    print(
        f"warehouse built from {SHARDS} queue shards: fingerprint "
        f"{manifest.fingerprint}, revision {manifest.revision}"
    )

    # 3. Serve it for real.
    server = serve_warehouse(warehouse_dir)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    # 4. Replay the script, diffing every byte against ground truth.
    failures = 0
    try:
        for name, request in SCRIPT:
            http_request = urllib.request.Request(
                f"http://{host}:{port}/query",
                data=json.dumps(request).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(http_request) as response:
                served = response.read()
            expected = response_bytes(
                expected_envelope(name, request, manifest)
            )
            if served == expected:
                print(f"OK   {name}: {len(served)} bytes identical")
            else:
                failures += 1
                print(
                    f"FAIL {name}: served response differs from the "
                    f"fresh serial sweep"
                )
                print(f"  served:   {served[:200]!r}")
                print(f"  expected: {expected[:200]!r}")
    finally:
        server.shutdown()
        server.server_close()

    # The manifest on disk never moved while serving.
    final = read_warehouse_manifest(warehouse_dir)
    if final.revision != manifest.revision:
        print("FAIL: manifest revision moved under a read-only server")
        failures += 1

    if failures:
        print(f"{failures} scripted quer(ies) diverged")
        return 1
    print(f"all {len(SCRIPT)} scripted queries byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
