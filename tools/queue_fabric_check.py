"""CI gate: the queue + gather fabric heals faults, bytes stay serial.

The ``tier1-queue-fabric`` job runs this script (with ``PYTHONPATH=src``).
It stages the failure modes the service tier exists to absorb, all in
one 4-shard GPS queue sweep:

* an **injected transient failure** — the first evaluation raises, so
  one shard burns an attempt, lands in the failure ledger and must be
  retried to success;
* a **stale lease from a dead worker** — one shard starts out leased
  by a host that "died" long ago, with torn junk bytes at its artifact
  path; the lease must be stolen and the junk atomically replaced;
* an **incremental gather watching concurrently** — the watcher polls
  while the worker publishes, so every scan races a writer and only
  the atomic artifact protocol keeps the reads whole.

The gathered report's CSV must be byte-identical to the serial
in-process sweep.  Any deviation — a torn read, a double-counted
shard, a lost retry — fails the job.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
from pathlib import Path

from repro.core.gather import watch_directory
from repro.core.queue import (
    manifest_for_grid,
    run_queue_worker,
    write_manifest,
)
from repro.core.sharding import shard_filename
from repro.core.sweep import SweepGrid
from repro.gps.study import GpsSweepFactory, run_gps_sweep

SHARDS = 4
GRID = SweepGrid(volumes=(1e3, 1e4, 1e5, 1e6))


class FlakyOnce:
    """GPS candidate factory whose first call raises (then behaves).

    The marker file carries the "already failed" bit across retries,
    exactly like a transient host fault: the queue records the failed
    attempt and the next claim succeeds.
    """

    def __init__(self, marker: Path):
        self.marker = marker
        self.inner = GpsSweepFactory()

    def __call__(self, point):
        if not self.marker.exists():
            self.marker.write_text("tripped", encoding="utf-8")
            raise RuntimeError("injected transient fault")
        return self.inner(point)


def report_csv(report) -> str:
    return "\n".join([report.frame.csv_header(), *report.frame.csv_lines()])


def main() -> int:
    directory = Path(tempfile.mkdtemp(prefix="queue-fabric-"))
    manifest = manifest_for_grid(
        GRID, shards=SHARDS, lease_ttl=60.0, max_attempts=3
    )
    manifest_path = write_manifest(directory / "manifest.json", manifest)

    # A worker that died mid-shard 2: its lease expired long ago and
    # it left torn bytes at the artifact path.  The fabric must steal
    # the lease, ignore the junk and atomically replace it.
    stale_lease = directory / f"lease-0002-of-{SHARDS:04d}.json"
    stale_lease.write_text(
        json.dumps(
            {"owner": "dead-host:1", "token": "stale", "expires": 1.0}
        ),
        encoding="utf-8",
    )
    torn = directory / shard_filename(SHARDS, 2)
    torn.write_text('{"format": "repro-sw', encoding="utf-8")

    worker_report = {}

    def worker() -> None:
        worker_report["report"] = run_queue_worker(
            manifest_path,
            GRID,
            FlakyOnce(directory / "fault-injected.marker"),
            owner="ci-worker",
        )

    thread = threading.Thread(target=worker)
    thread.start()
    snapshots = []
    gathered = watch_directory(
        directory,
        expected=manifest,
        poll=0.05,
        timeout=300.0,
        on_snapshot=snapshots.append,
    )
    thread.join()
    report = worker_report["report"]

    failures = []
    if not report.queue_drained:
        failures.append(f"queue not drained: outstanding {report.outstanding}")
    if report.exhausted:
        failures.append(f"shards exhausted: {report.exhausted}")
    if len(report.failures) != 1:
        failures.append(
            f"expected exactly 1 recorded failure, got {report.failures}"
        )
    if stale_lease.exists():
        failures.append("stale lease survived the sweep")
    if not snapshots:
        failures.append("watcher published no snapshots")

    serial_csv = report_csv(run_gps_sweep(GRID))
    gathered_csv = report_csv(gathered)
    if gathered_csv != serial_csv:
        failures.append("gathered CSV differs from the serial sweep")

    print(
        f"queue fabric: {len(report.evaluated)} shards evaluated, "
        f"{len(report.failures)} injected failure recorded, "
        f"{len(snapshots)} gather snapshots, "
        f"{len(gathered_csv.splitlines()) - 1} rows gathered"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("queue fabric check: gathered bytes == serial bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
