"""CI gate: the adaptive CLI front is the exhaustive front, fewer evals.

The ``tier1-adaptive`` job runs this script (with ``PYTHONPATH=src``).
It drives the walkthrough from docs/sweep-guide.md end to end through
the ``repro-gps`` CLI — a dense-volume GPS sweep run twice, once
exhaustively and once with ``--adaptive`` — then byte-compares the
outputs:

* every adaptive CSV row must appear **verbatim** in the exhaustive
  CSV, in canonical grid order (the adaptive frame is a strict
  restriction of the exhaustive frame, never a re-computation);
* the global Pareto front of the adaptive CSV must be byte-identical
  to the front of the exhaustive CSV restricted to the same rows, and
  a subset of the full exhaustive front;
* the adaptive run must actually have skipped work: its row count
  strictly below the exhaustive row count, with the summary on stderr
  reporting a stable front.

Any deviation — a re-evaluated value drifting by one ULP, a front
member lost to under-refinement, a driver that silently degenerates to
the full grid — fails the job.
"""

from __future__ import annotations

import csv
import io
import subprocess
import sys

import numpy as np

from repro.core.pareto import first_dominators

VOLUMES = ",".join(repr(float(v)) for v in np.geomspace(1e2, 1e7, 128))


def run_sweep(*extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "sweep",
            "--volumes",
            VOLUMES,
            "--csv",
            *extra,
        ],
        capture_output=True,
        text=True,
        check=True,
    )


def front_lines(csv_text: str) -> list[str]:
    """The global-Pareto-front rows of a sweep CSV, original bytes."""
    header, *lines = csv_text.splitlines()
    columns = next(csv.reader([header]))
    picks = [columns.index(n) for n in ("performance", "area_percent", "cost_percent")]
    rows = list(csv.reader(io.StringIO("\n".join(lines))))
    perf, size, cost = (
        np.array([float(row[i]) for row in rows]) for i in picks
    )
    mask = first_dominators(perf, size, cost) < 0
    return [line for line, keep in zip(lines, mask) if keep]


def is_subsequence(needle: list[str], haystack: list[str]) -> bool:
    it = iter(haystack)
    return all(line in it for line in needle)


def main() -> int:
    exhaustive = run_sweep()
    adaptive = run_sweep("--adaptive")

    exhaustive_lines = exhaustive.stdout.splitlines()
    adaptive_lines = adaptive.stdout.splitlines()
    failures = []

    if adaptive_lines[0] != exhaustive_lines[0]:
        failures.append("CSV headers differ")
    # Restriction, byte for byte and in canonical order: filtering the
    # exhaustive CSV to the adaptive rows must reproduce the adaptive
    # CSV exactly.
    evaluated = set(adaptive_lines[1:])
    restricted = [line for line in exhaustive_lines[1:] if line in evaluated]
    if restricted != adaptive_lines[1:]:
        failures.append(
            "adaptive CSV is not the canonical restriction of the "
            "exhaustive CSV"
        )

    restricted_front = front_lines(
        "\n".join([exhaustive_lines[0], *restricted])
    )
    adaptive_front = front_lines(adaptive.stdout)
    if adaptive_front != restricted_front:
        failures.append("adaptive front differs from the restricted front")
    full_front = front_lines(exhaustive.stdout)
    missing = set(adaptive_front) - set(full_front)
    if missing:
        failures.append(
            f"{len(missing)} adaptive front rows absent from the "
            "exhaustive front"
        )

    if len(adaptive_lines) >= len(exhaustive_lines):
        failures.append("adaptive run evaluated the whole grid")
    if "stable front" not in adaptive.stderr:
        failures.append("adaptive summary does not report a stable front")

    print(
        f"adaptive CLI: {len(adaptive_lines) - 1} of "
        f"{len(exhaustive_lines) - 1} exhaustive rows evaluated, "
        f"front {len(adaptive_front)} rows "
        f"(full front {len(full_front)} rows)"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("adaptive check: adaptive front bytes == exhaustive front bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
