#!/usr/bin/env python3
"""Check that every local markdown link in the repo resolves.

Scans all ``*.md`` files under the repository root for inline links
``[text](target)`` and reference definitions ``[label]: target``,
skips external schemes (``http``, ``https``, ``mailto``) and pure
in-page anchors, and verifies every remaining target exists relative
to the linking file (fragments are stripped first).

Run from the repository root (CI's docs job does):

    python tools/check_markdown_links.py

Exit status 0 when every link resolves, 1 otherwise (each broken link
is listed as ``file: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links, ignoring images' leading ``!`` (images are files too,
#: so they are checked identically).
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style definitions at line start: ``[label]: target``.
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: Generated paper-extraction artifacts: their markdown references
#: figures that were deliberately not vendored into the repo.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def iter_markdown_files(root: Path):
    """All tracked-looking markdown files (skips VCS and cache dirs)."""
    for path in sorted(root.rglob("*.md")):
        parts = path.relative_to(root).parts
        if any(part.startswith(".") or part == "__pycache__" for part in parts[:-1]):
            continue
        if len(parts) == 1 and parts[0] in SKIP_FILES:
            continue
        yield path


def iter_links(text: str):
    """Every link target in a markdown document."""
    yield from INLINE_LINK.findall(text)
    yield from REFERENCE_DEF.findall(text)


def check_file(path: Path, root: Path) -> list[str]:
    """Broken local link targets of one markdown file."""
    broken = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        resolved = (
            root / local.lstrip("/")
            if local.startswith("/")
            else path.parent / local
        )
        if not resolved.exists():
            broken.append(f"{path.relative_to(root)}: {target}")
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken: list[str] = []
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        broken.extend(check_file(path, root))
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"All markdown links resolve ({checked} files checked).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
