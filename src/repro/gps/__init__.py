"""The GPS receiver front-end case study (paper §3-4)."""

from . import data
from .bom import (
    GPS_BOM_SUMMARY,
    GpsBomSummary,
    build_gps_bom,
    validate_against_paper,
)
from .buildups import (
    BUILDUPS,
    BuildUp,
    area_for,
    flow_for,
    footprints_for,
    get_buildup,
    smd_count_for,
)
from .filters_chain import (
    filter_chain_specs,
    if_filter_spec,
    rf_image_reject_spec,
    technology_assignments,
)
from .schematic import (
    Block,
    BlockKind,
    ON_MODULE_FILTERS,
    SignalChain,
    build_gps_chain,
)
from .study import (
    GpsStudyRow,
    candidates,
    paper_comparison,
    run_gps_study,
    summary_rows,
)

__all__ = [
    "BUILDUPS",
    "Block",
    "BlockKind",
    "BuildUp",
    "GPS_BOM_SUMMARY",
    "GpsBomSummary",
    "GpsStudyRow",
    "ON_MODULE_FILTERS",
    "SignalChain",
    "area_for",
    "build_gps_bom",
    "build_gps_chain",
    "candidates",
    "data",
    "filter_chain_specs",
    "flow_for",
    "footprints_for",
    "get_buildup",
    "if_filter_spec",
    "paper_comparison",
    "rf_image_reject_spec",
    "run_gps_study",
    "smd_count_for",
    "summary_rows",
    "technology_assignments",
    "validate_against_paper",
]
