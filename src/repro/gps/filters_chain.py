"""Filter specifications and per-build-up technology assignments (§4.1).

Three on-module filters:

* the LNA output **image-reject** filter — Cauer type, passband at
  1.575 GHz, transmission zero at the 1.225 GHz image, max 3 dB loss;
* two **IF bandpass** filters — 2-pole Tchebyscheff at 175 MHz.

Per build-up realisations follow §4.1:

* build-ups 1 and 2 buy discrete SMD filter blocks (screened, tuned:
  they meet spec, performance 1.0);
* build-up 3 integrates everything — the IF filters' thin-film spirals
  have single-digit Q at 175 MHz, so losses far exceed spec;
* build-up 4 integrates the RF filter (fine at 1.5 GHz) but realises the
  IF filters with SMD inductors + integrated capacitors/resistors —
  "borderline" performance.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.qfactor import (
    DiscreteFilterBlockQModel,
    MixedQModel,
    SmdQModel,
    process_q_model,
)
from ..circuits.synthesis import QModel
from ..passives.filters import FilterFamily, FilterSpec
from ..passives.thin_film import SUMMIT_PROCESS, ThinFilmProcess
from . import data


def rf_image_reject_spec() -> FilterSpec:
    """The Cauer image-reject filter after the LNA."""
    return FilterSpec(
        name="image reject filter",
        family=FilterFamily.CAUER,
        order=3,
        center_hz=data.GPS_L1_HZ,
        bandwidth_hz=data.RF_FILTER_BANDWIDTH_HZ,
        max_insertion_loss_db=data.RF_FILTER_MAX_LOSS_DB,
        ripple_db=0.5,
        stop_attenuation_db=data.RF_FILTER_MIN_REJECTION_DB,
        stop_offset_hz=data.GPS_L1_HZ - data.IMAGE_HZ,
    )


def if_filter_spec(which: int) -> FilterSpec:
    """One of the two 2-pole Tchebyscheff IF filters."""
    if which not in (1, 2):
        raise ValueError(f"IF filter index must be 1 or 2, got {which}")
    return FilterSpec(
        name=f"IF filter {which}",
        family=FilterFamily.CHEBYSHEV,
        order=2,
        center_hz=data.IF_HZ,
        bandwidth_hz=data.IF_FILTER_BANDWIDTH_HZ,
        max_insertion_loss_db=data.IF_FILTER_MAX_LOSS_DB,
        ripple_db=data.IF_FILTER_RIPPLE_DB,
    )


def filter_chain_specs() -> list[FilterSpec]:
    """All on-module filter specs, in signal order."""
    return [rf_image_reject_spec(), if_filter_spec(1), if_filter_spec(2)]


def technology_assignments(
    implementation: int,
    process: ThinFilmProcess = SUMMIT_PROCESS,
    q_model: Optional[QModel] = None,
) -> list[tuple[FilterSpec, Optional[QModel]]]:
    """``(spec, q_model)`` pairs for one build-up (input to assess_chain).

    ``process`` selects the thin-film process behind the integrated
    filter realisations of build-ups 3 and 4 (the design-space sweep's
    process axis); its loss parameters flow into the model through
    :func:`repro.circuits.qfactor.process_q_model`.  ``q_model``
    replaces that integrated-passives model altogether — the sweep's
    Q-model axis: passing e.g. a
    :class:`~repro.circuits.qfactor.SubstrateLossQModel` re-scores the
    integrated filters under a different (possibly frequency-dependent)
    loss mechanism, while the bought discrete blocks of build-ups 1/2
    and the SMD inductors of build-up 4 keep their own technologies.

    Raises
    ------
    ValueError
        For implementation numbers outside 1..4.
    """
    if implementation not in (1, 2, 3, 4):
        raise ValueError(
            f"implementation must be 1..4, got {implementation}"
        )
    rf = rf_image_reject_spec()
    if1 = if_filter_spec(1)
    if2 = if_filter_spec(2)
    block = DiscreteFilterBlockQModel()
    integrated = (
        q_model if q_model is not None else process_q_model(process)
    )
    if implementation in (1, 2):
        return [(rf, block), (if1, block), (if2, block)]
    if implementation == 3:
        return [
            (rf, integrated),
            (if1, integrated),
            (if2, integrated),
        ]
    mixed = MixedQModel(
        inductor_model=SmdQModel(
            inductor_q_value=data.SMD_INDUCTOR_Q_AT_IF
        ),
        capacitor_model=integrated,
    )
    return [(rf, integrated), (if1, mixed), (if2, mixed)]
