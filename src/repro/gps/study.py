"""End-to-end reproduction of the paper's GPS case study (§4).

:func:`run_gps_study` assembles the four build-ups into methodology
candidates and executes steps 2-5, producing the quantities behind
Fig. 3 (area), Fig. 5 (cost), Fig. 6 (figure of merit) and the §4.1
performance scores in one call.  The benchmarks and examples all go
through this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..area.substrate import LAMINATE_RULE, MCM_D_RULE, PCB_RULE
from ..core.methodology import (
    CandidateBuildUp,
    StudyResult,
    run_study,
)
from ..core.figure_of_merit import FomWeights
from . import data
from .buildups import flow_for, footprints_for, get_buildup
from .filters_chain import technology_assignments


@dataclass(frozen=True)
class GpsStudyRow:
    """Convenience view of one implementation's results."""

    implementation: int
    name: str
    performance: float
    area_percent: float
    cost_percent: float
    figure_of_merit: float


def candidates(
    chip_costs: Optional[data.ChipCosts] = None,
) -> list[CandidateBuildUp]:
    """The four GPS build-ups as methodology candidates (step 1)."""
    result = []
    for implementation in (1, 2, 3, 4):
        buildup = get_buildup(implementation)

        def factory(
            area_cm2: float, _implementation: int = implementation
        ):
            return flow_for(_implementation, area_cm2, chip_costs)

        result.append(
            CandidateBuildUp(
                name=buildup.name,
                footprints=footprints_for(implementation),
                substrate_rule=MCM_D_RULE if buildup.is_mcm else PCB_RULE,
                laminate=LAMINATE_RULE if buildup.is_mcm else None,
                flow_factory=factory,
                filter_assignments=technology_assignments(implementation),
            )
        )
    return result


def run_gps_study(
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    volume: float = 10_000.0,
) -> StudyResult:
    """Run the complete GPS trade-off study.

    The reference is implementation 1 (PCB/SMD), as in the paper.
    """
    return run_study(
        candidates(chip_costs),
        reference=0,
        weights=weights,
        volume=volume,
    )


def summary_rows(result: StudyResult) -> list[GpsStudyRow]:
    """Flatten a study result into per-implementation summary rows."""
    rows = []
    for implementation in (1, 2, 3, 4):
        name = data.IMPLEMENTATION_NAMES[implementation]
        row = result.row(name)
        rows.append(
            GpsStudyRow(
                implementation=implementation,
                name=name,
                performance=row.fom.performance,
                area_percent=row.area_percent,
                cost_percent=row.cost_percent,
                figure_of_merit=row.fom.figure_of_merit,
            )
        )
    return rows


def paper_comparison(result: StudyResult) -> dict[str, dict[int, tuple]]:
    """Paper-vs-measured pairs for every published number.

    Returns a mapping with keys ``"area"``, ``"cost"``, ``"performance"``
    and ``"fom"``; each value maps the implementation number to a
    ``(paper, measured)`` tuple.  EXPERIMENTS.md is generated from this.
    """
    rows = {row.implementation: row for row in summary_rows(result)}
    return {
        "area": {
            i: (data.PAPER_AREA_PERCENT[i], rows[i].area_percent)
            for i in (1, 2, 3, 4)
        },
        "cost": {
            i: (data.PAPER_COST_PERCENT[i], rows[i].cost_percent)
            for i in (1, 2, 3, 4)
        },
        "performance": {
            i: (data.PAPER_PERFORMANCE[i], rows[i].performance)
            for i in (1, 2, 3, 4)
        },
        "fom": {
            i: (data.PAPER_FOM[i], rows[i].figure_of_merit)
            for i in (1, 2, 3, 4)
        },
    }
