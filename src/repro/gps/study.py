"""End-to-end reproduction of the paper's GPS case study (§4).

:func:`run_gps_study` assembles the four build-ups into methodology
candidates and executes steps 2-5, producing the quantities behind
Fig. 3 (area), Fig. 5 (cost), Fig. 6 (figure of merit) and the §4.1
performance scores in one call.  The benchmarks and examples all go
through this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional

from ..area.substrate import LAMINATE_RULE, MCM_D_RULE, PCB_RULE
from ..core.methodology import (
    CandidateBuildUp,
    StudyResult,
    run_study,
)
from ..core.figure_of_merit import FomWeights
from ..core.queue import QueueWorkerReport, run_queue_worker
from ..core.sharding import ShardArtifact, run_shard
from ..core.warehouse import WarehouseManifest, build_warehouse
from ..core.sweep import (
    DesignPoint,
    EvaluationCache,
    NreScenario,
    StreamedCell,
    SweepGrid,
    SweepReport,
    run_design_sweep,
    stream_design_sweep,
)
from ..passives.thin_film import SUMMIT_PROCESS
from . import data
from .buildups import (
    flow_for,
    footprints_for,
    get_buildup,
    integrated_count_for,
)
from .filters_chain import technology_assignments


@dataclass(frozen=True)
class GpsStudyRow:
    """Convenience view of one implementation's results."""

    implementation: int
    name: str
    performance: float
    area_percent: float
    cost_percent: float
    figure_of_merit: float


def candidates(
    chip_costs: Optional[data.ChipCosts] = None,
) -> list[CandidateBuildUp]:
    """The four GPS build-ups as methodology candidates (step 1)."""
    result = []
    for implementation in (1, 2, 3, 4):
        buildup = get_buildup(implementation)

        def factory(
            area_cm2: float, _implementation: int = implementation
        ):
            return flow_for(_implementation, area_cm2, chip_costs)

        result.append(
            CandidateBuildUp(
                name=buildup.name,
                footprints=footprints_for(implementation),
                substrate_rule=MCM_D_RULE if buildup.is_mcm else PCB_RULE,
                laminate=LAMINATE_RULE if buildup.is_mcm else None,
                flow_factory=factory,
                filter_assignments=technology_assignments(implementation),
            )
        )
    return result


def run_gps_study(
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    volume: float = 10_000.0,
) -> StudyResult:
    """Run the complete GPS trade-off study.

    The reference is implementation 1 (PCB/SMD), as in the paper.
    """
    return run_study(
        candidates(chip_costs),
        reference=0,
        weights=weights,
        volume=volume,
    )


#: Extension-scenario NRE per build-up for the design-space sweep: PCB
#: tooling, MCM-D mask set, plus the integrated-passive layers of 3/4.
#: The paper publishes no NRE figures; without one the volume axis would
#: be a no-op (Eq. (1) amortises only NRE over shipped units).
SWEEP_NRE_SCENARIO: dict[int, float] = {
    1: 5_000.0,
    2: 30_000.0,
    3: 45_000.0,
    4: 45_000.0,
}

#: Named NRE scenarios for the sweep's NRE axis (CLI
#: ``repro-gps sweep --nres``).  ``paper`` (= None) keeps
#: :data:`SWEEP_NRE_SCENARIO`; the others bracket it: no NRE at all,
#: a lean flow that halves every figure, and a mask-heavy flow where
#: the MCM-D mask set and integrated-passive layers cost double.
NRE_SCENARIOS: dict[str, NreScenario] = {
    "zero": NreScenario(
        name="zero", by_candidate=((1, 0.0), (2, 0.0), (3, 0.0), (4, 0.0))
    ),
    "lean": NreScenario(
        name="lean",
        by_candidate=tuple(
            (i, 0.5 * SWEEP_NRE_SCENARIO[i]) for i in (1, 2, 3, 4)
        ),
    ),
    "mask-heavy": NreScenario(
        name="mask-heavy",
        by_candidate=(
            (1, SWEEP_NRE_SCENARIO[1]),
            (2, 2.0 * SWEEP_NRE_SCENARIO[2]),
            (3, 2.0 * SWEEP_NRE_SCENARIO[3]),
            (4, 2.0 * SWEEP_NRE_SCENARIO[4]),
        ),
    ),
}


def sweep_candidates(
    point: DesignPoint,
    chip_costs: Optional[data.ChipCosts] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
) -> list[CandidateBuildUp]:
    """The four GPS build-ups instantiated at one design point.

    This is the GPS adapter for :mod:`repro.core.sweep`: the point's
    axes are mapped onto the paper's knobs —

    * ``process`` re-sizes the integrated passives (area step) and
      re-models the integrated filters' Q (performance step) of
      build-ups 3 and 4;
    * ``substrate`` replaces the MCM-D sizing rule of build-ups 2-4
      (the PCB reference keeps its board rule);
    * ``tolerance`` folds its module yield and trim cost into the
      substrate carrier of build-ups 3 and 4;
    * ``volume`` is consumed by the sweep's cost evaluation, made
      meaningful by the NRE scenario (``SWEEP_NRE_SCENARIO`` unless
      overridden);
    * ``q_model`` replaces the integrated-passives technology Q model
      of build-ups 3 and 4 (possibly with a frequency-dependent one —
      the Q-model axis);
    * ``nre`` replaces the NRE assumption with a named
      :class:`~repro.core.sweep.NreScenario` (the NRE axis; it wins
      over the factory-level ``nre_scenario`` argument);
    * ``weights`` is consumed by the sweep's ranking step (the FoM
      weights axis — not this factory's business).
    """
    process = point.process if point.process is not None else SUMMIT_PROCESS
    if point.nre is not None:
        nre_by_impl: Mapping[int, float] = point.nre.as_mapping()
    elif nre_scenario is not None:
        nre_by_impl = dict(nre_scenario)
    else:
        nre_by_impl = SWEEP_NRE_SCENARIO
    result = []
    for implementation in (1, 2, 3, 4):
        buildup = get_buildup(implementation)
        footprints = footprints_for(implementation, process)

        substrate_rule = MCM_D_RULE if buildup.is_mcm else PCB_RULE
        if point.substrate is not None and buildup.is_mcm:
            substrate_rule = point.substrate

        yield_factor = 1.0
        trim_cost = 0.0
        if point.tolerance is not None and implementation in (3, 4):
            integrated = integrated_count_for(implementation, process)
            yield_factor = point.tolerance.module_yield(integrated)
            trim_cost = point.tolerance.trim_cost(integrated)

        def factory(
            area_cm2: float,
            _implementation: int = implementation,
            _yield_factor: float = yield_factor,
            _trim_cost: float = trim_cost,
        ):
            return flow_for(
                _implementation,
                area_cm2,
                chip_costs,
                nre=nre_by_impl.get(_implementation, 0.0),
                substrate_yield_factor=_yield_factor,
                extra_substrate_cost=_trim_cost,
            )

        result.append(
            CandidateBuildUp(
                name=buildup.name,
                footprints=footprints,
                substrate_rule=substrate_rule,
                laminate=LAMINATE_RULE if buildup.is_mcm else None,
                flow_factory=factory,
                filter_assignments=technology_assignments(
                    implementation, process, point.q_model
                ),
            )
        )
    return result


#: ``sweep_candidates`` never reads ``point.volume``, so the batched
#: fill may call it once per volume family (it is also usable directly
#: as a candidate factory in serial sweeps).
sweep_candidates.volume_invariant = True


@dataclass(frozen=True)
class GpsSweepFactory:
    """Picklable candidate factory for the GPS design-space sweep.

    The process execution engine ships the candidate factory to worker
    processes, so it must pickle — a lambda closure cannot.  This frozen
    dataclass captures the sweep's configuration and builds the four
    build-up candidates locally in whichever process evaluates the grid
    point (the candidates' own flow-factory closures therefore never
    cross a process boundary).

    ``volume_invariant`` declares that :func:`sweep_candidates` never
    reads ``point.volume`` (volume is consumed by the sweep's cost
    step, not by candidate construction), which lets
    :func:`~repro.core.sweep.evaluate_cells` run the factory once per
    volume family and batch the cost evaluation across the family.
    """

    #: Candidates depend on every axis except the volume — the batched
    #: fill contract (see :func:`repro.core.sweep.evaluate_cells`).
    volume_invariant = True

    chip_costs: Optional[data.ChipCosts] = None
    nre_scenario: Optional[Mapping[int, float]] = None

    def __call__(self, point: DesignPoint) -> list[CandidateBuildUp]:
        return sweep_candidates(point, self.chip_costs, self.nre_scenario)


def run_gps_sweep(
    grid: SweepGrid | Iterable[DesignPoint],
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
) -> SweepReport:
    """Design-space sweep over the GPS case study.

    The reference is implementation 1 (PCB/SMD) at every grid point, as
    in the paper.  ``executor`` selects the execution engine
    (:mod:`repro.core.executors`); all engines produce an identical
    columnar :attr:`~repro.core.sweep.SweepReport.frame` (and hence
    identical bridged rows).
    """
    return run_design_sweep(
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        reference=0,
        weights=weights,
        cache=cache,
        executor=executor,
    )


def stream_gps_sweep(
    grid: SweepGrid | Iterable[DesignPoint],
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
) -> Iterator[StreamedCell]:
    """Streaming variant of :func:`run_gps_sweep`.

    Yields one :class:`~repro.core.sweep.StreamedCell` per grid point
    as soon as it is evaluated (completion order under the async
    engine, the default).  Each carries its results as a per-cell
    :class:`~repro.core.resultframe.ResultFrame` (plus the bridged
    ``rows``), byte-identical to the slice :func:`run_gps_sweep`
    reports for the same grid.
    """
    yield from stream_design_sweep(
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        reference=0,
        weights=weights,
        cache=cache,
        executor=executor,
    )


def spill_gps_sweep(
    grid: SweepGrid | Iterable[DesignPoint],
    directory,
    max_rows_in_memory: int,
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
) -> "ChunkedFrameStore":
    """Out-of-core variant of :func:`run_gps_sweep`.

    Evaluates the grid while spilling completed cells into a
    :class:`~repro.core.framestore.ChunkedFrameStore` under
    ``directory``, never buffering more than ``max_rows_in_memory``
    rows — the store's row stream (chunks, CSV, Pareto mask) is
    byte-identical to :func:`run_gps_sweep`'s in-RAM frame.  The CLI
    flow is ``repro-gps sweep --max-rows-in-memory N [--spill-dir
    DIR]`` (or ``$REPRO_SWEEP_MAX_ROWS``).
    """
    from ..core.framestore import spill_design_sweep

    return spill_design_sweep(
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        directory,
        max_rows_in_memory,
        reference=0,
        weights=weights,
        cache=cache,
        executor=executor,
    )


def run_adaptive_gps_sweep(
    grid: SweepGrid,
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
    *,
    passes: Optional[int] = None,
    budget: Optional[int] = None,
    refine_margin: float = 0.0,
    coarse: int = 4,
) -> "AdaptiveReport":
    """Adaptive (coarse → zoom) variant of :func:`run_gps_sweep`.

    Evaluates a coarse subsample of the grid, then refines the
    continuous axes only around Pareto-front members
    (:func:`~repro.core.adaptive.run_adaptive_sweep`) — typically an
    order of magnitude fewer cell evaluations than the exhaustive grid
    with a byte-identical front over the evaluated points.  The
    returned :class:`~repro.core.adaptive.AdaptiveReport` carries the
    merged canonical frame plus the per-pass counters behind that
    claim; its ``report`` property is an ordinary
    :class:`~repro.core.sweep.SweepReport`.  CLI flow:
    ``repro-gps sweep --adaptive [--passes N --budget K
    --refine-margin X --coarse C]``.
    """
    from ..core.adaptive import run_adaptive_sweep

    return run_adaptive_sweep(
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        reference=0,
        weights=weights,
        cache=cache,
        executor=executor,
        passes=passes,
        budget=budget,
        refine_margin=refine_margin,
        coarse=coarse,
    )


def spill_adaptive_gps_sweep(
    grid: SweepGrid,
    directory,
    max_rows_in_memory: int,
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
    *,
    passes: Optional[int] = None,
    budget: Optional[int] = None,
    refine_margin: float = 0.0,
    coarse: int = 4,
):
    """Adaptive GPS sweep spilled to a chunk store.

    Combines :func:`run_adaptive_gps_sweep` with the out-of-core store
    (:func:`~repro.core.adaptive.spill_adaptive_sweep`): the merged
    canonical frame lands chunked under ``directory`` with the
    evaluated-subgrid identity and adaptive counters in the manifest
    meta.  Returns ``(store, report)``.
    """
    from ..core.adaptive import spill_adaptive_sweep

    return spill_adaptive_sweep(
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        directory,
        max_rows_in_memory,
        reference=0,
        weights=weights,
        cache=cache,
        executor=executor,
        passes=passes,
        budget=budget,
        refine_margin=refine_margin,
        coarse=coarse,
    )


def run_gps_shard(
    grid: SweepGrid | Iterable[DesignPoint],
    shards: int,
    shard_index: int,
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    executor=None,
) -> ShardArtifact:
    """Evaluate one cross-host shard of a GPS design-space sweep.

    Resolves the full grid locally, evaluates shard ``shard_index`` of
    ``shards`` and returns the portable
    :class:`~repro.core.sharding.ShardArtifact` (results stored as a
    columnar :class:`~repro.core.resultframe.ResultFrame` payload);
    write it with
    :func:`~repro.core.sharding.write_shard_artifact`, ship it
    anywhere, and reassemble the canonical report with
    :func:`~repro.core.sharding.merge_shard_artifacts` (the CLI flow:
    ``repro-gps sweep --shards K --shard-index I --shard-dir DIR`` then
    ``repro-gps sweep --merge DIR``).
    """
    return run_shard(
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        shards=shards,
        shard_index=shard_index,
        reference=0,
        weights=weights,
        executor=executor,
    )


def run_gps_queue_worker(
    manifest_path,
    grid: SweepGrid | Iterable[DesignPoint],
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    executor=None,
    **queue_options,
) -> QueueWorkerReport:
    """Drain one GPS sweep work queue as a resumable worker.

    The service counterpart of :func:`run_gps_shard`: instead of
    evaluating one fixed shard, the worker claims, evaluates and
    atomically publishes shards from the manifest-driven queue
    (:mod:`repro.core.queue`) until nothing is claimable — skipping
    shards with valid artifacts, retrying failed ones and stealing
    expired leases from dead or straggling hosts.  ``queue_options``
    pass through to :func:`~repro.core.queue.run_queue_worker`
    (``owner``, ``clock``, ``on_event``).  The CLI flow is
    ``repro-gps sweep --queue-init MANIFEST --shards K`` once, then
    ``repro-gps sweep --queue MANIFEST`` on every worker host, with
    ``repro-gps gather DIR --watch`` merging results as they land.
    """
    return run_queue_worker(
        manifest_path,
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        reference=0,
        weights=weights,
        executor=executor,
        **queue_options,
    )


def build_gps_warehouse(
    directory,
    grid: SweepGrid | Iterable[DesignPoint],
    chip_costs: Optional[data.ChipCosts] = None,
    weights: Optional[FomWeights] = None,
    nre_scenario: Optional[Mapping[int, float]] = None,
    executor=None,
    grid_spec=None,
) -> "WarehouseManifest":
    """Sweep the GPS grid and materialise it as a frame warehouse.

    The offline half of the decision service: runs the sweep (any
    engine) and publishes the result as content-addressed frame files
    plus a manifest under ``directory``
    (:mod:`repro.core.warehouse`), ready for O(ms) queries through
    :class:`~repro.core.queryservice.QueryService` or ``repro-gps
    warehouse serve``.  ``grid_spec`` is an optional JSON-able record
    of how the grid was specified (the CLI stores its axis flags) —
    documentation for readers of the manifest, not used for lookup.
    """
    return build_warehouse(
        directory,
        grid,
        GpsSweepFactory(chip_costs=chip_costs, nre_scenario=nre_scenario),
        reference=0,
        weights=weights,
        executor=executor,
        grid_spec=grid_spec,
    )


def summary_rows(result: StudyResult) -> list[GpsStudyRow]:
    """Flatten a study result into per-implementation summary rows."""
    rows = []
    for implementation in (1, 2, 3, 4):
        name = data.IMPLEMENTATION_NAMES[implementation]
        row = result.row(name)
        rows.append(
            GpsStudyRow(
                implementation=implementation,
                name=name,
                performance=row.fom.performance,
                area_percent=row.area_percent,
                cost_percent=row.cost_percent,
                figure_of_merit=row.fom.figure_of_merit,
            )
        )
    return rows


def paper_comparison(result: StudyResult) -> dict[str, dict[int, tuple]]:
    """Paper-vs-measured pairs for every published number.

    Returns a mapping with keys ``"area"``, ``"cost"``, ``"performance"``
    and ``"fom"``; each value maps the implementation number to a
    ``(paper, measured)`` tuple.  EXPERIMENTS.md is generated from this.
    """
    rows = {row.implementation: row for row in summary_rows(result)}
    return {
        "area": {
            i: (data.PAPER_AREA_PERCENT[i], rows[i].area_percent)
            for i in (1, 2, 3, 4)
        },
        "cost": {
            i: (data.PAPER_COST_PERCENT[i], rows[i].cost_percent)
            for i in (1, 2, 3, 4)
        },
        "performance": {
            i: (data.PAPER_PERFORMANCE[i], rows[i].performance)
            for i in (1, 2, 3, 4)
        },
        "fom": {
            i: (data.PAPER_FOM[i], rows[i].figure_of_merit)
            for i in (1, 2, 3, 4)
        },
    }
