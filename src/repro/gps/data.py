"""Published constants of the GPS case study (Tables 1 and 2, §3-4).

Everything the paper publishes numerically lives here, verbatim where
possible.  Two groups of values are *not* published and are filled by
documented substitutions (see DESIGN.md):

* the chip costs (Table 2 redacts them as XX/YY/ZZ/AA, "chip cost is
  confidential") — defaults below come from
  :mod:`repro.cost.calibration`, which solves for values reproducing the
  Fig. 5 cost ratios under plausibility constraints (bare dice slightly
  cheaper than packaged+tested parts);
* the detailed bill of materials (the paper publishes only aggregates:
  ~60 filter-network passives, 112 SMDs in build-ups 1/2, 12 SMDs kept
  in build-up 4) — synthesised in :mod:`repro.gps.bom`.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Table 1 — area-relevant data
# ---------------------------------------------------------------------------

#: RF chip area by first-level interconnect [mm^2].
RF_CHIP_AREA = {"packaged": 225.0, "wire_bond": 28.0, "flip_chip": 13.0}

#: DSP correlator area by first-level interconnect [mm^2].
DSP_CHIP_AREA = {"packaged": 1165.0, "wire_bond": 88.0, "flip_chip": 59.0}

#: SMD passive footprints [mm^2].
SMD_0603_AREA = 3.75
SMD_0805_AREA = 4.5

#: Integrated-passive reference areas [mm^2] (model anchors).
IP_R_100K_AREA = 0.25
IP_C_50PF_AREA = 0.30
IP_L_40NH_AREA = 1.0

#: Filter block areas [mm^2].
SMD_FILTER_AREA = 27.5
INTEGRATED_FILTER_AREA = 12.0

#: Substrate sizing rules (Table 1 footnotes).
MCM_PACKING_FACTOR = 1.1
MCM_EDGE_CLEARANCE_MM = 1.0
LAMINATE_EDGE_CLEARANCE_MM = 5.0

# ---------------------------------------------------------------------------
# Table 2 — cost and yield data (per implementation 1..4)
# ---------------------------------------------------------------------------

#: Chip incoming yields.  Implementation 1 buys packaged, fully tested
#: parts; implementations 2-4 buy bare dice that are only wafer-tested.
RF_CHIP_YIELD_PACKAGED = 0.999
RF_CHIP_YIELD_BARE = 0.95
DSP_CHIP_YIELD_PACKAGED = 0.9999
DSP_CHIP_YIELD_BARE = 0.99

#: Substrate yield and cost per cm^2, indexed by implementation number.
SUBSTRATE_YIELD = {1: 0.9999, 2: 0.99, 3: 0.90, 4: 0.90}
SUBSTRATE_COST_PER_CM2 = {1: 0.1, 2: 1.75, 3: 2.25, 4: 2.25}

#: Chip (die/package) placement: cost and yield per chip attach.
CHIP_ASSEMBLY_COST = {1: 0.15, 2: 0.10, 3: 0.10, 4: 0.10}
CHIP_ASSEMBLY_YIELD = {1: 0.933, 2: 0.99, 3: 0.99, 4: 0.99}

#: Wire bonding (implementation 2 only): per-bond cost/yield and count.
WIRE_BOND_COST = 0.01
WIRE_BOND_YIELD = 0.9999
WIRE_BOND_COUNT = 212

#: SMD mounting: per-part cost/yield, part counts and piece-part totals.
SMD_ASSEMBLY_COST = 0.01
SMD_ASSEMBLY_YIELD = 0.9999
SMD_COUNT = {1: 112, 2: 112, 3: 0, 4: 12}
SMD_PARTS_COST = {1: 11.0, 2: 8.6, 3: 0.0, 4: 2.6}

#: Packaging (mount the Si module on the BGA laminate): cost/yield.
PACKAGING_COST = {1: 0.0, 2: 7.30, 3: 4.70, 4: 3.50}
PACKAGING_YIELD = 0.968

#: Final test: cost and fault coverage (all implementations).
FINAL_TEST_COST = 10.0
FINAL_TEST_COVERAGE = 0.99

# ---------------------------------------------------------------------------
# Confidential chip costs — calibrated substitution (see DESIGN.md §3).
#
# The paper redacts XX (packaged RF), YY (bare RF), ZZ (packaged DSP),
# AA (bare DSP).  The defaults below are produced by
# ``repro.cost.calibration.calibrate_chip_costs()``: they reproduce the
# published Fig. 5 ordering (PCB < WB/SMD < FC/IP&SMD < FC/IP) with cost
# penalties in the published few-percent band, under the constraints
# that bare dice are slightly cheaper than packaged parts and the DSP
# correlator costs more than the RF chip.
# ---------------------------------------------------------------------------

#: Packaged, fully tested RF chip cost ("XX").
RF_CHIP_COST_PACKAGED = 209.5
#: Bare-die RF chip cost ("YY") — cheaper because only wafer-tested.
RF_CHIP_COST_BARE = 199.0
#: Packaged, fully tested DSP correlator cost ("ZZ").
DSP_CHIP_COST_PACKAGED = 357.0
#: Bare-die DSP correlator cost ("AA").
DSP_CHIP_COST_BARE = 339.2


@dataclass(frozen=True)
class ChipCosts:
    """The four confidential chip costs of Table 2."""

    rf_packaged: float = RF_CHIP_COST_PACKAGED
    rf_bare: float = RF_CHIP_COST_BARE
    dsp_packaged: float = DSP_CHIP_COST_PACKAGED
    dsp_bare: float = DSP_CHIP_COST_BARE

    @property
    def packaged_total(self) -> float:
        """Sum of packaged-chip costs (enters implementation 1)."""
        return self.rf_packaged + self.dsp_packaged

    @property
    def bare_total(self) -> float:
        """Sum of bare-die costs (enters implementations 2-4)."""
        return self.rf_bare + self.dsp_bare


# ---------------------------------------------------------------------------
# §4.1 — filter chain parameters (performance assessment)
# ---------------------------------------------------------------------------

#: GPS L1 carrier: the RF filter passband centre.
GPS_L1_HZ = 1.575e9
#: Image frequency the Cauer filter must reject.
IMAGE_HZ = 1.225e9
#: Intermediate frequency of the downconversion chain.
IF_HZ = 175.0e6

#: RF image-reject (Cauer) filter: bandwidth, loss spec, rejection spec.
RF_FILTER_BANDWIDTH_HZ = 500.0e6
RF_FILTER_MAX_LOSS_DB = 3.0
RF_FILTER_MIN_REJECTION_DB = 30.0

#: IF bandpass (2-pole Tchebyscheff) filters: bandwidth and loss spec.
IF_FILTER_BANDWIDTH_HZ = 25.0e6
IF_FILTER_MAX_LOSS_DB = 4.5
IF_FILTER_RIPPLE_DB = 0.5

#: SMD multilayer chip-inductor unloaded Q at the IF (build-up 4 falls
#: back to SMD inductors for the IF filters).
SMD_INDUCTOR_Q_AT_IF = 10.5

# ---------------------------------------------------------------------------
# Published results (the reproduction targets)
# ---------------------------------------------------------------------------

#: Fig. 3 — area consumed, percent of the PCB reference.
PAPER_AREA_PERCENT = {1: 100.0, 2: 79.0, 3: 60.0, 4: 37.0}

#: Fig. 5 — final cost, percent of the PCB reference.
PAPER_COST_PERCENT = {1: 100.0, 2: 104.7, 3: 112.8, 4: 105.3}

#: §4.1 — performance scores.
PAPER_PERFORMANCE = {1: 1.0, 2: 1.0, 3: 0.45, 4: 0.7}

#: Fig. 6 — figure of merit (product of perf, 1/size, 1/cost).
PAPER_FOM = {1: 1.0, 2: 1.2, 3: 0.66, 4: 1.8}

#: Implementation names as used in the paper.
IMPLEMENTATION_NAMES = {
    1: "PCB/SMD (reference)",
    2: "MCM-D(Si)/WB/SMD",
    3: "MCM-D(Si)/FC/IP",
    4: "MCM-D(Si)/FC/IP&SMD",
}
