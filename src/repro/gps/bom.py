"""Synthesised bill of materials for the GPS front end.

The paper publishes only aggregates: the filtering networks (including
decoupling and pull-up resistors) need "about 60 passive components",
build-ups 1/2 mount 112 SMDs, and the passives-optimized build-up 4
keeps 12 SMDs.  This module synthesises a concrete BoM consistent with
those aggregates and with Table 1's per-component areas.

Composition (112 discrete positions total):

* filtering networks, ~60 passives as the paper states:
  24 pull-up/bias resistors, 20 filter capacitors, 8 matching inductors
  (LNA/mixer 50 ohm networks), 8 decoupling capacitors;
* 52 further board passives (digital supervision, A/D reference, PLL,
  oscillator): 24 resistors and 28 capacitors;
* 3 filter functions realised as blocks (RF image reject + 2 IF), on top
  of the discrete positions.

In build-up 4 the 8 decaps stay SMD (smaller than their integrated
equivalent — the paper's headline optimisation) and the two IF filters
each keep 2 SMD inductors (performance-driven, §4.1), giving the 12
SMDs of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..passives.component import (
    BillOfMaterials,
    PassiveKind,
    PassiveRequirement,
    PassiveRole,
)
from . import data

#: The paper's aggregate counts, used to validate the synthesis.
TOTAL_SMD_POSITIONS = 112
SMD_POSITIONS_KEPT_IN_BUILDUP_4 = 12
FILTER_NETWORK_PASSIVES_APPROX = 60


@dataclass(frozen=True)
class GpsBomSummary:
    """Aggregate composition used by the build-up constructors."""

    pullup_resistor_count: int
    filter_cap_count: int
    matching_inductor_count: int
    decap_count: int
    other_resistor_count: int
    other_cap_count: int
    filter_count: int

    @property
    def resistor_count(self) -> int:
        """All discrete resistor positions."""
        return self.pullup_resistor_count + self.other_resistor_count

    @property
    def small_cap_count(self) -> int:
        """All discrete small-capacitor positions (decaps excluded)."""
        return self.filter_cap_count + self.other_cap_count

    @property
    def smd_positions(self) -> int:
        """Discrete positions when every passive is an SMD (builds 1/2)."""
        return (
            self.resistor_count
            + self.small_cap_count
            + self.matching_inductor_count
            + self.decap_count
        )

    @property
    def filter_network_passives(self) -> int:
        """The paper's "about 60" filtering-network passives."""
        return (
            self.pullup_resistor_count
            + self.filter_cap_count
            + self.matching_inductor_count
            + self.decap_count
        )


#: The synthesised composition (see module docstring).
GPS_BOM_SUMMARY = GpsBomSummary(
    pullup_resistor_count=24,
    filter_cap_count=20,
    matching_inductor_count=8,
    decap_count=8,
    other_resistor_count=24,
    other_cap_count=28,
    filter_count=3,
)

#: Nominal values for each class.
RESISTOR_VALUE_OHM = 10_000.0
SMALL_CAP_VALUE_F = 22e-12
MATCHING_INDUCTOR_VALUE_H = 10e-9
DECAP_VALUE_F = 10e-9

#: Case sizes used in the SMD build-ups (Table 1 lists 0603 and 0805).
RESISTOR_CASE = "0603"
SMALL_CAP_CASE = "0603"
MATCHING_INDUCTOR_CASE = "0603"
DECAP_CASE = "0805"

#: SMD inductors per IF filter in the passives-optimized build-up
#: (integrated spirals are too lossy at 175 MHz, §4.1).
SMD_INDUCTORS_PER_IF_FILTER = 2
IF_FILTER_COUNT = 2


def build_gps_bom() -> BillOfMaterials:
    """Construct the full passive BoM of the GPS front end."""
    summary = GPS_BOM_SUMMARY
    bom = BillOfMaterials(name="GPS front end passives")
    bom.add(
        PassiveRequirement(
            kind=PassiveKind.RESISTOR,
            value=RESISTOR_VALUE_OHM,
            tolerance=0.05,
            role=PassiveRole.PULL_UP,
            name="R_pullup",
        ),
        quantity=summary.pullup_resistor_count,
        note="pull-up and bias resistors in the filtering networks",
    )
    bom.add(
        PassiveRequirement(
            kind=PassiveKind.CAPACITOR,
            value=SMALL_CAP_VALUE_F,
            tolerance=0.10,
            role=PassiveRole.FILTERING,
            name="C_filt",
        ),
        quantity=summary.filter_cap_count,
        note="filter and coupling capacitors",
    )
    bom.add(
        PassiveRequirement(
            kind=PassiveKind.INDUCTOR,
            value=MATCHING_INDUCTOR_VALUE_H,
            tolerance=0.10,
            role=PassiveRole.MATCHING,
            name="L_match",
            min_q=20.0,
            q_frequency=data.GPS_L1_HZ,
        ),
        quantity=summary.matching_inductor_count,
        note="LNA/mixer 50 ohm matching inductors",
    )
    bom.add(
        PassiveRequirement(
            kind=PassiveKind.CAPACITOR,
            value=DECAP_VALUE_F,
            tolerance=0.20,
            role=PassiveRole.DECOUPLING,
            name="C_dec",
        ),
        quantity=summary.decap_count,
        note="supply decoupling capacitors",
    )
    bom.add(
        PassiveRequirement(
            kind=PassiveKind.RESISTOR,
            value=RESISTOR_VALUE_OHM,
            tolerance=0.05,
            role=PassiveRole.GENERIC,
            name="R_misc",
        ),
        quantity=summary.other_resistor_count,
        note="digital supervision / A/D / oscillator resistors",
    )
    bom.add(
        PassiveRequirement(
            kind=PassiveKind.CAPACITOR,
            value=SMALL_CAP_VALUE_F,
            tolerance=0.10,
            role=PassiveRole.GENERIC,
            name="C_misc",
        ),
        quantity=summary.other_cap_count,
        note="digital supervision / A/D / oscillator capacitors",
    )
    return bom


def validate_against_paper(bom: BillOfMaterials) -> dict[str, bool]:
    """Check the synthesised BoM against the paper's aggregates."""
    counts = bom.count_by_kind()
    filter_network = sum(
        line.quantity
        for line in bom
        if line.requirement.role
        in (
            PassiveRole.FILTERING,
            PassiveRole.MATCHING,
            PassiveRole.DECOUPLING,
            PassiveRole.PULL_UP,
        )
    )
    return {
        "smd_positions_112": bom.total_count == TOTAL_SMD_POSITIONS,
        "filter_network_about_60": (
            abs(filter_network - FILTER_NETWORK_PASSIVES_APPROX) <= 10
        ),
        "has_all_kinds": all(
            kind in counts
            for kind in (
                PassiveKind.RESISTOR,
                PassiveKind.CAPACITOR,
                PassiveKind.INDUCTOR,
            )
        ),
    }
