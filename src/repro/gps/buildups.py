"""The four physical build-ups of the GPS front end (paper §4).

1. **PCB/SMD** — reference: packaged chips and SMD passives on FR4.
2. **MCM-D(Si)/WB/SMD** — bare dice wire-bonded on a silicon MCM-D
   substrate, passives still SMD, module packaged on a BGA laminate.
3. **MCM-D(Si)/FC/IP** — flip-chip dice, *all* passives integrated in
   the thin-film substrate.
4. **MCM-D(Si)/FC/IP&SMD** — flip-chip dice, passives optimized: a
   passive is integrated only when that is the smaller realisation
   (decaps stay SMD) or when performance demands SMD (IF inductors).

Each build-up yields (a) the component footprint list for the area step,
(b) the MOE production flow for the cost step, and (c) the filter
technology assignment for the performance step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..area.footprint import Footprint, MountKind
from ..area.placement import AreaReport, trivial_placement
from ..area.substrate import LAMINATE_RULE, MCM_D_RULE, PCB_RULE
from ..cost.moe.builder import FlowBuilder
from ..cost.moe.flow import ProductionFlow
from ..cost.moe.nodes import CostTag
from ..errors import TechnologyError
from ..passives.smd import get_case
from ..passives.thin_film import (
    SUMMIT_PROCESS,
    ThinFilmProcess,
    capacitor_area_mm2,
    inductor_area_mm2,
    resistor_area_mm2,
)
from . import data
from .bom import (
    DECAP_CASE,
    DECAP_VALUE_F,
    GPS_BOM_SUMMARY,
    IF_FILTER_COUNT,
    MATCHING_INDUCTOR_CASE,
    MATCHING_INDUCTOR_VALUE_H,
    RESISTOR_CASE,
    RESISTOR_VALUE_OHM,
    SMALL_CAP_CASE,
    SMALL_CAP_VALUE_F,
    SMD_INDUCTORS_PER_IF_FILTER,
)

#: Integrated area of the hybrid IF filter's thin-film portion in
#: build-up 4 (capacitors + resistors + interconnect; the inductors are
#: SMD parts counted separately).
HYBRID_IF_FILTER_INTEGRATED_AREA_MM2 = 8.0


@dataclass(frozen=True)
class BuildUp:
    """Static description of one implementation."""

    number: int
    name: str
    is_mcm: bool
    chip_mount: MountKind


BUILDUPS: dict[int, BuildUp] = {
    1: BuildUp(1, data.IMPLEMENTATION_NAMES[1], False, MountKind.PACKAGED),
    2: BuildUp(2, data.IMPLEMENTATION_NAMES[2], True, MountKind.WIRE_BOND),
    3: BuildUp(3, data.IMPLEMENTATION_NAMES[3], True, MountKind.FLIP_CHIP),
    4: BuildUp(4, data.IMPLEMENTATION_NAMES[4], True, MountKind.FLIP_CHIP),
}


def get_buildup(implementation: int) -> BuildUp:
    """Look up a build-up; implementation must be 1..4."""
    try:
        return BUILDUPS[implementation]
    except KeyError:
        raise TechnologyError(
            f"implementation must be 1..4, got {implementation}"
        ) from None


# ---------------------------------------------------------------------------
# Footprints (area step)
# ---------------------------------------------------------------------------

def _chip_footprints(buildup: BuildUp) -> list[Footprint]:
    key = {
        MountKind.PACKAGED: "packaged",
        MountKind.WIRE_BOND: "wire_bond",
        MountKind.FLIP_CHIP: "flip_chip",
    }[buildup.chip_mount]
    return [
        Footprint("RF chip", data.RF_CHIP_AREA[key], buildup.chip_mount),
        Footprint(
            "DSP correlator", data.DSP_CHIP_AREA[key], buildup.chip_mount
        ),
    ]


def _smd_passive_footprints() -> list[Footprint]:
    """All 112 passives as SMDs (build-ups 1 and 2)."""
    summary = GPS_BOM_SUMMARY
    footprints: list[Footprint] = []

    def bulk(name: str, case: str, count: int) -> None:
        area = get_case(case).footprint_area_mm2
        footprints.extend(
            Footprint(f"{name}{i}", area, MountKind.SMD)
            for i in range(count)
        )

    bulk("R", RESISTOR_CASE, summary.resistor_count)
    bulk("C", SMALL_CAP_CASE, summary.small_cap_count)
    bulk("L", MATCHING_INDUCTOR_CASE, summary.matching_inductor_count)
    bulk("Cdec", DECAP_CASE, summary.decap_count)
    return footprints


def _smd_filter_footprints() -> list[Footprint]:
    return [
        Footprint(f"filter{i}", data.SMD_FILTER_AREA, MountKind.SMD)
        for i in range(GPS_BOM_SUMMARY.filter_count)
    ]


def _integrated_passive_footprints(
    include_decaps: bool,
    process: ThinFilmProcess = SUMMIT_PROCESS,
) -> list[Footprint]:
    """Thin-film realisations of the discrete passives (build-ups 3/4)."""
    summary = GPS_BOM_SUMMARY
    footprints: list[Footprint] = []

    r_area = resistor_area_mm2(RESISTOR_VALUE_OHM, process)
    footprints.extend(
        Footprint(f"IP-R{i}", r_area, MountKind.INTEGRATED)
        for i in range(summary.resistor_count)
    )
    c_area = capacitor_area_mm2(SMALL_CAP_VALUE_F, process)
    footprints.extend(
        Footprint(f"IP-C{i}", c_area, MountKind.INTEGRATED)
        for i in range(summary.small_cap_count)
    )
    l_area = inductor_area_mm2(MATCHING_INDUCTOR_VALUE_H, process)
    footprints.extend(
        Footprint(f"IP-L{i}", l_area, MountKind.INTEGRATED)
        for i in range(summary.matching_inductor_count)
    )
    if include_decaps:
        dec_area = capacitor_area_mm2(DECAP_VALUE_F, process)
        footprints.extend(
            Footprint(f"IP-Cdec{i}", dec_area, MountKind.INTEGRATED)
            for i in range(summary.decap_count)
        )
    return footprints


def footprints_for(
    implementation: int,
    process: ThinFilmProcess = SUMMIT_PROCESS,
) -> list[Footprint]:
    """Everything placed on the board/substrate of one build-up.

    ``process`` selects the thin-film process sizing the integrated
    passives of build-ups 3 and 4 (the design-space sweep's process
    axis); it has no effect on the all-SMD build-ups 1 and 2.
    """
    buildup = get_buildup(implementation)
    footprints = _chip_footprints(buildup)
    if implementation in (1, 2):
        footprints.extend(_smd_passive_footprints())
        footprints.extend(_smd_filter_footprints())
        return footprints
    if implementation == 3:
        footprints.extend(
            _integrated_passive_footprints(include_decaps=True, process=process)
        )
        footprints.append(
            Footprint(
                "image reject filter",
                data.INTEGRATED_FILTER_AREA,
                MountKind.INTEGRATED,
            )
        )
        footprints.extend(
            Footprint(
                f"IF filter {i + 1}",
                data.INTEGRATED_FILTER_AREA,
                MountKind.INTEGRATED,
            )
            for i in range(IF_FILTER_COUNT)
        )
        return footprints
    # Build-up 4: passives optimized.
    footprints.extend(
        _integrated_passive_footprints(include_decaps=False, process=process)
    )
    dec_area = get_case(DECAP_CASE).footprint_area_mm2
    footprints.extend(
        Footprint(f"Cdec{i}", dec_area, MountKind.SMD)
        for i in range(GPS_BOM_SUMMARY.decap_count)
    )
    footprints.append(
        Footprint(
            "image reject filter",
            data.INTEGRATED_FILTER_AREA,
            MountKind.INTEGRATED,
        )
    )
    if_l_area = get_case(MATCHING_INDUCTOR_CASE).footprint_area_mm2
    for i in range(IF_FILTER_COUNT):
        footprints.append(
            Footprint(
                f"IF filter {i + 1} (thin-film part)",
                HYBRID_IF_FILTER_INTEGRATED_AREA_MM2,
                MountKind.INTEGRATED,
            )
        )
        footprints.extend(
            Footprint(f"IF{i + 1}-L{j}", if_l_area, MountKind.SMD)
            for j in range(SMD_INDUCTORS_PER_IF_FILTER)
        )
    return footprints


def area_for(implementation: int) -> AreaReport:
    """Run the paper's trivial placement for one build-up."""
    buildup = get_buildup(implementation)
    footprints = footprints_for(implementation)
    if buildup.is_mcm:
        return trivial_placement(footprints, MCM_D_RULE, LAMINATE_RULE)
    return trivial_placement(footprints, PCB_RULE, laminate=None)


def integrated_count_for(
    implementation: int,
    process: ThinFilmProcess = SUMMIT_PROCESS,
) -> int:
    """Number of integrated thin-film structures on the substrate.

    This is the count the tolerance-class yield model of the design-space
    sweep raises its per-structure yield to: every integrated passive
    (and integrated filter section) must land inside its acceptance
    window for the substrate to pass.
    """
    return sum(
        1
        for f in footprints_for(implementation, process)
        if f.mount is MountKind.INTEGRATED
    )


def smd_count_for(implementation: int) -> int:
    """Number of SMD passive positions (Table 2's "# SMD's" row).

    Discrete filter blocks are counted separately by the paper, so they
    are excluded here; the SMD inductors inside build-up 4's hybrid IF
    filters *are* individual SMD positions and count.
    """
    return sum(
        1
        for f in footprints_for(implementation)
        if f.mount is MountKind.SMD and not f.name.startswith("filter")
    )


# ---------------------------------------------------------------------------
# Production flows (cost step, Fig. 4)
# ---------------------------------------------------------------------------

def flow_for(
    implementation: int,
    substrate_area_cm2: Optional[float] = None,
    chip_costs: Optional[data.ChipCosts] = None,
    nre: float = 0.0,
    substrate_yield_factor: float = 1.0,
    extra_substrate_cost: float = 0.0,
) -> ProductionFlow:
    """Build the MOE production flow for one build-up.

    Parameters
    ----------
    implementation:
        Build-up number 1..4.
    substrate_area_cm2:
        Substrate area feeding the per-cm^2 substrate cost; computed from
        the area step when omitted ("the respective substrate/board area
        calculated in the last section was fed into the cost modeling
        step").
    chip_costs:
        The four confidential chip costs; calibrated defaults when
        omitted.
    nre:
        Non-recurring engineering cost amortised over shipped units.
    substrate_yield_factor:
        Multiplier on the substrate carrier yield; the design-space sweep
        folds its tolerance-class module yield in here.
    extra_substrate_cost:
        Additional per-substrate cost (e.g. laser trimming of precision
        structures).
    """
    buildup = get_buildup(implementation)
    if substrate_area_cm2 is None:
        substrate_area_cm2 = area_for(implementation).substrate_area_cm2
    if chip_costs is None:
        chip_costs = data.ChipCosts()
    if not (0.0 < substrate_yield_factor <= 1.0):
        raise TechnologyError(
            "substrate yield factor must lie in (0, 1], got "
            f"{substrate_yield_factor}"
        )

    i = implementation
    builder = FlowBuilder(buildup.name, nre=nre)
    builder.carrier(
        "Substrate (MCM-D/PCB)",
        cost=data.SUBSTRATE_COST_PER_CM2[i] * substrate_area_cm2
        + extra_substrate_cost,
        yield_=data.SUBSTRATE_YIELD[i] * substrate_yield_factor,
    )
    builder.process("Paste impression", cost=0.0, yield_=1.0)
    builder.process("Rerouting", cost=0.0, yield_=1.0)

    packaged = not buildup.is_mcm
    rf_cost = (
        chip_costs.rf_packaged if packaged else chip_costs.rf_bare
    )
    rf_yield = (
        data.RF_CHIP_YIELD_PACKAGED
        if packaged
        else data.RF_CHIP_YIELD_BARE
    )
    dsp_cost = (
        chip_costs.dsp_packaged if packaged else chip_costs.dsp_bare
    )
    dsp_yield = (
        data.DSP_CHIP_YIELD_PACKAGED
        if packaged
        else data.DSP_CHIP_YIELD_BARE
    )
    builder.attach(
        "RF chip",
        quantity=1,
        component_cost=rf_cost,
        component_yield=rf_yield,
        attach_cost=data.CHIP_ASSEMBLY_COST[i],
        attach_yield=1.0,
        component_tag=CostTag.CHIP,
    )
    builder.attach(
        "DSP correlator",
        quantity=1,
        component_cost=dsp_cost,
        component_yield=dsp_yield,
        attach_cost=data.CHIP_ASSEMBLY_COST[i],
        attach_yield=1.0,
        component_tag=CostTag.CHIP,
    )
    # Table 2 quotes the chip-assembly yield per step, so it is applied
    # once per module rather than per chip.
    builder.process(
        "Chip assembly",
        cost=0.0,
        yield_=data.CHIP_ASSEMBLY_YIELD[i],
        tag=CostTag.ASSEMBLY,
    )
    if implementation == 2:
        builder.attach(
            "Wire bonding",
            quantity=data.WIRE_BOND_COUNT,
            component_cost=0.0,
            component_yield=1.0,
            attach_cost=data.WIRE_BOND_COST,
            attach_yield=data.WIRE_BOND_YIELD,
            per_operation=True,
            component_tag=CostTag.ASSEMBLY,
        )
    smd_count = data.SMD_COUNT[i]
    if smd_count:
        builder.attach(
            "SMD mounting",
            quantity=smd_count,
            component_cost=data.SMD_PARTS_COST[i] / smd_count,
            component_yield=1.0,
            attach_cost=data.SMD_ASSEMBLY_COST,
            attach_yield=data.SMD_ASSEMBLY_YIELD,
            per_operation=True,
            component_tag=CostTag.PASSIVE,
        )
    builder.test(
        "Functional test",
        cost=data.FINAL_TEST_COST,
        coverage=data.FINAL_TEST_COVERAGE,
    )
    if buildup.is_mcm:
        builder.packaging(
            "Mount on laminate",
            cost=data.PACKAGING_COST[i],
            yield_=data.PACKAGING_YIELD,
        )
        builder.inspect("Outgoing inspection")
    return builder.build()
