"""Functional chain of the GPS front end (paper Fig. 2 and §3).

The signal path: antenna -> external filter -> matched line -> LNA ->
image-reject bandpass (1.575 GHz) -> mixer (VCO reference) -> IF bandpass
(175 MHz) -> second downconversion -> IF bandpass -> A/D -> correlator,
with a PLL loop filter on the synthesiser.

The schematic object model exists so examples and tests can reason about
which filter functions a build-up must realise; the electrical content of
each filter lives in :mod:`repro.gps.filters_chain`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SpecificationError


class BlockKind(enum.Enum):
    """Functional block categories of the receiver chain."""

    ANTENNA = "antenna"
    FILTER = "filter"
    AMPLIFIER = "amplifier"
    MIXER = "mixer"
    OSCILLATOR = "oscillator"
    MATCHING = "matching"
    ADC = "adc"
    CORRELATOR = "correlator"


@dataclass(frozen=True)
class Block:
    """One functional block in the chain."""

    name: str
    kind: BlockKind
    frequency_hz: Optional[float] = None
    #: Which chip hosts this block (None = passive network on substrate).
    host_chip: Optional[str] = None


@dataclass
class SignalChain:
    """An ordered receiver chain with named blocks."""

    blocks: list[Block] = field(default_factory=list)

    def add(self, block: Block) -> Block:
        """Append a block to the chain."""
        if any(b.name == block.name for b in self.blocks):
            raise SpecificationError(
                f"duplicate block name {block.name!r} in chain"
            )
        self.blocks.append(block)
        return block

    def filters(self) -> list[Block]:
        """All filter blocks, in signal order."""
        return [b for b in self.blocks if b.kind is BlockKind.FILTER]

    def passive_blocks(self) -> list[Block]:
        """Blocks realised as passive networks (no host chip)."""
        return [b for b in self.blocks if b.host_chip is None]

    def by_name(self, name: str) -> Block:
        """Look up a block by name."""
        for block in self.blocks:
            if block.name == name:
                return block
        raise SpecificationError(f"no block named {name!r}")

    def __len__(self) -> int:
        return len(self.blocks)


def build_gps_chain() -> SignalChain:
    """The Fig. 2 receiver chain as an object graph."""
    chain = SignalChain()
    chain.add(Block("antenna", BlockKind.ANTENNA))
    chain.add(Block("external filter", BlockKind.FILTER, 1.575e9))
    chain.add(Block("input match", BlockKind.MATCHING, 1.575e9))
    chain.add(Block("LNA", BlockKind.AMPLIFIER, 1.575e9, host_chip="RF chip"))
    chain.add(Block("image reject filter", BlockKind.FILTER, 1.575e9))
    chain.add(Block("mixer match", BlockKind.MATCHING, 1.575e9))
    chain.add(Block("mixer 1", BlockKind.MIXER, host_chip="RF chip"))
    chain.add(Block("VCO", BlockKind.OSCILLATOR, host_chip="RF chip"))
    chain.add(Block("PLL loop filter", BlockKind.FILTER))
    chain.add(Block("IF filter 1", BlockKind.FILTER, 175e6))
    chain.add(Block("mixer 2", BlockKind.MIXER, host_chip="RF chip"))
    chain.add(Block("IF filter 2", BlockKind.FILTER, 175e6))
    chain.add(Block("A/D", BlockKind.ADC, host_chip="RF chip"))
    chain.add(
        Block("correlator", BlockKind.CORRELATOR, host_chip="DSP correlator")
    )
    return chain


#: Filters the build-ups must realise as discrete/integrated structures
#: (the external antenna filter stays off-module in every build-up).
ON_MODULE_FILTERS = ("image reject filter", "IF filter 1", "IF filter 2")
