"""Technology Q-factor models (paper §2 and §4.1).

The performance ranking in the paper hinges on one physical fact: *"The
quality factor of SUMMIT passives is quite good in the 1-2 GHz range but
decreases with frequency, leading to excessive insertion losses at the IF
frequency (175 MHz)"*.  These models encode that behaviour:

* :class:`SummitQModel` — thin-film spiral inductors.  Conductor loss
  gives ``Q_cond = omega L / R_s`` (rising with frequency); substrate loss
  gives ``Q_sub ~ 1/f`` (falling).  Their parallel combination peaks in
  the low-GHz range, exactly the SUMMIT behaviour [3].  MIM capacitors are
  loss-tangent limited (flat Q).
* :class:`SmdQModel` — surface-mount parts.  Multilayer chip inductors
  have moderate, broadly flat mid-band Q; NP0 ceramic capacitors are
  nearly lossless at these frequencies.
* :class:`DiscreteFilterBlockQModel` — effective resonator Q of a bought
  SMD filter block (tuned, screened parts), high enough to meet spec.
* :class:`IdealQModel` — lossless reference for unit tests.

All models implement the :class:`~repro.circuits.synthesis.QModel`
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import CircuitError
from ..passives.thin_film import SUMMIT_PROCESS, ThinFilmProcess, design_spiral_inductor


@dataclass(frozen=True)
class IdealQModel:
    """Lossless components (infinite Q); the unit-test reference."""

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return math.inf

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return math.inf


@dataclass(frozen=True)
class ConstantQModel:
    """Fixed Q values, useful for ablations and textbook cross-checks."""

    inductor_q_value: float
    capacitor_q_value: float

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return self.inductor_q_value

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return self.capacitor_q_value


@dataclass(frozen=True)
class SummitQModel:
    """Q model of the SUMMIT thin-film process.

    Inductor Q combines two mechanisms:

    * conductor loss — the spiral is synthesised for the requested value
      by :func:`~repro.passives.thin_film.design_spiral_inductor`, whose
      geometry fixes the series resistance, so ``Q_cond = omega L / R_s``
      grows linearly with frequency and shrinks for large (long-wound)
      inductors;
    * substrate (eddy/dielectric) loss — modelled as
      ``Q_sub = q_sub_ref * (f_ref / f)``, falling with frequency.

    The parallel combination ``1/Q = 1/Q_cond + 1/Q_sub`` peaks in the
    1-2 GHz range for nanohenry values — the published SUMMIT behaviour —
    and collapses to single digits at the 175 MHz IF for the ~100 nH
    values an IF filter needs.

    Capacitor Q is the inverse loss tangent of the MIM stack.
    """

    process: ThinFilmProcess = SUMMIT_PROCESS
    q_sub_ref: float = 200.0
    f_sub_ref_hz: float = 1.0e9
    cap_tan_delta: float = 0.005

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise CircuitError(
                f"frequency must be positive, got {frequency_hz}"
            )
        design = design_spiral_inductor(inductance_h, self.process)
        q_cond = design.q_factor(frequency_hz)
        q_sub = self.q_sub_ref * self.f_sub_ref_hz / frequency_hz
        return 1.0 / (1.0 / q_cond + 1.0 / q_sub)

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        """Vectorised inductor Q over a frequency grid.

        The spiral geometry depends only on the inductance, so it is
        synthesised once and the conductor/substrate loss combination is
        evaluated as one numpy expression over the whole grid.
        """
        grid = _validate_frequencies(frequencies_hz)
        design = design_spiral_inductor(inductance_h, self.process)
        omega = 2.0 * math.pi * grid
        q_cond = omega * inductance_h / design.series_resistance_ohm
        q_sub = self.q_sub_ref * self.f_sub_ref_hz / grid
        return 1.0 / (1.0 / q_cond + 1.0 / q_sub)

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        """Stacked ``(B, F)`` inductor Q over values *and* frequencies.

        The per-value spiral geometry is the only scalar step; the
        conductor/substrate combination evaluates as one numpy
        expression over the whole ``(B, F)`` block.
        """
        grid = _validate_frequencies(frequencies_hz)
        values = _validate_inductances(inductances_h)
        series_r = np.array(
            [
                design_spiral_inductor(
                    float(value), self.process
                ).series_resistance_ohm
                for value in values
            ]
        )
        omega = 2.0 * math.pi * grid
        q_cond = omega[None, :] * values[:, None] / series_r[:, None]
        q_sub = self.q_sub_ref * self.f_sub_ref_hz / grid
        return 1.0 / (1.0 / q_cond + 1.0 / q_sub[None, :])

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return 1.0 / self.cap_tan_delta


@dataclass(frozen=True)
class SmdQModel:
    """Q model of surface-mount passives.

    Multilayer ceramic chip inductors (0603-class) have a mid-band
    unloaded Q of order 10-20 that is only weakly frequency dependent in
    the VHF/UHF range; wirewound parts reach 30-50.  NP0 capacitors are
    modelled at Q = 500.  The default ``inductor_q_value = 12`` is a
    multilayer 0603 part at the 175 MHz IF — the technology the paper's
    "passives optimized" build falls back to for IF inductors.
    """

    inductor_q_value: float = 12.0
    capacitor_q_value: float = 500.0

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return self.inductor_q_value

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return self.capacitor_q_value


@dataclass(frozen=True)
class DiscreteFilterBlockQModel:
    """Effective resonator Q of a discrete (bought) SMD filter block.

    Dedicated filter modules use screened, tuned resonators; an effective
    unloaded Q of 100 makes them meet the paper's specs with margin, which
    is why build-ups 1 and 2 score a performance of 1.0.
    """

    resonator_q: float = 100.0

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return self.resonator_q

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return self.resonator_q * 5.0


@dataclass(frozen=True)
class MixedQModel:
    """Per-element-kind technology mix (the "passives optimized" case).

    Build-up 4 realises IF-filter inductors as SMD parts (integrated
    spirals would be too lossy at 175 MHz) while keeping capacitors and
    resistors integrated.  This model delegates inductors to one model and
    capacitors to another.
    """

    inductor_model: object = field(default_factory=SmdQModel)
    capacitor_model: object = field(default_factory=SummitQModel)

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        return self.inductor_model.inductor_q(inductance_h, frequency_hz)

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        """Delegate grid evaluation to the inductor technology."""
        return inductor_q_profile(
            self.inductor_model, inductance_h, frequencies_hz
        )

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        """Delegate stacked evaluation to the inductor technology."""
        return inductor_q_profiles(
            self.inductor_model, inductances_h, frequencies_hz
        )

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        return self.capacitor_model.capacitor_q(capacitance_f, frequency_hz)


def _validate_frequencies(frequencies_hz) -> np.ndarray:
    """Coerce to a 1-D positive float array (the Q-profile contract)."""
    grid = np.asarray(frequencies_hz, dtype=float)
    if grid.ndim == 0:
        grid = grid[None]
    if grid.size == 0:
        raise CircuitError("frequency grid must not be empty")
    if np.any(grid <= 0):
        raise CircuitError(
            f"frequency must be positive, got {float(grid.min())}"
        )
    return grid


def _validate_inductances(inductances_h) -> np.ndarray:
    """Coerce to a 1-D positive float array (the stacked-profile contract)."""
    values = np.asarray(inductances_h, dtype=float)
    if values.ndim == 0:
        values = values[None]
    if values.size == 0:
        raise CircuitError("inductance list must not be empty")
    if np.any(values <= 0):
        raise CircuitError(
            f"inductance must be positive, got {float(values.min())}"
        )
    return values


def inductor_q_profile(
    q_model, inductance_h: float, frequencies_hz
) -> np.ndarray:
    """Unloaded inductor Q of a technology over a frequency grid.

    Dispatches to the model's vectorised ``inductor_q_profile`` when it
    provides one (:class:`SummitQModel` does); otherwise evaluates the
    scalar method point by point.  Used by the design-space sweep
    subsystem to trace Q-vs-frequency without per-point Python overhead
    for the models that matter.
    """
    vectorised = getattr(q_model, "inductor_q_profile", None)
    if vectorised is not None:
        return np.asarray(vectorised(inductance_h, frequencies_hz))
    grid = _validate_frequencies(frequencies_hz)
    return np.array(
        [q_model.inductor_q(inductance_h, float(f)) for f in grid]
    )


def inductor_q_profiles(
    q_model, inductances_h, frequencies_hz
) -> np.ndarray:
    """Stacked ``(B, F)`` inductor Q: many values over one grid.

    The batched analogue of :func:`inductor_q_profile` — the shape a
    design-space sweep asks for when tracing a whole inductor family.
    Dispatches to the model's ``inductor_q_profiles`` when it provides
    one (:class:`SummitQModel` evaluates the whole block as one numpy
    expression); otherwise stacks the per-value grid profile.
    """
    vectorised = getattr(q_model, "inductor_q_profiles", None)
    if vectorised is not None:
        return np.asarray(vectorised(inductances_h, frequencies_hz))
    values = _validate_inductances(inductances_h)
    return np.stack(
        [
            inductor_q_profile(q_model, float(value), frequencies_hz)
            for value in values
        ]
    )


def capacitor_q_profile(
    q_model, capacitance_f: float, frequencies_hz
) -> np.ndarray:
    """Unloaded capacitor Q of a technology over a frequency grid."""
    grid = _validate_frequencies(frequencies_hz)
    return np.array(
        [q_model.capacitor_q(capacitance_f, float(f)) for f in grid]
    )


def _combine_profiles(q_l: np.ndarray, q_c: np.ndarray) -> np.ndarray:
    """``1/Q = 1/Q_L + 1/Q_C`` elementwise, shape-generic.

    Infinite contributions are dropped; all-infinite points stay
    infinite.  Shared by the grid and the stacked combiners.
    """
    inverse = np.zeros_like(q_l, dtype=float)
    finite_l = np.isfinite(q_l) & (q_l > 0)
    finite_c = np.isfinite(q_c) & (q_c > 0)
    inverse[finite_l] += 1.0 / q_l[finite_l]
    inverse[finite_c] += 1.0 / q_c[finite_c]
    result = np.full(inverse.shape, math.inf)
    nonzero = inverse > 0
    result[nonzero] = 1.0 / inverse[nonzero]
    return result


def combined_q_profile(
    q_model,
    inductance_h: float,
    capacitance_f: float,
    frequencies_hz,
) -> np.ndarray:
    """Effective resonator Q over a frequency grid (vectorised).

    The grid analogue of :func:`combined_unloaded_q`:
    ``1/Q = 1/Q_L + 1/Q_C`` at every frequency, with infinite
    contributions dropped.
    """
    q_l = inductor_q_profile(q_model, inductance_h, frequencies_hz)
    q_c = capacitor_q_profile(q_model, capacitance_f, frequencies_hz)
    return _combine_profiles(q_l, q_c)


def combined_q_profiles(
    q_model,
    inductances_h,
    capacitances_f,
    frequencies_hz,
) -> np.ndarray:
    """Stacked ``(B, F)`` resonator Q of many L/C pairs over one grid.

    The batched analogue of :func:`combined_q_profile`: row ``b``
    combines ``inductances_h[b]`` with ``capacitances_f[b]``.
    """
    inductances = _validate_inductances(inductances_h)
    capacitances = np.asarray(capacitances_f, dtype=float)
    if capacitances.ndim == 0:
        capacitances = capacitances[None]
    if capacitances.shape != inductances.shape:
        raise CircuitError(
            f"need one capacitance per inductance, got "
            f"{capacitances.size} for {inductances.size}"
        )
    q_l = inductor_q_profiles(q_model, inductances, frequencies_hz)
    q_c = np.stack(
        [
            capacitor_q_profile(q_model, float(value), frequencies_hz)
            for value in capacitances
        ]
    )
    return _combine_profiles(q_l, q_c)


def combined_unloaded_q(
    q_model,
    inductance_h: float,
    capacitance_f: float,
    frequency_hz: float,
) -> float:
    """Effective resonator Q: ``1/Q = 1/Q_L + 1/Q_C``.

    This is the ``Qu`` that enters the classical dissipation-loss formula
    for a resonator built from the given L and C.
    """
    q_l = q_model.inductor_q(inductance_h, frequency_hz)
    q_c = q_model.capacitor_q(capacitance_f, frequency_hz)
    inverse = 0.0
    if math.isfinite(q_l) and q_l > 0:
        inverse += 1.0 / q_l
    if math.isfinite(q_c) and q_c > 0:
        inverse += 1.0 / q_c
    if inverse == 0.0:
        return math.inf
    return 1.0 / inverse
