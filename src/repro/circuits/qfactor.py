"""Technology Q-factor models (paper §2 and §4.1).

The performance ranking in the paper hinges on one physical fact: *"The
quality factor of SUMMIT passives is quite good in the 1-2 GHz range but
decreases with frequency, leading to excessive insertion losses at the IF
frequency (175 MHz)"*.  These models encode that behaviour:

* :class:`SummitQModel` — thin-film spiral inductors.  Conductor loss
  gives ``Q_cond = omega L / R_s`` (rising with frequency); substrate loss
  gives ``Q_sub ~ 1/f`` (falling).  Their parallel combination peaks in
  the low-GHz range, exactly the SUMMIT behaviour [3].  MIM capacitors are
  loss-tangent limited (flat Q).
* :class:`SmdQModel` — surface-mount parts.  Multilayer chip inductors
  have moderate, broadly flat mid-band Q; NP0 ceramic capacitors are
  nearly lossless at these frequencies.
* :class:`DiscreteFilterBlockQModel` — effective resonator Q of a bought
  SMD filter block (tuned, screened parts), high enough to meet spec.
* :class:`IdealQModel` — lossless reference for unit tests.

All models implement the :class:`~repro.circuits.synthesis.QModel`
protocol.

Frequency-dependent ("dispersive") models
-----------------------------------------

A model whose class attribute ``dispersive`` is True asks to be
realised as *frequency-dependent circuit elements*
(:class:`~repro.circuits.elements.DispersiveInductor` /
:class:`~repro.circuits.elements.DispersiveCapacitor`): the element
re-evaluates ``Q(f)`` — hence its loss — at every stamped frequency
instead of freezing the loss at the filter centre.  The hierarchy:

* :class:`SkinEffectQModel` — conductor loss with skin depth,
  ``Q(f) = Q0 * sqrt(f / f0)``;
* :class:`SubstrateLossQModel` — dielectric loss tangent growing with
  frequency, ``tan_delta(f) = tan_delta_ref * (f / f_ref)^slope``;
* :class:`TabulatedQModel` — measured Q profiles, linearly
  interpolated over a frequency table;
* :class:`DispersiveQModel` — wrapper that realises *any* model's
  ``Q(f)`` physics in the stamped elements (e.g. SUMMIT's actual
  conductor/substrate roll-off rather than its value frozen at f0).

Every dispersive model provides vectorised ``inductor_q_profile(s)`` /
``capacitor_q_profile(s)`` so batched ``(F,)`` and family-stacked
``(B, F)`` MNA solves evaluate the whole grid with numpy expressions —
no per-frequency Python loop anywhere on the stamping path.

Constant-Q models keep ``dispersive = False`` and are realised exactly
as before (loss converted at the centre frequency), which is what keeps
the GPS golden files byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import CircuitError
from ..passives.thin_film import SUMMIT_PROCESS, ThinFilmProcess, design_spiral_inductor


@dataclass(frozen=True)
class IdealQModel:
    """Lossless components (infinite Q); the unit-test reference."""

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return math.inf

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return math.inf


@dataclass(frozen=True)
class ConstantQModel:
    """Fixed Q values, useful for ablations and textbook cross-checks."""

    inductor_q_value: float
    capacitor_q_value: float

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return self.inductor_q_value

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return self.capacitor_q_value


@dataclass(frozen=True)
class SummitQModel:
    """Q model of the SUMMIT thin-film process.

    Inductor Q combines two mechanisms:

    * conductor loss — the spiral is synthesised for the requested value
      by :func:`~repro.passives.thin_film.design_spiral_inductor`, whose
      geometry fixes the series resistance, so ``Q_cond = omega L / R_s``
      grows linearly with frequency and shrinks for large (long-wound)
      inductors;
    * substrate (eddy/dielectric) loss — modelled as
      ``Q_sub = q_sub_ref * (f_ref / f)``, falling with frequency.

    The parallel combination ``1/Q = 1/Q_cond + 1/Q_sub`` peaks in the
    1-2 GHz range for nanohenry values — the published SUMMIT behaviour —
    and collapses to single digits at the 175 MHz IF for the ~100 nH
    values an IF filter needs.

    Capacitor Q is the inverse loss tangent of the MIM stack.
    """

    process: ThinFilmProcess = SUMMIT_PROCESS
    q_sub_ref: float = 200.0
    f_sub_ref_hz: float = 1.0e9
    cap_tan_delta: float = 0.005

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        if frequency_hz <= 0:
            raise CircuitError(
                f"frequency must be positive, got {frequency_hz}"
            )
        design = design_spiral_inductor(inductance_h, self.process)
        q_cond = design.q_factor(frequency_hz)
        q_sub = self.q_sub_ref * self.f_sub_ref_hz / frequency_hz
        return 1.0 / (1.0 / q_cond + 1.0 / q_sub)

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        """Vectorised inductor Q over a frequency grid.

        The spiral geometry depends only on the inductance, so it is
        synthesised once and the conductor/substrate loss combination is
        evaluated as one numpy expression over the whole grid.
        """
        grid = _validate_frequencies(frequencies_hz)
        design = design_spiral_inductor(inductance_h, self.process)
        omega = 2.0 * math.pi * grid
        q_cond = omega * inductance_h / design.series_resistance_ohm
        q_sub = self.q_sub_ref * self.f_sub_ref_hz / grid
        return 1.0 / (1.0 / q_cond + 1.0 / q_sub)

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        """Stacked ``(B, F)`` inductor Q over values *and* frequencies.

        The per-value spiral geometry is the only scalar step; the
        conductor/substrate combination evaluates as one numpy
        expression over the whole ``(B, F)`` block.
        """
        grid = _validate_frequencies(frequencies_hz)
        values = _validate_inductances(inductances_h)
        series_r = np.array(
            [
                design_spiral_inductor(
                    float(value), self.process
                ).series_resistance_ohm
                for value in values
            ]
        )
        omega = 2.0 * math.pi * grid
        q_cond = omega[None, :] * values[:, None] / series_r[:, None]
        q_sub = self.q_sub_ref * self.f_sub_ref_hz / grid
        return 1.0 / (1.0 / q_cond + 1.0 / q_sub[None, :])

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return 1.0 / self.cap_tan_delta

    def capacitor_q_profile(
        self, capacitance_f: float, frequencies_hz
    ) -> np.ndarray:
        """MIM capacitor Q over a grid (loss-tangent limited, flat)."""
        del capacitance_f
        grid = _validate_frequencies(frequencies_hz)
        return np.full(grid.shape, 1.0 / self.cap_tan_delta)

    def capacitor_q_profiles(
        self, capacitances_f, frequencies_hz
    ) -> np.ndarray:
        """Stacked ``(B, F)`` MIM capacitor Q (flat rows)."""
        values = _validate_capacitances(capacitances_f)
        return _broadcast_profile(
            self.capacitor_q_profile(1.0, frequencies_hz), values.size
        )


@dataclass(frozen=True)
class SmdQModel:
    """Q model of surface-mount passives.

    Multilayer ceramic chip inductors (0603-class) have a mid-band
    unloaded Q of order 10-20 that is only weakly frequency dependent in
    the VHF/UHF range; wirewound parts reach 30-50.  NP0 capacitors are
    modelled at Q = 500.  The default ``inductor_q_value = 12`` is a
    multilayer 0603 part at the 175 MHz IF — the technology the paper's
    "passives optimized" build falls back to for IF inductors.
    """

    inductor_q_value: float = 12.0
    capacitor_q_value: float = 500.0

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return self.inductor_q_value

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return self.capacitor_q_value


@dataclass(frozen=True)
class DiscreteFilterBlockQModel:
    """Effective resonator Q of a discrete (bought) SMD filter block.

    Dedicated filter modules use screened, tuned resonators; an effective
    unloaded Q of 100 makes them meet the paper's specs with margin, which
    is why build-ups 1 and 2 score a performance of 1.0.
    """

    resonator_q: float = 100.0

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h, frequency_hz
        return self.resonator_q

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f, frequency_hz
        return self.resonator_q * 5.0


@dataclass(frozen=True)
class MixedQModel:
    """Per-element-kind technology mix (the "passives optimized" case).

    Build-up 4 realises IF-filter inductors as SMD parts (integrated
    spirals would be too lossy at 175 MHz) while keeping capacitors and
    resistors integrated.  This model delegates inductors to one model and
    capacitors to another.
    """

    inductor_model: object = field(default_factory=SmdQModel)
    capacitor_model: object = field(default_factory=SummitQModel)

    @property
    def dispersive(self) -> bool:
        """True when either delegate asks for dispersive elements.

        With the default (constant-Q) delegates this is False, so the
        historic centre-frequency realisation — and the GPS goldens —
        are untouched.
        """
        return is_dispersive(self.inductor_model) or is_dispersive(
            self.capacitor_model
        )

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        return self.inductor_model.inductor_q(inductance_h, frequency_hz)

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        """Delegate grid evaluation to the inductor technology."""
        return inductor_q_profile(
            self.inductor_model, inductance_h, frequencies_hz
        )

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        """Delegate stacked evaluation to the inductor technology."""
        return inductor_q_profiles(
            self.inductor_model, inductances_h, frequencies_hz
        )

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        return self.capacitor_model.capacitor_q(capacitance_f, frequency_hz)

    def capacitor_q_profile(
        self, capacitance_f: float, frequencies_hz
    ) -> np.ndarray:
        """Delegate grid evaluation to the capacitor technology."""
        return capacitor_q_profile(
            self.capacitor_model, capacitance_f, frequencies_hz
        )

    def capacitor_q_profiles(
        self, capacitances_f, frequencies_hz
    ) -> np.ndarray:
        """Delegate stacked evaluation to the capacitor technology."""
        return capacitor_q_profiles(
            self.capacitor_model, capacitances_f, frequencies_hz
        )


# ---------------------------------------------------------------------------
# Frequency-dependent (dispersive) models
# ---------------------------------------------------------------------------

def is_dispersive(q_model) -> bool:
    """True when ``q_model`` asks for frequency-dependent elements.

    Dispersive models set the class attribute ``dispersive = True``;
    :func:`~repro.circuits.synthesis.build_bandpass_circuit` then
    realises them as
    :class:`~repro.circuits.elements.DispersiveInductor` /
    :class:`~repro.circuits.elements.DispersiveCapacitor` so the loss is
    re-evaluated at every stamped frequency.  Constant-Q models (the
    default) keep the historic centre-frequency conversion, which is
    what preserves byte-identical GPS goldens.
    """
    return bool(getattr(q_model, "dispersive", False))


@dataclass(frozen=True)
class SkinEffectQModel:
    """Conductor loss limited by skin depth: ``Q(f) = Q0 sqrt(f / f0)``.

    At VHF/UHF the series resistance of a wound or spiral conductor
    grows like ``sqrt(f)`` once the skin depth is smaller than the
    conductor, so ``Q = omega L / R_s(f)`` grows like ``sqrt(f)``.
    ``q0_inductor`` is the unloaded inductor Q at the reference
    frequency ``f0_hz``; capacitors are electrode-loss limited with the
    same ``sqrt(f / f0)`` law around ``q0_capacitor``.
    """

    q0_inductor: float = 40.0
    q0_capacitor: float = 300.0
    f0_hz: float = 1.0e9

    dispersive = True

    def __post_init__(self) -> None:
        for label, value in (
            ("q0_inductor", self.q0_inductor),
            ("q0_capacitor", self.q0_capacitor),
        ):
            if not math.isfinite(value) or value <= 0:
                raise CircuitError(
                    f"skin-effect {label} must be a positive finite "
                    f"number, got {value}"
                )
        if not math.isfinite(self.f0_hz) or self.f0_hz <= 0:
            raise CircuitError(
                f"reference frequency must be positive and finite, "
                f"got {self.f0_hz}"
            )

    @property
    def label(self) -> str:
        """Compact axis label for sweep rows."""
        return f"skin(Q0={self.q0_inductor:g}@{self.f0_hz:g}Hz)"

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h
        _require_positive_frequency(frequency_hz)
        return self.q0_inductor * math.sqrt(frequency_hz / self.f0_hz)

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f
        _require_positive_frequency(frequency_hz)
        return self.q0_capacitor * math.sqrt(frequency_hz / self.f0_hz)

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        del inductance_h
        grid = _validate_frequencies(frequencies_hz)
        return self.q0_inductor * np.sqrt(grid / self.f0_hz)

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        values = _validate_inductances(inductances_h)
        # Skin-effect Q is value-independent: one profile, broadcast,
        # keeps every row bit-identical to the per-value path.
        return _broadcast_profile(
            self.inductor_q_profile(1.0, frequencies_hz), values.size
        )

    def capacitor_q_profile(
        self, capacitance_f: float, frequencies_hz
    ) -> np.ndarray:
        del capacitance_f
        grid = _validate_frequencies(frequencies_hz)
        return self.q0_capacitor * np.sqrt(grid / self.f0_hz)

    def capacitor_q_profiles(
        self, capacitances_f, frequencies_hz
    ) -> np.ndarray:
        values = _validate_capacitances(capacitances_f)
        return _broadcast_profile(
            self.capacitor_q_profile(1.0, frequencies_hz), values.size
        )


@dataclass(frozen=True)
class SubstrateLossQModel:
    """Dielectric (substrate) loss tangent growing with frequency.

    The dielectric loss tangent of deposited thin-film stacks rises
    with frequency; this model uses the power law
    ``tan_delta(f) = tan_delta_ref * (f / f_ref_hz)^slope``.

    * Capacitors are loss-tangent limited: ``Q_C(f) = 1 / tan_delta(f)``.
    * Inductors combine a flat conductor Q with the substrate term:
      ``1/Q_L(f) = 1/conductor_q + tan_delta(f)`` — the classic
      "good at 1 GHz, poor at band edges" signature.

    A ``slope`` of zero makes the loss tangent flat (the model then
    still counts as dispersive: the elements re-evaluate it per
    frequency, they just get the same answer everywhere).
    """

    tan_delta_ref: float = 0.005
    f_ref_hz: float = 1.0e9
    slope: float = 1.0
    conductor_q: float = 40.0

    dispersive = True

    def __post_init__(self) -> None:
        # Non-finite parameters are rejected outright: an infinite loss
        # tangent would evaluate to Q = 1/inf = 0, which the element
        # layer's lossless-Q convention would then silently invert into
        # a *perfect* component.
        if not math.isfinite(self.tan_delta_ref) or self.tan_delta_ref <= 0:
            raise CircuitError(
                f"loss tangent must be a positive finite number, "
                f"got {self.tan_delta_ref}"
            )
        if not math.isfinite(self.f_ref_hz) or self.f_ref_hz <= 0:
            raise CircuitError(
                f"reference frequency must be positive and finite, "
                f"got {self.f_ref_hz}"
            )
        if not math.isfinite(self.slope) or self.slope < 0:
            raise CircuitError(
                f"loss-tangent slope must be a non-negative finite "
                f"number, got {self.slope}"
            )
        if not math.isfinite(self.conductor_q) or self.conductor_q <= 0:
            raise CircuitError(
                f"conductor Q must be a positive finite number, "
                f"got {self.conductor_q}"
            )

    @property
    def label(self) -> str:
        """Compact axis label for sweep rows."""
        return f"tan={self.tan_delta_ref:g}"

    def _tan_delta(self, grid: np.ndarray) -> np.ndarray:
        return self.tan_delta_ref * (grid / self.f_ref_hz) ** self.slope

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h
        _require_positive_frequency(frequency_hz)
        tan = self.tan_delta_ref * (
            frequency_hz / self.f_ref_hz
        ) ** self.slope
        return 1.0 / (1.0 / self.conductor_q + tan)

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f
        _require_positive_frequency(frequency_hz)
        tan = self.tan_delta_ref * (
            frequency_hz / self.f_ref_hz
        ) ** self.slope
        return 1.0 / tan

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        del inductance_h
        grid = _validate_frequencies(frequencies_hz)
        return 1.0 / (1.0 / self.conductor_q + self._tan_delta(grid))

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        values = _validate_inductances(inductances_h)
        return _broadcast_profile(
            self.inductor_q_profile(1.0, frequencies_hz), values.size
        )

    def capacitor_q_profile(
        self, capacitance_f: float, frequencies_hz
    ) -> np.ndarray:
        del capacitance_f
        grid = _validate_frequencies(frequencies_hz)
        return 1.0 / self._tan_delta(grid)

    def capacitor_q_profiles(
        self, capacitances_f, frequencies_hz
    ) -> np.ndarray:
        values = _validate_capacitances(capacitances_f)
        return _broadcast_profile(
            self.capacitor_q_profile(1.0, frequencies_hz), values.size
        )


@dataclass(frozen=True)
class TabulatedQModel:
    """Measured Q profiles, linearly interpolated over a frequency table.

    The shape measured technology data comes in: Q sampled at a handful
    of frequencies per element kind.  Between samples the model
    interpolates linearly (``numpy.interp``); outside the table it
    clamps to the end values, matching how datasheet curves are read.

    Fields are tuples so the model stays hashable, picklable and
    ``repr``-stable — the properties the sweep cache keys and the
    process execution engine rely on.
    """

    frequencies_hz: tuple[float, ...]
    inductor_q_table: tuple[float, ...]
    capacitor_q_table: tuple[float, ...]
    name: str = "tabulated"

    dispersive = True

    def __post_init__(self) -> None:
        table = np.asarray(self.frequencies_hz, dtype=float)
        if table.size < 2:
            raise CircuitError(
                "a tabulated Q model needs at least two frequency points"
            )
        if (
            not np.all(np.isfinite(table))
            or np.any(table <= 0)
            or np.any(np.diff(table) <= 0)
        ):
            raise CircuitError(
                "tabulated frequencies must be positive, finite and "
                "increasing"
            )
        for label, values in (
            ("inductor", self.inductor_q_table),
            ("capacitor", self.capacitor_q_table),
        ):
            column = np.asarray(values, dtype=float)
            if column.shape != table.shape:
                raise CircuitError(
                    f"need one {label} Q per tabulated frequency, got "
                    f"{column.size} for {table.size}"
                )
            if not np.all(np.isfinite(column)) or np.any(column <= 0):
                raise CircuitError(
                    f"tabulated {label} Q values must be positive and "
                    f"finite"
                )

    @property
    def label(self) -> str:
        """Compact axis label for sweep rows."""
        return self.name

    def _interp(self, grid: np.ndarray, column) -> np.ndarray:
        return np.interp(
            grid,
            np.asarray(self.frequencies_hz, dtype=float),
            np.asarray(column, dtype=float),
        )

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        del inductance_h
        _require_positive_frequency(frequency_hz)
        return float(
            self._interp(np.array([frequency_hz]), self.inductor_q_table)[0]
        )

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        del capacitance_f
        _require_positive_frequency(frequency_hz)
        return float(
            self._interp(np.array([frequency_hz]), self.capacitor_q_table)[0]
        )

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        del inductance_h
        grid = _validate_frequencies(frequencies_hz)
        return self._interp(grid, self.inductor_q_table)

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        values = _validate_inductances(inductances_h)
        return _broadcast_profile(
            self.inductor_q_profile(1.0, frequencies_hz), values.size
        )

    def capacitor_q_profile(
        self, capacitance_f: float, frequencies_hz
    ) -> np.ndarray:
        del capacitance_f
        grid = _validate_frequencies(frequencies_hz)
        return self._interp(grid, self.capacitor_q_table)

    def capacitor_q_profiles(
        self, capacitances_f, frequencies_hz
    ) -> np.ndarray:
        values = _validate_capacitances(capacitances_f)
        return _broadcast_profile(
            self.capacitor_q_profile(1.0, frequencies_hz), values.size
        )


@dataclass(frozen=True)
class DispersiveQModel:
    """Realise any Q model's ``Q(f)`` physics in the stamped elements.

    Wrapping e.g. :class:`SummitQModel` makes
    :func:`~repro.circuits.synthesis.build_bandpass_circuit` emit
    dispersive elements, so SUMMIT's actual conductor/substrate
    roll-off enters the MNA analysis at every frequency instead of being
    frozen at the filter centre.  All Q queries delegate to the wrapped
    model (through the vectorised dispatch helpers, so profiles stay
    numpy-evaluated).
    """

    model: object

    dispersive = True

    @property
    def label(self) -> str:
        """Compact axis label for sweep rows."""
        inner = getattr(self.model, "label", None)
        if inner is None:
            inner = type(self.model).__name__
        return f"dispersive({inner})"

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        return self.model.inductor_q(inductance_h, frequency_hz)

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        return self.model.capacitor_q(capacitance_f, frequency_hz)

    def inductor_q_profile(
        self, inductance_h: float, frequencies_hz
    ) -> np.ndarray:
        return inductor_q_profile(self.model, inductance_h, frequencies_hz)

    def inductor_q_profiles(
        self, inductances_h, frequencies_hz
    ) -> np.ndarray:
        return inductor_q_profiles(self.model, inductances_h, frequencies_hz)

    def capacitor_q_profile(
        self, capacitance_f: float, frequencies_hz
    ) -> np.ndarray:
        return capacitor_q_profile(self.model, capacitance_f, frequencies_hz)

    def capacitor_q_profiles(
        self, capacitances_f, frequencies_hz
    ) -> np.ndarray:
        return capacitor_q_profiles(
            self.model, capacitances_f, frequencies_hz
        )


#: A measured-style SUMMIT spiral/MIM table (Q sampled per decade),
#: shaped after the published "good at 1-2 GHz, poor at 175 MHz" curve.
MEASURED_SUMMIT_TABLE = TabulatedQModel(
    frequencies_hz=(50e6, 175e6, 500e6, 1.0e9, 2.0e9, 5.0e9),
    inductor_q_table=(3.0, 8.0, 20.0, 32.0, 35.0, 18.0),
    capacitor_q_table=(220.0, 210.0, 200.0, 190.0, 170.0, 120.0),
    name="measured-summit",
)

#: Named Q-model scenarios for the design-space sweep's Q-model axis
#: (CLI ``repro-gps sweep --q-models``).  ``paper`` (= None) keeps the
#: per-process constant-Q model; the others swap in dispersive physics.
Q_MODEL_SCENARIOS: dict[str, object] = {
    "skin": SkinEffectQModel(),
    "substrate": SubstrateLossQModel(),
    "lossy-substrate": SubstrateLossQModel(tan_delta_ref=0.02),
    "measured": MEASURED_SUMMIT_TABLE,
    "dispersive-summit": DispersiveQModel(SummitQModel()),
}


def process_q_model(process, dispersive: bool = False):
    """The integrated-passives Q model of one thin-film process.

    Builds a :class:`SummitQModel` from the process table's loss
    parameters (``substrate_q_ref`` / ``substrate_q_ref_hz`` /
    ``cap_tan_delta`` on
    :class:`~repro.passives.thin_film.ThinFilmProcess`), so a process
    variant with a lossier dielectric automatically produces a lossier
    Q model.  With ``dispersive=True`` the model is wrapped in
    :class:`DispersiveQModel`, putting the full ``Q(f)`` roll-off into
    the stamped elements.
    """
    model = SummitQModel(
        process=process,
        q_sub_ref=process.substrate_q_ref,
        f_sub_ref_hz=process.substrate_q_ref_hz,
        cap_tan_delta=process.cap_tan_delta,
    )
    if dispersive:
        return DispersiveQModel(model)
    return model


def _require_positive_frequency(frequency_hz: float) -> None:
    """Shared scalar-frequency guard of the dispersive models."""
    if frequency_hz <= 0:
        raise CircuitError(
            f"frequency must be positive, got {frequency_hz}"
        )


def _broadcast_profile(profile: np.ndarray, rows: int) -> np.ndarray:
    """Tile a value-independent ``(F,)`` profile into ``(rows, F)``.

    Used by models whose Q does not depend on the element value: every
    row is the *same array contents* as the per-value profile, keeping
    the stacked path bit-identical to the grid path.
    """
    out = np.empty((rows, profile.size), dtype=profile.dtype)
    out[:] = profile[None, :]
    return out


def _validate_frequencies(frequencies_hz) -> np.ndarray:
    """Coerce to a 1-D positive float array (the Q-profile contract)."""
    grid = np.asarray(frequencies_hz, dtype=float)
    if grid.ndim == 0:
        grid = grid[None]
    if grid.size == 0:
        raise CircuitError("frequency grid must not be empty")
    if np.any(grid <= 0):
        raise CircuitError(
            f"frequency must be positive, got {float(grid.min())}"
        )
    return grid


def _validate_inductances(inductances_h) -> np.ndarray:
    """Coerce to a 1-D positive float array (the stacked-profile contract)."""
    values = np.asarray(inductances_h, dtype=float)
    if values.ndim == 0:
        values = values[None]
    if values.size == 0:
        raise CircuitError("inductance list must not be empty")
    if np.any(values <= 0):
        raise CircuitError(
            f"inductance must be positive, got {float(values.min())}"
        )
    return values


def _validate_capacitances(capacitances_f) -> np.ndarray:
    """Coerce to a 1-D positive float array (the stacked-profile contract)."""
    values = np.asarray(capacitances_f, dtype=float)
    if values.ndim == 0:
        values = values[None]
    if values.size == 0:
        raise CircuitError("capacitance list must not be empty")
    if np.any(values <= 0):
        raise CircuitError(
            f"capacitance must be positive, got {float(values.min())}"
        )
    return values


def inductor_q_profile(
    q_model, inductance_h: float, frequencies_hz
) -> np.ndarray:
    """Unloaded inductor Q of a technology over a frequency grid.

    Dispatches to the model's vectorised ``inductor_q_profile`` when it
    provides one (:class:`SummitQModel` does); otherwise evaluates the
    scalar method point by point.  Used by the design-space sweep
    subsystem to trace Q-vs-frequency without per-point Python overhead
    for the models that matter.
    """
    vectorised = getattr(q_model, "inductor_q_profile", None)
    if vectorised is not None:
        return np.asarray(vectorised(inductance_h, frequencies_hz))
    grid = _validate_frequencies(frequencies_hz)
    return np.array(
        [q_model.inductor_q(inductance_h, float(f)) for f in grid]
    )


def inductor_q_profiles(
    q_model, inductances_h, frequencies_hz
) -> np.ndarray:
    """Stacked ``(B, F)`` inductor Q: many values over one grid.

    The batched analogue of :func:`inductor_q_profile` — the shape a
    design-space sweep asks for when tracing a whole inductor family.
    Dispatches to the model's ``inductor_q_profiles`` when it provides
    one (:class:`SummitQModel` evaluates the whole block as one numpy
    expression); otherwise stacks the per-value grid profile.
    """
    vectorised = getattr(q_model, "inductor_q_profiles", None)
    if vectorised is not None:
        return np.asarray(vectorised(inductances_h, frequencies_hz))
    values = _validate_inductances(inductances_h)
    return np.stack(
        [
            inductor_q_profile(q_model, float(value), frequencies_hz)
            for value in values
        ]
    )


def capacitor_q_profile(
    q_model, capacitance_f: float, frequencies_hz
) -> np.ndarray:
    """Unloaded capacitor Q of a technology over a frequency grid.

    Dispatches to the model's vectorised ``capacitor_q_profile`` when it
    provides one (all dispersive models and :class:`SummitQModel` do);
    otherwise evaluates the scalar method point by point.
    """
    vectorised = getattr(q_model, "capacitor_q_profile", None)
    if vectorised is not None:
        return np.asarray(vectorised(capacitance_f, frequencies_hz))
    grid = _validate_frequencies(frequencies_hz)
    return np.array(
        [q_model.capacitor_q(capacitance_f, float(f)) for f in grid]
    )


def capacitor_q_profiles(
    q_model, capacitances_f, frequencies_hz
) -> np.ndarray:
    """Stacked ``(B, F)`` capacitor Q: many values over one grid.

    The capacitor analogue of :func:`inductor_q_profiles`.  Dispatches
    to the model's ``capacitor_q_profiles`` when it provides one;
    otherwise stacks the per-value grid profile.
    """
    vectorised = getattr(q_model, "capacitor_q_profiles", None)
    if vectorised is not None:
        return np.asarray(vectorised(capacitances_f, frequencies_hz))
    values = _validate_capacitances(capacitances_f)
    return np.stack(
        [
            capacitor_q_profile(q_model, float(value), frequencies_hz)
            for value in values
        ]
    )


def _combine_profiles(q_l: np.ndarray, q_c: np.ndarray) -> np.ndarray:
    """``1/Q = 1/Q_L + 1/Q_C`` elementwise, shape-generic.

    Infinite contributions are dropped; all-infinite points stay
    infinite.  Shared by the grid and the stacked combiners.
    """
    inverse = np.zeros_like(q_l, dtype=float)
    finite_l = np.isfinite(q_l) & (q_l > 0)
    finite_c = np.isfinite(q_c) & (q_c > 0)
    inverse[finite_l] += 1.0 / q_l[finite_l]
    inverse[finite_c] += 1.0 / q_c[finite_c]
    result = np.full(inverse.shape, math.inf)
    nonzero = inverse > 0
    result[nonzero] = 1.0 / inverse[nonzero]
    return result


def combined_q_profile(
    q_model,
    inductance_h: float,
    capacitance_f: float,
    frequencies_hz,
) -> np.ndarray:
    """Effective resonator Q over a frequency grid (vectorised).

    The grid analogue of :func:`combined_unloaded_q`:
    ``1/Q = 1/Q_L + 1/Q_C`` at every frequency, with infinite
    contributions dropped.
    """
    q_l = inductor_q_profile(q_model, inductance_h, frequencies_hz)
    q_c = capacitor_q_profile(q_model, capacitance_f, frequencies_hz)
    return _combine_profiles(q_l, q_c)


def combined_q_profiles(
    q_model,
    inductances_h,
    capacitances_f,
    frequencies_hz,
) -> np.ndarray:
    """Stacked ``(B, F)`` resonator Q of many L/C pairs over one grid.

    The batched analogue of :func:`combined_q_profile`: row ``b``
    combines ``inductances_h[b]`` with ``capacitances_f[b]``.
    """
    inductances = _validate_inductances(inductances_h)
    capacitances = np.asarray(capacitances_f, dtype=float)
    if capacitances.ndim == 0:
        capacitances = capacitances[None]
    if capacitances.shape != inductances.shape:
        raise CircuitError(
            f"need one capacitance per inductance, got "
            f"{capacitances.size} for {inductances.size}"
        )
    q_l = inductor_q_profiles(q_model, inductances, frequencies_hz)
    q_c = capacitor_q_profiles(q_model, capacitances, frequencies_hz)
    return _combine_profiles(q_l, q_c)


def combined_unloaded_q(
    q_model,
    inductance_h: float,
    capacitance_f: float,
    frequency_hz: float,
) -> float:
    """Effective resonator Q: ``1/Q = 1/Q_L + 1/Q_C``.

    This is the ``Qu`` that enters the classical dissipation-loss formula
    for a resonator built from the given L and C.
    """
    q_l = q_model.inductor_q(inductance_h, frequency_hz)
    q_c = q_model.capacitor_q(capacitance_f, frequency_hz)
    inverse = 0.0
    if math.isfinite(q_l) and q_l > 0:
        inverse += 1.0 / q_l
    if math.isfinite(q_c) and q_c > 0:
        inverse += 1.0 / q_c
    if inverse == 0.0:
        return math.inf
    return 1.0 / inverse
