"""Nodal-admittance AC analysis.

For a passive RLC network every element is a two-terminal admittance, so
classic nodal analysis suffices (no auxiliary current variables are
needed): at each angular frequency the node admittance matrix ``Y`` is
stamped and ``Y v = i`` solved for the node voltages.

The solver exposes two views:

* :func:`node_admittance_matrix` / :func:`solve_nodal` — raw access for
  tests and extensions;
* :class:`AcAnalysis` — a frequency sweep bound to a circuit, caching the
  node index and exposing impedance/transfer helpers used by the two-port
  extractor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CircuitError
from .elements import GROUND
from .netlist import Circuit


def node_index(circuit: Circuit) -> dict[str, int]:
    """Map non-ground node names to matrix row indices."""
    return {node: i for i, node in enumerate(circuit.nodes())}


def node_admittance_matrix(
    circuit: Circuit, omega: float, index: dict[str, int] | None = None
) -> np.ndarray:
    """Stamp the complex node admittance matrix at ``omega`` rad/s.

    Ground is eliminated; the matrix is ``n x n`` for ``n`` non-ground
    nodes.  Each element of admittance ``y`` between nodes ``a`` and ``b``
    stamps ``+y`` on the diagonals and ``-y`` on the off-diagonals.
    """
    if omega <= 0:
        raise CircuitError(f"AC analysis requires omega > 0, got {omega}")
    if index is None:
        index = node_index(circuit)
    n = len(index)
    matrix = np.zeros((n, n), dtype=complex)
    for element in circuit.elements:
        y = element.admittance(omega)
        a = index.get(element.node_a)
        b = index.get(element.node_b)
        if a is not None:
            matrix[a, a] += y
        if b is not None:
            matrix[b, b] += y
        if a is not None and b is not None:
            matrix[a, b] -= y
            matrix[b, a] -= y
    return matrix


def solve_nodal(
    matrix: np.ndarray, currents: np.ndarray
) -> np.ndarray:
    """Solve ``Y v = i`` for the node voltages.

    Raises
    ------
    CircuitError
        If the admittance matrix is singular (floating subcircuit).
    """
    try:
        return np.linalg.solve(matrix, currents)
    except np.linalg.LinAlgError as exc:
        raise CircuitError(
            "singular node admittance matrix — the circuit has a floating "
            "subcircuit or a node with no path to ground"
        ) from exc


@dataclass
class AcAnalysis:
    """AC analysis bound to one circuit.

    The node index is computed once; every query stamps and solves at the
    requested frequency.  All public methods accept frequencies in hertz.
    """

    circuit: Circuit

    def __post_init__(self) -> None:
        self.circuit.validate()
        self._index = node_index(self.circuit)
        if not self._index:
            raise CircuitError("circuit has no non-ground nodes")

    @property
    def index(self) -> dict[str, int]:
        """Node-name to row-index mapping (read-only view)."""
        return dict(self._index)

    def admittance_matrix(self, frequency_hz: float) -> np.ndarray:
        """Node admittance matrix at ``frequency_hz``."""
        omega = 2.0 * math.pi * frequency_hz
        return node_admittance_matrix(self.circuit, omega, self._index)

    def impedance_matrix(self, frequency_hz: float) -> np.ndarray:
        """Full node impedance matrix ``Y^-1`` at ``frequency_hz``."""
        matrix = self.admittance_matrix(frequency_hz)
        try:
            return np.linalg.inv(matrix)
        except np.linalg.LinAlgError as exc:
            raise CircuitError(
                "singular node admittance matrix at "
                f"{frequency_hz:g} Hz"
            ) from exc

    def driving_point_impedance(
        self, node: str, frequency_hz: float
    ) -> complex:
        """Impedance seen looking into ``node`` against ground."""
        if node not in self._index:
            raise CircuitError(f"unknown node {node!r}")
        z = self.impedance_matrix(frequency_hz)
        i = self._index[node]
        return complex(z[i, i])

    def transfer_impedance(
        self, from_node: str, to_node: str, frequency_hz: float
    ) -> complex:
        """Voltage at ``to_node`` per unit current injected at ``from_node``."""
        for node in (from_node, to_node):
            if node not in self._index:
                raise CircuitError(f"unknown node {node!r}")
        z = self.impedance_matrix(frequency_hz)
        return complex(z[self._index[to_node], self._index[from_node]])

    def voltages_for_injection(
        self, node: str, frequency_hz: float, current: complex = 1.0
    ) -> dict[str, complex]:
        """Node voltages for a current injection at ``node``."""
        if node not in self._index:
            raise CircuitError(f"unknown node {node!r}")
        matrix = self.admittance_matrix(frequency_hz)
        rhs = np.zeros(len(self._index), dtype=complex)
        rhs[self._index[node]] = current
        solution = solve_nodal(matrix, rhs)
        voltages = {GROUND: 0.0 + 0.0j}
        for name, i in self._index.items():
            voltages[name] = complex(solution[i])
        return voltages
