"""Nodal-admittance AC analysis (scalar and batched over frequency).

For a passive RLC network every element is a two-terminal admittance, so
classic nodal analysis suffices (no auxiliary current variables are
needed): at each angular frequency the node admittance matrix ``Y`` is
stamped and ``Y v = i`` solved for the node voltages.

The engine is *vectorised over frequency*: a sweep stamps the whole
``(F, n, n)`` admittance tensor in one shot and solves it with a single
batched ``numpy.linalg.solve`` call.  The per-circuit stamping structure
(which matrix entries each element touches, with which sign) is
precomputed once as a dense scatter operator by :class:`StampPlan`, so a
sweep costs one vectorised admittance evaluation per *element* plus one
LAPACK batch — no per-frequency Python work.  Only the structure is
cached; admittances are re-evaluated per call, so frequency-dependent
elements (dispersive Q models) stay correct under plan reuse — see the
caching invariants on :class:`StampPlan`.

The solver exposes three views:

* :func:`node_admittance_matrix` / :func:`solve_nodal` — scalar access
  for tests and extensions (the pre-vectorisation reference semantics);
* :func:`batch_admittance_matrix` / :func:`batch_solve_nodal` — the
  batched engine, one ``(F, n, n)`` tensor over a frequency grid;
* :class:`AcAnalysis` — a frequency sweep bound to a circuit, caching
  the node index and the stamp plan, exposing scalar *and* batched
  impedance/transfer helpers used by the two-port extractor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CircuitError
from .elements import GROUND, _validate_omegas, stacked_admittances
from .netlist import Circuit


def node_index(circuit: Circuit) -> dict[str, int]:
    """Map non-ground node names to matrix row indices."""
    return {node: i for i, node in enumerate(circuit.nodes())}


class StampPlan:
    """Precomputed stamping structure of one circuit.

    For each element the plan records which rows/columns of the node
    matrix it touches (resolved once from the node index), so a whole
    frequency grid is stamped with one vectorised admittance evaluation
    per element and four fancy-indexed adds — no per-frequency Python
    work.  Elements are accumulated in netlist order, exactly like the
    scalar :func:`node_admittance_matrix` loop, so the batched tensor is
    bit-compatible with the scalar reference (the property suite asserts
    agreement to 1e-12 *after* the solve, where conditioning amplifies
    any stamping difference).

    Caching invariants
    ------------------
    The plan caches **structure only** — the element-to-matrix-row
    scatter pattern and the node-name edge list — and both depend on
    nothing but the netlist topology, so a plan can be built once per
    circuit (or once per circuit *family*) and reused for every grid:

    * no admittance value is ever cached: :meth:`matrices` and
      :meth:`family_matrices` call every element's vectorised
      ``admittances`` afresh on each invocation, which is what makes
      frequency-dependent elements
      (:class:`~repro.circuits.elements.DispersiveInductor` /
      :class:`~repro.circuits.elements.DispersiveCapacitor`, whose
      loss follows a ``Q(f)`` technology model) re-evaluate their
      per-frequency loss on every sweep rather than reusing a value
      frozen at plan-build time;
    * no frequency grid is baked in: the same plan serves every
      ``omegas`` array, scalar queries and batched sweeps alike;
    * element *values* are read at stamp time from the circuit objects
      passed in, so a family stamp never mixes one member's values into
      another's slice.

    Consequently a cached plan can only go stale if the circuit's
    *topology* is mutated after construction — the one thing the
    codebase never does (circuits are built once, then analysed).
    """

    def __init__(
        self, circuit: Circuit, index: dict[str, int] | None = None
    ) -> None:
        if index is None:
            index = node_index(circuit)
        self.circuit = circuit
        self.index = index
        self.n = len(index)
        self._stamps: list[tuple[int, int | None, int | None]] = [
            (j, index.get(element.node_a), index.get(element.node_b))
            for j, element in enumerate(circuit.elements)
        ]
        # Node-name edge list: the O(E) fast path of family validation.
        self._edges: list[tuple[str, str]] = [
            (element.node_a, element.node_b)
            for element in circuit.elements
        ]

    def element_admittances(self, omegas: np.ndarray) -> np.ndarray:
        """``(F, E)`` complex admittance of every element at every omega."""
        array = _validate_omegas(omegas)
        values = np.empty(
            (array.size, len(self.circuit.elements)), dtype=complex
        )
        for j, element in enumerate(self.circuit.elements):
            values[:, j] = element.admittances(array)
        return values

    def matrices(self, omegas: np.ndarray) -> np.ndarray:
        """Stamp the ``(F, n, n)`` admittance tensor over ``omegas``."""
        admittances = self.element_admittances(omegas)
        tensor = np.zeros(
            (admittances.shape[0], self.n, self.n), dtype=complex
        )
        for j, a, b in self._stamps:
            y = admittances[:, j]
            if a is not None:
                tensor[:, a, a] += y
            if b is not None:
                tensor[:, b, b] += y
            if a is not None and b is not None:
                tensor[:, a, b] -= y
                tensor[:, b, a] -= y
        return tensor

    # -- circuit families (stacked over structurally identical circuits)

    def check_family_member(self, circuit: Circuit) -> None:
        """Validate that ``circuit`` shares this plan's topology.

        Same element count and, slot by slot, the same matrix rows
        (resolved through the member's own node index) — exactly the
        condition under which one stamp plan describes every member.
        Node and element *names* are free to differ; element *values*
        are expected to.

        Raises
        ------
        CircuitError
            If the circuit is not structurally identical.
        """
        if len(circuit.elements) != len(self.circuit.elements):
            raise CircuitError(
                f"circuit {circuit.name!r} has {len(circuit.elements)} "
                f"elements, family plan has {len(self.circuit.elements)}"
            )
        if self._edges == [
            (e.node_a, e.node_b) for e in circuit.elements
        ] and [p.node for p in circuit.ports] == [
            p.node for p in self.circuit.ports
        ]:
            # Same node names slot by slot (elements and ports) — the
            # common family shape: one builder, different element
            # values.  Identical names resolve to identical rows, so no
            # index rebuild is needed.
            return
        index = (
            self.index if circuit is self.circuit else node_index(circuit)
        )
        if len(index) != self.n:
            raise CircuitError(
                f"circuit {circuit.name!r} has {len(index)} nodes, "
                f"family plan has {self.n}"
            )
        for j, a, b in self._stamps:
            element = circuit.elements[j]
            if (index.get(element.node_a), index.get(element.node_b)) != (
                a,
                b,
            ):
                raise CircuitError(
                    f"circuit {circuit.name!r} element "
                    f"{element.name!r} (slot {j}) connects different "
                    f"matrix rows than the family plan"
                )

    def family_element_admittances(
        self, circuits: "list[Circuit]", omegas: np.ndarray
    ) -> np.ndarray:
        """``(B, F, E)`` admittances of every member, slot-stacked.

        Each element slot is evaluated across the whole family with one
        numpy expression (:func:`~repro.circuits.elements.stacked_admittances`),
        so the cost is one vectorised evaluation per *slot*, not per
        circuit.
        """
        array = _validate_omegas(omegas)
        members = list(circuits)
        if not members:
            raise CircuitError("circuit family must not be empty")
        for circuit in members:
            self.check_family_member(circuit)
        count = len(self.circuit.elements)
        values = np.empty(
            (len(members), array.size, count), dtype=complex
        )
        for j in range(count):
            values[:, :, j] = stacked_admittances(
                [circuit.elements[j] for circuit in members], array
            )
        return values

    def family_matrices(
        self, circuits: "list[Circuit]", omegas: np.ndarray
    ) -> np.ndarray:
        """Stamp the ``(B, F, n, n)`` tensor of a circuit family.

        Equivalent to stacking :meth:`matrices` for each member, but with
        the per-element admittance evaluation vectorised over the family
        as well as the frequency grid.  Slots accumulate in netlist
        order, so every ``(b, f)`` slice is bit-identical to the
        single-circuit path.
        """
        admittances = self.family_element_admittances(circuits, omegas)
        tensor = np.zeros(
            admittances.shape[:2] + (self.n, self.n), dtype=complex
        )
        for j, a, b in self._stamps:
            y = admittances[:, :, j]
            if a is not None:
                tensor[:, :, a, a] += y
            if b is not None:
                tensor[:, :, b, b] += y
            if a is not None and b is not None:
                tensor[:, :, a, b] -= y
                tensor[:, :, b, a] -= y
        return tensor


def node_admittance_matrix(
    circuit: Circuit, omega: float, index: dict[str, int] | None = None
) -> np.ndarray:
    """Stamp the complex node admittance matrix at ``omega`` rad/s.

    Ground is eliminated; the matrix is ``n x n`` for ``n`` non-ground
    nodes.  Each element of admittance ``y`` between nodes ``a`` and ``b``
    stamps ``+y`` on the diagonals and ``-y`` on the off-diagonals.

    This is the scalar reference path; it stamps element by element in
    Python and is what the batched engine is property-tested against.
    """
    if omega <= 0:
        raise CircuitError(f"AC analysis requires omega > 0, got {omega}")
    if index is None:
        index = node_index(circuit)
    n = len(index)
    matrix = np.zeros((n, n), dtype=complex)
    for element in circuit.elements:
        y = element.admittance(omega)
        a = index.get(element.node_a)
        b = index.get(element.node_b)
        if a is not None:
            matrix[a, a] += y
        if b is not None:
            matrix[b, b] += y
        if a is not None and b is not None:
            matrix[a, b] -= y
            matrix[b, a] -= y
    return matrix


def batch_admittance_matrix(
    circuit: Circuit,
    omegas: np.ndarray,
    index: dict[str, int] | None = None,
    plan: StampPlan | None = None,
) -> np.ndarray:
    """Stamp the ``(F, n, n)`` admittance tensor over a frequency grid.

    Equivalent to stacking :func:`node_admittance_matrix` at each omega,
    but with all per-frequency work vectorised.  Raises
    :class:`~repro.errors.CircuitError` if any omega is non-positive
    (same contract as the scalar path).
    """
    if plan is None:
        plan = StampPlan(circuit, index)
    return plan.matrices(omegas)


def family_admittance_matrix(
    circuits,
    omegas: np.ndarray,
    plan: StampPlan | None = None,
) -> np.ndarray:
    """Stamp the ``(B, F, n, n)`` tensor of a family of circuits.

    The family is ``B`` structurally identical circuits (same topology,
    different element values — what tolerance classes, E-series snapping
    and candidate sweeps produce).  Equivalent to stacking
    :func:`batch_admittance_matrix` per member; the shared
    :class:`StampPlan` is built from the first member when not supplied.
    Raises :class:`~repro.errors.CircuitError` on an empty family, a
    topology mismatch, or any non-positive omega.
    """
    members = list(circuits)
    if not members:
        raise CircuitError("circuit family must not be empty")
    if plan is None:
        plan = StampPlan(members[0])
    return plan.family_matrices(members, omegas)


def solve_nodal(
    matrix: np.ndarray, currents: np.ndarray
) -> np.ndarray:
    """Solve ``Y v = i`` for the node voltages.

    Raises
    ------
    CircuitError
        If the admittance matrix is singular (floating subcircuit).
    """
    try:
        return np.linalg.solve(matrix, currents)
    except np.linalg.LinAlgError as exc:
        raise CircuitError(
            "singular node admittance matrix — the circuit has a floating "
            "subcircuit or a node with no path to ground"
        ) from exc


def batch_solve_nodal(
    matrices: np.ndarray, currents: np.ndarray
) -> np.ndarray:
    """Solve the batched system ``Y[f] v[f] = i[f]`` in one LAPACK call.

    Parameters
    ----------
    matrices:
        ``(F, n, n)`` admittance tensor, or any higher-rank stack such as
        the ``(B, F, n, n)`` tensor of a circuit family.
    currents:
        Right-hand sides: ``(n,)`` or ``(n, k)`` for an excitation shared
        by the whole stack, or a full ``(..., n, k)`` array matching the
        batch dimensions for per-matrix excitations.

    Returns
    -------
    np.ndarray
        ``(..., n, k)`` node voltages (``k = 1`` column squeezed only if
        the caller passed a 1-D right-hand side, mirroring
        ``numpy.linalg.solve``'s broadcasting).
    """
    rhs = np.asarray(currents)
    squeeze = False
    if rhs.ndim == 1:
        rhs = rhs[:, None]
        squeeze = True
    if rhs.ndim == 2:
        rhs = np.broadcast_to(
            rhs, matrices.shape[:-2] + rhs.shape
        )
    try:
        solution = np.linalg.solve(matrices, rhs)
    except np.linalg.LinAlgError as exc:
        raise CircuitError(
            "singular node admittance matrix — the circuit has a floating "
            "subcircuit or a node with no path to ground"
        ) from exc
    if squeeze:
        return solution[..., 0]
    return solution


def _omegas_from_hz(frequencies_hz) -> np.ndarray:
    """Hertz grid to validated angular-frequency array."""
    grid = np.asarray(frequencies_hz, dtype=float)
    if grid.ndim == 0:
        grid = grid[None]
    return _validate_omegas(2.0 * math.pi * grid)


@dataclass
class AcAnalysis:
    """AC analysis bound to one circuit.

    The node index and the stamping plan are computed once; scalar
    queries stamp and solve at the requested frequency, batched queries
    (the ``*_sweep`` methods) evaluate a whole grid with one stamped
    tensor and one batched solve.  All public methods accept frequencies
    in hertz.
    """

    circuit: Circuit

    def __post_init__(self) -> None:
        self.circuit.validate()
        self._index = node_index(self.circuit)
        if not self._index:
            raise CircuitError("circuit has no non-ground nodes")
        self._plan = StampPlan(self.circuit, self._index)

    @property
    def index(self) -> dict[str, int]:
        """Node-name to row-index mapping (read-only view)."""
        return dict(self._index)

    @property
    def plan(self) -> StampPlan:
        """The cached stamping plan (shared with the two-port extractor)."""
        return self._plan

    def admittance_matrix(self, frequency_hz: float) -> np.ndarray:
        """Node admittance matrix at ``frequency_hz``."""
        omega = 2.0 * math.pi * frequency_hz
        return node_admittance_matrix(self.circuit, omega, self._index)

    def admittance_matrices(self, frequencies_hz) -> np.ndarray:
        """Batched ``(F, n, n)`` admittance tensor over a hertz grid."""
        return self._plan.matrices(_omegas_from_hz(frequencies_hz))

    def impedance_matrix(self, frequency_hz: float) -> np.ndarray:
        """Full node impedance matrix ``Y^-1`` at ``frequency_hz``."""
        matrix = self.admittance_matrix(frequency_hz)
        try:
            return np.linalg.inv(matrix)
        except np.linalg.LinAlgError as exc:
            raise CircuitError(
                "singular node admittance matrix at "
                f"{frequency_hz:g} Hz"
            ) from exc

    def driving_point_impedance(
        self, node: str, frequency_hz: float
    ) -> complex:
        """Impedance seen looking into ``node`` against ground."""
        if node not in self._index:
            raise CircuitError(f"unknown node {node!r}")
        z = self.impedance_matrix(frequency_hz)
        i = self._index[node]
        return complex(z[i, i])

    def driving_point_impedance_sweep(
        self, node: str, frequencies_hz
    ) -> np.ndarray:
        """Driving-point impedance at ``node`` over a hertz grid."""
        if node not in self._index:
            raise CircuitError(f"unknown node {node!r}")
        i = self._index[node]
        matrices = self.admittance_matrices(frequencies_hz)
        rhs = np.zeros(len(self._index), dtype=complex)
        rhs[i] = 1.0
        voltages = batch_solve_nodal(matrices, rhs)
        return voltages[:, i]

    def transfer_impedance(
        self, from_node: str, to_node: str, frequency_hz: float
    ) -> complex:
        """Voltage at ``to_node`` per unit current injected at ``from_node``."""
        for node in (from_node, to_node):
            if node not in self._index:
                raise CircuitError(f"unknown node {node!r}")
        z = self.impedance_matrix(frequency_hz)
        return complex(z[self._index[to_node], self._index[from_node]])

    def transfer_impedance_sweep(
        self, from_node: str, to_node: str, frequencies_hz
    ) -> np.ndarray:
        """Transfer impedance over a hertz grid (batched solve)."""
        for node in (from_node, to_node):
            if node not in self._index:
                raise CircuitError(f"unknown node {node!r}")
        matrices = self.admittance_matrices(frequencies_hz)
        rhs = np.zeros(len(self._index), dtype=complex)
        rhs[self._index[from_node]] = 1.0
        voltages = batch_solve_nodal(matrices, rhs)
        return voltages[:, self._index[to_node]]

    def voltages_for_injection(
        self, node: str, frequency_hz: float, current: complex = 1.0
    ) -> dict[str, complex]:
        """Node voltages for a current injection at ``node``."""
        if node not in self._index:
            raise CircuitError(f"unknown node {node!r}")
        matrix = self.admittance_matrix(frequency_hz)
        rhs = np.zeros(len(self._index), dtype=complex)
        rhs[self._index[node]] = current
        solution = solve_nodal(matrix, rhs)
        voltages = {GROUND: 0.0 + 0.0j}
        for name, i in self._index.items():
            voltages[name] = complex(solution[i])
        return voltages

    def voltages_for_injection_sweep(
        self, node: str, frequencies_hz, current: complex = 1.0
    ) -> dict[str, np.ndarray]:
        """Node voltage arrays over a hertz grid for one injection."""
        if node not in self._index:
            raise CircuitError(f"unknown node {node!r}")
        matrices = self.admittance_matrices(frequencies_hz)
        rhs = np.zeros(len(self._index), dtype=complex)
        rhs[self._index[node]] = current
        solution = batch_solve_nodal(matrices, rhs)
        voltages: dict[str, np.ndarray] = {
            GROUND: np.zeros(matrices.shape[0], dtype=complex)
        }
        for name, i in self._index.items():
            voltages[name] = solution[:, i]
        return voltages
