"""Impedance matching network synthesis (paper §3).

The GPS front end needs "50 Ω matching networks for the LNA and the
mixer on the RF chip".  This module synthesises the classic two-element
L-network that matches a complex load to a real source impedance at one
frequency, returns the element values (which the passive library can
then price and size in either technology), and verifies the match by
nodal analysis.

Theory: for a load ``R_L`` (here taken real after absorbing the load
reactance) and source ``R_S`` with ``R_S > R_L``, the L-network has

    Q = sqrt(R_S / R_L - 1)
    X_series = Q * R_L          (series arm, on the load side)
    X_shunt  = R_S / Q          (shunt arm, on the source side)

with the series/shunt arms realisable as L-up/C-down (lowpass) or
C-up/L-down (highpass).  For ``R_S < R_L`` the network mirrors.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import CircuitError, SynthesisError
from .elements import lossy_capacitor, lossy_inductor
from .netlist import Circuit
from .synthesis import QModel


class LNetworkTopology(enum.Enum):
    """Which reactance goes where."""

    #: Series inductor, shunt capacitor — lowpass, DC-coupled.
    LOWPASS = "lowpass"
    #: Series capacitor, shunt inductor — highpass, DC-blocked.
    HIGHPASS = "highpass"


@dataclass(frozen=True)
class LMatchDesign:
    """A synthesised two-element L-match.

    Attributes
    ----------
    frequency_hz:
        Design frequency.
    source_ohm / load_ohm:
        The two real impedance levels being matched.
    topology:
        Lowpass or highpass arrangement.
    q_factor:
        Loaded Q of the network, fixed by the impedance ratio.
    series_element_h_or_f / shunt_element_h_or_f:
        Element values: henry for inductors, farad for capacitors; which
        is which follows from the topology.
    shunt_at_source:
        True when the shunt arm sits on the higher-impedance (source)
        side.
    """

    frequency_hz: float
    source_ohm: float
    load_ohm: float
    topology: LNetworkTopology
    q_factor: float
    series_element: float
    shunt_element: float
    shunt_at_source: bool

    @property
    def series_is_inductor(self) -> bool:
        """The series arm is an inductor in the lowpass topology."""
        return self.topology is LNetworkTopology.LOWPASS

    @property
    def bandwidth_hz(self) -> float:
        """Approximate match bandwidth, ``f / Q`` (single-pole estimate).

        Degenerate 1:1 matches have no reactive elements and therefore
        unlimited bandwidth.
        """
        if self.q_factor == 0.0:
            return math.inf
        return self.frequency_hz / self.q_factor


def design_l_match(
    source_ohm: float,
    load_ohm: float,
    frequency_hz: float,
    topology: LNetworkTopology = LNetworkTopology.LOWPASS,
) -> LMatchDesign:
    """Synthesise an L-network matching ``load_ohm`` to ``source_ohm``.

    Raises
    ------
    SynthesisError
        For non-positive impedances/frequency.  Equal impedances return
        a degenerate (zero-Q) design.
    """
    if source_ohm <= 0 or load_ohm <= 0:
        raise SynthesisError(
            f"impedances must be positive, got {source_ohm} and {load_ohm}"
        )
    if frequency_hz <= 0:
        raise SynthesisError(
            f"frequency must be positive, got {frequency_hz}"
        )
    high = max(source_ohm, load_ohm)
    low = min(source_ohm, load_ohm)
    shunt_at_source = source_ohm >= load_ohm
    if high == low:
        return LMatchDesign(
            frequency_hz=frequency_hz,
            source_ohm=source_ohm,
            load_ohm=load_ohm,
            topology=topology,
            q_factor=0.0,
            series_element=0.0,
            shunt_element=0.0,
            shunt_at_source=shunt_at_source,
        )
    q = math.sqrt(high / low - 1.0)
    x_series = q * low
    x_shunt = high / q
    omega = 2.0 * math.pi * frequency_hz
    if topology is LNetworkTopology.LOWPASS:
        series = x_series / omega  # inductance [H]
        shunt = 1.0 / (omega * x_shunt)  # capacitance [F]
    else:
        series = 1.0 / (omega * x_series)  # capacitance [F]
        shunt = x_shunt / omega  # inductance [H]
    return LMatchDesign(
        frequency_hz=frequency_hz,
        source_ohm=source_ohm,
        load_ohm=load_ohm,
        topology=topology,
        q_factor=q,
        series_element=series,
        shunt_element=shunt,
        shunt_at_source=shunt_at_source,
    )


def build_l_match_circuit(
    design: LMatchDesign,
    q_model: QModel | None = None,
    name: str = "L-match",
) -> Circuit:
    """Materialise an L-match as a two-port circuit.

    Port 1 is the source side, port 2 the load side; the shunt arm is
    attached on the high-impedance side per the design.  Finite-Q
    elements come from the technology model, as in the filter builder.
    """
    if design.q_factor == 0.0:
        raise CircuitError(
            "degenerate 1:1 match has no elements to build"
        )
    circuit = Circuit(name=name)
    f0 = design.frequency_hz

    def q_l(value: float) -> float:
        return (
            math.inf if q_model is None else q_model.inductor_q(value, f0)
        )

    def q_c(value: float) -> float:
        return (
            math.inf
            if q_model is None
            else q_model.capacitor_q(value, f0)
        )

    shunt_node = "in" if design.shunt_at_source else "out"
    if design.topology is LNetworkTopology.LOWPASS:
        circuit.add(
            lossy_inductor(
                "Lser", "in", "out", design.series_element,
                q_l(design.series_element), f0,
            )
        )
        circuit.add(
            lossy_capacitor(
                "Csh", shunt_node, "0", design.shunt_element,
                q_c(design.shunt_element), f0,
            )
        )
    else:
        circuit.add(
            lossy_capacitor(
                "Cser", "in", "out", design.series_element,
                q_c(design.series_element), f0,
            )
        )
        circuit.add(
            lossy_inductor(
                "Lsh", shunt_node, "0", design.shunt_element,
                q_l(design.shunt_element), f0,
            )
        )
    circuit.port("p1", "in", design.source_ohm)
    circuit.port("p2", "out", design.load_ohm)
    return circuit


def match_return_loss_db(
    design: LMatchDesign, q_model: QModel | None = None
) -> float:
    """Return loss of the built match at the design frequency.

    A lossless, exactly synthesised L-match is perfect (return loss
    -> infinity); finite-Q technologies degrade it.
    """
    from .twoport import two_port_sparameters

    circuit = build_l_match_circuit(design, q_model)
    return two_port_sparameters(
        circuit, design.frequency_hz
    ).return_loss_db


def matching_network_area_mm2(
    design: LMatchDesign,
    integrated: bool = True,
) -> float:
    """Substrate/board area of the match in a technology.

    Integrated: thin-film spiral + MIM models; SMD: 0603 footprints.
    Used by the build-up constructors to price the paper's LNA/mixer
    matching networks.
    """
    from ..passives.smd import get_case
    from ..passives.thin_film import (
        SUMMIT_PROCESS,
        capacitor_area_mm2,
        inductor_area_mm2,
    )

    if design.q_factor == 0.0:
        return 0.0
    if design.topology is LNetworkTopology.LOWPASS:
        inductance, capacitance = (
            design.series_element,
            design.shunt_element,
        )
    else:
        capacitance, inductance = (
            design.series_element,
            design.shunt_element,
        )
    if integrated:
        return inductor_area_mm2(
            inductance, SUMMIT_PROCESS
        ) + capacitor_area_mm2(capacitance, SUMMIT_PROCESS)
    return 2.0 * get_case("0603").footprint_area_mm2
