"""Bandpass filter synthesis from lowpass prototypes.

The GPS front end (paper §3/§4.1) needs two filter families:

* **2-pole Tchebyscheff** bandpass filters at the 175 MHz IF — synthesised
  here from the classical Chebyshev g-value recursion (implemented from
  the standard formulas, no table lookup);
* a **Cauer-type** image-reject filter at 1.575 GHz whose job is a
  transmission zero at the 1.225 GHz image.  We synthesise it as a
  Chebyshev core with explicit series-LC *trap* branches resonant at the
  zero frequency (an extracted-pole / pseudo-elliptic design).  This is a
  standard RF realisation of a Cauer response and keeps the synthesis
  numerically robust; the substitution is recorded in DESIGN.md.

The lowpass-to-bandpass element transformation is the textbook one: each
series prototype element ``g`` becomes a series LC resonator, each shunt
element a parallel LC resonator, all resonant at the centre frequency,
scaled by the fractional bandwidth ``w`` and system impedance ``Z0``::

    series:  L = g Z0 / (w w0)        C = w / (g Z0 w0)
    shunt:   C = g / (w Z0 w0)        L = w Z0 / (g w0)

Dissipation loss of the finished filter is predicted by the classical
formula ``dIL = 4.343 * sum(g_i) / (w * Qu)`` dB
(:func:`dissipation_loss_db`), which the MNA analysis reproduces — the
test suite checks the two agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol

from ..errors import SynthesisError
from ..passives.filters import FilterFamily, FilterSpec
from .netlist import Circuit


# ---------------------------------------------------------------------------
# Lowpass prototype g-values
# ---------------------------------------------------------------------------

def butterworth_g_values(order: int) -> list[float]:
    """Butterworth prototype values ``g1..g_{n+1}`` (g0 = 1 implied).

    ``g_k = 2 sin((2k - 1) pi / 2n)``; the load ``g_{n+1}`` is always 1.
    """
    if order < 1:
        raise SynthesisError(f"order must be >= 1, got {order}")
    values = [
        2.0 * math.sin((2 * k - 1) * math.pi / (2 * order))
        for k in range(1, order + 1)
    ]
    values.append(1.0)
    return values


def chebyshev_g_values(order: int, ripple_db: float) -> list[float]:
    """Chebyshev type-I prototype values ``g1..g_{n+1}``.

    Standard recursion (Matthaei/Young/Jones):

    .. math::

        \\beta = \\ln\\coth(r / 17.37), \\quad
        \\gamma = \\sinh(\\beta / 2n)

        g_1 = 2 a_1 / \\gamma, \\quad
        g_k = 4 a_{k-1} a_k / (b_{k-1} g_{k-1})

    with ``a_k = sin((2k-1)pi/2n)`` and ``b_k = gamma^2 + sin^2(k pi/n)``.
    For even order the load is ``coth^2(beta/4)`` (the filter transforms
    the impedance); for odd order it is 1.
    """
    if order < 1:
        raise SynthesisError(f"order must be >= 1, got {order}")
    if ripple_db <= 0:
        raise SynthesisError(
            f"ripple must be positive dB, got {ripple_db}"
        )
    beta = math.log(1.0 / math.tanh(ripple_db / 17.37))
    gamma = math.sinh(beta / (2.0 * order))
    a = [
        math.sin((2 * k - 1) * math.pi / (2 * order))
        for k in range(1, order + 1)
    ]
    b = [
        gamma**2 + math.sin(k * math.pi / order) ** 2
        for k in range(1, order + 1)
    ]
    g = [2.0 * a[0] / gamma]
    for k in range(2, order + 1):
        g.append(4.0 * a[k - 2] * a[k - 1] / (b[k - 2] * g[k - 2]))
    if order % 2 == 1:
        load = 1.0
    else:
        load = 1.0 / math.tanh(beta / 4.0) ** 2
    g.append(load)
    return g


def prototype_g_values(spec: FilterSpec) -> list[float]:
    """Prototype values for a filter spec's family/order/ripple."""
    if spec.family is FilterFamily.BUTTERWORTH:
        return butterworth_g_values(spec.order)
    # Cauer designs use a Chebyshev core plus traps (see module docstring).
    return chebyshev_g_values(spec.order, spec.ripple_db)


def dissipation_loss_db(
    g_values: list[float],
    fractional_bandwidth: float,
    unloaded_q: float,
) -> float:
    """Classical mid-band dissipation loss of a bandpass ladder.

    ``dIL = 4.343 * sum(g_1..g_n) / (w * Qu)`` dB, where the load value
    ``g_{n+1}`` is excluded from the sum.
    """
    if fractional_bandwidth <= 0:
        raise SynthesisError("fractional bandwidth must be positive")
    if unloaded_q <= 0:
        raise SynthesisError("unloaded Q must be positive")
    resonator_sum = sum(g_values[:-1])
    return 4.343 * resonator_sum / (fractional_bandwidth * unloaded_q)


# ---------------------------------------------------------------------------
# Element-level design records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ResonatorElements:
    """Ideal L/C values of one bandpass resonator."""

    position: int
    topology: str  # "series" or "shunt"
    inductance_h: float
    capacitance_f: float

    @property
    def resonance_hz(self) -> float:
        """LC resonance, equal to the filter centre by construction."""
        return 1.0 / (
            2.0 * math.pi * math.sqrt(self.inductance_h * self.capacitance_f)
        )


@dataclass(frozen=True)
class TrapElements:
    """A series-LC branch to ground producing a transmission zero."""

    node_position: int
    inductance_h: float
    capacitance_f: float
    zero_hz: float


@dataclass(frozen=True)
class BandpassDesign:
    """A synthesised bandpass ladder, ready to be built into a circuit.

    Attributes
    ----------
    spec:
        The originating specification.
    g_values:
        Prototype values including the load term.
    resonators:
        Series/shunt resonator element values, input to output.
    traps:
        Transmission-zero branches (empty for pure Chebyshev).
    source_impedance_ohm / load_impedance_ohm:
        Terminations; even-order Chebyshev transforms the load by
        ``g_{n+1}``.
    """

    spec: FilterSpec
    g_values: tuple[float, ...]
    resonators: tuple[ResonatorElements, ...]
    traps: tuple[TrapElements, ...]
    source_impedance_ohm: float
    load_impedance_ohm: float

    @property
    def element_count(self) -> int:
        """Number of ideal L/C elements in the design."""
        return 2 * len(self.resonators) + 2 * len(self.traps)

    def inductances(self) -> list[float]:
        """All inductor values in the design (resonators then traps)."""
        values = [r.inductance_h for r in self.resonators]
        values.extend(t.inductance_h for t in self.traps)
        return values

    def capacitances(self) -> list[float]:
        """All capacitor values in the design (resonators then traps)."""
        values = [r.capacitance_f for r in self.resonators]
        values.extend(t.capacitance_f for t in self.traps)
        return values


def synthesize_bandpass(
    spec: FilterSpec,
    match_load: bool = True,
) -> BandpassDesign:
    """Synthesise a bandpass ladder for ``spec``.

    Series-first topology: ``g1`` becomes a series resonator, ``g2`` a
    shunt resonator, and so on.  For Cauer-family specs a trap branch
    resonant at the stopband zero is added at the input and output nodes
    (one trap for order <= 2).

    Parameters
    ----------
    spec:
        The filter specification.
    match_load:
        If True, the load termination absorbs the prototype ``g_{n+1}``
        (even-order Chebyshev transforms impedance); if False the load is
        kept at the system impedance and the resulting mismatch appears in
        the analysed insertion loss.
    """
    g = prototype_g_values(spec)
    w0 = 2.0 * math.pi * spec.center_hz
    fbw = spec.fractional_bandwidth
    z0 = spec.system_impedance_ohm

    resonators: list[ResonatorElements] = []
    for k in range(1, spec.order + 1):
        gk = g[k - 1]
        if k % 2 == 1:  # series resonator
            inductance = gk * z0 / (fbw * w0)
            capacitance = fbw / (gk * z0 * w0)
            topology = "series"
        else:  # shunt resonator
            capacitance = gk / (fbw * z0 * w0)
            inductance = fbw * z0 / (gk * w0)
            topology = "shunt"
        resonators.append(
            ResonatorElements(k, topology, inductance, capacitance)
        )

    traps: list[TrapElements] = []
    if spec.family is FilterFamily.CAUER:
        if spec.stop_offset_hz is None:
            raise SynthesisError(
                f"Cauer spec {spec.name!r} needs a stopband zero "
                "(stop_attenuation_db/stop_offset_hz)"
            )
        zero_hz = spec.center_hz - spec.stop_offset_hz
        if zero_hz <= 0:
            raise SynthesisError(
                f"stopband zero frequency must be positive, got {zero_hz}"
            )
        trap_positions = [0, spec.order] if spec.order > 2 else [0]
        for position in trap_positions:
            traps.append(_design_trap(position, zero_hz, z0))

    load = z0 * g[-1] if match_load else z0
    return BandpassDesign(
        spec=spec,
        g_values=tuple(g),
        resonators=tuple(resonators),
        traps=tuple(traps),
        source_impedance_ohm=z0,
        load_impedance_ohm=load,
    )


def _design_trap(
    position: int, zero_hz: float, z0: float, impedance_scale: float = 8.0
) -> TrapElements:
    """Design a series-LC trap resonant at ``zero_hz``.

    The trap's characteristic impedance ``sqrt(L/C)`` is set to
    ``impedance_scale * z0`` so that away from resonance it loads the
    filter only lightly (the passband detuning stays small), while at the
    zero it short-circuits the node.
    """
    omega_z = 2.0 * math.pi * zero_hz
    x = impedance_scale * z0  # characteristic impedance sqrt(L/C)
    inductance = x / omega_z
    capacitance = 1.0 / (x * omega_z)
    return TrapElements(position, inductance, capacitance, zero_hz)


# ---------------------------------------------------------------------------
# Circuit construction with a technology Q model
# ---------------------------------------------------------------------------

class QModel(Protocol):
    """Technology model providing unloaded Q for L and C elements."""

    def inductor_q(self, inductance_h: float, frequency_hz: float) -> float:
        """Unloaded Q of an inductor of this technology."""
        ...

    def capacitor_q(self, capacitance_f: float, frequency_hz: float) -> float:
        """Unloaded Q of a capacitor of this technology."""
        ...


def build_bandpass_circuit(
    design: BandpassDesign,
    q_model: Optional[QModel] = None,
    name: Optional[str] = None,
) -> Circuit:
    """Materialise a :class:`BandpassDesign` as an analysable circuit.

    For constant-Q technology models, finite-Q elements are created by
    converting the model's unloaded Q at the centre frequency into
    series resistance (inductors) and loss tangent (capacitors) —
    the historic path, byte-stable against the GPS goldens.  For
    *dispersive* models (``q_model.dispersive`` true, see
    :func:`repro.circuits.qfactor.is_dispersive`) the elements are
    :class:`~repro.circuits.elements.DispersiveInductor` /
    :class:`~repro.circuits.elements.DispersiveCapacitor`, which carry
    the model itself and re-evaluate ``Q(f)`` at every analysed
    frequency.  Ports are attached at the input and output nodes with
    the design's termination impedances.
    """
    from .elements import (  # cycle-free
        dispersive_capacitor,
        dispersive_inductor,
        lossy_capacitor,
        lossy_inductor,
    )
    from .qfactor import is_dispersive  # cycle-free

    spec = design.spec
    circuit = Circuit(name=name or f"{spec.name} bandpass")
    f0 = spec.center_hz
    dispersive = is_dispersive(q_model)

    def q_of_inductor(value: float) -> float:
        if q_model is None:
            return math.inf
        return q_model.inductor_q(value, f0)

    def q_of_capacitor(value: float) -> float:
        if q_model is None:
            return math.inf
        return q_model.capacitor_q(value, f0)

    def make_inductor(element_name: str, a: str, b: str, value: float):
        if dispersive:
            return dispersive_inductor(element_name, a, b, value, q_model)
        return lossy_inductor(
            element_name, a, b, value, q_of_inductor(value), f0
        )

    def make_capacitor(element_name: str, a: str, b: str, value: float):
        if dispersive:
            return dispersive_capacitor(element_name, a, b, value, q_model)
        return lossy_capacitor(
            element_name, a, b, value, q_of_capacitor(value), f0
        )

    node = "in"
    next_node = 1
    for resonator in design.resonators:
        k = resonator.position
        if resonator.topology == "series":
            mid = f"n{next_node}"
            next_node += 1
            is_last = k == design.spec.order
            out = "out" if is_last else f"n{next_node}"
            if not is_last:
                next_node += 1
            circuit.add(
                make_inductor(f"L{k}", node, mid, resonator.inductance_h)
            )
            circuit.add(
                make_capacitor(f"C{k}", mid, out, resonator.capacitance_f)
            )
            node = out
        else:
            # Shunt resonator hangs at the current node; the signal path
            # continues on the same node.
            circuit.add(
                make_inductor(f"L{k}", node, "0", resonator.inductance_h)
            )
            circuit.add(
                make_capacitor(f"C{k}", node, "0", resonator.capacitance_f)
            )
    if node != "out":
        # Ladder ended on a shunt section: the output is the current node.
        _rename_node(circuit, node, "out")

    for trap in design.traps:
        anchor = "in" if trap.node_position == 0 else "out"
        mid = f"trap{trap.node_position}_mid"
        circuit.add(
            make_inductor(
                f"Lt{trap.node_position}", anchor, mid, trap.inductance_h
            )
        )
        circuit.add(
            make_capacitor(
                f"Ct{trap.node_position}", mid, "0", trap.capacitance_f
            )
        )

    circuit.port("p1", "in", design.source_impedance_ohm)
    circuit.port("p2", "out", design.load_impedance_ohm)
    return circuit


def _rename_node(circuit: Circuit, old: str, new: str) -> None:
    """Rename a node on every element (dataclasses are frozen: rebuild)."""
    from dataclasses import replace

    renamed = []
    for element in circuit.elements:
        node_a = new if element.node_a == old else element.node_a
        node_b = new if element.node_b == old else element.node_b
        if node_a != element.node_a or node_b != element.node_b:
            element = replace(element, node_a=node_a, node_b=node_b)
        renamed.append(element)
    circuit.elements = renamed
