"""Lumped circuit elements for AC (small-signal) analysis.

Every element is a two-terminal admittance between two named nodes; the
MNA engine only needs :meth:`~Element.admittance` at a given angular
frequency.  Loss is modelled where the physics puts it:

* resistors are ideal conductances;
* capacitors have a loss tangent (dielectric loss) and optional ESR;
* inductors have a series resistance, the dominant loss of thin-film
  spirals, plus an optional parallel self-resonance capacitance.

Finite-Q components are created from Q values by
:func:`lossy_inductor` / :func:`lossy_capacitor`, which convert an
unloaded Q at a reference frequency into the corresponding physical loss
element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CircuitError
from .qfactor import capacitor_q_profile, inductor_q_profile

GROUND = "0"


def _validate_omegas(omegas: np.ndarray) -> np.ndarray:
    """Coerce to a 1-D float array of strictly positive frequencies."""
    array = np.asarray(omegas, dtype=float)
    if array.ndim != 1:
        raise CircuitError(
            f"omegas must be a 1-D array, got shape {array.shape}"
        )
    if array.size == 0:
        raise CircuitError("omegas must not be empty")
    if np.any(array <= 0):
        bad = float(array[array <= 0][0])
        raise CircuitError(f"AC analysis requires omega > 0, got {bad}")
    return array


@dataclass(frozen=True)
class Element:
    """Base class: a two-terminal element between ``node_a`` and ``node_b``."""

    name: str
    node_a: str
    node_b: str

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise CircuitError(
                f"element {self.name!r} has both terminals on node "
                f"{self.node_a!r}"
            )

    def admittance(self, omega: float) -> complex:
        """Complex admittance at angular frequency ``omega`` (rad/s)."""
        raise NotImplementedError

    def admittances(self, omegas: np.ndarray) -> np.ndarray:
        """Vectorised admittance over a 1-D array of angular frequencies.

        The base implementation falls back to the scalar
        :meth:`admittance` in a loop; the concrete R/L/C elements override
        it with closed-form numpy expressions so a whole frequency grid is
        evaluated in one shot (the hot path of the batch MNA engine).
        """
        array = _validate_omegas(omegas)
        return np.array(
            [self.admittance(float(w)) for w in array], dtype=complex
        )


@dataclass(frozen=True)
class Resistor(Element):
    """Ideal resistor."""

    resistance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resistance <= 0:
            raise CircuitError(
                f"resistor {self.name!r} needs a positive resistance, "
                f"got {self.resistance}"
            )

    def admittance(self, omega: float) -> complex:
        return complex(1.0 / self.resistance, 0.0)

    def admittances(self, omegas: np.ndarray) -> np.ndarray:
        array = _validate_omegas(omegas)
        return np.full(array.shape, 1.0 / self.resistance, dtype=complex)


@dataclass(frozen=True)
class Capacitor(Element):
    """Capacitor with loss tangent and equivalent series resistance.

    The admittance of the series combination of ESR and the lossy
    dielectric is used; with ``esr == 0`` and ``tan_delta == 0`` this is an
    ideal capacitor.
    """

    capacitance: float = 0.0
    tan_delta: float = 0.0
    esr: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0:
            raise CircuitError(
                f"capacitor {self.name!r} needs a positive capacitance, "
                f"got {self.capacitance}"
            )
        if self.tan_delta < 0 or self.esr < 0:
            raise CircuitError(
                f"capacitor {self.name!r} loss terms cannot be negative"
            )

    def admittance(self, omega: float) -> complex:
        if omega <= 0:
            raise CircuitError("AC analysis requires omega > 0")
        # Delegate to the vectorised path so scalar and batched analyses
        # stamp bit-identical values (the property suite solves both and
        # compares; conditioning would amplify any ulp difference).
        return complex(self.admittances(np.array([float(omega)]))[0])

    def admittances(self, omegas: np.ndarray) -> np.ndarray:
        array = _validate_omegas(omegas)
        # Dielectric loss: Y_diel = omega C (tan_delta + j)
        y_diel = array * self.capacitance * complex(self.tan_delta, 1.0)
        if self.esr == 0.0:
            return y_diel
        return 1.0 / (self.esr + 1.0 / y_diel)


@dataclass(frozen=True)
class Inductor(Element):
    """Inductor with series resistance and parasitic shunt capacitance.

    The series branch ``R_s + j omega L`` models conductor loss; the
    optional ``c_par`` across the branch models the self-resonance of a
    planar spiral.
    """

    inductance: float = 0.0
    series_resistance: float = 0.0
    c_par: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0:
            raise CircuitError(
                f"inductor {self.name!r} needs a positive inductance, "
                f"got {self.inductance}"
            )
        if self.series_resistance < 0 or self.c_par < 0:
            raise CircuitError(
                f"inductor {self.name!r} loss terms cannot be negative"
            )

    def admittance(self, omega: float) -> complex:
        if omega <= 0:
            raise CircuitError("AC analysis requires omega > 0")
        # Delegate to the vectorised path (see Capacitor.admittance).
        return complex(self.admittances(np.array([float(omega)]))[0])

    def admittances(self, omegas: np.ndarray) -> np.ndarray:
        array = _validate_omegas(omegas)
        z_series = self.series_resistance + 1j * array * self.inductance
        y = 1.0 / z_series
        if self.c_par > 0.0:
            y = y + 1j * array * self.c_par
        return y

    @property
    def self_resonance_hz(self) -> float:
        """Self-resonant frequency; infinite when ``c_par`` is zero."""
        if self.c_par == 0.0:
            return math.inf
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance * self.c_par))


def _loss_from_q(q: np.ndarray) -> np.ndarray:
    """``1/Q`` with non-finite or non-positive Q treated as lossless."""
    lossy = np.isfinite(q) & (q > 0)
    return np.where(lossy, 1.0 / np.where(lossy, q, 1.0), 0.0)


@dataclass(frozen=True)
class DispersiveInductor(Element):
    """Inductor whose series loss follows a frequency-dependent Q model.

    Where :class:`Inductor` freezes its series resistance (a Q value
    converted at one reference frequency), this element re-evaluates
    ``R_s(f) = omega L / Q(f)`` from its technology model at every
    analysed frequency — the realisation dispersive Q models ask for.
    ``q_model`` must be a hashable value object (a frozen dataclass)
    providing ``inductor_q`` and preferably a vectorised
    ``inductor_q_profile``; admittance evaluation is then one numpy
    expression over the whole grid.
    """

    inductance: float = 0.0
    q_model: object = None
    c_par: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inductance <= 0:
            raise CircuitError(
                f"inductor {self.name!r} needs a positive inductance, "
                f"got {self.inductance}"
            )
        if self.q_model is None:
            raise CircuitError(
                f"dispersive inductor {self.name!r} needs a Q model"
            )
        if self.c_par < 0:
            raise CircuitError(
                f"inductor {self.name!r} loss terms cannot be negative"
            )

    def admittance(self, omega: float) -> complex:
        if omega <= 0:
            raise CircuitError("AC analysis requires omega > 0")
        # Delegate to the vectorised path (see Capacitor.admittance).
        return complex(self.admittances(np.array([float(omega)]))[0])

    def admittances(self, omegas: np.ndarray) -> np.ndarray:
        array = _validate_omegas(omegas)
        freqs = array / (2.0 * math.pi)
        q = np.asarray(
            inductor_q_profile(self.q_model, self.inductance, freqs),
            dtype=float,
        )
        reactance = array * self.inductance
        series_r = reactance * _loss_from_q(q)
        y = 1.0 / (series_r + 1j * reactance)
        if self.c_par > 0.0:
            y = y + 1j * array * self.c_par
        return y


@dataclass(frozen=True)
class DispersiveCapacitor(Element):
    """Capacitor whose loss tangent follows a frequency-dependent Q model.

    ``tan_delta(f) = 1 / Q(f)`` is re-evaluated from the technology
    model at every analysed frequency; the admittance is the lossy
    dielectric ``Y = omega C (tan_delta(f) + j)``, evaluated as one
    numpy expression over the grid.
    """

    capacitance: float = 0.0
    q_model: object = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacitance <= 0:
            raise CircuitError(
                f"capacitor {self.name!r} needs a positive capacitance, "
                f"got {self.capacitance}"
            )
        if self.q_model is None:
            raise CircuitError(
                f"dispersive capacitor {self.name!r} needs a Q model"
            )

    def admittance(self, omega: float) -> complex:
        if omega <= 0:
            raise CircuitError("AC analysis requires omega > 0")
        # Delegate to the vectorised path (see Capacitor.admittance).
        return complex(self.admittances(np.array([float(omega)]))[0])

    def admittances(self, omegas: np.ndarray) -> np.ndarray:
        array = _validate_omegas(omegas)
        freqs = array / (2.0 * math.pi)
        q = np.asarray(
            capacitor_q_profile(self.q_model, self.capacitance, freqs),
            dtype=float,
        )
        tan_delta = _loss_from_q(q)
        return array * self.capacitance * (tan_delta + 1j)


def dispersive_inductor(
    name: str,
    node_a: str,
    node_b: str,
    inductance: float,
    q_model,
    c_par: float = 0.0,
) -> DispersiveInductor:
    """Create an inductor bound to a frequency-dependent Q model."""
    return DispersiveInductor(
        name=name,
        node_a=node_a,
        node_b=node_b,
        inductance=inductance,
        q_model=q_model,
        c_par=c_par,
    )


def dispersive_capacitor(
    name: str,
    node_a: str,
    node_b: str,
    capacitance: float,
    q_model,
) -> DispersiveCapacitor:
    """Create a capacitor bound to a frequency-dependent Q model."""
    return DispersiveCapacitor(
        name=name,
        node_a=node_a,
        node_b=node_b,
        capacitance=capacitance,
        q_model=q_model,
    )


def lossy_inductor(
    name: str,
    node_a: str,
    node_b: str,
    inductance: float,
    q: float,
    at_hz: float,
    c_par: float = 0.0,
) -> Inductor:
    """Create an inductor whose unloaded Q at ``at_hz`` equals ``q``.

    ``Q = omega L / R_s`` fixes the series resistance.  A non-finite or
    non-positive ``q`` yields an essentially lossless inductor.
    """
    if inductance <= 0:
        raise CircuitError(f"inductance must be positive, got {inductance}")
    if at_hz <= 0:
        raise CircuitError(f"reference frequency must be positive, got {at_hz}")
    omega = 2.0 * math.pi * at_hz
    if q is None or not math.isfinite(q) or q <= 0:
        series_r = 0.0
    else:
        series_r = omega * inductance / q
    return Inductor(
        name=name,
        node_a=node_a,
        node_b=node_b,
        inductance=inductance,
        series_resistance=series_r,
        c_par=c_par,
    )


def lossy_capacitor(
    name: str,
    node_a: str,
    node_b: str,
    capacitance: float,
    q: float,
    at_hz: float = 0.0,
) -> Capacitor:
    """Create a capacitor whose unloaded Q equals ``q`` (tan delta = 1/Q).

    Dielectric loss tangent is frequency-flat, so ``at_hz`` is accepted for
    interface symmetry but unused.
    """
    del at_hz  # dielectric loss tangent is frequency-independent
    if capacitance <= 0:
        raise CircuitError(f"capacitance must be positive, got {capacitance}")
    if q is None or not math.isfinite(q) or q <= 0:
        tan_delta = 0.0
    else:
        tan_delta = 1.0 / q
    return Capacitor(
        name=name,
        node_a=node_a,
        node_b=node_b,
        capacitance=capacitance,
        tan_delta=tan_delta,
    )


def stacked_admittances(
    elements: "list[Element]", omegas: np.ndarray
) -> np.ndarray:
    """``(B, F)`` admittances of one element *slot* of a circuit family.

    ``elements`` holds the same structural slot of ``B`` circuits that
    share a topology (same element kind between the same nodes, different
    values).  When every element is a concrete :class:`Resistor`,
    :class:`Capacitor` or :class:`Inductor`, the whole slot is evaluated
    with one numpy expression over ``(B, F)``; the operation order of the
    per-element :meth:`Element.admittances` formulas is preserved exactly,
    so the stacked values are bit-identical to evaluating each circuit on
    its own.  Mixed or unknown element types fall back to the per-element
    vectorised path.
    """
    array = _validate_omegas(omegas)
    members = list(elements)
    if not members:
        raise CircuitError("stacked admittances need at least one element")

    if all(type(e) is Resistor for e in members):
        conductance = 1.0 / np.array(
            [e.resistance for e in members], dtype=float
        )
        out = np.empty((len(members), array.size), dtype=complex)
        out[:] = conductance[:, None]
        return out

    if all(type(e) is Capacitor for e in members):
        capacitance = np.array([e.capacitance for e in members])[:, None]
        loss = np.array(
            [complex(e.tan_delta, 1.0) for e in members]
        )[:, None]
        esr = np.array([e.esr for e in members])[:, None]
        y_diel = array[None, :] * capacitance * loss
        if not np.any(esr > 0.0):
            return y_diel
        # np.where keeps the esr == 0 rows bit-identical to y_diel
        # (1 / (1/y) is not an exact round trip).
        return np.where(esr == 0.0, y_diel, 1.0 / (esr + 1.0 / y_diel))

    if all(type(e) is Inductor for e in members):
        inductance = np.array([e.inductance for e in members])[:, None]
        series_r = np.array(
            [e.series_resistance for e in members]
        )[:, None]
        c_par = np.array([e.c_par for e in members])[:, None]
        y = 1.0 / (series_r + 1j * array[None, :] * inductance)
        if not np.any(c_par > 0.0):
            return y
        # Guard c_par == 0 rows: y + 0j could flip signed zeros.
        return np.where(c_par > 0.0, y + 1j * array[None, :] * c_par, y)

    if all(type(e) is DispersiveInductor for e in members):
        stacked = _stacked_dispersive_inductors(members, array)
        if stacked is not None:
            return stacked

    if all(type(e) is DispersiveCapacitor for e in members):
        stacked = _stacked_dispersive_capacitors(members, array)
        if stacked is not None:
            return stacked

    return np.array([e.admittances(array) for e in members], dtype=complex)


def _stacked_dispersive_inductors(
    members: "list[DispersiveInductor]", array: np.ndarray
) -> np.ndarray | None:
    """``(B, F)`` fast path of a dispersive-inductor slot.

    Applies when every member shares one Q model with a stacked
    ``inductor_q_profiles`` evaluator: the whole slot's Q block is one
    model call and the admittance one numpy expression.  Operation
    order mirrors :meth:`DispersiveInductor.admittances` exactly (and
    the shipped models' stacked profiles are row-for-row bit-identical
    to their grid profiles), so the result matches evaluating each
    member alone bit for bit.  Returns None when models differ across
    the slot — the caller then falls back to per-member evaluation.
    """
    model = members[0].q_model
    profiles = getattr(model, "inductor_q_profiles", None)
    if profiles is None or any(
        e.q_model != model for e in members[1:]
    ):
        return None
    values = np.array([e.inductance for e in members], dtype=float)
    freqs = array / (2.0 * math.pi)
    q = np.asarray(profiles(values, freqs), dtype=float)
    reactance = array[None, :] * values[:, None]
    series_r = reactance * _loss_from_q(q)
    y = 1.0 / (series_r + 1j * reactance)
    c_par = np.array([e.c_par for e in members])[:, None]
    if not np.any(c_par > 0.0):
        return y
    # Guard c_par == 0 rows: y + 0j could flip signed zeros.
    return np.where(c_par > 0.0, y + 1j * array[None, :] * c_par, y)


def _stacked_dispersive_capacitors(
    members: "list[DispersiveCapacitor]", array: np.ndarray
) -> np.ndarray | None:
    """``(B, F)`` fast path of a dispersive-capacitor slot.

    Same contract as :func:`_stacked_dispersive_inductors`: one
    ``capacitor_q_profiles`` call for the slot when all members share a
    model, bit-identical operation order, None on mixed models.
    """
    model = members[0].q_model
    profiles = getattr(model, "capacitor_q_profiles", None)
    if profiles is None or any(
        e.q_model != model for e in members[1:]
    ):
        return None
    values = np.array([e.capacitance for e in members], dtype=float)
    freqs = array / (2.0 * math.pi)
    q = np.asarray(profiles(values, freqs), dtype=float)
    tan_delta = _loss_from_q(q)
    return array[None, :] * values[:, None] * (tan_delta + 1j)


@dataclass(frozen=True)
class Port:
    """An analysis port: a node (referenced to ground) with an impedance."""

    name: str
    node: str
    impedance: float = 50.0

    def __post_init__(self) -> None:
        if self.node == GROUND:
            raise CircuitError(f"port {self.name!r} cannot sit on ground")
        if self.impedance <= 0:
            raise CircuitError(
                f"port {self.name!r} needs a positive reference impedance"
            )
