"""Two-port S-parameter extraction and insertion-loss measurement.

The filter analyses in the paper are all two-port questions: what is the
insertion loss at the GPS frequency, what is the rejection at the image
frequency.  This module turns a :class:`~repro.circuits.netlist.Circuit`
with two declared ports into S-parameters:

1. stamp the node admittance matrix (ports unterminated),
2. add the port reference admittances ``1/Z0`` at the port nodes,
3. solve for the port voltages under unit-incident-wave excitation,
4. read off ``S_jk`` from the voltage waves.

Frequency sweeps are *batched*: :func:`sweep_grid` stamps the whole
``(F, n, n)`` admittance tensor once (via the cached
:class:`~repro.circuits.mna.StampPlan`) and solves every frequency and
both excitations with a single ``numpy.linalg.solve`` call.  Circuit
*families* (same topology, different element values) are additionally
*stacked*: :func:`sweep_grid_stacked` / :func:`sweep_stacked` stamp a
``(B, F, n, n)`` tensor and solve every member, frequency and excitation
in one LAPACK batch, bit-identical to sweeping each member alone.  The
pre-vectorisation per-frequency loop survives as
:func:`sweep_pointwise`, the reference implementation the property tests
and the speed benchmark compare against.

Results are wrapped in :class:`SweepResult`, which provides the dB views
used by the performance scorer and the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import CircuitError
from .mna import (
    AcAnalysis,
    StampPlan,
    batch_solve_nodal,
    family_admittance_matrix,
    node_admittance_matrix,
    node_index,
)
from .netlist import Circuit


@dataclass(frozen=True)
class SParameters:
    """S-matrix of a two-port at one frequency."""

    frequency_hz: float
    s11: complex
    s12: complex
    s21: complex
    s22: complex

    @property
    def insertion_loss_db(self) -> float:
        """``-20 log10 |S21|``; positive numbers mean loss."""
        magnitude = abs(self.s21)
        if magnitude == 0.0:
            return math.inf
        return -20.0 * math.log10(magnitude)

    @property
    def return_loss_db(self) -> float:
        """``-20 log10 |S11|`` at the input port."""
        magnitude = abs(self.s11)
        if magnitude == 0.0:
            return math.inf
        return -20.0 * math.log10(magnitude)

    @property
    def is_passive(self) -> bool:
        """True if no scattering entry exceeds unity (within tolerance)."""
        tolerance = 1.0 + 1e-9
        return all(
            abs(s) <= tolerance
            for s in (self.s11, self.s12, self.s21, self.s22)
        )


def _check_two_ports(circuit: Circuit) -> tuple:
    """Validate the two-port contract; return (port1, port2, index)."""
    if len(circuit.ports) != 2:
        raise CircuitError(
            f"two-port extraction needs exactly 2 ports, circuit "
            f"{circuit.name!r} has {len(circuit.ports)}"
        )
    port1, port2 = circuit.ports
    index = node_index(circuit)
    for port in (port1, port2):
        if port.node not in index:
            raise CircuitError(
                f"port {port.name!r} node {port.node!r} not in circuit"
            )
    return port1, port2, index


def two_port_sparameters(
    circuit: Circuit, frequency_hz: float
) -> SParameters:
    """Compute the S-parameters of a circuit with exactly two ports.

    Uses the terminated-excitation method, which (unlike the open-circuit
    Z-parameter route) exists for every linear passive network, including
    series-only two-ports: both port reference admittances ``1/Z0`` are
    stamped into the node matrix, port ``k`` is driven by the Norton
    equivalent of a ``2 sqrt(Z0k)`` source behind ``Z0k``, giving unit
    incident wave ``a_k = 1``; then ``S_jk = V_j / sqrt(Z0j)`` for
    ``j != k`` and ``S_kk = V_k / sqrt(Z0k) - 1``.
    """
    port1, port2, index = _check_two_ports(circuit)
    omega = 2.0 * math.pi * frequency_hz
    matrix = node_admittance_matrix(circuit, omega, index)

    rows = [index[port1.node], index[port2.node]]
    z0 = np.array([port1.impedance, port2.impedance], dtype=float)
    sqrt_z0 = np.sqrt(z0)

    # Terminate both ports with their reference admittances.
    for row, impedance in zip(rows, z0):
        matrix[row, row] += 1.0 / impedance

    # One excitation per port: Norton current 2 / sqrt(Z0k) at node k
    # gives a unit incident wave at port k.
    rhs = np.zeros((len(index), 2), dtype=complex)
    rhs[rows[0], 0] = 2.0 / sqrt_z0[0]
    rhs[rows[1], 1] = 2.0 / sqrt_z0[1]
    try:
        solution = np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise CircuitError(
            f"singular admittance matrix at {frequency_hz:g} Hz in "
            f"{circuit.name!r}"
        ) from exc

    port_voltages = solution[rows, :]  # V[j, k]: node j, excitation k
    s = port_voltages / sqrt_z0[:, None]
    s[0, 0] -= 1.0
    s[1, 1] -= 1.0
    return SParameters(
        frequency_hz=frequency_hz,
        s11=complex(s[0, 0]),
        s12=complex(s[0, 1]),
        s21=complex(s[1, 0]),
        s22=complex(s[1, 1]),
    )


def _loss_db(magnitudes: np.ndarray) -> np.ndarray:
    """Vectorised ``-20 log10 |s|`` with ``inf`` at exact zeros."""
    result = np.full(magnitudes.shape, math.inf)
    nonzero = magnitudes > 0.0
    result[nonzero] = -20.0 * np.log10(magnitudes[nonzero])
    return result


@dataclass
class SweepResult:
    """S-parameters over a frequency grid.

    The batched engine fills ``s_matrices`` (shape ``(F, 2, 2)``); the
    dB views then evaluate vectorised.  ``points`` is materialised
    lazily for callers that want per-point :class:`SParameters` objects.
    """

    frequencies_hz: np.ndarray
    s_matrices: Optional[np.ndarray] = None
    _points: Optional[list[SParameters]] = field(default=None, repr=False)

    @classmethod
    def from_points(cls, frequencies_hz, points) -> "SweepResult":
        """Build from per-point S-parameters (the pointwise path)."""
        matrices = np.array(
            [[[p.s11, p.s12], [p.s21, p.s22]] for p in points],
            dtype=complex,
        ).reshape(-1, 2, 2)
        result = cls(
            frequencies_hz=np.asarray(frequencies_hz, dtype=float),
            s_matrices=matrices,
        )
        result._points = list(points)
        return result

    @property
    def points(self) -> list[SParameters]:
        """Per-point S-parameter objects (materialised on first use)."""
        if self._points is None:
            s = self._require_matrices()
            self._points = [
                SParameters(
                    frequency_hz=float(f),
                    s11=complex(m[0, 0]),
                    s12=complex(m[0, 1]),
                    s21=complex(m[1, 0]),
                    s22=complex(m[1, 1]),
                )
                for f, m in zip(self.frequencies_hz, s)
            ]
        return self._points

    def _require_matrices(self) -> np.ndarray:
        if self.s_matrices is None:
            raise CircuitError("empty sweep")
        return self.s_matrices

    @property
    def s21(self) -> np.ndarray:
        """Complex ``S21`` at every sweep point."""
        return self._require_matrices()[:, 1, 0]

    @property
    def s11(self) -> np.ndarray:
        """Complex ``S11`` at every sweep point."""
        return self._require_matrices()[:, 0, 0]

    @property
    def insertion_loss_db(self) -> np.ndarray:
        """Insertion loss in dB at every sweep point (vectorised)."""
        return _loss_db(np.abs(self.s21))

    @property
    def return_loss_db(self) -> np.ndarray:
        """Return loss in dB at every sweep point (vectorised)."""
        return _loss_db(np.abs(self.s11))

    def at(self, frequency_hz: float) -> SParameters:
        """The sweep point nearest to ``frequency_hz``."""
        if len(self.frequencies_hz) == 0 or self.s_matrices is None:
            raise CircuitError("empty sweep")
        i = int(np.argmin(np.abs(self.frequencies_hz - frequency_hz)))
        return self.points[i]

    def min_insertion_loss_db(self) -> float:
        """Lowest insertion loss across the sweep (the passband floor)."""
        return float(np.min(self.insertion_loss_db))

    def loss_at(self, frequency_hz: float) -> float:
        """Insertion loss in dB at the nearest sweep point."""
        return self.at(frequency_hz).insertion_loss_db


def _validate_grid(frequencies_hz) -> np.ndarray:
    """Coerce an explicit grid to a 1-D array of positive frequencies.

    The single validation gate of every sweep entry point — batched,
    stacked and pointwise alike — so the error contract cannot drift
    between the engine and its reference implementation.
    """
    grid = np.asarray(frequencies_hz, dtype=float)
    if grid.ndim == 0:
        grid = grid[None]
    if grid.size == 0:
        raise CircuitError("sweep needs at least one frequency")
    if np.any(grid <= 0):
        raise CircuitError(
            f"sweep frequencies must be positive, got {grid.min()}"
        )
    return grid


def sweep_grid(
    circuit: Circuit,
    frequencies_hz,
    plan: Optional[StampPlan] = None,
) -> SweepResult:
    """Batched two-port S-parameters over an explicit frequency grid.

    The whole grid is stamped as one ``(F, n, n)`` tensor and solved for
    both port excitations with a single batched ``numpy.linalg.solve``
    call — the hot path of every filter assessment.
    """
    port1, port2, index = _check_two_ports(circuit)
    grid = _validate_grid(frequencies_hz)
    if plan is None:
        plan = StampPlan(circuit, index)
    matrices = plan.matrices(2.0 * math.pi * grid)

    rows = [index[port1.node], index[port2.node]]
    z0 = np.array([port1.impedance, port2.impedance], dtype=float)
    sqrt_z0 = np.sqrt(z0)

    # Terminate both ports (loop handles ports sharing a node correctly).
    for row, impedance in zip(rows, z0):
        matrices[:, row, row] += 1.0 / impedance

    rhs = np.zeros((len(index), 2), dtype=complex)
    rhs[rows[0], 0] = 2.0 / sqrt_z0[0]
    rhs[rows[1], 1] = 2.0 / sqrt_z0[1]
    try:
        solution = batch_solve_nodal(matrices, rhs)
    except CircuitError as exc:
        raise CircuitError(
            f"singular admittance matrix in sweep of {circuit.name!r}"
        ) from exc

    s = solution[:, rows, :] / sqrt_z0[None, :, None]
    s[:, 0, 0] -= 1.0
    s[:, 1, 1] -= 1.0
    return SweepResult(frequencies_hz=grid, s_matrices=s)


@dataclass
class StackedSweepResult:
    """S-parameters of a circuit *family* over one shared frequency grid.

    ``s_matrices`` has shape ``(B, F, 2, 2)`` — one S-matrix per family
    member per frequency.  Every member slice is bit-identical to what
    :func:`sweep_grid` returns for that circuit alone; the dB views
    evaluate vectorised over the whole family.
    """

    frequencies_hz: np.ndarray
    s_matrices: np.ndarray

    def __len__(self) -> int:
        return self.s_matrices.shape[0]

    def result(self, member: int) -> SweepResult:
        """One family member's sweep as a plain :class:`SweepResult`."""
        return SweepResult(
            frequencies_hz=self.frequencies_hz,
            s_matrices=self.s_matrices[member],
        )

    def results(self) -> list[SweepResult]:
        """Per-member :class:`SweepResult` views, in family order."""
        return [self.result(b) for b in range(len(self))]

    @property
    def s21(self) -> np.ndarray:
        """Complex ``S21``, shape ``(B, F)``."""
        return self.s_matrices[:, :, 1, 0]

    @property
    def s11(self) -> np.ndarray:
        """Complex ``S11``, shape ``(B, F)``."""
        return self.s_matrices[:, :, 0, 0]

    @property
    def insertion_loss_db(self) -> np.ndarray:
        """Insertion loss in dB, shape ``(B, F)`` (vectorised)."""
        return _loss_db(np.abs(self.s21))

    @property
    def return_loss_db(self) -> np.ndarray:
        """Return loss in dB, shape ``(B, F)`` (vectorised)."""
        return _loss_db(np.abs(self.s11))


def sweep_grid_stacked(
    circuits,
    frequencies_hz,
    plan: Optional[StampPlan] = None,
) -> StackedSweepResult:
    """Two-port S-parameters of a circuit family, one stacked solve.

    ``circuits`` is a family of structurally identical two-ports (same
    topology and port placement, different element values).  The whole
    family is stamped as one ``(B, F, n, n)`` tensor and every member,
    frequency and excitation is solved with a *single* batched
    ``numpy.linalg.solve`` call.  Port reference impedances may differ
    per member (an even-order Chebyshev family transforms its load).

    Each member's slice is bit-identical to :func:`sweep_grid` on that
    circuit alone: stamping accumulates in the same order and LAPACK
    factorises each ``(n, n)`` matrix independently of the batch shape.
    """
    members = list(circuits)
    if not members:
        raise CircuitError("stacked sweep needs at least one circuit")
    port1, port2, index = _check_two_ports(members[0])
    grid = _validate_grid(frequencies_hz)
    if plan is None:
        plan = StampPlan(members[0], index)
    rows = [index[port1.node], index[port2.node]]
    first_port_nodes = [port1.node, port2.node]
    for circuit in members[1:]:
        # Same port node names means same matrix rows once the family
        # stamping below validates the member's topology; only members
        # with renamed nodes need their own index resolution.
        if [p.node for p in circuit.ports] == first_port_nodes:
            continue
        p1, p2, idx = _check_two_ports(circuit)
        if [idx[p1.node], idx[p2.node]] != rows:
            raise CircuitError(
                f"circuit {circuit.name!r} places its ports on different "
                "matrix rows than the rest of the family"
            )

    matrices = family_admittance_matrix(
        members, 2.0 * math.pi * grid, plan=plan
    )

    # (B, 2) per-member port reference impedances.
    z0 = np.array(
        [[c.ports[0].impedance, c.ports[1].impedance] for c in members],
        dtype=float,
    )
    sqrt_z0 = np.sqrt(z0)

    # Terminate both ports of every member (loop handles shared nodes).
    for k, row in enumerate(rows):
        matrices[:, :, row, row] += (1.0 / z0[:, k])[:, None]

    rhs = np.zeros((len(members), 1, len(index), 2), dtype=complex)
    rhs[:, 0, rows[0], 0] = 2.0 / sqrt_z0[:, 0]
    rhs[:, 0, rows[1], 1] = 2.0 / sqrt_z0[:, 1]
    try:
        solution = batch_solve_nodal(
            matrices,
            np.broadcast_to(rhs, matrices.shape[:2] + rhs.shape[2:]),
        )
    except CircuitError as exc:
        raise CircuitError(
            "singular admittance matrix in stacked sweep of "
            f"{members[0].name!r} family"
        ) from exc

    s = solution[:, :, rows, :] / sqrt_z0[:, None, :, None]
    s[:, :, 0, 0] -= 1.0
    s[:, :, 1, 1] -= 1.0
    return StackedSweepResult(frequencies_hz=grid, s_matrices=s)


def sweep_stacked(
    circuits,
    start_hz: float,
    stop_hz: float,
    points: int = 201,
    log_spacing: bool = False,
) -> StackedSweepResult:
    """Sweep a whole circuit family over ``[start_hz, stop_hz]``.

    The family analogue of :func:`sweep`: one stacked ``(B, F, n, n)``
    stamp, one LAPACK batch for every member and frequency.
    """
    grid = _sweep_frequencies(start_hz, stop_hz, points, log_spacing)
    return sweep_grid_stacked(circuits, grid)


def two_port_sparameters_stacked(
    circuits, frequency_hz: float
) -> list[SParameters]:
    """S-parameters of every family member at one frequency (stacked)."""
    stacked = sweep_grid_stacked(circuits, [frequency_hz])
    return [stacked.result(b).points[0] for b in range(len(stacked))]


def _sweep_frequencies(
    start_hz: float, stop_hz: float, points: int, log_spacing: bool
) -> np.ndarray:
    if start_hz <= 0 or stop_hz <= start_hz:
        raise CircuitError(
            f"need 0 < start < stop, got [{start_hz}, {stop_hz}]"
        )
    if points < 2:
        raise CircuitError(f"need at least 2 sweep points, got {points}")
    if log_spacing:
        return np.geomspace(start_hz, stop_hz, points)
    return np.linspace(start_hz, stop_hz, points)


def sweep(
    circuit: Circuit,
    start_hz: float,
    stop_hz: float,
    points: int = 201,
    log_spacing: bool = False,
) -> SweepResult:
    """Sweep the two-port S-parameters over ``[start_hz, stop_hz]``.

    Evaluates the whole grid through the batched engine; see
    :func:`sweep_pointwise` for the per-frequency reference loop.
    """
    grid = _sweep_frequencies(start_hz, stop_hz, points, log_spacing)
    return sweep_grid(circuit, grid)


def sweep_pointwise(
    circuit: Circuit,
    start_hz: float,
    stop_hz: float,
    points: int = 201,
    log_spacing: bool = False,
) -> SweepResult:
    """Per-frequency REFERENCE sweep (one stamp + solve per point).

    This is the reference implementation the batched and stacked engines
    are measured against — keep it a plain per-frequency loop.  As a
    drift guard it builds and validates its grid through the *same*
    helpers as the batched path (:func:`_sweep_frequencies` /
    :func:`_validate_grid`), so the two paths can never disagree on
    which grids are legal, only on how fast they evaluate them.  The
    property tests assert the batched path agrees with this one to
    1e-12, and ``benchmarks/test_sweep_speed.py`` measures the speedup.
    """
    grid = _validate_grid(
        _sweep_frequencies(start_hz, stop_hz, points, log_spacing)
    )
    results = [two_port_sparameters(circuit, f) for f in grid]
    return SweepResult.from_points(grid, results)


def measure_insertion_loss(
    circuit: Circuit, frequency_hz: float
) -> float:
    """Insertion loss in dB of a two-port circuit at one frequency."""
    return two_port_sparameters(circuit, frequency_hz).insertion_loss_db


def measure_insertion_loss_many(
    circuit: Circuit, frequencies_hz
) -> np.ndarray:
    """Insertion loss in dB at every frequency of a grid (batched)."""
    return sweep_grid(circuit, frequencies_hz).insertion_loss_db


def measure_rejection(
    circuit: Circuit,
    passband_hz: float,
    stopband_hz: float,
) -> float:
    """Stopband rejection relative to the passband, in dB.

    Defined as ``IL(stopband) - IL(passband)``; a large positive number
    means the stopband is well suppressed.  Both points are evaluated in
    one batched solve.
    """
    losses = measure_insertion_loss_many(
        circuit, [passband_hz, stopband_hz]
    )
    return float(losses[1] - losses[0])


def input_impedance(circuit: Circuit, frequency_hz: float) -> complex:
    """Impedance looking into port 1 with port 2 terminated in its Z0."""
    if len(circuit.ports) != 2:
        raise CircuitError("input_impedance needs a two-port circuit")
    port1, port2 = circuit.ports
    terminated = _with_termination(circuit, port2.node, port2.impedance)
    analysis = AcAnalysis(terminated)
    return analysis.driving_point_impedance(port1.node, frequency_hz)


def _with_termination(
    circuit: Circuit, node: str, impedance: float
) -> Circuit:
    """Copy a circuit with a resistor from ``node`` to ground added."""
    copy = Circuit(name=circuit.name + "+term")
    for element in circuit.elements:
        copy.elements.append(element)
    copy.ports = list(circuit.ports)
    copy.resistor(f"__term_{node}", node, "0", impedance)
    return copy
