"""Performance assessment of filter chains (paper §4.1, methodology step 2).

The paper scores each build-up by "the relation of specified losses to
calculated losses": a filter that meets its insertion-loss spec exactly
scores 1.0; one whose calculated loss is twice the specification scores
0.5.  A build-up's performance is the worst score across its filter
chain, because the signal must survive every stage.

This module runs the full loop:

1. synthesise each filter spec for the chosen technology
   (:mod:`repro.circuits.synthesis`),
2. build a lossy circuit with the technology's Q model
   (:mod:`repro.circuits.qfactor`),
3. measure insertion loss and stopband rejection by MNA analysis
   (:mod:`repro.circuits.twoport`),
4. score against the specification.

Whole *sets* of chains (many technology assignments of the same specs —
what a design-space sweep produces) are assessed by
:func:`assess_chain_many`, which groups same-spec realisations into
circuit families and measures each family with one stacked
``(B, F, n, n)`` solve, bit-identical to the per-chain path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import SpecificationError
from ..passives.filters import FilterSpec
from .netlist import Circuit
from .synthesis import BandpassDesign, QModel, build_bandpass_circuit, synthesize_bandpass
from .twoport import sweep_grid, sweep_grid_stacked


@dataclass(frozen=True)
class FilterPerformance:
    """Measured behaviour of one synthesised filter.

    Attributes
    ----------
    spec:
        The filter specification.
    insertion_loss_db:
        Calculated mid-band insertion loss (minimum over the passband).
    rejection_db:
        Attenuation at the stopband point relative to mid-band, or None
        if the spec defines no stopband requirement.
    score:
        ``min(1, spec_loss / calculated_loss)`` — the paper's measure.
    meets_spec:
        True when both the loss and the rejection requirements hold.
    """

    spec: FilterSpec
    insertion_loss_db: float
    rejection_db: Optional[float]
    score: float
    meets_spec: bool

    @property
    def margin_db(self) -> float:
        """Spec limit minus calculated loss (negative = violation)."""
        return self.spec.max_insertion_loss_db - self.insertion_loss_db


def loss_score(spec_loss_db: float, calculated_loss_db: float) -> float:
    """The paper's performance measure for one filter.

    "Percentages are derived from the relation of specified losses to
    calculated losses" — a filter at or under spec scores 1.0, above spec
    proportionally less.
    """
    if spec_loss_db <= 0:
        raise SpecificationError(
            f"specified loss must be positive dB, got {spec_loss_db}"
        )
    if calculated_loss_db <= 0:
        return 1.0
    return min(1.0, spec_loss_db / calculated_loss_db)


def analyze_filter(
    spec: FilterSpec,
    q_model: Optional[QModel] = None,
    passband_points: int = 101,
) -> FilterPerformance:
    """Synthesise, build and measure one filter in a given technology.

    The mid-band insertion loss is taken as the minimum over the ripple
    bandwidth (the paper quotes the loss "at the GPS signal frequency",
    i.e. in-band), so ripple peaking at the band edges does not mask the
    dissipation loss under study.
    """
    design = synthesize_bandpass(spec)
    circuit = build_bandpass_circuit(design, q_model)
    return measure_filter(spec, circuit, passband_points)


def _assessment_grid(
    spec: FilterSpec, passband_points: int
) -> tuple[np.ndarray, Optional[float]]:
    """The measurement grid of one spec: passband plus optional stopband.

    Shared by the single-circuit and the stacked measurement paths, so
    both always evaluate the identical frequency list.
    """
    half_band = spec.bandwidth_hz / 2.0
    grid = np.linspace(
        spec.center_hz - half_band,
        spec.center_hz + half_band,
        passband_points,
    )

    stop_hz: Optional[float] = None
    if spec.stop_offset_hz is not None:
        stop_hz = spec.center_hz - spec.stop_offset_hz
        if stop_hz <= 0:
            stop_hz = spec.center_hz + spec.stop_offset_hz
        grid = np.append(grid, stop_hz)
    return grid, stop_hz


def _performance_from_losses(
    spec: FilterSpec,
    losses: np.ndarray,
    stop_hz: Optional[float],
) -> FilterPerformance:
    """Score one filter from its insertion-loss curve (shared scoring)."""
    if stop_hz is None:
        insertion_loss = float(np.min(losses))
    else:
        insertion_loss = float(np.min(losses[:-1]))

    rejection: Optional[float] = None
    rejection_ok = True
    if stop_hz is not None:
        stop_loss = float(losses[-1])
        rejection = stop_loss - insertion_loss
        rejection_ok = rejection >= (spec.stop_attenuation_db or 0.0)

    score = loss_score(spec.max_insertion_loss_db, insertion_loss)
    meets = (
        insertion_loss <= spec.max_insertion_loss_db and rejection_ok
    )
    return FilterPerformance(
        spec=spec,
        insertion_loss_db=insertion_loss,
        rejection_db=rejection,
        score=score,
        meets_spec=meets,
    )


def measure_filter(
    spec: FilterSpec,
    circuit: Circuit,
    passband_points: int = 101,
) -> FilterPerformance:
    """Measure a ready-built filter circuit against its spec.

    The passband grid and the (optional) stopband point are evaluated in
    a *single* batched MNA solve: one ``(F, n, n)`` stamp, one
    ``numpy.linalg.solve`` call for the whole assessment.
    """
    grid, stop_hz = _assessment_grid(spec, passband_points)
    losses = sweep_grid(circuit, grid).insertion_loss_db
    return _performance_from_losses(spec, losses, stop_hz)


def measure_filter_family(
    spec: FilterSpec,
    circuits: Sequence[Circuit],
    passband_points: int = 101,
) -> list[FilterPerformance]:
    """Measure a family of same-topology realisations of one spec.

    All realisations (one spec synthesised with different technology Q
    models — the shape every build-up comparison produces) share a
    topology and a measurement grid, so the whole family is evaluated
    with one stacked ``(B, F, n, n)`` solve.  Results are bit-identical
    to calling :func:`measure_filter` per circuit.
    """
    members = list(circuits)
    if not members:
        raise SpecificationError(
            "measure_filter_family needs at least one circuit"
        )
    grid, stop_hz = _assessment_grid(spec, passband_points)
    if len(members) == 1:
        losses = sweep_grid(members[0], grid).insertion_loss_db[None, :]
    else:
        losses = sweep_grid_stacked(members, grid).insertion_loss_db
    return [
        _performance_from_losses(spec, row, stop_hz) for row in losses
    ]


@dataclass(frozen=True)
class ChainPerformance:
    """Performance of a complete filter chain in one build-up."""

    filters: tuple[FilterPerformance, ...]
    score: float
    meets_spec: bool

    def by_name(self, name: str) -> FilterPerformance:
        """Look up one filter's result by spec name."""
        for result in self.filters:
            if result.spec.name == name:
                return result
        raise SpecificationError(f"no filter named {name!r} in chain")


def assess_chain(
    assignments: Sequence[tuple[FilterSpec, Optional[QModel]]],
    passband_points: int = 101,
) -> ChainPerformance:
    """Assess a filter chain with per-filter technology assignments.

    Parameters
    ----------
    assignments:
        ``(spec, q_model)`` pairs — the q_model expresses which technology
        realises that filter in the build-up under study (``None`` means
        lossless, for reference calculations).

    Returns
    -------
    ChainPerformance
        With ``score`` equal to the *worst* filter score: the chain is
        only as good as its weakest stage.
    """
    if not assignments:
        raise SpecificationError("assess_chain needs at least one filter")
    results = [
        analyze_filter(spec, q_model, passband_points)
        for spec, q_model in assignments
    ]
    return _chain_from_filters(results)


def _chain_from_filters(
    results: Sequence[FilterPerformance],
) -> ChainPerformance:
    """Fold per-filter results into the chain score (worst stage wins)."""
    overall = min(result.score for result in results)
    meets = all(result.meets_spec for result in results)
    return ChainPerformance(
        filters=tuple(results),
        score=overall,
        meets_spec=meets,
    )


def assess_chain_many(
    chains: Sequence[Sequence[tuple[FilterSpec, Optional[QModel]]]],
    passband_points: int = 101,
) -> list[ChainPerformance]:
    """Assess many filter chains with circuit-stacked MNA solves.

    Filters are grouped across *all* chains by specification: every
    realisation of one spec shares a synthesised topology and a
    measurement grid, so each group is measured with one stacked
    ``(B, F, n, n)`` solve (:func:`measure_filter_family`) instead of
    one solve per filter.  This is the hot path of design-space sweeps,
    where the same specs recur across many technology assignments.

    Results are bit-identical to ``[assess_chain(c) for c in chains]``
    — LAPACK factorises each matrix independently of the batch shape and
    the stamping order is preserved.

    Parameters
    ----------
    chains:
        One ``(spec, q_model)`` assignment list per chain; every chain
        needs at least one filter.

    Returns
    -------
    list[ChainPerformance]
        One result per chain, in input order.
    """
    materialised = [list(chain) for chain in chains]
    if not materialised:
        raise SpecificationError(
            "assess_chain_many needs at least one chain"
        )
    for chain in materialised:
        if not chain:
            raise SpecificationError(
                "assess_chain needs at least one filter"
            )

    # Flatten to (chain, slot) tasks and group them by spec.
    tasks: list[tuple[int, int, FilterSpec, Optional[QModel]]] = []
    groups: dict[FilterSpec, list[int]] = {}
    for i, chain in enumerate(materialised):
        for j, (spec, q_model) in enumerate(chain):
            groups.setdefault(spec, []).append(len(tasks))
            tasks.append((i, j, spec, q_model))

    measured: dict[int, FilterPerformance] = {}
    for spec, members in groups.items():
        design = synthesize_bandpass(spec)
        circuits = [
            build_bandpass_circuit(design, tasks[t][3]) for t in members
        ]
        for t, performance in zip(
            members,
            measure_filter_family(spec, circuits, passband_points),
        ):
            measured[t] = performance

    results: list[list[FilterPerformance]] = [
        [None] * len(chain) for chain in materialised  # type: ignore[list-item]
    ]
    for t, (i, j, _, _) in enumerate(tasks):
        results[i][j] = measured[t]
    return [_chain_from_filters(filters) for filters in results]
