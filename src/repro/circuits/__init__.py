"""RLC circuit analysis substrate.

A small but complete AC analysis stack:

* :mod:`~repro.circuits.elements` — lossy R/L/C element models;
* :mod:`~repro.circuits.netlist` — circuit container;
* :mod:`~repro.circuits.mna` — nodal-admittance solver;
* :mod:`~repro.circuits.twoport` — S-parameters / insertion loss;
* :mod:`~repro.circuits.synthesis` — Chebyshev/Butterworth/pseudo-elliptic
  bandpass ladder synthesis;
* :mod:`~repro.circuits.qfactor` — technology Q models;
* :mod:`~repro.circuits.performance` — spec scoring (paper step 2).
"""

from .elements import (
    Capacitor,
    Element,
    GROUND,
    Inductor,
    Port,
    Resistor,
    lossy_capacitor,
    lossy_inductor,
)
from .approximation import (
    bandpass_selectivity,
    butterworth_attenuation_db,
    chebyshev_attenuation_db,
    elliptic_attenuation_db,
    minimum_order,
    required_order,
)
from .matching import (
    LMatchDesign,
    LNetworkTopology,
    build_l_match_circuit,
    design_l_match,
    match_return_loss_db,
    matching_network_area_mm2,
)
from .mna import (
    AcAnalysis,
    StampPlan,
    batch_admittance_matrix,
    batch_solve_nodal,
    node_admittance_matrix,
    node_index,
    solve_nodal,
)
from .netlist import Circuit
from .performance import (
    ChainPerformance,
    FilterPerformance,
    analyze_filter,
    assess_chain,
    loss_score,
    measure_filter,
)
from .qfactor import (
    ConstantQModel,
    DiscreteFilterBlockQModel,
    IdealQModel,
    MixedQModel,
    SmdQModel,
    SummitQModel,
    capacitor_q_profile,
    combined_q_profile,
    combined_unloaded_q,
    inductor_q_profile,
)
from .synthesis import (
    BandpassDesign,
    QModel,
    ResonatorElements,
    TrapElements,
    build_bandpass_circuit,
    butterworth_g_values,
    chebyshev_g_values,
    dissipation_loss_db,
    prototype_g_values,
    synthesize_bandpass,
)
from .twoport import (
    SParameters,
    SweepResult,
    input_impedance,
    measure_insertion_loss,
    measure_insertion_loss_many,
    measure_rejection,
    sweep,
    sweep_grid,
    sweep_pointwise,
    two_port_sparameters,
)

__all__ = [
    "AcAnalysis",
    "BandpassDesign",
    "Capacitor",
    "ChainPerformance",
    "Circuit",
    "ConstantQModel",
    "DiscreteFilterBlockQModel",
    "Element",
    "FilterPerformance",
    "GROUND",
    "IdealQModel",
    "Inductor",
    "LMatchDesign",
    "LNetworkTopology",
    "MixedQModel",
    "Port",
    "QModel",
    "Resistor",
    "ResonatorElements",
    "SParameters",
    "SmdQModel",
    "StampPlan",
    "SummitQModel",
    "SweepResult",
    "TrapElements",
    "analyze_filter",
    "assess_chain",
    "bandpass_selectivity",
    "batch_admittance_matrix",
    "batch_solve_nodal",
    "build_l_match_circuit",
    "build_bandpass_circuit",
    "butterworth_g_values",
    "butterworth_attenuation_db",
    "capacitor_q_profile",
    "chebyshev_attenuation_db",
    "chebyshev_g_values",
    "combined_q_profile",
    "combined_unloaded_q",
    "design_l_match",
    "elliptic_attenuation_db",
    "dissipation_loss_db",
    "inductor_q_profile",
    "input_impedance",
    "loss_score",
    "lossy_capacitor",
    "lossy_inductor",
    "match_return_loss_db",
    "matching_network_area_mm2",
    "measure_filter",
    "measure_insertion_loss",
    "measure_insertion_loss_many",
    "minimum_order",
    "measure_rejection",
    "node_admittance_matrix",
    "node_index",
    "prototype_g_values",
    "required_order",
    "solve_nodal",
    "sweep",
    "sweep_grid",
    "sweep_pointwise",
    "synthesize_bandpass",
    "two_port_sparameters",
]
