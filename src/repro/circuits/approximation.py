"""Filter approximation functions and order estimation.

Transfer-function-level companions to the element-level synthesis in
:mod:`repro.circuits.synthesis`: closed-form attenuation of the three
families (Butterworth, Chebyshev I, Cauer/elliptic — the last via
scipy's prototype), and minimum-order estimation for a
passband-ripple/stopband-rejection spec.

These serve two purposes in the reproduction:

* an independent cross-check of the MNA-measured ladder responses (the
  test suite compares the two), and
* spec-driven design: "how many stages does the image-reject filter
  need for 30 dB at 1.225 GHz?" — the question behind Table 1's
  "3 stage" filter entry.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import signal

from ..errors import SynthesisError
from ..passives.filters import FilterFamily, FilterSpec


def _validate(order: int, ripple_db: float | None = None) -> None:
    if order < 1:
        raise SynthesisError(f"order must be >= 1, got {order}")
    if ripple_db is not None and ripple_db <= 0:
        raise SynthesisError(
            f"ripple must be positive dB, got {ripple_db}"
        )


def butterworth_attenuation_db(order: int, normalized_freq: float) -> float:
    """Attenuation of an order-n Butterworth lowpass at ``w/wc``."""
    _validate(order)
    if normalized_freq < 0:
        raise SynthesisError("frequency ratio cannot be negative")
    return 10.0 * math.log10(1.0 + normalized_freq ** (2 * order))


def chebyshev_attenuation_db(
    order: int, ripple_db: float, normalized_freq: float
) -> float:
    """Attenuation of an order-n Chebyshev-I lowpass at ``w/wc``.

    ``A = 10 log10(1 + eps^2 Tn^2(w))`` with ``Tn`` the Chebyshev
    polynomial (``cosh`` continuation outside the passband).
    """
    _validate(order, ripple_db)
    if normalized_freq < 0:
        raise SynthesisError("frequency ratio cannot be negative")
    eps_sq = 10.0 ** (ripple_db / 10.0) - 1.0
    w = normalized_freq
    if w <= 1.0:
        tn = math.cos(order * math.acos(w))
    else:
        tn = math.cosh(order * math.acosh(w))
    return 10.0 * math.log10(1.0 + eps_sq * tn * tn)


def elliptic_attenuation_db(
    order: int,
    ripple_db: float,
    stop_attenuation_db: float,
    normalized_freq: float,
) -> float:
    """Attenuation of an order-n elliptic lowpass at ``w/wc``.

    Evaluated from scipy's ``ellipap`` prototype transfer function; used
    as the reference response for Cauer designs.
    """
    _validate(order, ripple_db)
    if stop_attenuation_db <= ripple_db:
        raise SynthesisError(
            "stopband attenuation must exceed the passband ripple"
        )
    z, p, k = signal.ellipap(order, ripple_db, stop_attenuation_db)
    s = 1j * normalized_freq
    numerator = k * np.prod(s - z) if len(z) else k
    denominator = np.prod(s - p)
    magnitude = abs(numerator / denominator)
    if magnitude == 0.0:
        return math.inf
    return -20.0 * math.log10(magnitude)


def minimum_order(
    family: FilterFamily,
    ripple_db: float,
    stop_attenuation_db: float,
    selectivity: float,
    max_order: int = 25,
) -> int:
    """Smallest order meeting ``stop_attenuation_db`` at ``w_s/w_c``.

    Parameters
    ----------
    family:
        Approximation family.
    ripple_db:
        Passband ripple (used as the 3 dB proxy for Butterworth).
    stop_attenuation_db:
        Required stopband attenuation.
    selectivity:
        Stopband-to-passband edge ratio ``w_s / w_c`` (> 1).
    max_order:
        Search cap.

    Raises
    ------
    SynthesisError
        If the selectivity is not > 1 or no order up to ``max_order``
        meets the spec.
    """
    if selectivity <= 1.0:
        raise SynthesisError(
            f"selectivity must exceed 1, got {selectivity}"
        )
    for order in range(1, max_order + 1):
        if family is FilterFamily.BUTTERWORTH:
            attenuation = butterworth_attenuation_db(order, selectivity)
        elif family is FilterFamily.CHEBYSHEV:
            attenuation = chebyshev_attenuation_db(
                order, ripple_db, selectivity
            )
        else:
            attenuation = elliptic_attenuation_db(
                order, ripple_db, stop_attenuation_db, selectivity
            )
        if attenuation >= stop_attenuation_db:
            return order
    raise SynthesisError(
        f"no {family.value} filter of order <= {max_order} achieves "
        f"{stop_attenuation_db} dB at selectivity {selectivity}"
    )


def bandpass_selectivity(spec: FilterSpec) -> float:
    """Equivalent lowpass selectivity of a bandpass stopband point.

    The lowpass-to-bandpass transform maps a bandpass frequency ``f`` to
    the normalized lowpass frequency
    ``|f/f0 - f0/f| / FBW``; the selectivity of the spec's stopband
    point is that value.
    """
    if spec.stop_offset_hz is None:
        raise SynthesisError(
            f"spec {spec.name!r} defines no stopband point"
        )
    f_stop = spec.center_hz - spec.stop_offset_hz
    if f_stop <= 0:
        f_stop = spec.center_hz + spec.stop_offset_hz
    ratio = f_stop / spec.center_hz
    return abs(ratio - 1.0 / ratio) / spec.fractional_bandwidth


def required_order(spec: FilterSpec, max_order: int = 25) -> int:
    """Minimum prototype order for a bandpass spec's stopband demand."""
    if spec.stop_attenuation_db is None:
        raise SynthesisError(
            f"spec {spec.name!r} defines no stopband requirement"
        )
    return minimum_order(
        spec.family,
        spec.ripple_db,
        spec.stop_attenuation_db,
        bandpass_selectivity(spec),
        max_order=max_order,
    )
