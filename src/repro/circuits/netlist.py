"""Netlist container: named nodes, elements and analysis ports.

A :class:`Circuit` is a bag of two-terminal elements between string-named
nodes (``"0"`` is ground) plus the ports at which S-parameters are
extracted.  It validates connectivity before analysis so MNA failures
surface as clear errors instead of singular matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import CircuitError
from .elements import (
    Capacitor,
    DispersiveCapacitor,
    DispersiveInductor,
    Element,
    GROUND,
    Inductor,
    Port,
    Resistor,
)


@dataclass
class Circuit:
    """A lumped AC circuit.

    Elements are added with :meth:`add` or the convenience constructors
    :meth:`resistor`, :meth:`capacitor`, :meth:`inductor`; ports with
    :meth:`port`.  Node names are arbitrary strings; ``"0"`` is ground.
    """

    name: str = "circuit"
    elements: list[Element] = field(default_factory=list)
    ports: list[Port] = field(default_factory=list)

    # -- construction -------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add a pre-built element; duplicate names are rejected."""
        if any(e.name == element.name for e in self.elements):
            raise CircuitError(
                f"duplicate element name {element.name!r} in {self.name!r}"
            )
        self.elements.append(element)
        return element

    def resistor(
        self, name: str, node_a: str, node_b: str, resistance: float
    ) -> Resistor:
        """Add an ideal resistor."""
        element = Resistor(name, node_a, node_b, resistance)
        self.add(element)
        return element

    def capacitor(
        self,
        name: str,
        node_a: str,
        node_b: str,
        capacitance: float,
        tan_delta: float = 0.0,
        esr: float = 0.0,
    ) -> Capacitor:
        """Add a (possibly lossy) capacitor."""
        element = Capacitor(name, node_a, node_b, capacitance, tan_delta, esr)
        self.add(element)
        return element

    def inductor(
        self,
        name: str,
        node_a: str,
        node_b: str,
        inductance: float,
        series_resistance: float = 0.0,
        c_par: float = 0.0,
    ) -> Inductor:
        """Add a (possibly lossy) inductor."""
        element = Inductor(
            name, node_a, node_b, inductance, series_resistance, c_par
        )
        self.add(element)
        return element

    def dispersive_inductor(
        self,
        name: str,
        node_a: str,
        node_b: str,
        inductance: float,
        q_model,
        c_par: float = 0.0,
    ) -> DispersiveInductor:
        """Add an inductor whose loss follows a frequency-dependent Q model."""
        element = DispersiveInductor(
            name, node_a, node_b, inductance, q_model, c_par
        )
        self.add(element)
        return element

    def dispersive_capacitor(
        self,
        name: str,
        node_a: str,
        node_b: str,
        capacitance: float,
        q_model,
    ) -> DispersiveCapacitor:
        """Add a capacitor whose loss follows a frequency-dependent Q model."""
        element = DispersiveCapacitor(
            name, node_a, node_b, capacitance, q_model
        )
        self.add(element)
        return element

    def port(self, name: str, node: str, impedance: float = 50.0) -> Port:
        """Declare an analysis port on ``node`` referenced to ground."""
        if any(p.name == name for p in self.ports):
            raise CircuitError(f"duplicate port name {name!r}")
        port = Port(name, node, impedance)
        self.ports.append(port)
        return port

    # -- inspection ---------------------------------------------------

    def nodes(self) -> list[str]:
        """All non-ground node names, in first-appearance order."""
        seen: dict[str, None] = {}
        for element in self.elements:
            for node in (element.node_a, element.node_b):
                if node != GROUND:
                    seen.setdefault(node)
        for port in self.ports:
            seen.setdefault(port.node)
        return list(seen)

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        for candidate in self.elements:
            if candidate.name == name:
                return candidate
        raise CircuitError(f"no element named {name!r} in {self.name!r}")

    def validate(self) -> None:
        """Check the netlist is analysable.

        Raises
        ------
        CircuitError
            If there are no elements, a port sits on an unconnected node,
            or some node has only one connection and is not a port
            (a dangling stub that would make the MNA matrix singular is
            still permitted if it has a path to ground, so only
            disconnected port nodes are fatal here).
        """
        if not self.elements:
            raise CircuitError(f"circuit {self.name!r} has no elements")
        connected: set[str] = set()
        for element in self.elements:
            connected.add(element.node_a)
            connected.add(element.node_b)
        for port in self.ports:
            if port.node not in connected:
                raise CircuitError(
                    f"port {port.name!r} node {port.node!r} is not "
                    f"connected to any element"
                )
        if GROUND not in connected:
            raise CircuitError(
                f"circuit {self.name!r} has no ground reference"
            )

    def component_count(self) -> dict[str, int]:
        """Histogram of element types, useful for reports."""
        counts: dict[str, int] = {}
        for element in self.elements:
            key = type(element).__name__
            counts[key] = counts.get(key, 0) + 1
        return counts

    def extend(self, elements: Iterable[Element]) -> None:
        """Add several elements at once."""
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        return len(self.elements)
