"""Area estimation substrate (methodology step 3, Table 1 rules, Fig. 3)."""

from .footprint import (
    CHIP_AREAS,
    ChipAreas,
    Footprint,
    MountKind,
    TABLE1_FILTER_AREAS,
    TABLE1_IP_AREAS,
)
from .placement import (
    AreaReport,
    PlacedRect,
    ShelfLayout,
    ShelfPlacer,
    area_breakdown,
    area_ratio,
    trivial_placement,
    trivial_placement_batch,
)
from .substrate import (
    LAMINATE_RULE,
    LaminateRule,
    MCM_D_COARSE_RULE,
    MCM_D_FINE_RULE,
    MCM_D_RULE,
    PCB_RULE,
    PackageSize,
    SUBSTRATE_RULES,
    SubstrateRule,
    SubstrateSize,
)

__all__ = [
    "AreaReport",
    "CHIP_AREAS",
    "ChipAreas",
    "Footprint",
    "LAMINATE_RULE",
    "LaminateRule",
    "MCM_D_COARSE_RULE",
    "MCM_D_FINE_RULE",
    "MCM_D_RULE",
    "MountKind",
    "PCB_RULE",
    "PackageSize",
    "PlacedRect",
    "SUBSTRATE_RULES",
    "ShelfLayout",
    "ShelfPlacer",
    "SubstrateRule",
    "SubstrateSize",
    "TABLE1_FILTER_AREAS",
    "TABLE1_IP_AREAS",
    "area_breakdown",
    "area_ratio",
    "trivial_placement",
    "trivial_placement_batch",
]
