"""Placement and area estimation (methodology step 3).

The paper computes the area "by the sum of the single components and
performing a trivial placement".  Two placers are provided:

* :func:`trivial_placement` — the paper's rule: summed component area
  times the packing factor, square substrate, edge clearance.  This is
  what the Fig. 3 reproduction uses.
* :class:`ShelfPlacer` — an actual 2-D shelf (level-oriented) packing of
  component rectangles.  It serves as an ablation: how sensitive is the
  Fig. 3 ranking to replacing the 1.1 heuristic with a real placement?

Both report through :class:`AreaReport`, which carries the silicon and
package sizes plus a per-mount-kind breakdown for the tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..errors import PlacementError
from .footprint import Footprint, MountKind
from .substrate import (
    LAMINATE_RULE,
    LaminateRule,
    PackageSize,
    SubstrateRule,
    SubstrateSize,
)


@dataclass(frozen=True)
class AreaReport:
    """Area result for one build-up.

    Attributes
    ----------
    substrate:
        Sized substrate (PCB board or silicon MCM).
    package:
        Laminate package around the silicon, or None for a bare board.
    breakdown_mm2:
        Component area grouped by mount kind (before packing factors).
    """

    substrate: SubstrateSize
    package: Optional[PackageSize]
    breakdown_mm2: dict[str, float]

    @property
    def final_area_mm2(self) -> float:
        """The area the system consumes on the next level up.

        For packaged MCMs this is the laminate footprint; for the PCB
        reference it is the board itself — the quantity Fig. 3 compares.
        """
        if self.package is not None:
            return self.package.area_mm2
        return self.substrate.area_mm2

    @property
    def substrate_area_cm2(self) -> float:
        """Substrate area in cm^2 — the driver of Table 2 substrate cost."""
        return self.substrate.area_cm2


def area_breakdown(footprints: Iterable[Footprint]) -> dict[str, float]:
    """Sum raw component area per mount kind."""
    totals: dict[str, float] = {}
    for footprint in footprints:
        key = footprint.mount.value
        totals[key] = totals.get(key, 0.0) + footprint.area_mm2
    return totals


def trivial_placement(
    footprints: Sequence[Footprint],
    rule: SubstrateRule,
    laminate: Optional[LaminateRule] = None,
) -> AreaReport:
    """The paper's placement: packing factor plus edge clearance.

    Parameters
    ----------
    footprints:
        Everything placed on the substrate (chips, SMDs, integrated
        structures).
    rule:
        The substrate sizing rule (PCB or MCM-D).
    laminate:
        If given, the silicon substrate is packaged on a BGA laminate and
        the report's final area is the laminate footprint.
    """
    if not footprints:
        raise PlacementError("cannot place an empty component list")
    substrate = rule.size(footprints)
    package = laminate.size(substrate) if laminate is not None else None
    return AreaReport(
        substrate=substrate,
        package=package,
        breakdown_mm2=area_breakdown(footprints),
    )


def trivial_placement_batch(
    families: Sequence[Sequence[Footprint]],
    rule: SubstrateRule,
    laminate: Optional[LaminateRule] = None,
) -> list[AreaReport]:
    """:func:`trivial_placement` over many footprint families at once.

    All families share one sizing rule (and optional laminate), so the
    component-area arithmetic broadcasts across a ``(K, N)`` matrix
    (:meth:`~repro.area.substrate.SubstrateRule.size_batch`) — one
    placement call for a whole tolerance/process family of candidates.
    Each returned report is bit-identical to calling
    :func:`trivial_placement` on that family alone.
    """
    families = [list(family) for family in families]
    for family in families:
        if not family:
            raise PlacementError("cannot place an empty component list")
    substrates = rule.size_batch(families)
    return [
        AreaReport(
            substrate=substrate,
            package=(
                laminate.size(substrate) if laminate is not None else None
            ),
            breakdown_mm2=area_breakdown(family),
        )
        for family, substrate in zip(families, substrates)
    ]


@dataclass
class PlacedRect:
    """One placed rectangle in a shelf layout."""

    name: str
    x_mm: float
    y_mm: float
    width_mm: float
    height_mm: float


@dataclass
class ShelfLayout:
    """Result of a shelf packing run."""

    width_mm: float
    height_mm: float
    placements: list[PlacedRect] = field(default_factory=list)

    @property
    def area_mm2(self) -> float:
        """Bounding area of the packed layout."""
        return self.width_mm * self.height_mm

    @property
    def utilization(self) -> float:
        """Component area over bounding area (placement efficiency)."""
        used = sum(p.width_mm * p.height_mm for p in self.placements)
        if self.area_mm2 == 0:
            return 0.0
        return used / self.area_mm2


class ShelfPlacer:
    """Next-fit decreasing-height shelf packing.

    Components are modelled as squares of their footprint area (the
    library tracks areas, not aspect ratios), sorted by decreasing side,
    and packed left-to-right into shelves of a target width.  The target
    width defaults to the side of the square the trivial rule would
    produce, so the two placers are directly comparable.
    """

    def __init__(self, spacing_mm: float = 0.2):
        if spacing_mm < 0:
            raise PlacementError(
                f"spacing cannot be negative, got {spacing_mm}"
            )
        self.spacing_mm = spacing_mm

    def pack(
        self,
        footprints: Sequence[Footprint],
        target_width_mm: Optional[float] = None,
        rule: Optional[SubstrateRule] = None,
    ) -> ShelfLayout:
        """Pack footprints into shelves.

        ``rule`` (if given) applies its SMD footprint factor before
        packing so the comparison against :func:`trivial_placement` is
        apples-to-apples.
        """
        if not footprints:
            raise PlacementError("cannot pack an empty component list")
        sides = []
        for footprint in footprints:
            area = (
                rule.effective_area(footprint)
                if rule is not None
                else footprint.area_mm2
            )
            sides.append((footprint.name, math.sqrt(area)))
        sides.sort(key=lambda pair: pair[1], reverse=True)

        if target_width_mm is None:
            total = sum(side * side for _, side in sides)
            target_width_mm = math.sqrt(total * 1.1)
        target_width_mm = max(target_width_mm, sides[0][1])

        layout = ShelfLayout(width_mm=target_width_mm, height_mm=0.0)
        shelf_y = 0.0
        shelf_height = 0.0
        cursor_x = 0.0
        for name, side in sides:
            step = side + self.spacing_mm
            if cursor_x + side > target_width_mm and cursor_x > 0.0:
                shelf_y += shelf_height + self.spacing_mm
                shelf_height = 0.0
                cursor_x = 0.0
            layout.placements.append(
                PlacedRect(name, cursor_x, shelf_y, side, side)
            )
            cursor_x += step
            shelf_height = max(shelf_height, side)
        layout.height_mm = shelf_y + shelf_height
        return layout

    def place(
        self,
        footprints: Sequence[Footprint],
        rule: SubstrateRule,
        laminate: Optional[LaminateRule] = None,
    ) -> AreaReport:
        """Produce an :class:`AreaReport` from a real shelf packing.

        The substrate side is the larger of the packed width/height plus
        the rule's edge clearance, keeping the substrate square so the
        report is interchangeable with :func:`trivial_placement`.
        """
        layout = self.pack(footprints, rule=rule)
        side = max(layout.width_mm, layout.height_mm)
        side += 2.0 * rule.edge_clearance_mm
        total = sum(rule.effective_area(f) for f in footprints)
        substrate = SubstrateSize(
            rule=rule,
            component_area_mm2=total,
            packed_area_mm2=layout.area_mm2,
            side_mm=side,
        )
        package = laminate.size(substrate) if laminate is not None else None
        return AreaReport(
            substrate=substrate,
            package=package,
            breakdown_mm2=area_breakdown(footprints),
        )


def area_ratio(report: AreaReport, reference: AreaReport) -> float:
    """Final-area ratio against a reference build (Fig. 3's percentages)."""
    return report.final_area_mm2 / reference.final_area_mm2
