"""Substrate and package area rules (Table 1 footnotes).

The paper states two sizing rules:

* *"Area MCM-Substrate: 1.1 * Total Area Components + 1 mm edge clearance
  on either side"* — components are packed with a 10 % routing allowance
  and the (square) substrate gets a 1 mm rim;
* *"Laminate: Total Area Silicon Substrate + 5 mm edge clearance on
  either side"* — the silicon module sits centred on a BGA laminate with
  a 5 mm rim for the ball grid fan-out.

The PCB reference build uses the same packing rule with a PCB-class
routing factor.  One additional effect is modelled: SMD land patterns on
a fine-line silicon substrate need escape routing and solder keep-outs
that coarse PCB lands do not, captured as a multiplier on SMD footprints
placed on MCM-D (``smd_on_mcm_factor``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import PlacementError
from .footprint import Footprint, MountKind


@dataclass(frozen=True)
class SubstrateRule:
    """Sizing rule for one substrate class.

    Attributes
    ----------
    name:
        Substrate class label.
    packing_factor:
        Multiplier on the summed component area (routing allowance);
        the paper uses 1.1 for MCM-D.
    edge_clearance_mm:
        Rim added on every side of the (square) substrate.
    smd_footprint_factor:
        Extra multiplier applied to SMD footprints on this substrate
        (1.0 on PCB; >1 on fine-line MCM-D where lands and escape vias
        dominate).
    """

    name: str
    packing_factor: float = 1.1
    edge_clearance_mm: float = 1.0
    smd_footprint_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.packing_factor < 1.0:
            raise PlacementError(
                f"packing factor must be >= 1, got {self.packing_factor}"
            )
        if self.edge_clearance_mm < 0:
            raise PlacementError(
                "edge clearance cannot be negative, got "
                f"{self.edge_clearance_mm}"
            )
        if self.smd_footprint_factor < 1.0:
            raise PlacementError(
                "SMD footprint factor must be >= 1, got "
                f"{self.smd_footprint_factor}"
            )

    def effective_area(self, footprint: Footprint) -> float:
        """Footprint area adjusted for this substrate's SMD overhead."""
        if footprint.mount is MountKind.SMD:
            return footprint.area_mm2 * self.smd_footprint_factor
        return footprint.area_mm2

    def size(self, footprints: Iterable[Footprint]) -> "SubstrateSize":
        """Apply the paper's sizing rule to a set of footprints."""
        total = sum(self.effective_area(f) for f in footprints)
        if total <= 0:
            raise PlacementError(
                f"substrate {self.name!r} has no components to place"
            )
        packed = total * self.packing_factor
        side = math.sqrt(packed) + 2.0 * self.edge_clearance_mm
        return SubstrateSize(
            rule=self,
            component_area_mm2=total,
            packed_area_mm2=packed,
            side_mm=side,
        )

    def size_batch(
        self, families: Sequence[Sequence[Footprint]]
    ) -> list["SubstrateSize"]:
        """Apply the sizing rule to many footprint families at once.

        The component-area vectors of all families are packed into one
        zero-padded ``(K, N)`` matrix, the SMD overhead applied with a
        single ``np.where``, and the per-family totals accumulated
        column by column — the same left-fold the scalar ``sum`` in
        :meth:`size` performs (numpy's pairwise ``np.sum`` would round
        differently), so every returned :class:`SubstrateSize` is
        bit-identical to calling :meth:`size` on that family alone.
        """
        if not families:
            return []
        rows = len(families)
        width = max(len(family) for family in families)
        areas = np.zeros((rows, width), dtype=np.float64)
        smd = np.zeros((rows, width), dtype=bool)
        for row, family in enumerate(families):
            for col, footprint in enumerate(family):
                areas[row, col] = footprint.area_mm2
                smd[row, col] = footprint.mount is MountKind.SMD
        effective = np.where(smd, areas * self.smd_footprint_factor, areas)
        totals = np.zeros(rows, dtype=np.float64)
        for col in range(width):
            totals += effective[:, col]
        if not np.all(totals > 0):
            raise PlacementError(
                f"substrate {self.name!r} has no components to place"
            )
        packed = totals * self.packing_factor
        sides = np.sqrt(packed) + 2.0 * self.edge_clearance_mm
        return [
            SubstrateSize(
                rule=self,
                component_area_mm2=float(total),
                packed_area_mm2=float(packed_area),
                side_mm=float(side),
            )
            for total, packed_area, side in zip(totals, packed, sides)
        ]


@dataclass(frozen=True)
class SubstrateSize:
    """Result of sizing one substrate."""

    rule: SubstrateRule
    component_area_mm2: float
    packed_area_mm2: float
    side_mm: float

    @property
    def area_mm2(self) -> float:
        """Outer substrate area (square)."""
        return self.side_mm * self.side_mm

    @property
    def area_cm2(self) -> float:
        """Outer substrate area in cm^2 (the unit of Table 2's cost row)."""
        return self.area_mm2 / 100.0


@dataclass(frozen=True)
class LaminateRule:
    """BGA laminate sizing: silicon side plus a fan-out rim (Table 1)."""

    edge_clearance_mm: float = 5.0

    def size(self, silicon: SubstrateSize) -> "PackageSize":
        """Size the laminate package around a silicon substrate."""
        side = silicon.side_mm + 2.0 * self.edge_clearance_mm
        return PackageSize(silicon=silicon, side_mm=side)


@dataclass(frozen=True)
class PackageSize:
    """Outer dimensions of the packaged module."""

    silicon: SubstrateSize
    side_mm: float

    @property
    def area_mm2(self) -> float:
        """Module footprint on the motherboard."""
        return self.side_mm * self.side_mm

    @property
    def area_cm2(self) -> float:
        """Module footprint in cm^2."""
        return self.area_mm2 / 100.0


#: The paper's MCM-D(Si) substrate rule (Table 1 footnote).
MCM_D_RULE = SubstrateRule(
    name="MCM-D(Si)",
    packing_factor=1.1,
    edge_clearance_mm=1.0,
    smd_footprint_factor=1.5,
)

#: PCB reference board rule: same 1.1 packing, PCB-class lands (factor 1).
PCB_RULE = SubstrateRule(
    name="PCB",
    packing_factor=1.1,
    edge_clearance_mm=1.0,
    smd_footprint_factor=1.0,
)

#: BGA laminate fan-out rule (Table 1 footnote).
LAMINATE_RULE = LaminateRule(edge_clearance_mm=5.0)

#: Fine-line MCM-D variant for the design-space sweep: denser routing
#: (5 % allowance instead of the paper's 10 %) at the same land overhead.
MCM_D_FINE_RULE = SubstrateRule(
    name="MCM-D(Si) fine-line",
    packing_factor=1.05,
    edge_clearance_mm=1.0,
    smd_footprint_factor=1.5,
)

#: Coarse/conservative MCM-D variant: generous routing and land margins,
#: the pessimistic corner of the substrate axis.
MCM_D_COARSE_RULE = SubstrateRule(
    name="MCM-D(Si) coarse",
    packing_factor=1.25,
    edge_clearance_mm=1.5,
    smd_footprint_factor=2.0,
)

#: Short-name registry used by the design-space sweep axis / CLI parsing
#: (these replace the MCM rule of MCM build-ups; the PCB reference keeps
#: its board rule).
SUBSTRATE_RULES: dict[str, SubstrateRule] = {
    "mcm-d": MCM_D_RULE,
    "fine": MCM_D_FINE_RULE,
    "coarse": MCM_D_COARSE_RULE,
}
