"""Component footprints on a board or substrate (Table 1 inputs).

A :class:`Footprint` is the area contribution of one placed component,
tagged with how it mounts (SMD, bare die, integrated structure) so the
placement engine can apply technology-specific overheads — e.g. SMD land
patterns on a silicon MCM substrate consume extra escape-routing area
relative to the same part on coarse-pitch PCB.

Die and package areas for the GPS chip set come straight from Table 1 of
the paper and live in :data:`CHIP_AREAS`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import PlacementError


class MountKind(enum.Enum):
    """How a component occupies area."""

    #: Leaded/gull-wing package on PCB (TQFP, PQFP).
    PACKAGED = "packaged"
    #: Bare die, wire bonded (area includes the bond shelf).
    WIRE_BOND = "wire bond"
    #: Bare die, flip chip (solder bumps, no shelf).
    FLIP_CHIP = "flip chip"
    #: Surface-mount passive.
    SMD = "smd"
    #: Structure patterned into the substrate (no placement overhead).
    INTEGRATED = "integrated"


@dataclass(frozen=True)
class Footprint:
    """Area contribution of one placed component."""

    name: str
    area_mm2: float
    mount: MountKind

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0:
            raise PlacementError(
                f"footprint {self.name!r} needs positive area, got "
                f"{self.area_mm2}"
            )


@dataclass(frozen=True)
class ChipAreas:
    """Per-technology area of one chip (a Table 1 row)."""

    name: str
    packaged_mm2: float
    wire_bond_mm2: float
    flip_chip_mm2: float

    def footprint(self, mount: MountKind) -> Footprint:
        """The footprint of this chip under a given first-level mount."""
        if mount is MountKind.PACKAGED:
            return Footprint(self.name, self.packaged_mm2, mount)
        if mount is MountKind.WIRE_BOND:
            return Footprint(self.name, self.wire_bond_mm2, mount)
        if mount is MountKind.FLIP_CHIP:
            return Footprint(self.name, self.flip_chip_mm2, mount)
        raise PlacementError(
            f"chip {self.name!r} cannot mount as {mount.value}"
        )


#: Table 1, rows "RF Chip" and "DSP Correlator".
CHIP_AREAS: dict[str, ChipAreas] = {
    "RF chip": ChipAreas("RF chip", 225.0, 28.0, 13.0),
    "DSP correlator": ChipAreas("DSP correlator", 1165.0, 88.0, 59.0),
}

#: Table 1 reference points for integrated passives, used by tests to pin
#: the physical models to the paper's numbers.
TABLE1_IP_AREAS = {
    "IP-R 100kohm": 0.25,
    "IP-C 50pF": 0.30,
    "IP-L 40nH": 1.0,
}

#: Table 1 filter realizations.
TABLE1_FILTER_AREAS = {
    "SMD": 27.5,
    "integrated 3-stage": 12.0,
}
