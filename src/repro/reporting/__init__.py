"""Text and markdown rendering helpers for reports and benchmarks."""

from .markdown import (
    MarkdownError,
    markdown_table,
    paper_vs_measured_table,
    study_report_markdown,
    sweep_frame_markdown,
)
from .tables import Table, TableError, format_percent_map, frame_table

__all__ = [
    "MarkdownError",
    "Table",
    "TableError",
    "format_percent_map",
    "frame_table",
    "markdown_table",
    "paper_vs_measured_table",
    "study_report_markdown",
    "sweep_frame_markdown",
]
