"""Markdown rendering of study results.

Produces the EXPERIMENTS.md-style paper-vs-measured tables and full
study reports as GitHub-flavoured markdown, so downstream users can drop
the output of their own trade-off studies straight into documentation.
:func:`sweep_frame_markdown` does the same for design-space sweep
results, rendering the columnar
:class:`~repro.core.resultframe.ResultFrame` directly (bulk column
formatting, vectorised winner counts) instead of iterating row objects.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.methodology import StudyResult
from ..core.resultframe import COLUMN_ORDER, ResultFrame
from ..errors import ReproError


class MarkdownError(ReproError, ValueError):
    """Inconsistent markdown table construction."""


def markdown_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table."""
    if not header:
        raise MarkdownError("markdown table needs a header")
    width = len(header)
    lines = [
        "| " + " | ".join(str(cell) for cell in header) + " |",
        "|" + "|".join(["---"] * width) + "|",
    ]
    for row in rows:
        if len(row) != width:
            raise MarkdownError(
                f"row has {len(row)} cells, header has {width}"
            )
        lines.append(
            "| " + " | ".join(str(cell) for cell in row) + " |"
        )
    return "\n".join(lines)


def paper_vs_measured_table(
    comparison: Mapping[int, tuple[float, float]],
    value_format: str = "{:.2f}",
) -> str:
    """A ``| impl | paper | measured |`` table from comparison pairs."""
    rows = [
        [
            implementation,
            value_format.format(paper),
            value_format.format(measured),
        ]
        for implementation, (paper, measured) in sorted(
            comparison.items()
        )
    ]
    return markdown_table(["impl", "paper", "measured"], rows)


def study_report_markdown(result: StudyResult, title: str = "") -> str:
    """A complete study report in markdown.

    Sections: area (Fig. 3 style), cost with the stacked-bar split
    (Fig. 5 style), the figure-of-merit table (Fig. 6 style) and the
    recommendation.
    """
    from ..core.decision import recommendation

    reference = result.row(result.reference_name).assessment
    parts: list[str] = []
    if title:
        parts.append(f"# {title}\n")

    parts.append("## Area\n")
    parts.append(
        markdown_table(
            ["Build-up", "Final area [mm²]", "Relative"],
            [
                [
                    row.assessment.name,
                    f"{row.assessment.final_area_mm2:.0f}",
                    f"{row.area_percent:.0f} %",
                ]
                for row in result.rows
            ],
        )
    )

    parts.append("\n## Cost\n")
    base = reference.final_cost
    parts.append(
        markdown_table(
            ["Build-up", "Final", "Direct", "thereof: chip", "Yield loss"],
            [
                [
                    row.assessment.name,
                    f"{100 * row.assessment.final_cost / base:.1f} %",
                    f"{100 * row.assessment.cost.direct_cost_per_unit / base:.1f} %",
                    f"{100 * row.assessment.cost.chip_cost_per_unit / base:.1f} %",
                    f"{100 * row.assessment.cost.yield_loss_per_shipped / base:.1f} %",
                ]
                for row in result.rows
            ],
        )
    )

    parts.append("\n## Figure of merit\n")
    parts.append(
        markdown_table(
            ["Build-up", "Perf.", "1/Size", "1/Cost", "Product"],
            [
                [
                    row.assessment.name,
                    f"{row.fom.performance:.2f}",
                    f"{row.fom.size_reciprocal:.2f}",
                    f"{row.fom.cost_reciprocal:.2f}",
                    f"**{row.fom.figure_of_merit:.2f}**",
                ]
                for row in result.rows
            ],
        )
    )

    parts.append("\n## Decision\n")
    parts.append(recommendation(result))
    return "\n".join(parts)


def sweep_frame_markdown(frame: ResultFrame, title: str = "") -> str:
    """A design-space sweep result frame as a markdown report.

    One table row per sweep row (frame columns formatted in bulk, the
    same exact-float contract as the CSV export) followed by the
    vectorised winner-count summary — the markdown twin of
    ``repro-gps sweep``'s text output, for dropping sweep results into
    documentation.
    """
    if len(frame) == 0:
        raise MarkdownError("cannot render an empty sweep frame")
    parts: list[str] = []
    if title:
        parts.append(f"# {title}\n")
    parts.append(
        markdown_table(
            COLUMN_ORDER, list(zip(*frame.rendered_columns()))
        )
    )
    counts = frame.winner_counts()
    parts.append("")
    parts.append(
        "Winners: "
        + ", ".join(
            f"{name} ({count})" for name, count in sorted(counts.items())
        )
    )
    return "\n".join(parts)
