"""Minimal text-table rendering (no external table dependency offline).

Used by the decision reports and the benchmark harness to print the
paper's tables in aligned monospace form.  :func:`frame_table` renders
a columnar sweep :class:`~repro.core.resultframe.ResultFrame` directly
— columns are formatted in bulk, no per-row objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.resultframe import COLUMN_ORDER, ResultFrame
from ..errors import ReproError


class TableError(ReproError, ValueError):
    """A table was built inconsistently (wrong column count)."""


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(columns=("a", "b"))
    >>> t.add_row("1", "22")
    >>> print(t.render())
    a | b
    --+---
    1 | 22
    """

    columns: Sequence[str] = ()
    title: str = ""
    rows: list[tuple[str, ...]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.columns):
            raise TableError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(tuple(str(cell) for cell in cells))

    def widths(self) -> list[int]:
        """Column widths for aligned rendering."""
        widths = [len(str(column)) for column in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        if not self.columns:
            raise TableError("table has no columns")
        widths = self.widths()
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            str(column).ljust(width)
            for column, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(
                    cell.ljust(width) for cell, width in zip(row, widths)
                )
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)


def format_percent_map(values: dict[int, float]) -> str:
    """Render ``{1: 100.0, 2: 79.0}`` as ``"1: 100%  2: 79%"``."""
    return "  ".join(f"{key}: {value:.0f}%" for key, value in values.items())


def frame_table(
    frame: ResultFrame,
    columns: Sequence[str] = (),
    title: str = "",
) -> Table:
    """A text :class:`Table` of a columnar sweep result frame.

    ``columns`` selects and orders the frame columns to show (all of
    them, in :data:`~repro.core.resultframe.COLUMN_ORDER`, when empty).
    Cells are formatted column-at-a-time with the frame's CSV
    formatting contract (``str(float)`` exact floats, ``True``/``False``
    flags), so a rendered cell always round-trips to the stored value.
    """
    names = list(columns) if columns else list(COLUMN_ORDER)
    table = Table(columns=tuple(names), title=title)
    for cells in zip(*frame.rendered_columns(names)):
        table.add_row(*cells)
    return table
