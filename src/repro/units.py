"""Unit helpers: SI-prefixed parsing/formatting and area conversions.

The paper mixes units freely (ohms per square, pF/mm^2, nH, mm^2, cm^2,
percentages).  This module centralises the conversions so the rest of the
library can work in coherent base units:

* resistance in ohm, capacitance in farad, inductance in henry,
* frequency in hertz,
* length in millimetre, area in square millimetre,
* cost in abstract currency units (the paper never names a currency),
* yield as a fraction in ``(0, 1]``.

Only the features the library needs are implemented; this is intentionally
not a general-purpose units package.
"""

from __future__ import annotations

import math
import re

import numpy as np

from .errors import UnitError

#: SI prefix -> multiplier.  ``u`` is accepted as an ASCII micro sign.
SI_PREFIXES = {
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,
    "m": 1e-3,
    "": 1.0,
    "k": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
}

#: Multiplier -> preferred prefix, in ascending order of magnitude.
_PREFIX_BY_EXP = [
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
    (1e12, "T"),
]

_QUANTITY_RE = re.compile(
    r"""^\s*
        (?P<number>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)
        \s*
        (?P<prefix>[fpnumµkMGT]?)
        (?P<unit>[A-Za-zΩ]*)
        \s*$""",
    re.VERBOSE,
)

#: Canonical spellings for units the parser accepts.
_UNIT_ALIASES = {
    "ohm": "ohm",
    "ohms": "ohm",
    "r": "ohm",
    "Ω": "ohm",
    "f": "F",
    "h": "H",
    "hz": "Hz",
    "": "",
}

MM2_PER_CM2 = 100.0
MM_PER_CM = 10.0


def parse_quantity(text: str, expect_unit: str | None = None) -> float:
    """Parse ``"200 ohm"``, ``"50pF"``, ``"40nH"``, ``"1.575GHz"`` to a float.

    Parameters
    ----------
    text:
        Human-readable quantity with optional SI prefix and unit.
    expect_unit:
        If given (one of ``"ohm"``, ``"F"``, ``"H"``, ``"Hz"``), the parsed
        unit must match or be absent.

    Returns
    -------
    float
        The value in base units (ohm, farad, henry, hertz).

    Raises
    ------
    UnitError
        If the string cannot be parsed or the unit does not match.
    """
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity {text!r}")
    number = float(match.group("number"))
    prefix = match.group("prefix")
    unit = match.group("unit")

    # Disambiguate: "m" in "200m" is a prefix, but in "200mohm" too; in
    # "1MHz" the "M" is a prefix.  If no unit text follows and the prefix
    # letter could itself be a unit (F/H), treat it as the unit.
    if unit == "" and prefix in ("f",):
        # "1f" alone is ambiguous; treat as femto of a dimensionless value.
        pass
    unit_key = unit.lower() if unit.lower() in _UNIT_ALIASES else unit
    if unit_key not in _UNIT_ALIASES and unit not in _UNIT_ALIASES:
        raise UnitError(f"unknown unit {unit!r} in {text!r}")
    canonical = _UNIT_ALIASES.get(unit_key, _UNIT_ALIASES.get(unit, ""))

    if expect_unit is not None and canonical not in ("", expect_unit):
        raise UnitError(
            f"expected a quantity in {expect_unit}, got {text!r}"
        )
    multiplier = SI_PREFIXES.get(prefix)
    if multiplier is None:
        raise UnitError(f"unknown SI prefix {prefix!r} in {text!r}")
    return number * multiplier


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix, e.g. ``1.575 GHz``.

    Zero, NaN and infinities are formatted without a prefix.  The prefix is
    chosen so the mantissa lies in ``[1, 1000)`` where possible.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    best_mult, best_prefix = _PREFIX_BY_EXP[0]
    for mult, prefix in _PREFIX_BY_EXP:
        if magnitude >= mult:
            best_mult, best_prefix = mult, prefix
    mantissa = value / best_mult
    return f"{mantissa:.{digits}g} {best_prefix}{unit}".rstrip()


def mm2_to_cm2(area_mm2: float) -> float:
    """Convert an area from mm^2 to cm^2."""
    return area_mm2 / MM2_PER_CM2


def cm2_to_mm2(area_cm2: float) -> float:
    """Convert an area from cm^2 to mm^2."""
    return area_cm2 * MM2_PER_CM2


def db(ratio: float) -> float:
    """Convert a power ratio to decibels.

    Raises
    ------
    UnitError
        If ``ratio`` is not strictly positive.
    """
    if ratio <= 0:
        raise UnitError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def db_voltage(ratio: float) -> float:
    """Convert a voltage (amplitude) ratio to decibels (20 log10)."""
    if ratio <= 0:
        raise UnitError(f"voltage ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def percent(fraction: float) -> float:
    """Express a fraction as a percentage (0.937 -> 93.7)."""
    return fraction * 100.0


def fraction(percentage: float) -> float:
    """Express a percentage as a fraction (93.7 -> 0.937)."""
    return percentage / 100.0


def check_yield(value, name: str = "yield"):
    """Validate that ``value`` is a usable yield fraction in ``(0, 1]``.

    Accepts a scalar or a numpy array (the broadcasting yield laws
    validate whole families at once); an array passes when *every*
    element lies in ``(0, 1]``.  Returns the value unchanged so it can
    be used inline::

        self.yield_ = check_yield(yield_)

    Raises
    ------
    UnitError
        If the value (or any array element) lies outside ``(0, 1]``.
    """
    if isinstance(value, np.ndarray):
        in_range = (0.0 < value) & (value <= 1.0)
        if value.size and not bool(np.all(in_range)):
            bad = value[~in_range][0]
            raise UnitError(f"{name} must lie in (0, 1], got {bad}")
        return value
    if not (0.0 < value <= 1.0):
        raise UnitError(f"{name} must lie in (0, 1], got {value}")
    return value
