"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class at an API boundary.  Subclasses are grouped
by subsystem: units, passive component modelling, circuit analysis, area
estimation and cost modelling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class UnitError(ReproError, ValueError):
    """A quantity string or value could not be parsed or converted."""


class ComponentError(ReproError, ValueError):
    """A passive component is mis-specified or physically unrealisable.

    Raised, for example, when a requested integrated resistor value cannot
    be realised with the available sheet resistance, or when an SMD case
    size is unknown to the catalog.
    """


class TechnologyError(ReproError, ValueError):
    """A technology (substrate/assembly/passive) constraint is violated."""


class CircuitError(ReproError, ValueError):
    """A netlist is malformed or an analysis cannot be performed.

    Typical causes: floating nodes, a short between the two terminals of a
    source, a singular MNA matrix, or a two-port extraction requested on a
    circuit that does not define two ports.
    """


class SynthesisError(ReproError, ValueError):
    """A filter specification cannot be synthesised.

    Raised when the requested order, ripple, or band edges are outside the
    range the synthesis routines support (e.g. order < 1, non-positive
    bandwidth, stopband not beyond passband).
    """


class PlacementError(ReproError, ValueError):
    """An area/placement computation received impossible inputs."""


class FlowError(ReproError, ValueError):
    """A MOE production flow graph is malformed.

    Examples: a cycle in the flow, a test step without a fail branch, an
    assembly step with no incoming component stream, or a node referenced
    before it is defined.
    """


class CostModelError(ReproError, ValueError):
    """Cost or yield inputs are out of range (yields must lie in (0, 1])."""


class CalibrationError(ReproError, RuntimeError):
    """The confidential-parameter calibration failed to converge."""


class SpecificationError(ReproError, ValueError):
    """A performance specification is malformed or unsatisfiable."""
