"""The paper's five-step trade-off methodology (§4).

    1) generate viable build-up implementations
    2) assess performance with regard to the specifications
    3) calculate the substrate area required
    4) calculate the cost including test and yield aspects
    5) make a decision

:class:`CandidateBuildUp` describes one implementation (step 1 is the
user's job); :func:`run_study` executes steps 2-5 over a list of
candidates and returns a :class:`StudyResult` whose rows reproduce
Fig. 3 (area), Fig. 5 (cost) and Fig. 6 (figure of merit) for the
application under study.

The methodology is application-agnostic: the GPS case study
(:mod:`repro.gps.study`) and the generic examples both drive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..area.placement import AreaReport, trivial_placement
from ..area.substrate import LaminateRule, SubstrateRule
from ..area.footprint import Footprint
from ..circuits.performance import ChainPerformance, assess_chain
from ..circuits.synthesis import QModel
from ..cost.moe.analytic import evaluate, evaluate_batch
from ..cost.moe.flow import ProductionFlow
from ..cost.moe.report import CostReport
from ..errors import SpecificationError
from ..passives.filters import FilterSpec
from .figure_of_merit import FomEntry, FomWeights, figure_of_merit, rank_buildups


@dataclass
class CandidateBuildUp:
    """One implementation candidate (methodology step 1).

    Attributes
    ----------
    name:
        Build-up label.
    footprints:
        Everything placed on the substrate (step 3 input).
    substrate_rule:
        Sizing rule for the substrate (PCB or MCM class).
    laminate:
        BGA laminate rule when the module is packaged, else None.
    flow_factory:
        Maps the substrate area in cm^2 (from step 3) to the production
        flow (step 4 input) — the paper feeds the calculated area into
        the cost modelling step.
    filter_assignments:
        ``(spec, q_model)`` pairs for the performance step; mutually
        exclusive with ``fixed_performance``.
    fixed_performance:
        Performance score for applications whose performance is assessed
        outside the filter engine (e.g. purely digital boards: 1.0).
    """

    name: str
    footprints: list[Footprint]
    substrate_rule: SubstrateRule
    flow_factory: Callable[[float], ProductionFlow]
    laminate: Optional[LaminateRule] = None
    filter_assignments: list[tuple[FilterSpec, Optional[QModel]]] = field(
        default_factory=list
    )
    fixed_performance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fixed_performance is not None and self.filter_assignments:
            raise SpecificationError(
                f"candidate {self.name!r}: give either filter assignments "
                "or a fixed performance score, not both"
            )
        if self.fixed_performance is None and not self.filter_assignments:
            raise SpecificationError(
                f"candidate {self.name!r}: needs filter assignments or a "
                "fixed performance score"
            )


@dataclass(frozen=True)
class BuildUpAssessment:
    """Steps 2-4 results for one candidate."""

    name: str
    performance: float
    chain: Optional[ChainPerformance]
    area: AreaReport
    cost: CostReport

    @property
    def final_area_mm2(self) -> float:
        """Fig. 3 quantity."""
        return self.area.final_area_mm2

    @property
    def final_cost(self) -> float:
        """Fig. 5 quantity (Eq. (1))."""
        return self.cost.final_cost_per_shipped


@dataclass(frozen=True)
class StudyRow:
    """One build-up's full result, normalised to the reference."""

    assessment: BuildUpAssessment
    area_percent: float
    cost_percent: float
    fom: FomEntry


@dataclass(frozen=True)
class StudyResult:
    """Steps 2-5 over all candidates."""

    rows: tuple[StudyRow, ...]
    reference_name: str
    weights: FomWeights

    def row(self, name: str) -> StudyRow:
        """Look up one build-up's row by name."""
        for candidate in self.rows:
            if candidate.assessment.name == name:
                return candidate
        raise SpecificationError(f"no build-up named {name!r} in study")

    def ranked(self) -> list[StudyRow]:
        """Rows sorted by descending figure of merit (the decision)."""
        entries = {id(row.fom): row for row in self.rows}
        order = rank_buildups([row.fom for row in self.rows])
        return [entries[id(entry)] for entry in order]

    @property
    def winner(self) -> StudyRow:
        """The build-up the methodology selects (step 5)."""
        return self.ranked()[0]


def assess_candidate(
    candidate: CandidateBuildUp, volume: float = 10_000.0
) -> BuildUpAssessment:
    """Run methodology steps 2-4 for one candidate."""
    if candidate.fixed_performance is not None:
        performance = candidate.fixed_performance
        chain: Optional[ChainPerformance] = None
    else:
        chain = assess_chain(candidate.filter_assignments)
        performance = chain.score
    area = trivial_placement(
        candidate.footprints, candidate.substrate_rule, candidate.laminate
    )
    flow = candidate.flow_factory(area.substrate_area_cm2)
    cost = evaluate(flow, volume=volume)
    return BuildUpAssessment(
        name=candidate.name,
        performance=performance,
        chain=chain,
        area=area,
        cost=cost,
    )


def assess_candidate_batch(
    candidate: CandidateBuildUp, volumes: Sequence[float]
) -> tuple[BuildUpAssessment, ...]:
    """Methodology steps 2-4 for one candidate over a volume family.

    Performance and placement are volume-independent, so they run once;
    the cost step runs as a single batched flow walk
    (:func:`~repro.cost.moe.analytic.evaluate_batch`).  Bit-identical
    to ``[assess_candidate(candidate, v) for v in volumes]``, one
    assessment per volume.
    """
    if candidate.fixed_performance is not None:
        performance = candidate.fixed_performance
        chain: Optional[ChainPerformance] = None
    else:
        chain = assess_chain(candidate.filter_assignments)
        performance = chain.score
    area = trivial_placement(
        candidate.footprints, candidate.substrate_rule, candidate.laminate
    )
    flow = candidate.flow_factory(area.substrate_area_cm2)
    batch = evaluate_batch(flow, volumes)
    return tuple(
        BuildUpAssessment(
            name=candidate.name,
            performance=performance,
            chain=chain,
            area=area,
            cost=report,
        )
        for report in batch.to_reports()
    )


def run_study(
    candidates: Sequence[CandidateBuildUp],
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    volume: float = 10_000.0,
) -> StudyResult:
    """Execute the methodology over all candidates (steps 2-5).

    Parameters
    ----------
    candidates:
        The viable build-ups from step 1.
    reference:
        Index of the reference build-up (sets the 100 % marks).
    weights:
        Optional FoM weighting; defaults to the paper's plain product.
    volume:
        Production volume for NRE amortisation.
    """
    if not candidates:
        raise SpecificationError("run_study needs at least one candidate")
    if not (0 <= reference < len(candidates)):
        raise SpecificationError(
            f"reference index {reference} out of range for "
            f"{len(candidates)} candidates"
        )
    if weights is None:
        weights = FomWeights()
    assessments = [
        assess_candidate(candidate, volume) for candidate in candidates
    ]
    return study_from_assessments(assessments, reference, weights)


def study_from_assessments(
    assessments: Sequence[BuildUpAssessment],
    reference: int,
    weights: FomWeights,
) -> StudyResult:
    """Normalise and rank ready-made assessments (methodology step 5).

    Shared by :func:`run_study` and the design-space sweep
    (:mod:`repro.core.sweep`), whose memoised evaluation produces the
    assessments itself.
    """
    ref = assessments[reference]
    rows = []
    for assessment in assessments:
        size_ratio = assessment.final_area_mm2 / ref.final_area_mm2
        cost_ratio = assessment.final_cost / ref.final_cost
        fom_value = figure_of_merit(
            assessment.performance, size_ratio, cost_ratio, weights
        )
        rows.append(
            StudyRow(
                assessment=assessment,
                area_percent=100.0 * size_ratio,
                cost_percent=100.0 * cost_ratio,
                fom=FomEntry(
                    name=assessment.name,
                    performance=assessment.performance,
                    size_ratio=size_ratio,
                    cost_ratio=cost_ratio,
                    figure_of_merit=fom_value,
                ),
            )
        )
    return StudyResult(
        rows=tuple(rows),
        reference_name=ref.name,
        weights=weights,
    )
