"""Design-space sweep subsystem (grids over the methodology's knobs).

The paper runs its five-step methodology once, for one production
volume, one substrate rule, one thin-film process and one tolerance
discipline.  This module fans the methodology out over a *grid* of those
choices:

* :class:`DesignPoint` — one coordinate in the design space (volume,
  substrate rule, thin-film process, tolerance class, technology
  Q model, NRE scenario, FoM weight vector);
* :class:`SweepGrid` — the cartesian product of per-axis value lists;
* :func:`run_design_sweep` — evaluates every grid point through the
  methodology (steps 2-5) with **memoised sub-results**: the performance
  assessment (the MNA-heavy part), the placement and the cost evaluation
  are each cached by content key, so e.g. a volume axis of five values
  re-solves no circuit and re-places no substrate;
* :class:`SweepReport` — the sweep's results as a columnar
  :class:`~repro.core.resultframe.ResultFrame` (one row per candidate
  per grid point, with per-point winners and Pareto-front membership),
  consumed by the ``repro-gps sweep`` CLI subcommand; the
  :attr:`~SweepReport.rows` property bridges back to
  :class:`~repro.core.resultframe.SweepRow` objects bit-for-bit.

*How* the grid is evaluated is pluggable: :func:`run_design_sweep`
delegates scheduling to an execution engine
(:mod:`repro.core.executors`) — serial, multi-process, circuit-stacked
batching, in-process sharding (:mod:`repro.core.sharding`) or
asyncio-based streaming — all of which produce identical rows.
:func:`stream_design_sweep` is the generator surface: it yields
:class:`StreamedCell` results as grid points finish instead of
blocking on the whole grid.  :class:`EvaluationCache` is mergeable so
per-worker caches fold back into one whole-sweep stats report, and
exports a :meth:`~EvaluationCache.portable_state` payload so caches
filled on *different hosts* can have their stats merged too.

The subsystem is application-agnostic: a *candidate factory* maps each
:class:`DesignPoint` to the list of
:class:`~repro.core.methodology.CandidateBuildUp` to study there.  The
GPS adapter lives in :func:`repro.gps.study.sweep_candidates`.
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass, field
from functools import cached_property
from itertools import product
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..area.placement import trivial_placement, trivial_placement_batch
from ..area.substrate import SubstrateRule
from ..circuits.performance import ChainPerformance, assess_chain
from ..cost.moe.analytic import evaluate, evaluate_batch
from ..errors import SpecificationError
from ..passives.thin_film import ThinFilmProcess
from ..passives.tolerance import ToleranceClass
from .figure_of_merit import FomWeights
from .methodology import (
    BuildUpAssessment,
    CandidateBuildUp,
    StudyResult,
    study_from_assessments,
)
from .pareto import analyze_study
from .resultframe import COLUMN_ORDER, ResultFrame, SweepRow


@dataclass(frozen=True)
class NreScenario:
    """A named non-recurring-engineering cost assumption.

    The paper publishes no NRE figures, so the volume axis only bites
    under an *assumed* NRE per candidate.  A scenario names one such
    assumption: ``by_candidate`` maps a candidate identifier (the GPS
    adapter uses the implementation number 1..4) to the NRE amortised
    over shipped units.  Stored as a tuple of pairs so the scenario is
    hashable, picklable and ``repr``-stable — the properties the sweep
    cache keys and the process execution engine need.
    """

    name: str
    by_candidate: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        for key, nre in self.by_candidate:
            if not math.isfinite(nre) or nre < 0:
                raise SpecificationError(
                    f"NRE scenario {self.name!r}: candidate {key} needs "
                    f"a non-negative finite NRE, got {nre}"
                )

    def as_mapping(self) -> dict[int, float]:
        """The scenario as a plain candidate-id → NRE mapping."""
        return dict(self.by_candidate)


def _q_model_label(q_model) -> str:
    """Compact axis label of a Q-model override (``paper`` for None)."""
    if q_model is None:
        return "paper"
    label = getattr(q_model, "label", None)
    if label is not None:
        return str(label)
    name = getattr(q_model, "name", None)
    if name is not None:
        return str(name)
    return type(q_model).__name__


def _weights_label(weights: Optional[FomWeights]) -> str:
    """Compact ``perf:size:cost`` label of a FoM weight vector."""
    if weights is None:
        return "paper"
    return f"{weights.performance:g}:{weights.size:g}:{weights.cost:g}"


@dataclass(frozen=True)
class DesignPoint:
    """One coordinate of the design space.

    ``None`` on an axis means "the candidate factory's default" — the
    paper's choice for that knob.  The three scenario axes added on top
    of the physical ones:

    * ``q_model`` — a technology Q model (possibly frequency-dependent,
      see :mod:`repro.circuits.qfactor`) overriding the candidate
      factory's integrated-passives model;
    * ``nre`` — an :class:`NreScenario` replacing the factory's NRE
      assumption (what the volume axis amortises);
    * ``weights`` — a per-point
      :class:`~repro.core.figure_of_merit.FomWeights` vector used when
      ranking this point (overrides the sweep-wide weights).
    """

    volume: float = 10_000.0
    substrate: Optional[SubstrateRule] = None
    process: Optional[ThinFilmProcess] = None
    tolerance: Optional[ToleranceClass] = None
    q_model: Optional[object] = None
    nre: Optional[NreScenario] = None
    weights: Optional[FomWeights] = None

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise SpecificationError(
                f"volume must be positive, got {self.volume}"
            )

    def q_model_label(self) -> str:
        """The Q-model axis value as a short string (``paper`` default)."""
        return _q_model_label(self.q_model)

    def nre_label(self) -> str:
        """The NRE-scenario axis value as a short string."""
        return self.nre.name if self.nre is not None else "paper"

    def weights_label(self) -> str:
        """The FoM-weights axis value as ``perf:size:cost``."""
        return _weights_label(self.weights)

    def label(self) -> str:
        """Compact human-readable coordinate label."""
        parts = [f"volume={self.volume:g}"]
        parts.append(
            f"substrate={self.substrate.name if self.substrate else 'paper'}"
        )
        parts.append(
            f"process={self.process.name if self.process else 'paper'}"
        )
        parts.append(
            f"tolerance={self.tolerance.name if self.tolerance else 'paper'}"
        )
        parts.append(f"q={self.q_model_label()}")
        parts.append(f"nre={self.nre_label()}")
        parts.append(f"weights={self.weights_label()}")
        return " ".join(parts)


def _dedupe_axis(values) -> tuple:
    """Order-preserving removal of equal axis values.

    Equality-based (not hash-based) so axis values only need ``__eq__``
    — the scenario axes carry arbitrary objects — and a linear scan per
    value, which is irrelevant at axis lengths.
    """
    kept: list = []
    for value in values:
        if not any(value == existing for existing in kept):
            kept.append(value)
    return tuple(kept)


@dataclass(frozen=True)
class SweepGrid:
    """Cartesian product of per-axis value lists.

    Every axis defaults to a single ``None`` (= paper default), so a
    grid is built by overriding only the axes under study::

        SweepGrid(volumes=(1e3, 1e4, 1e5),
                  tolerances=(None, PRECISION_CLASS))
    """

    volumes: tuple[float, ...] = (10_000.0,)
    substrates: tuple[Optional[SubstrateRule], ...] = (None,)
    processes: tuple[Optional[ThinFilmProcess], ...] = (None,)
    tolerances: tuple[Optional[ToleranceClass], ...] = (None,)
    q_models: tuple[Optional[object], ...] = (None,)
    nres: tuple[Optional[NreScenario], ...] = (None,)
    fom_weights: tuple[Optional[FomWeights], ...] = (None,)

    def __post_init__(self) -> None:
        for name in (
            "volumes",
            "substrates",
            "processes",
            "tolerances",
            "q_models",
            "nres",
            "fom_weights",
        ):
            values = getattr(self, name)
            if not values:
                raise SpecificationError(f"grid axis {name!r} is empty")
            # Duplicate axis values would double-evaluate and
            # double-count the same cell (and adaptive zoom passes
            # naturally re-propose coordinates they already hold), so
            # each axis keeps only the first occurrence of equal
            # values — equality, not identity, so 1e4 and 10000.0
            # collapse.  Order-preserving: the surviving values keep
            # their original relative order.
            object.__setattr__(self, name, _dedupe_axis(values))

    def __len__(self) -> int:
        return (
            len(self.volumes)
            * len(self.substrates)
            * len(self.processes)
            * len(self.tolerances)
            * len(self.q_models)
            * len(self.nres)
            * len(self.fom_weights)
        )

    def points(self) -> list[DesignPoint]:
        """All grid coordinates, volume-major.

        The scenario axes (Q model, NRE, weights) vary fastest, so
        grids that only use the physical axes enumerate in the same
        order they always did.
        """
        return [
            DesignPoint(
                volume=volume,
                substrate=substrate,
                process=process,
                tolerance=tolerance,
                q_model=q_model,
                nre=nre,
                weights=weights,
            )
            for (
                volume,
                substrate,
                process,
                tolerance,
                q_model,
                nre,
                weights,
            ) in product(
                self.volumes,
                self.substrates,
                self.processes,
                self.tolerances,
                self.q_models,
                self.nres,
                self.fom_weights,
            )
        ]


#: The cache's sub-result tables, in reporting order.
CACHE_TABLES = ("performance", "area", "cost")


def cache_key_digest(key: str) -> str:
    """Short content digest of one cache key.

    Shard artifacts carry the *digests* of a worker cache's entry keys
    (never the cached values), so a cross-host merge can compute the
    union of distinct entries — two shards that computed the same
    sub-result count it once — without shipping the heavyweight
    results themselves.
    """
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


class EvaluationCache:
    """Content-keyed memo for the methodology's three sub-results.

    Grid axes rarely invalidate every step: volume only reaches the cost
    evaluation, the tolerance class only the production flow, the
    substrate rule only placement and cost.  Keys are built from the
    ``repr`` of the (frozen, content-rich) dataclasses involved, so two
    grid points that share an input share the computation.

    Caches are *mergeable*: every execution engine worker fills its own
    cache and :meth:`merge` folds the workers' tables and counters back
    into the parent, so one :meth:`stats` report covers the whole sweep
    regardless of how it was executed.
    """

    def __init__(self) -> None:
        self._tables: dict[str, dict[str, object]] = {
            name: {} for name in CACHE_TABLES
        }
        self._hits: dict[str, int] = {name: 0 for name in CACHE_TABLES}
        self._misses: dict[str, int] = {name: 0 for name in CACHE_TABLES}

    def _get(self, name: str, key: str, compute: Callable):
        table = self._tables[name]
        if key in table:
            self._hits[name] += 1
            return table[key]
        self._misses[name] += 1
        value = compute()
        table[key] = value
        return value

    @staticmethod
    def performance_key(assignments) -> str:
        """The content key of one chain's technology assignments."""
        return repr(assignments)

    def performance(self, assignments, compute) -> ChainPerformance:
        return self._get(
            "performance", self.performance_key(assignments), compute
        )

    def has_performance(self, key: str) -> bool:
        """True when a chain result is already cached under ``key``."""
        return key in self._tables["performance"]

    def seed_performance(self, key: str, chain: ChainPerformance) -> None:
        """Insert a precomputed chain result without counting hit/miss.

        The stacked execution engine assesses whole batches of chains
        ahead of the per-point evaluation and seeds them here; the later
        lookups then count as ordinary hits.
        """
        self._tables["performance"].setdefault(key, chain)

    @staticmethod
    def area_key(footprints, rule, laminate) -> str:
        """The content key of one placement call."""
        return f"{rule!r}|{laminate!r}|{footprints!r}"

    def area(self, footprints, rule, laminate, compute):
        return self._get(
            "area", self.area_key(footprints, rule, laminate), compute
        )

    def has_area(self, key: str) -> bool:
        """True when a placement result is already cached under ``key``."""
        return key in self._tables["area"]

    def seed_area(self, key: str, report) -> None:
        """Insert a precomputed placement without counting hit/miss.

        The batched fill path places whole candidate families through
        one broadcast call ahead of the per-point evaluation and seeds
        them here; the later lookups then count as ordinary hits —
        exactly the :meth:`seed_performance` discipline.
        """
        self._tables["area"].setdefault(key, report)

    def cost(self, flow, volume: float, compute):
        key = f"{volume!r}|{flow!r}"
        return self._get("cost", key, compute)

    def cost_batch(self, flow, volumes: Sequence[float], compute_missing):
        """Resolve one flow's cost reports at many volumes together.

        Counts exactly as ``len(volumes)`` single :meth:`cost` lookups
        would — a hit per already-cached volume, a miss per computed
        one — but all missing volumes are produced by a single
        ``compute_missing(missing_volumes)`` call (one batched flow
        walk) instead of one evaluation each.
        """
        flow_repr = repr(flow)
        keys = [f"{volume!r}|{flow_repr}" for volume in volumes]
        table = self._tables["cost"]
        pending: dict[str, float] = {}
        for key, volume in zip(keys, volumes):
            if key not in table and key not in pending:
                pending[key] = volume
        if pending:
            computed = compute_missing(list(pending.values()))
            for key, report in zip(pending, computed):
                table[key] = report
        self._misses["cost"] += len(pending)
        self._hits["cost"] += len(keys) - len(pending)
        return [table[key] for key in keys]

    def count_reuse(self, name: str, count: int) -> None:
        """Tally ``count`` extra hits on one table.

        The batched fill resolves a volume-invariant sub-result once per
        family instead of once per point; this keeps the hit counters
        reporting the per-point lookups the scalar fill would have made,
        so cache stats stay comparable across fills.
        """
        if count > 0:
            self._hits[name] += count

    @property
    def hits(self) -> int:
        """Total hits across all tables."""
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        """Total misses across all tables."""
        return sum(self._misses.values())

    def merge(self, other: "EvaluationCache") -> None:
        """Fold a worker's cache into this one.

        Entries are first-wins (both sides computed from the same
        content key, so values agree); hit/miss counters add up, making
        the merged :meth:`stats` the whole-sweep tally.
        """
        for name in CACHE_TABLES:
            table = self._tables[name]
            for key, value in other._tables[name].items():
                table.setdefault(key, value)
            self._hits[name] += other._hits[name]
            self._misses[name] += other._misses[name]

    def portable_state(self) -> dict:
        """The cache's *stats* state as a JSON-ready payload.

        Shard artifacts embed this instead of :meth:`stats`: hit/miss
        counters per table plus the :func:`cache_key_digest` of every
        entry key.  Merging shard artifacts sums the counters (stats
        stay additive across hosts) and unions the digests, so an
        entry computed independently by two shards — the same memoised
        sub-result, recomputed because worker caches start cold — is
        counted once in the merged ``entries`` tally.
        """
        return {
            "tables": {
                name: {
                    "hits": self._hits[name],
                    "misses": self._misses[name],
                    "keys": sorted(
                        cache_key_digest(key) for key in self._tables[name]
                    ),
                }
                for name in CACHE_TABLES
            }
        }

    def stats(self) -> dict:
        """Hits/misses in total and per table.

        The flat ``hits`` / ``misses`` keys keep the historical report
        shape; ``tables`` breaks the tally down per sub-result table
        (with the number of distinct cached entries), which is what
        ``repro-gps sweep --cache-stats`` prints.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "tables": {
                name: {
                    "hits": self._hits[name],
                    "misses": self._misses[name],
                    "entries": len(self._tables[name]),
                }
                for name in CACHE_TABLES
            },
        }


def assess_candidate_cached(
    candidate: CandidateBuildUp,
    volume: float,
    cache: EvaluationCache,
) -> BuildUpAssessment:
    """Methodology steps 2-4 for one candidate, through the memo.

    Mirrors :func:`repro.core.methodology.assess_candidate` exactly,
    with each sub-result resolved through the
    :class:`EvaluationCache`.
    """
    if candidate.fixed_performance is not None:
        performance = candidate.fixed_performance
        chain: Optional[ChainPerformance] = None
    else:
        chain = cache.performance(
            candidate.filter_assignments,
            lambda: assess_chain(candidate.filter_assignments),
        )
        performance = chain.score
    area = cache.area(
        candidate.footprints,
        candidate.substrate_rule,
        candidate.laminate,
        lambda: trivial_placement(
            candidate.footprints,
            candidate.substrate_rule,
            candidate.laminate,
        ),
    )
    flow = candidate.flow_factory(area.substrate_area_cm2)
    cost = cache.cost(flow, volume, lambda: evaluate(flow, volume=volume))
    return BuildUpAssessment(
        name=candidate.name,
        performance=performance,
        chain=chain,
        area=area,
        cost=cost,
    )


@dataclass(frozen=True)
class SweepCell:
    """The full study at one grid point."""

    point: DesignPoint
    result: StudyResult


@dataclass(frozen=True)
class SweepReport:
    """Everything a design-space sweep produced.

    Results live in a columnar
    :class:`~repro.core.resultframe.ResultFrame` (``frame``): winner
    counts, best-row lookup and candidate filters are vectorised
    column operations, so they stay cheap on reports merged from
    hundreds of shards.  The :attr:`rows` property is the row-object
    bridge — bit-identical :class:`~repro.core.resultframe.SweepRow`
    tuples, materialised on first use — kept for per-row consumers.

    ``cache_stats`` carries :meth:`EvaluationCache.stats`: flat
    ``hits`` / ``misses`` totals plus a ``tables`` breakdown per
    sub-result table, merged across workers whatever engine ran the
    sweep.
    """

    cells: tuple[SweepCell, ...]
    frame: ResultFrame
    cache_stats: dict = field(default_factory=dict)

    @cached_property
    def rows(self) -> tuple[SweepRow, ...]:
        """The frame as row objects (bit-exact bridge, memoised)."""
        return self.frame.to_rows()

    def winner_counts(self) -> dict[str, int]:
        """How often each candidate wins across the grid.

        A vectorised count over the frame's ``is_winner`` /
        ``candidate`` columns (every grid point has exactly one winning
        row), so it also works for reports reassembled from shard
        artifacts, which carry the frame but no ``cells``.
        """
        return self.frame.winner_counts()

    def rows_for(self, candidate: str) -> list[SweepRow]:
        """All grid rows of one candidate (vectorised filter)."""
        mask = self.frame.column("candidate") == candidate
        return list(self.frame.filter(mask).to_rows())

    def best_row(self) -> SweepRow:
        """The single highest-FoM row of the whole sweep."""
        return self.frame.row(self.frame.best_index())


def _cell_row_values(cell: SweepCell) -> Iterator[tuple]:
    """Per-candidate value tuples of one cell, in SweepRow field order.

    The single canonical cell → values mapping shared by
    :func:`rows_for_cell` (row objects) and :func:`frame_for_cells`
    (columns) — whatever representation a path materialises, the
    underlying values are identical.
    """
    point = cell.point
    winner = cell.result.winner.assessment.name
    pareto = analyze_study(cell.result)
    substrate = point.substrate.name if point.substrate else "paper"
    process = point.process.name if point.process else "paper"
    tolerance = point.tolerance.name if point.tolerance else "paper"
    q_model = point.q_model_label()
    nre = point.nre_label()
    weights = point.weights_label()
    for study_row in cell.result.rows:
        name = study_row.assessment.name
        yield (
            point.volume,
            substrate,
            process,
            tolerance,
            q_model,
            nre,
            weights,
            name,
            study_row.fom.performance,
            study_row.area_percent,
            study_row.cost_percent,
            study_row.fom.figure_of_merit,
            name == winner,
            pareto.is_on_front(name),
        )


def rows_for_cell(cell: SweepCell) -> list[SweepRow]:
    """Flatten one evaluated grid cell into its Pareto-ready rows.

    The row-object view of :func:`_cell_row_values`; per-row consumers
    (and the streaming bridge) use this, bulk paths build a
    :class:`~repro.core.resultframe.ResultFrame` with
    :func:`frame_for_cells` instead.
    """
    return [SweepRow(*values) for values in _cell_row_values(cell)]


def frame_for_cells(cells: Sequence[SweepCell]) -> ResultFrame:
    """Flatten evaluated grid cells into one columnar result frame.

    The canonical cells → frame mapping shared by
    :func:`run_design_sweep`, the streaming generator and the shard
    artifact writer — whatever path produced the cells, the frame (and
    hence its row bridge) is byte-identical.
    """
    columns: dict[str, list] = {name: [] for name in COLUMN_ORDER}
    for cell in cells:
        for values in _cell_row_values(cell):
            for name, value in zip(COLUMN_ORDER, values):
                columns[name].append(value)
    return ResultFrame.from_columns(columns)


def ratio_columns_for_cells(
    cells: Sequence[SweepCell],
) -> dict[str, tuple[float, ...]]:
    """The per-row FoM *input* ratios, aligned with :func:`frame_for_cells`.

    The frame stores ``area_percent`` / ``cost_percent`` — the rounded
    doubles ``fl(100 * ratio)`` — from which the underlying ratios
    cannot be recovered (``(100.0 * x) / 100.0 != x`` for a measurable
    fraction of doubles, and the map is not even injective).  Anything
    that re-ranks stored rows under new FoM weights byte-identically to
    a fresh sweep therefore needs the ratios themselves; the warehouse
    tier (:mod:`repro.core.warehouse`) persists these two auxiliary
    columns next to the frame for exactly that.
    """
    size: list[float] = []
    cost: list[float] = []
    for cell in cells:
        for study_row in cell.result.rows:
            size.append(study_row.fom.size_ratio)
            cost.append(study_row.fom.cost_ratio)
    return {"size_ratio": tuple(size), "cost_ratio": tuple(cost)}


def evaluate_cell(
    point: DesignPoint,
    candidates: Sequence[CandidateBuildUp],
    reference: int,
    weights: FomWeights,
    cache: EvaluationCache,
) -> SweepCell:
    """Evaluate one grid point over ready-made candidates.

    The unit of work every execution engine schedules: validates the
    candidate list, assesses each candidate through the memo and ranks
    the result (methodology step 5).  A point carrying its own FoM
    weight vector (the weights axis) is ranked with it; ``weights`` is
    the sweep-wide default for all other points.
    """
    candidates = list(candidates)
    if not candidates:
        raise SpecificationError(
            f"candidate factory returned no candidates at "
            f"{point.label()}"
        )
    if not (0 <= reference < len(candidates)):
        raise SpecificationError(
            f"reference index {reference} out of range for "
            f"{len(candidates)} candidates"
        )
    assessments = [
        assess_candidate_cached(candidate, point.volume, cache)
        for candidate in candidates
    ]
    effective = point.weights if point.weights is not None else weights
    result = study_from_assessments(assessments, reference, effective)
    return SweepCell(point=point, result=result)


#: Environment switch for the batched family fill (default: enabled).
BATCH_FILL_ENV = "REPRO_SWEEP_BATCH"

#: Values accepted by :envvar:`REPRO_SWEEP_BATCH`, by meaning.
_BATCH_FILL_ON = ("", "1", "true", "on", "batch")
_BATCH_FILL_OFF = ("0", "false", "off", "scalar")


def batch_fill_enabled() -> bool:
    """Whether :envvar:`REPRO_SWEEP_BATCH` allows the batched fill."""
    raw = os.environ.get(BATCH_FILL_ENV, "").strip().lower()
    if raw in _BATCH_FILL_ON:
        return True
    if raw in _BATCH_FILL_OFF:
        return False
    raise SpecificationError(
        f"{BATCH_FILL_ENV} must be one of "
        "1/0/true/false/on/off/batch/scalar, got "
        f"{os.environ[BATCH_FILL_ENV]!r}"
    )


def family_runs(points: Sequence[DesignPoint]) -> list[list[int]]:
    """Group point positions into volume families.

    Two points belong to one family when every axis except the volume
    agrees (by content ``repr``, the cache-key discipline) — such
    points share candidates, performance and placement, differing only
    in the cost step's volume.  Grid enumeration is volume-major
    (volume varies *slowest*), so a family's members are strided across
    the run, not adjacent; positions within each family keep run order.
    """
    families: dict[tuple, list[int]] = {}
    for position, point in enumerate(points):
        key = (
            repr(point.substrate),
            repr(point.process),
            repr(point.tolerance),
            repr(point.q_model),
            repr(point.nre),
            repr(point.weights),
        )
        families.setdefault(key, []).append(position)
    return list(families.values())


def assess_candidate_family_cached(
    candidate: CandidateBuildUp,
    volumes: Sequence[float],
    cache: EvaluationCache,
) -> list[BuildUpAssessment]:
    """Steps 2-4 for one candidate across a volume family, memoised.

    The volume-invariant sub-results (performance, placement) are
    resolved through the cache **once** and re-counted as hits for the
    remaining volumes (:meth:`EvaluationCache.count_reuse`), so the
    stats match the per-point lookups of the scalar fill; the cost step
    resolves all volumes through one :meth:`EvaluationCache.cost_batch`
    call backed by a single batched flow walk.  Produces assessments
    bit-identical to ``[assess_candidate_cached(candidate, v, cache)
    for v in volumes]``.
    """
    reuse = len(volumes) - 1
    if candidate.fixed_performance is not None:
        performance = candidate.fixed_performance
        chain: Optional[ChainPerformance] = None
    else:
        chain = cache.performance(
            candidate.filter_assignments,
            lambda: assess_chain(candidate.filter_assignments),
        )
        cache.count_reuse("performance", reuse)
        performance = chain.score
    area = cache.area(
        candidate.footprints,
        candidate.substrate_rule,
        candidate.laminate,
        lambda: trivial_placement(
            candidate.footprints,
            candidate.substrate_rule,
            candidate.laminate,
        ),
    )
    cache.count_reuse("area", reuse)
    flow = candidate.flow_factory(area.substrate_area_cm2)
    costs = cache.cost_batch(
        flow,
        volumes,
        lambda missing: evaluate_batch(flow, missing).to_reports(),
    )
    return [
        BuildUpAssessment(
            name=candidate.name,
            performance=performance,
            chain=chain,
            area=area,
            cost=cost,
        )
        for cost in costs
    ]


def evaluate_family(
    points: Sequence[DesignPoint],
    candidates: Sequence[CandidateBuildUp],
    reference: int,
    weights: FomWeights,
    cache: EvaluationCache,
) -> list[SweepCell]:
    """Evaluate a whole volume family of grid points in one pass.

    All points share one candidate list (the family key excludes only
    the volume); each candidate is assessed across the whole volume
    axis at once and the per-point ranking (step 5) is applied last.
    Returns one cell per point, in the order given, each bit-identical
    to :func:`evaluate_cell` at that point.
    """
    candidates = list(candidates)
    if not candidates:
        raise SpecificationError(
            f"candidate factory returned no candidates at "
            f"{points[0].label()}"
        )
    if not (0 <= reference < len(candidates)):
        raise SpecificationError(
            f"reference index {reference} out of range for "
            f"{len(candidates)} candidates"
        )
    volumes = [point.volume for point in points]
    per_candidate = [
        assess_candidate_family_cached(candidate, volumes, cache)
        for candidate in candidates
    ]
    cells = []
    for column, point in enumerate(points):
        assessments = [family[column] for family in per_candidate]
        effective = point.weights if point.weights is not None else weights
        result = study_from_assessments(assessments, reference, effective)
        cells.append(SweepCell(point=point, result=result))
    return cells


def _seed_family_placements(
    family_candidates: Sequence[Sequence[CandidateBuildUp]],
    cache: EvaluationCache,
) -> None:
    """Pre-place every not-yet-cached candidate with broadcast calls.

    Candidates are grouped by (rule, laminate) so each group is one
    :func:`~repro.area.placement.trivial_placement_batch` call; results
    are seeded without counting (:meth:`EvaluationCache.seed_area`), so
    the later per-family lookups tally as ordinary hits.
    """
    pending: dict[str, CandidateBuildUp] = {}
    for candidates in family_candidates:
        for candidate in candidates:
            key = EvaluationCache.area_key(
                candidate.footprints,
                candidate.substrate_rule,
                candidate.laminate,
            )
            if not cache.has_area(key) and key not in pending:
                pending[key] = candidate
    groups: dict[str, list[tuple[str, CandidateBuildUp]]] = {}
    for key, candidate in pending.items():
        group_key = f"{candidate.substrate_rule!r}|{candidate.laminate!r}"
        groups.setdefault(group_key, []).append((key, candidate))
    for entries in groups.values():
        rule = entries[0][1].substrate_rule
        laminate = entries[0][1].laminate
        reports = trivial_placement_batch(
            [candidate.footprints for _, candidate in entries],
            rule,
            laminate,
        )
        for (key, _), report in zip(entries, reports):
            cache.seed_area(key, report)


def evaluate_cells_batched(
    points: Sequence[DesignPoint],
    candidate_factory: Callable[[DesignPoint], Sequence[CandidateBuildUp]],
    reference: int,
    weights: FomWeights,
    cache: EvaluationCache,
) -> list[SweepCell]:
    """The batched fill: evaluate a run of points family by family.

    Points are grouped into volume families (:func:`family_runs`); the
    candidate factory runs **once per family** — it must therefore be
    volume-invariant, see :func:`evaluate_cells` — placements are
    broadcast ahead of the evaluation, and each family is assessed with
    one batched flow walk per (candidate, flow).  The returned cells
    are in run order and bit-identical to the scalar fill.
    """
    runs = family_runs(points)
    family_points = [[points[position] for position in run] for run in runs]
    family_candidates = [
        list(candidate_factory(family[0])) for family in family_points
    ]
    _seed_family_placements(family_candidates, cache)
    cells: list[Optional[SweepCell]] = [None] * len(points)
    for run, family, candidates in zip(
        runs, family_points, family_candidates
    ):
        for position, cell in zip(
            run, evaluate_family(family, candidates, reference, weights, cache)
        ):
            cells[position] = cell
    return cells


def evaluate_cells(
    points: Sequence[DesignPoint],
    candidate_factory: Callable[[DesignPoint], Sequence[CandidateBuildUp]],
    reference: int,
    weights: FomWeights,
    cache: EvaluationCache,
    fill: Optional[str] = None,
) -> list[SweepCell]:
    """Evaluate a run of grid points in order, sharing one cache.

    The serial engine's whole job, and the per-worker body of the
    process engine (each worker runs this over its slice with a fresh
    cache that is merged back afterwards).

    ``fill`` selects how the run is filled:

    * ``None`` (default) — the batched fill when
      :envvar:`REPRO_SWEEP_BATCH` allows it (it does by default) *and*
      the candidate factory declares ``volume_invariant = True``
      (meaning it returns equal candidates for points differing only in
      volume — :class:`~repro.gps.study.GpsSweepFactory` does); the
      scalar reference fill otherwise.
    * ``"batch"`` — force the batched fill (caller vouches for the
      factory's volume-invariance).
    * ``"scalar"`` — force the per-point reference fill.

    Both fills produce bit-identical cells; the batched fill walks each
    production flow once per family instead of once per point.
    """
    if fill is None:
        use_batch = batch_fill_enabled() and getattr(
            candidate_factory, "volume_invariant", False
        )
    elif fill == "batch":
        use_batch = True
    elif fill == "scalar":
        use_batch = False
    else:
        raise SpecificationError(
            f"fill must be one of None/'batch'/'scalar', got {fill!r}"
        )
    if use_batch:
        return evaluate_cells_batched(
            points, candidate_factory, reference, weights, cache
        )
    return [
        evaluate_cell(
            point, candidate_factory(point), reference, weights, cache
        )
        for point in points
    ]


def run_design_sweep(
    grid: SweepGrid | Iterable[DesignPoint],
    candidate_factory: Callable[[DesignPoint], Sequence[CandidateBuildUp]],
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
) -> SweepReport:
    """Fan the methodology out over a design-space grid.

    Parameters
    ----------
    grid:
        A :class:`SweepGrid` or an explicit iterable of
        :class:`DesignPoint`.
    candidate_factory:
        Maps a grid point to the build-up candidates to study there
        (step 1 stays the application's job).  The process engine ships
        the factory to worker processes, so it must be picklable there
        (a module-level function or class instance, not a lambda).
    reference:
        Index of the reference candidate (the 100 % marks), per point.
    weights:
        Optional FoM weighting; the paper's plain product by default.
    cache:
        Optional pre-warmed :class:`EvaluationCache`; a fresh one is
        created when omitted.  Worker caches are merged into it, so its
        stats always cover the whole sweep.
    executor:
        Optional :class:`~repro.core.executors.Executor`; defaults to
        the engine named by ``$REPRO_SWEEP_ENGINE`` (serial when unset).
        Every engine produces identical rows — they only change how the
        grid is scheduled.
    """
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    if weights is None:
        weights = FomWeights()
    if cache is None:
        cache = EvaluationCache()
    if executor is None:
        from .executors import default_executor  # cycle-free at import

        executor = default_executor()

    cells = executor.run_sweep(
        points, candidate_factory, reference, weights, cache
    )
    return SweepReport(
        cells=tuple(cells),
        frame=frame_for_cells(cells),
        cache_stats=cache.stats(),
    )


@dataclass(frozen=True)
class StreamedCell:
    """One grid cell as it streams out of an asynchronous sweep.

    ``index`` is the cell's canonical position in the grid (the order
    :class:`SerialExecutor` would have produced it in); cells arrive in
    *completion* order, so a consumer that wants the canonical row
    order sorts by index — or simply calls :func:`run_design_sweep`.
    ``frame`` carries the cell's results columnar (concatenate streamed
    frames with :meth:`ResultFrame.concat` for an incremental report);
    :attr:`rows` is the row-object bridge.
    """

    index: int
    cell: SweepCell
    frame: ResultFrame

    @cached_property
    def rows(self) -> tuple[SweepRow, ...]:
        """The cell's frame as row objects (bit-exact bridge)."""
        return self.frame.to_rows()


def stream_design_sweep(
    grid: SweepGrid | Iterable[DesignPoint],
    candidate_factory: Callable[[DesignPoint], Sequence[CandidateBuildUp]],
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
) -> Iterator[StreamedCell]:
    """The generator surface of :func:`run_design_sweep`.

    Yields one :class:`StreamedCell` per grid point *as each point
    finishes* instead of blocking until the whole grid is done.  With
    an engine that evaluates points concurrently and supports
    streaming (``iter_cells``, e.g.
    :class:`~repro.core.executors.AsyncExecutor`, the default here),
    cells arrive in completion order; any other
    :class:`~repro.core.executors.Executor` is driven to completion
    first and its cells are yielded in canonical order.

    The rows of every yielded cell are byte-identical to the rows
    :func:`run_design_sweep` would report for the same grid — streaming
    changes *when* results become visible, never *what* they are.
    """
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    if weights is None:
        weights = FomWeights()
    if cache is None:
        cache = EvaluationCache()
    if executor is None:
        from .executors import AsyncExecutor  # cycle-free at import

        executor = AsyncExecutor()

    iter_cells = getattr(executor, "iter_cells", None)
    if iter_cells is not None:
        indexed = iter_cells(
            points, candidate_factory, reference, weights, cache
        )
    else:
        indexed = enumerate(
            executor.run_sweep(
                points, candidate_factory, reference, weights, cache
            )
        )
    for index, cell in indexed:
        yield StreamedCell(
            index=index, cell=cell, frame=frame_for_cells([cell])
        )
