"""Figure-of-merit computation (paper §4.4, Fig. 6).

The paper folds the three assessment axes into one number::

    FoM = performance * (1 / size) * (1 / cost)

where size and cost are normalised to the reference build-up, "the less
area and the less cost, the better, therefore the reciprocal values are
used".  For more complicated cases the paper mentions weighting factors;
:class:`FomWeights` provides them as exponents, so the unweighted product
is the all-ones case and a weight of zero removes an axis entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecificationError


@dataclass(frozen=True)
class FomWeights:
    """Exponential weights for the three FoM axes.

    ``FoM = perf^wp * (1/size)^ws * (1/cost)^wc``; all ones reproduces
    the paper's plain product.
    """

    performance: float = 1.0
    size: float = 1.0
    cost: float = 1.0

    def __post_init__(self) -> None:
        for label, value in (
            ("performance", self.performance),
            ("size", self.size),
            ("cost", self.cost),
        ):
            if not math.isfinite(value) or value < 0:
                raise SpecificationError(
                    f"{label} weight must be a non-negative finite "
                    f"number, got {value}"
                )


@dataclass(frozen=True)
class FomEntry:
    """The Fig. 6 row for one build-up."""

    name: str
    performance: float
    size_ratio: float
    cost_ratio: float
    figure_of_merit: float

    @property
    def size_reciprocal(self) -> float:
        """``1/size`` as printed in the Fig. 6 table."""
        return 1.0 / self.size_ratio

    @property
    def cost_reciprocal(self) -> float:
        """``1/cost`` as printed in the Fig. 6 table."""
        return 1.0 / self.cost_ratio


def figure_of_merit(
    performance: float,
    size_ratio: float,
    cost_ratio: float,
    weights: FomWeights | None = None,
) -> float:
    """Compute the paper's figure of merit for one build-up.

    Parameters
    ----------
    performance:
        Performance score in ``[0, 1]`` (1 = fully meets spec).
    size_ratio:
        Area relative to the reference (Fig. 3 value / 100).
    cost_ratio:
        Final cost relative to the reference (Fig. 5 value / 100).
    weights:
        Optional exponents; defaults to the plain product.
    """
    if performance < 0:
        raise SpecificationError(
            f"performance cannot be negative, got {performance}"
        )
    if size_ratio <= 0 or cost_ratio <= 0:
        raise SpecificationError(
            "size and cost ratios must be positive, got "
            f"{size_ratio} and {cost_ratio}"
        )
    if weights is None:
        weights = FomWeights()
    return (
        performance**weights.performance
        * (1.0 / size_ratio) ** weights.size
        * (1.0 / cost_ratio) ** weights.cost
    )


def rank_buildups(entries: list[FomEntry]) -> list[FomEntry]:
    """Sort build-ups by descending figure of merit (best first)."""
    if not entries:
        raise SpecificationError("cannot rank an empty list")
    return sorted(entries, key=lambda e: e.figure_of_merit, reverse=True)
