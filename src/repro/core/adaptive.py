"""Adaptive Pareto-refinement sweep driver (coarse → zoom passes).

Every tier so far — batched MNA, sharding, the queue fabric, the
warehouse, the out-of-core store — evaluates the **exhaustive**
Cartesian grid.  This module attacks the evaluation count instead: run
a *coarse* pass over a subsampled grid, find the cells that put rows on
(or within a configurable dominance margin of) the current global
Pareto front, and **zoom** — refine only the continuous axes in the
neighbourhoods of front members, re-proposing subgrids until the front
is stable or an evaluation budget is exhausted.

Three axes are *refinable* — they carry orderable, continuous values:

* **volume** — refined by rank over the value-sorted axis, so a
  geometrically spaced axis is bisected on the log scale;
* **Q model** — custom ``tan=<x>`` loss-tangent models
  (:class:`~repro.circuits.qfactor.SubstrateLossQModel`), ordered by
  their parameter tuple; named scenarios and the paper default are
  discrete and never refined;
* **FoM weights** — explicit
  :class:`~repro.core.figure_of_merit.FomWeights` triples ordered by
  their exponent tuple.

Everything else (substrate rules, processes, tolerance classes, NRE
scenarios, the ``None`` paper defaults) is categorical: the coarse pass
always covers those values in full.

Refinement never leaves the target grid: proposals are *positions of
the exhaustive grid*, found by rank bisection between already-evaluated
neighbours of each front cell.  That is what makes the acceptance gate
checkable — the adaptive front can be byte-compared against the
exhaustive front restricted to the evaluated points, because every
evaluated point is an exhaustive-grid point evaluated through exactly
the same :func:`~repro.core.sweep.evaluate_cell` path.

Each pass is an ordinary point list driven through
:func:`~repro.core.sweep.stream_design_sweep` under any executor with
one shared memoised :class:`~repro.core.sweep.EvaluationCache`, so the
engine/fill machinery composes unchanged and refinement re-uses every
sub-result the coarse pass already paid for.  All passes merge into one
canonical :class:`~repro.core.resultframe.ResultFrame` — deduplicated
by design point (one evaluation per grid coordinate, whatever pass
proposed it first) and ordered by the point's canonical grid position —
byte-compatible with the warehouse and framestore ingest paths.

The :class:`AdaptiveReport` records per-pass evaluation counts, front
deltas and cache reuse, so the "≥10x fewer evaluations at equal front
quality" claim is *observable* (``benchmarks/test_adaptive_speed.py``
gates on it), not asserted.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Optional, Sequence

import numpy as np

from ..circuits.qfactor import SubstrateLossQModel
from ..errors import SpecificationError
from .figure_of_merit import FomWeights
from .pareto import first_dominators, margin_dominators
from .resultframe import ResultFrame
from .sweep import (
    DesignPoint,
    EvaluationCache,
    SweepCell,
    SweepGrid,
    SweepReport,
    frame_for_cells,
    stream_design_sweep,
)

#: SweepGrid axis attributes in canonical (volume-major) order.
GRID_AXES = (
    "volumes",
    "substrates",
    "processes",
    "tolerances",
    "q_models",
    "nres",
    "fom_weights",
)


def _refinable_order(axis: str, values: Sequence) -> list[int]:
    """Positions of the axis's refinable values, in *value* order.

    Returns the positions (indices into the axis tuple) of values the
    zoom may bisect between, sorted ascending by value so consecutive
    ranks are value-neighbours.  Categorical axes (and categorical
    values on a mixed axis) yield no positions — the coarse pass covers
    them in full instead.
    """
    if axis == "volumes":
        keyed = [(float(value), pos) for pos, value in enumerate(values)]
    elif axis == "q_models":
        keyed = [
            (
                (
                    value.tan_delta_ref,
                    value.f_ref_hz,
                    value.slope,
                    value.conductor_q,
                ),
                pos,
            )
            for pos, value in enumerate(values)
            if isinstance(value, SubstrateLossQModel)
        ]
    elif axis == "fom_weights":
        keyed = [
            ((value.performance, value.size, value.cost), pos)
            for pos, value in enumerate(values)
            if isinstance(value, FomWeights)
        ]
    else:
        return []
    keyed.sort()
    return [pos for _, pos in keyed]


def _coarse_ranks(length: int, coarse: int) -> list[int]:
    """Evenly spaced subsample of ``range(length)``, endpoints included.

    ``coarse`` is the number of ranks the coarse pass keeps per
    refinable axis; short axes are kept whole.
    """
    if length <= coarse:
        return list(range(length))
    ranks = {
        round(i * (length - 1) / (coarse - 1)) for i in range(coarse)
    }
    return sorted(ranks)


@dataclass(frozen=True)
class AdaptivePass:
    """Bookkeeping for one coarse or zoom pass.

    ``proposed`` counts the fresh grid positions the pass wanted (never
    a position some earlier pass already evaluated); ``evaluated`` is
    what the budget let through.  ``front_added`` / ``front_removed``
    compare global-front membership (cell, candidate) pairs against the
    previous pass.  ``cache_hits`` / ``cache_misses`` are the shared
    evaluation cache's deltas over the pass — the observable measure of
    how much of a zoom pass the memo made free.
    """

    index: int
    proposed: int
    evaluated: int
    cumulative_evaluations: int
    front_size: int
    front_added: int
    front_removed: int
    cache_hits: int
    cache_misses: int


@dataclass(frozen=True)
class AdaptiveReport:
    """Everything the adaptive driver produced.

    ``frame`` / ``cells`` carry the merged results of every pass in
    canonical grid order — byte-identical to what an exhaustive sweep
    restricted to ``evaluated_indices`` would report, so all frame
    consumers (warehouse ingest, framestore spill, CSV) compose
    unchanged.  ``grid_points`` is the exhaustive grid's size;
    ``savings`` is the headline evaluation-count ratio.
    """

    grid_points: int
    total_evaluations: int
    passes: tuple[AdaptivePass, ...]
    stable: bool
    budget_exhausted: bool
    refine_margin: float
    cells: tuple[SweepCell, ...]
    frame: ResultFrame
    evaluated_indices: tuple[int, ...]
    cache_stats: dict = field(default_factory=dict)

    @property
    def savings(self) -> float:
        """Exhaustive-grid points per evaluation actually spent."""
        return self.grid_points / self.total_evaluations

    @property
    def report(self) -> SweepReport:
        """The merged results as an ordinary :class:`SweepReport`."""
        return SweepReport(
            cells=self.cells,
            frame=self.frame,
            cache_stats=self.cache_stats,
        )

    def front_mask(self, margin: float = 0.0) -> np.ndarray:
        """Global Pareto membership per merged-frame row."""
        return global_front_mask(self.frame, margin)

    def front_frame(self) -> ResultFrame:
        """The merged frame restricted to the global Pareto front."""
        return self.frame.filter(self.front_mask())


def global_front_mask(
    frame: ResultFrame, margin: float = 0.0
) -> np.ndarray:
    """Pareto membership of frame rows across *all* cells.

    The per-cell ``on_pareto_front`` column compares the four
    candidates of one grid point with each other; the adaptive driver
    needs dominance across the whole evaluated set.  Objectives are the
    frame's ``performance`` (maximised) and ``area_percent`` /
    ``cost_percent`` (minimised); ``margin = 0`` asks for the exact
    front via :func:`~repro.core.pareto.first_dominators`, a positive
    margin widens membership to rows whose margin-boosted copy would
    survive (:func:`~repro.core.pareto.margin_dominators`).
    """
    performance = frame.column("performance")
    area = frame.column("area_percent")
    cost = frame.column("cost_percent")
    if margin == 0.0:
        dominator = first_dominators(performance, area, cost)
    else:
        dominator = margin_dominators(performance, area, cost, margin)
    return dominator < 0


def _front_cells(
    cells: Sequence[SweepCell],
    indices: Sequence[int],
    mask: np.ndarray,
) -> tuple[set[int], set[tuple[int, str]]]:
    """Cells to refine around, plus front identity for delta tracking.

    ``indices`` aligns each cell with its flat grid index (a stable
    identity across passes — positions in the cells list shift as the
    evaluated set grows).  The first return holds the flat indices of
    the cells to zoom around, deduplicated by objective vector: the
    reference rows are byte-identical at every grid point (always the
    ``100 %`` marks), so without dedup every evaluated cell would count
    as a front cell and the zoom would flood the grid.  Only the
    earliest cell carrying a distinct objective vector is refined;
    front *membership* (the second return, ``(flat index, candidate)``
    pairs) stays undeduped so pass deltas report what the front
    actually holds.
    """
    refine: set[int] = set()
    members: set[tuple[int, str]] = set()
    seen: set[tuple[float, float, float]] = set()
    row = 0
    for index, cell in zip(indices, cells):
        for study_row in cell.result.rows:
            if mask[row]:
                name = study_row.assessment.name
                members.add((index, name))
                objective = (
                    study_row.fom.performance,
                    study_row.area_percent,
                    study_row.cost_percent,
                )
                if objective not in seen:
                    seen.add(objective)
                    refine.add(index)
            row += 1
    return refine, members


class _GridIndex:
    """Rank arithmetic over one :class:`SweepGrid`.

    Maps between flat canonical indices (the order
    :meth:`SweepGrid.points` enumerates, last axis fastest) and
    per-axis positions, and knows which positions of each axis are
    refinable and in what value order.
    """

    def __init__(self, grid: SweepGrid):
        self.grid = grid
        self.shape = tuple(len(getattr(grid, axis)) for axis in GRID_AXES)
        # ordered[a]: refinable positions of axis a, ascending by value.
        # rank_of[a]: position -> rank within ordered[a].
        self.ordered: list[list[int]] = []
        self.rank_of: list[dict[int, int]] = []
        for axis in GRID_AXES:
            order = _refinable_order(axis, getattr(grid, axis))
            self.ordered.append(order)
            self.rank_of.append(
                {pos: rank for rank, pos in enumerate(order)}
            )

    def flat(self, positions: Sequence[int]) -> int:
        index = 0
        for length, position in zip(self.shape, positions):
            index = index * length + position
        return index

    def unflat(self, index: int) -> list[int]:
        positions = [0] * len(self.shape)
        for axis in range(len(self.shape) - 1, -1, -1):
            index, positions[axis] = divmod(index, self.shape[axis])
        return positions

    def coarse_indices(self, coarse: int) -> list[int]:
        """Flat indices of the coarse pass, in canonical order."""
        kept: list[list[int]] = []
        for axis_rank, axis in enumerate(GRID_AXES):
            length = self.shape[axis_rank]
            order = self.ordered[axis_rank]
            refinable = set(order)
            positions = {
                pos for pos in range(length) if pos not in refinable
            }
            positions.update(
                order[rank] for rank in _coarse_ranks(len(order), coarse)
            )
            kept.append(sorted(positions))
        return [self.flat(combo) for combo in product(*kept)]

    def zoom_indices(
        self, refine: set[int], evaluated: dict[int, SweepCell]
    ) -> list[int]:
        """Flat indices the next zoom pass should evaluate.

        For every front cell and every refinable axis, bisect by rank
        between the cell and its nearest *evaluated* value-neighbour on
        each side (falling back to the axis end when the budget starved
        an endpoint).  Gap-1 neighbours propose nothing — that line is
        locally resolved — so successive passes halve every gap and the
        proposal stream provably dries up.
        """
        proposals: set[int] = set()
        for index in sorted(refine):
            positions = self.unflat(index)
            for axis_rank in range(len(GRID_AXES)):
                order = self.ordered[axis_rank]
                rank = self.rank_of[axis_rank].get(positions[axis_rank])
                if rank is None or len(order) < 2:
                    continue
                line = list(positions)

                def line_flat(r: int) -> int:
                    line[axis_rank] = order[r]
                    return self.flat(line)

                evaluated_ranks = [
                    r
                    for r in range(len(order))
                    if line_flat(r) in evaluated
                ]
                at = bisect_left(evaluated_ranks, rank)
                for anchor, end in (
                    (evaluated_ranks[at - 1] if at > 0 else None, 0),
                    (
                        evaluated_ranks[at + 1]
                        if at + 1 < len(evaluated_ranks)
                        else None,
                        len(order) - 1,
                    ),
                ):
                    if anchor is None:
                        targets = {end, (end + rank) // 2}
                    elif abs(anchor - rank) > 1:
                        targets = {(anchor + rank) // 2}
                    else:
                        continue
                    for target in targets:
                        flat = line_flat(target)
                        if flat not in evaluated:
                            proposals.add(flat)
        return sorted(proposals)


def run_adaptive_sweep(
    grid: SweepGrid,
    candidate_factory: Callable[[DesignPoint], Sequence],
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
    *,
    passes: Optional[int] = None,
    budget: Optional[int] = None,
    refine_margin: float = 0.0,
    coarse: int = 4,
) -> AdaptiveReport:
    """Sweep a grid adaptively: coarse pass, then zoom on the front.

    Parameters beyond :func:`~repro.core.sweep.run_design_sweep`'s
    (which keep their meaning — any executor, shared cache, per-point
    weights):

    passes:
        Maximum number of passes, the coarse pass included.  ``None``
        (default) runs until the front is stable — rank bisection
        guarantees that takes at most ``log2(axis length)`` zooms.
    budget:
        Maximum total cell evaluations across all passes.  A pass that
        would overrun is truncated in canonical order and the report is
        flagged ``budget_exhausted``.
    refine_margin:
        Relative dominance margin for choosing which cells to refine
        around: ``0`` refines only exact front members, ``0.05`` also
        refines cells whose rows come within 5 % of the front
        (:func:`~repro.core.pareto.margin_dominators`).  Widening the
        margin trades evaluations for robustness against fronts that
        shift as refinement fills the grid in.
    coarse:
        Ranks the coarse pass keeps per refinable axis (endpoints
        always included; categorical values are always swept in full).

    Returns an :class:`AdaptiveReport`; its ``frame`` is byte-identical
    to the exhaustive sweep's frame restricted to the evaluated points.
    """
    if not isinstance(grid, SweepGrid):
        raise SpecificationError(
            "adaptive sweep needs a SweepGrid (axis structure drives "
            "refinement), not a bare point iterable"
        )
    if passes is not None and passes < 1:
        raise SpecificationError(
            f"adaptive sweep needs at least one pass, got {passes}"
        )
    if budget is not None and budget < 1:
        raise SpecificationError(
            f"evaluation budget must be positive, got {budget}"
        )
    if coarse < 2:
        raise SpecificationError(
            f"coarse pass needs at least 2 ranks per axis, got {coarse}"
        )
    if not np.isfinite(refine_margin) or refine_margin < 0.0:
        raise SpecificationError(
            "refine margin must be a finite non-negative factor, "
            f"got {refine_margin!r}"
        )
    if weights is None:
        weights = FomWeights()
    if cache is None:
        cache = EvaluationCache()

    index = _GridIndex(grid)
    points = grid.points()
    evaluated: dict[int, SweepCell] = {}
    pass_records: list[AdaptivePass] = []
    previous_members: set[tuple[int, str]] = set()
    refine: set[int] = set()
    stable = False
    budget_exhausted = False

    pass_number = 0
    while passes is None or pass_number < passes:
        pass_number += 1
        if pass_number == 1:
            proposals = index.coarse_indices(coarse)
        else:
            proposals = index.zoom_indices(refine, evaluated)
        if not proposals:
            stable = True
            break
        chosen = proposals
        if budget is not None:
            headroom = budget - len(evaluated)
            if headroom < len(chosen):
                budget_exhausted = True
                chosen = chosen[:headroom]
        if chosen:
            hits_before = cache.hits
            misses_before = cache.misses
            for streamed in stream_design_sweep(
                [points[i] for i in chosen],
                candidate_factory,
                reference,
                weights,
                cache,
                executor,
            ):
                evaluated[chosen[streamed.index]] = streamed.cell
            ordered_indices = sorted(evaluated)
            cells = [evaluated[i] for i in ordered_indices]
            mask = global_front_mask(
                frame_for_cells(cells), refine_margin
            )
            refine, members = _front_cells(cells, ordered_indices, mask)
            pass_records.append(
                AdaptivePass(
                    index=pass_number,
                    proposed=len(proposals),
                    evaluated=len(chosen),
                    cumulative_evaluations=len(evaluated),
                    front_size=len(members),
                    front_added=len(members - previous_members),
                    front_removed=len(previous_members - members),
                    cache_hits=cache.hits - hits_before,
                    cache_misses=cache.misses - misses_before,
                )
            )
            previous_members = members
        if budget_exhausted:
            break
    else:
        # Pass limit reached; the run still counts as stable when the
        # next zoom would have proposed nothing anyway (the single-pass
        # "coarse covers the whole grid" case lands here).
        stable = not index.zoom_indices(refine, evaluated)

    evaluated_indices = tuple(sorted(evaluated))
    final_cells = tuple(evaluated[i] for i in evaluated_indices)
    return AdaptiveReport(
        grid_points=len(points),
        total_evaluations=len(evaluated),
        passes=tuple(pass_records),
        stable=stable,
        budget_exhausted=budget_exhausted,
        refine_margin=refine_margin,
        cells=final_cells,
        frame=frame_for_cells(final_cells),
        evaluated_indices=evaluated_indices,
        cache_stats=cache.stats(),
    )


def spill_adaptive_sweep(
    grid: SweepGrid,
    candidate_factory: Callable[[DesignPoint], Sequence],
    directory,
    max_rows_in_memory: int,
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor=None,
    *,
    passes: Optional[int] = None,
    budget: Optional[int] = None,
    refine_margin: float = 0.0,
    coarse: int = 4,
    meta: Optional[dict] = None,
):
    """Adaptive sweep whose merged frame lands in a chunk store.

    Runs :func:`run_adaptive_sweep` and spills the canonical merged
    frame cell by cell into a
    :class:`~repro.core.framestore.ChunkedFrameStore` under
    ``directory`` — the same ingest path the exhaustive spill uses, so
    warehouse/framestore consumers read adaptive results unchanged.
    The store's meta carries the identity of the *evaluated* subgrid
    (fingerprint, order digest, point count: what the store actually
    holds) plus the adaptive counters, and the finish meta carries the
    shared cache's stats.

    Returns ``(store, report)`` — the report keeps the in-RAM pass
    bookkeeping, the store the durable rows.
    """
    from .framestore import ChunkedFrameStore
    from .sharding import grid_fingerprint, grid_order_digest

    report = run_adaptive_sweep(
        grid,
        candidate_factory,
        reference=reference,
        weights=weights,
        cache=cache,
        executor=executor,
        passes=passes,
        budget=budget,
        refine_margin=refine_margin,
        coarse=coarse,
    )
    evaluated_points = [cell.point for cell in report.cells]
    store = ChunkedFrameStore.create(
        directory,
        max_rows_in_memory=max_rows_in_memory,
        meta={
            **(meta or {}),
            "fingerprint": grid_fingerprint(evaluated_points),
            "order_digest": grid_order_digest(evaluated_points),
            "total_points": len(evaluated_points),
            "adaptive": {
                "grid_points": report.grid_points,
                "total_evaluations": report.total_evaluations,
                "passes": len(report.passes),
                "stable": report.stable,
                "budget_exhausted": report.budget_exhausted,
                "refine_margin": report.refine_margin,
            },
        },
    )
    for cell in report.cells:
        store.append(frame_for_cells([cell]))
    return store.finish(meta={"cache_stats": report.cache_stats}), report
