"""Columnar sweep results: the :class:`ResultFrame` spine.

Every layer above the per-point evaluation — executors, cross-host
shard merging, reporting, CSV export — used to funnel its output
through Python lists of :class:`SweepRow` dataclasses, re-scanned
object by object at every merge, Pareto pass, winner count and export.
This module replaces that representation with a single
structure-of-arrays container: one typed numpy column per
:class:`SweepRow` field (float64 for metrics, object for labels, bool
for flags), so 10k–1M-row sweeps concatenate, sort, filter, rank and
serialise at numpy speed.

Design rules the rest of the stack relies on:

* **The row bridge is exact.**  ``from_rows(to_rows(frame)) == frame``
  and ``to_rows(from_rows(rows)) == rows`` bit for bit: float columns
  are stored as float64 (the same IEEE double a :class:`SweepRow`
  field holds), labels as Python strings in object columns, flags as
  numpy bools — nothing is rounded, truncated or interned on the way
  through.  Public row-based APIs (``SweepReport.rows``, shard-merge
  identity tests, the GPS goldens) sit on this bridge.
* **Serialisation round-trips floats exactly.**  ``to_json_columns``
  emits Python floats (``repr``-based JSON formatting), and
  ``csv_lines`` formats with ``str(float)`` — byte-identical to what
  the row-object path printed, locked by
  ``tests/core/test_resultframe.py``.
* **Column order is :class:`SweepRow` field order**, so a frame's CSV
  header matches the historical ``SweepRow.as_dict`` key order.

The vectorised dominance kernel behind :meth:`ResultFrame.pareto_mask`
lives in :mod:`repro.core.pareto`
(:func:`~repro.core.pareto.nondominated_mask`, successive O(front × n)
filtering).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import SpecificationError
from .pareto import nondominated_mask


@dataclass(frozen=True)
class SweepRow:
    """One Pareto-ready row: a candidate at a grid point.

    Flat on purpose — every field is a scalar or short string, so the
    rows dump straight into a CSV, a dataframe, or the CLI table.  The
    columnar twin is :class:`ResultFrame`; the two convert losslessly
    in both directions.
    """

    volume: float
    substrate: str
    process: str
    tolerance: str
    q_model: str
    nre: str
    weights: str
    candidate: str
    performance: float
    area_percent: float
    cost_percent: float
    figure_of_merit: float
    is_winner: bool
    on_pareto_front: bool

    def as_dict(self) -> dict:
        """The row as a plain dict (CSV/dataframe-ready)."""
        return {
            "volume": self.volume,
            "substrate": self.substrate,
            "process": self.process,
            "tolerance": self.tolerance,
            "q_model": self.q_model,
            "nre": self.nre,
            "weights": self.weights,
            "candidate": self.candidate,
            "performance": self.performance,
            "area_percent": self.area_percent,
            "cost_percent": self.cost_percent,
            "figure_of_merit": self.figure_of_merit,
            "is_winner": self.is_winner,
            "on_pareto_front": self.on_pareto_front,
        }


#: Frame column order == :class:`SweepRow` field order (and hence the
#: historical CSV header order).
COLUMN_ORDER: tuple[str, ...] = tuple(
    field.name for field in fields(SweepRow)
)

#: Metric columns stored as float64.
FLOAT_COLUMNS: tuple[str, ...] = (
    "volume",
    "performance",
    "area_percent",
    "cost_percent",
    "figure_of_merit",
)

#: Axis/label columns stored as Python strings in object arrays.
LABEL_COLUMNS: tuple[str, ...] = (
    "substrate",
    "process",
    "tolerance",
    "q_model",
    "nre",
    "weights",
    "candidate",
)

#: Flag columns stored as numpy bools.
BOOL_COLUMNS: tuple[str, ...] = ("is_winner", "on_pareto_front")

_COLUMN_DTYPES: dict[str, object] = {
    **{name: np.float64 for name in FLOAT_COLUMNS},
    **{name: object for name in LABEL_COLUMNS},
    **{name: np.bool_ for name in BOOL_COLUMNS},
}

assert set(COLUMN_ORDER) == set(_COLUMN_DTYPES)


def _check_bool_values(name: str, values) -> None:
    """Reject non-bool flag values before the numpy cast.

    ``np.asarray(values, dtype=bool)`` would happily coerce strings and
    numbers by truthiness (``"false"`` → True), turning a corrupt shard
    artifact into a silently wrong report; a flag column must hold
    actual booleans.
    """
    raw = np.asarray(values)
    if raw.dtype == np.bool_ or raw.size == 0:
        return
    if raw.dtype == object and all(
        isinstance(value, (bool, np.bool_)) for value in raw
    ):
        return
    raise SpecificationError(
        f"result frame column {name!r} must hold booleans, got "
        f"dtype {raw.dtype}"
    )


def group_starts(group_ids) -> np.ndarray:
    """Start offset of every run of equal ids in a run-grouped array.

    ``group_ids`` must already be *grouped* (equal ids contiguous) —
    the canonical frame row order groups rows by grid point, so the
    per-point id column (``point_of_row``) qualifies.  Returns the
    offsets in order of first appearance; empty input yields an empty
    offset array.
    """
    ids = np.asarray(group_ids)
    if ids.ndim != 1:
        raise SpecificationError(
            f"group ids must be 1-D, got shape {ids.shape}"
        )
    if ids.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    return np.flatnonzero(np.r_[True, ids[1:] != ids[:-1]]).astype(np.intp)


def group_first_max(group_ids, values) -> np.ndarray:
    """Row index of the first maximum within every run of equal ids.

    The vectorised twin of a per-group ``max()`` scan with first-wins
    tie-breaking — exactly the winner selection
    :func:`repro.core.figure_of_merit.rank_buildups` performs per cell
    (stable descending sort, take the head).  One
    ``np.maximum.reduceat`` finds each group's maximum, and a
    ``np.minimum.reduceat`` over masked row indices finds where it
    first occurs; no Python-level loop touches the rows.
    """
    ids = np.asarray(group_ids)
    data = np.asarray(values, dtype=np.float64)
    if data.shape != ids.shape:
        raise SpecificationError(
            f"group values have shape {data.shape}, expected "
            f"{ids.shape}"
        )
    starts = group_starts(ids)
    if starts.size == 0:
        return np.empty(0, dtype=np.intp)
    n = ids.shape[0]
    lengths = np.diff(np.append(starts, n))
    per_row_max = np.repeat(np.maximum.reduceat(data, starts), lengths)
    masked = np.where(data == per_row_max, np.arange(n), n)
    first = np.minimum.reduceat(masked, starts)
    if np.any(first >= n):
        # A group whose maximum never compares equal to itself can
        # only contain NaNs; surface it instead of indexing row n.
        raise SpecificationError(
            "group maximum undefined (NaN values in a group)"
        )
    return first.astype(np.intp)


class ResultFrame:
    """Structure-of-arrays container for sweep results.

    Construct via :meth:`from_rows`, :meth:`from_columns` or
    :meth:`concat`; frames are immutable (columns are read-only numpy
    arrays), so views handed out by :meth:`column` are safe to share.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        missing = [name for name in COLUMN_ORDER if name not in columns]
        extra = [name for name in columns if name not in _COLUMN_DTYPES]
        if missing or extra:
            raise SpecificationError(
                f"result frame needs exactly the SweepRow columns; "
                f"missing {missing}, unexpected {extra}"
            )
        converted: dict[str, np.ndarray] = {}
        length = None
        for name in COLUMN_ORDER:
            if name in BOOL_COLUMNS:
                _check_bool_values(name, columns[name])
            array = np.asarray(columns[name], dtype=_COLUMN_DTYPES[name])
            if array.ndim != 1:
                raise SpecificationError(
                    f"result frame column {name!r} must be 1-D, got "
                    f"shape {array.shape}"
                )
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise SpecificationError(
                    f"result frame column {name!r} has {array.shape[0]} "
                    f"entries, expected {length}"
                )
            if array.flags.writeable or array.base is not None:
                # Copy anything writeable *or* not owning its data: a
                # read-only view still aliases a caller buffer whose
                # base can mutate under the frame.
                array = array.copy()
                array.flags.writeable = False
            converted[name] = array
        object.__setattr__(self, "_columns", converted)

    # -- construction -------------------------------------------------

    @classmethod
    def _wrap(cls, columns: dict[str, np.ndarray]) -> "ResultFrame":
        """Adopt freshly-built arrays without the validating copy.

        Internal fast path for :meth:`concat` / :meth:`take` /
        :meth:`filter`, whose numpy outputs are already owned, typed
        and equal-length; the arrays are only marked read-only.
        """
        for array in columns.values():
            array.flags.writeable = False
        frame = object.__new__(cls)
        object.__setattr__(frame, "_columns", columns)
        return frame

    @classmethod
    def empty(cls) -> "ResultFrame":
        """A zero-row frame (the identity element of :meth:`concat`)."""
        return cls({name: [] for name in COLUMN_ORDER})

    @classmethod
    def from_rows(cls, rows: Iterable[SweepRow]) -> "ResultFrame":
        """Build a frame from row objects (the bridge in)."""
        rows = list(rows)
        return cls(
            {
                name: [getattr(row, name) for row in rows]
                for name in COLUMN_ORDER
            }
        )

    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence]
    ) -> "ResultFrame":
        """Build a frame from per-column value sequences."""
        return cls(dict(columns))

    @classmethod
    def concat(
        cls, frames: Sequence["ResultFrame"]
    ) -> "ResultFrame":
        """Vectorised concatenation of frames (empty list -> empty)."""
        frames = list(frames)
        if not frames:
            return cls.empty()
        if len(frames) == 1:
            return frames[0]
        return cls._wrap(
            {
                name: np.concatenate(
                    [frame._columns[name] for frame in frames]
                )
                for name in COLUMN_ORDER
            }
        )

    # -- basic protocol ----------------------------------------------

    def __len__(self) -> int:
        return self._columns[COLUMN_ORDER[0]].shape[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultFrame):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in COLUMN_ORDER
        )

    def __repr__(self) -> str:
        return f"ResultFrame({len(self)} rows x {len(COLUMN_ORDER)} columns)"

    def column(self, name: str) -> np.ndarray:
        """Read-only view of one column."""
        try:
            return self._columns[name]
        except KeyError:
            raise SpecificationError(
                f"unknown result column {name!r} "
                f"(choose from {', '.join(COLUMN_ORDER)})"
            ) from None

    # -- row bridge ---------------------------------------------------

    def row(self, index: int) -> SweepRow:
        """One row as a :class:`SweepRow` (Python scalars, bit-exact)."""
        n = len(self)
        if not (-n <= index < n):
            raise SpecificationError(
                f"row index {index} out of range for {n}-row frame"
            )
        return SweepRow(
            *(
                self._columns[name][index].item()
                if name not in LABEL_COLUMNS
                else self._columns[name][index]
                for name in COLUMN_ORDER
            )
        )

    def to_rows(self) -> tuple[SweepRow, ...]:
        """The whole frame as row objects (the bridge out).

        ``tolist()`` converts float64 back to the identical Python
        float and numpy bools to Python bools; label columns already
        hold Python strings — so
        ``ResultFrame.from_rows(rows).to_rows() == tuple(rows)``
        exactly.
        """
        columns = [
            self._columns[name].tolist() for name in COLUMN_ORDER
        ]
        return tuple(SweepRow(*values) for values in zip(*columns))

    # -- vectorised transforms ---------------------------------------

    def take(self, indices) -> "ResultFrame":
        """A new frame of the given rows, in the given order."""
        indices = np.asarray(indices, dtype=np.intp)
        return ResultFrame._wrap(
            {
                name: self._columns[name][indices]
                for name in COLUMN_ORDER
            }
        )

    def filter(self, mask) -> "ResultFrame":
        """Rows where the boolean ``mask`` is true, original order."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise SpecificationError(
                f"filter mask has shape {mask.shape}, expected "
                f"({len(self)},)"
            )
        return ResultFrame._wrap(
            {name: self._columns[name][mask] for name in COLUMN_ORDER}
        )

    def sort(self, by: Sequence[str]) -> "ResultFrame":
        """Stable sort by the given columns (first key is primary)."""
        if not by:
            raise SpecificationError("sort needs at least one column")
        keys = [self.column(name) for name in reversed(list(by))]
        # Object (label) columns lexsort fine: they hold plain strings.
        return self.take(np.lexsort(keys))

    # -- vectorised queries ------------------------------------------

    def pareto_mask(self) -> np.ndarray:
        """Mask of rows no other row dominates (vectorised dominance).

        Orientation matches the per-cell study analysis: performance is
        maximised, ``area_percent`` and ``cost_percent`` minimised.
        Over a whole-sweep frame this is the *global* front; filter to
        one grid point first to reproduce the per-point
        ``on_pareto_front`` flag.
        """
        return nondominated_mask(
            self._columns["performance"],
            self._columns["area_percent"],
            self._columns["cost_percent"],
        )

    def winner_counts(self) -> dict[str, int]:
        """How often each candidate carries the ``is_winner`` flag."""
        winners = self._columns["candidate"][self._columns["is_winner"]]
        if winners.shape[0] == 0:
            return {}
        names, counts = np.unique(winners.astype(str), return_counts=True)
        return {
            str(name): int(count)
            for name, count in zip(names, counts)
        }

    def best_index(self) -> int:
        """Index of the highest-FoM row (first on ties, like ``max``)."""
        if len(self) == 0:
            raise SpecificationError("empty sweep report")
        return int(np.argmax(self._columns["figure_of_merit"]))

    # -- serialisation ------------------------------------------------

    def to_json_columns(self) -> dict[str, list]:
        """The columns as JSON-ready lists (exact float round-trip).

        ``tolist()`` yields Python floats/bools/strings; Python's JSON
        encoder formats floats with ``repr``, which round-trips every
        IEEE double exactly.
        """
        return {
            name: self._columns[name].tolist() for name in COLUMN_ORDER
        }

    @classmethod
    def from_json_columns(
        cls, payload: Mapping[str, Sequence]
    ) -> "ResultFrame":
        """Rebuild a frame from its :meth:`to_json_columns` payload."""
        if not isinstance(payload, Mapping):
            raise SpecificationError(
                "result frame payload must be a column mapping"
            )
        return cls({name: payload[name] for name in payload})

    @staticmethod
    def csv_header() -> str:
        """The CSV header line (SweepRow field order)."""
        return ",".join(COLUMN_ORDER)

    def rendered_columns(
        self, names: Sequence[str] = ()
    ) -> list[list[str]]:
        """Each selected column as display strings (all when empty).

        THE formatting contract, shared by the CSV export and the
        text/markdown table renderers: floats via ``str(float)``
        (repr-shortest, exact round-trip), flags as ``True``/``False``,
        labels verbatim — exactly what ``str(value)`` over
        ``row.as_dict()`` values produced.  Columns are materialised
        once with ``tolist()``, so there is no per-cell attribute or
        dict traffic.
        """
        return [
            [str(value) for value in self.column(name).tolist()]
            for name in (names if names else COLUMN_ORDER)
        ]

    def csv_lines(self) -> list[str]:
        """One CSV line per row, byte-identical to the row-object path
        (see :meth:`rendered_columns` for the formatting contract)."""
        return [
            ",".join(parts) for parts in zip(*self.rendered_columns())
        ]
