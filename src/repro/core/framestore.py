"""Out-of-core sweep results: the chunked frame store tier.

:class:`~repro.core.resultframe.ResultFrame` is columnar but fully
RAM-resident — fine up to ~1M rows, memory-bound long before it is
compute-bound beyond that.  This module adds the spill tier the
ROADMAP names ("Out-of-core + adaptive sweeps: beyond 1M rows"): sweep
results stream through a bounded in-memory buffer into
content-addressed chunk files, and every downstream operation — merge,
CSV export, Pareto ranking — walks the chunks one at a time instead of
materialising the whole frame.

Design rules, all inherited from the existing tiers:

* **Byte identity.**  The in-RAM path stays the reference: a store's
  chunks concatenated (:meth:`ChunkedFrameStore.to_frame`), its
  streamed CSV (:meth:`ChunkedFrameStore.csv_lines`) and its chunked
  Pareto mask (:func:`chunked_nondominated_mask`) are bit-identical to
  the equivalent single-frame operations, for every chunk size.  The
  differential suite in ``tests/core/test_framestore.py`` locks this
  under hypothesis.
* **Atomic publication.**  Chunk files use the shard-artifact write
  protocol (tmp sibling + fsync + :func:`os.replace`), and the store
  manifest is republished atomically *after* each chunk lands — so a
  writer killed at any instant leaves a directory whose manifest
  references only complete chunks: absent-or-previous, never torn.
* **Content addressing.**  Every chunk file name carries the SHA-256
  digest of its canonical-JSON payload, re-verified on read; a
  truncated, foreign or mispaired chunk file is a loud
  :class:`FrameStoreError` (exit 2 from the CLI), mirroring the
  :class:`~repro.core.sharding.ShardMergeError` contract.
* **Bounded memory.**  The writer never buffers more than
  ``max_rows_in_memory`` rows; the streaming merge
  (:func:`merge_artifacts_to_store`) holds one source artifact plus
  the buffer; the chunked Pareto kernel holds one block plus the
  carried front (which is the answer itself, so it must fit).

CLI surface: ``repro-gps sweep/gather --max-rows-in-memory N`` (or
``$REPRO_SWEEP_MAX_ROWS``) with ``--spill-dir`` choosing where chunks
land; see ``docs/sweep-guide.md``, "Sweeping beyond RAM".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import SpecificationError
from .executors import CandidateFactory, Executor, SerialExecutor
from .figure_of_merit import FomWeights
from .pareto import nondominated_mask
from .queue import _write_json_atomic
from .resultframe import ResultFrame
from .sharding import (
    ArtifactLike,
    ShardMergeError,
    _load,
    _summarise_indices,
    grid_fingerprint,
    grid_order_digest,
    merge_cache_states,
)
from .sweep import (
    DesignPoint,
    EvaluationCache,
    SweepGrid,
    stream_design_sweep,
)
from .warehouse import canonical_json

#: Store manifest format identifier; bumped on incompatible changes.
STORE_FORMAT = "repro-framestore/1"

#: Chunk file format identifier.
CHUNK_FORMAT = "repro-framestore-chunk/1"

#: The manifest filename inside a frame store directory.
MANIFEST_NAME = "framestore.json"

#: Environment switch for the out-of-core row budget (unset: in-RAM).
MAX_ROWS_ENV = "REPRO_SWEEP_MAX_ROWS"

#: Upper bound on the transient boolean buffers of the blocked
#: front-vs-block dominance sweep (same budget as ``pareto.py``).
_BLOCK_BUDGET = 4_000_000


class FrameStoreError(SpecificationError):
    """A chunked frame store cannot be (safely) read or written."""


def max_rows_from_env() -> Optional[int]:
    """The :envvar:`REPRO_SWEEP_MAX_ROWS` row budget, validated.

    Unset or empty means "no budget" (the in-RAM path); anything else
    must be a positive integer — the same loud-or-nothing discipline as
    :func:`~repro.core.sweep.batch_fill_enabled`, so a typo exits the
    CLI with status 2 instead of silently sweeping in RAM.
    """
    raw = os.environ.get(MAX_ROWS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        raise SpecificationError(
            f"{MAX_ROWS_ENV} must be a positive integer row budget, "
            f"got {os.environ[MAX_ROWS_ENV]!r}"
        )
    return value


def chunk_digest(payload: dict) -> str:
    """Content digest of a chunk payload (canonical-JSON SHA-256)."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


def chunk_filename(sequence: int, digest: str) -> str:
    """Canonical content-addressed chunk filename."""
    return f"chunk-{sequence:06d}-{digest}.json"


@dataclass(frozen=True)
class ChunkEntry:
    """One chunk file as the store manifest records it."""

    file: str
    digest: str
    rows: int


def _require_positive_rows(max_rows_in_memory) -> int:
    if (
        not isinstance(max_rows_in_memory, int)
        or isinstance(max_rows_in_memory, bool)
        or max_rows_in_memory < 1
    ):
        raise FrameStoreError(
            f"max_rows_in_memory must be a positive integer, got "
            f"{max_rows_in_memory!r}"
        )
    return max_rows_in_memory


class ChunkedFrameStore:
    """Sweep rows spilled to disk in bounded, content-addressed chunks.

    Write side: :meth:`create` an empty store, :meth:`append` frames in
    canonical row order (the writer flushes a chunk file every
    ``max_rows_in_memory`` rows — chunk boundaries depend only on the
    budget, never on append granularity), :meth:`finish` to flush the
    remainder and mark the store complete.  Read side: :meth:`open` an
    existing directory and stream :meth:`iter_chunks` /
    :meth:`csv_lines` / :meth:`pareto_mask`, or bridge back to RAM with
    :meth:`to_frame` (the bit-identity reference).

    Durability matches the shard-artifact protocol: every chunk file is
    atomically published *before* the manifest that references it, so a
    writer killed mid-chunk leaves the previous manifest intact —
    readers observe absent-or-previous, never a torn store.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        max_rows_in_memory: int,
        entries: Sequence[ChunkEntry],
        complete: bool,
        meta: dict,
        revision: int,
    ) -> None:
        self._directory = Path(directory)
        self._max_rows = _require_positive_rows(max_rows_in_memory)
        self._entries: list[ChunkEntry] = list(entries)
        self._complete = bool(complete)
        self._meta = dict(meta)
        self._revision = int(revision)
        self._buffer: list[ResultFrame] = []
        self._buffered_rows = 0

    # -- construction -------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        *,
        max_rows_in_memory: int,
        meta: Optional[dict] = None,
    ) -> "ChunkedFrameStore":
        """Initialise an empty store (revision 1, no chunks).

        Refuses a directory that already holds a store manifest or
        stray chunk files: silently adopting or shadowing them would
        turn a crashed previous run into wrong rows.
        """
        directory = Path(directory)
        _require_positive_rows(max_rows_in_memory)
        manifest = directory / MANIFEST_NAME
        if manifest.exists():
            raise FrameStoreError(
                f"frame store already exists at {manifest}; open() it "
                f"or spill into a fresh directory"
            )
        if directory.is_dir():
            stray = sorted(directory.glob("chunk-*.json"))
            if stray:
                raise FrameStoreError(
                    f"directory {directory} holds {len(stray)} chunk "
                    f"file(s) but no store manifest (crashed writer?); "
                    f"remove them or spill into a fresh directory"
                )
        store = cls(
            directory,
            max_rows_in_memory=max_rows_in_memory,
            entries=(),
            complete=False,
            meta=meta or {},
            revision=0,
        )
        store._publish()
        return store

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "ChunkedFrameStore":
        """Load an existing store's manifest (chunks stay on disk)."""
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise FrameStoreError(
                f"cannot read frame store manifest {path}: {exc}"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FrameStoreError(
                f"frame store manifest {path} is not valid JSON "
                f"(truncated write?): {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise FrameStoreError(
                f"frame store manifest {path} is not an object"
            )
        declared = payload.get("format")
        if declared != STORE_FORMAT:
            raise FrameStoreError(
                f"{path}: unsupported frame store format {declared!r} "
                f"(expected {STORE_FORMAT!r})"
            )
        try:
            entries = [
                ChunkEntry(
                    file=str(chunk["file"]),
                    digest=str(chunk["digest"]),
                    rows=int(chunk["rows"]),
                )
                for chunk in payload["chunks"]
            ]
            store = cls(
                directory,
                max_rows_in_memory=payload["max_rows_in_memory"],
                entries=entries,
                complete=payload["complete"],
                meta=payload.get("meta", {}),
                revision=payload["revision"],
            )
        except (KeyError, TypeError, ValueError, SpecificationError) as exc:
            raise FrameStoreError(
                f"{path}: malformed frame store manifest ({exc})"
            ) from None
        declared_rows = payload.get("total_rows")
        if declared_rows != store.total_rows:
            raise FrameStoreError(
                f"{path}: manifest total_rows {declared_rows!r} does "
                f"not match the {store.total_rows} chunk rows it lists"
            )
        return store

    # -- basic protocol ----------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def max_rows_in_memory(self) -> int:
        return self._max_rows

    @property
    def complete(self) -> bool:
        """True once :meth:`finish` published the final manifest."""
        return self._complete

    @property
    def meta(self) -> dict:
        """The manifest's free-form metadata (a copy)."""
        return dict(self._meta)

    @property
    def chunk_count(self) -> int:
        return len(self._entries)

    @property
    def total_rows(self) -> int:
        """Rows published to chunks plus rows still buffered."""
        return (
            sum(entry.rows for entry in self._entries)
            + self._buffered_rows
        )

    def __len__(self) -> int:
        return self.total_rows

    def __repr__(self) -> str:
        state = "complete" if self._complete else "writing"
        return (
            f"ChunkedFrameStore({self.total_rows} rows in "
            f"{len(self._entries)} chunks, {state})"
        )

    # -- write side ---------------------------------------------------

    def _manifest_payload(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "max_rows_in_memory": self._max_rows,
            "revision": self._revision,
            "complete": self._complete,
            "total_rows": sum(entry.rows for entry in self._entries),
            "meta": self._meta,
            "chunks": [
                {
                    "file": entry.file,
                    "digest": entry.digest,
                    "rows": entry.rows,
                }
                for entry in self._entries
            ],
        }

    def _publish(self) -> None:
        self._revision += 1
        _write_json_atomic(
            self._directory / MANIFEST_NAME, self._manifest_payload()
        )

    def _take_buffered(self, count: int) -> ResultFrame:
        """Pop exactly ``count`` rows off the head of the buffer."""
        taken: list[ResultFrame] = []
        need = count
        while need > 0:
            frame = self._buffer[0]
            n = len(frame)
            if n <= need:
                taken.append(self._buffer.pop(0))
                need -= n
            else:
                taken.append(frame.take(np.arange(need)))
                self._buffer[0] = frame.take(np.arange(need, n))
                need = 0
        self._buffered_rows -= count
        return ResultFrame.concat(taken)

    def _flush_chunk(self, rows: int) -> None:
        chunk = self._take_buffered(rows)
        payload = {
            "format": CHUNK_FORMAT,
            "sequence": len(self._entries),
            "rows": len(chunk),
            "columns": chunk.to_json_columns(),
        }
        digest = chunk_digest(payload)
        name = chunk_filename(len(self._entries), digest)
        # The chunk file lands (atomically) before the manifest that
        # references it: a crash between the two leaves an orphan chunk
        # file and the previous manifest — never a dangling reference.
        _write_json_atomic(self._directory / name, payload)
        self._entries.append(
            ChunkEntry(file=name, digest=digest, rows=len(chunk))
        )
        self._publish()

    def append(self, frame: ResultFrame) -> None:
        """Buffer rows in canonical order, spilling full chunks.

        Every chunk except the last holds exactly
        ``max_rows_in_memory`` rows, whatever granularity the frames
        arrive in — so the chunk layout (and hence every chunk digest)
        is a pure function of the row stream and the budget.
        """
        if self._complete:
            raise FrameStoreError(
                f"frame store at {self._directory} is complete; "
                f"appending would corrupt published results"
            )
        if len(frame) == 0:
            return
        self._buffer.append(frame)
        self._buffered_rows += len(frame)
        while self._buffered_rows >= self._max_rows:
            self._flush_chunk(self._max_rows)

    def finish(self, meta: Optional[dict] = None) -> "ChunkedFrameStore":
        """Flush the remainder chunk and publish the final manifest."""
        if self._complete:
            raise FrameStoreError(
                f"frame store at {self._directory} is already complete"
            )
        if self._buffered_rows:
            self._flush_chunk(self._buffered_rows)
        if meta:
            self._meta.update(meta)
        self._complete = True
        self._publish()
        return self

    # -- read side ----------------------------------------------------

    def _read_chunk(self, entry: ChunkEntry) -> ResultFrame:
        path = self._directory / entry.file
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise FrameStoreError(
                f"cannot read frame chunk {path}: {exc}"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FrameStoreError(
                f"frame chunk {path} is not valid JSON "
                f"(truncated write?): {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise FrameStoreError(f"frame chunk {path} is not an object")
        declared = payload.get("format")
        if declared != CHUNK_FORMAT:
            raise FrameStoreError(
                f"{path}: unsupported frame chunk format {declared!r} "
                f"(expected {CHUNK_FORMAT!r})"
            )
        actual = chunk_digest(payload)
        if actual != entry.digest:
            raise FrameStoreError(
                f"{path}: chunk content digest {actual} does not match "
                f"the manifest's {entry.digest} (tampered or mispaired "
                f"chunk file)"
            )
        try:
            frame = ResultFrame.from_json_columns(payload["columns"])
        except (KeyError, TypeError, ValueError, SpecificationError) as exc:
            raise FrameStoreError(
                f"{path}: malformed frame chunk ({exc})"
            ) from None
        if len(frame) != entry.rows:
            raise FrameStoreError(
                f"{path}: chunk carries {len(frame)} rows but the "
                f"manifest records {entry.rows}"
            )
        return frame

    def _check_readable(self) -> None:
        if self._buffered_rows:
            raise FrameStoreError(
                f"frame store at {self._directory} still buffers "
                f"{self._buffered_rows} unflushed row(s); call "
                f"finish() before reading"
            )

    def iter_chunks(self) -> Iterator[ResultFrame]:
        """The chunks in row order, digest-verified, one at a time."""
        self._check_readable()
        for entry in self._entries:
            yield self._read_chunk(entry)

    def to_frame(self) -> ResultFrame:
        """The whole store as one in-RAM frame (the identity bridge).

        Materialises every row — use only when the result is known to
        fit; the streaming surfaces (:meth:`csv_lines`,
        :meth:`pareto_mask`, :meth:`winner_points`) exist so nothing
        else has to.
        """
        return ResultFrame.concat(list(self.iter_chunks()))

    def csv_lines(self) -> Iterator[str]:
        """One CSV line per row, streamed chunk by chunk.

        Byte-identical to :meth:`ResultFrame.csv_lines` over
        :meth:`to_frame`: CSV rendering is row-local, so chunking
        cannot change a single byte.
        """
        for chunk in self.iter_chunks():
            yield from chunk.csv_lines()

    def write_csv(self, handle: IO[str]) -> int:
        """Stream header + rows to a text handle; returns rows written."""
        handle.write(ResultFrame.csv_header() + "\n")
        rows = 0
        for line in self.csv_lines():
            handle.write(line + "\n")
            rows += 1
        return rows

    def winner_points(self) -> int:
        """How many rows carry ``is_winner`` (one per grid point)."""
        return sum(
            int(chunk.column("is_winner").sum())
            for chunk in self.iter_chunks()
        )

    def pareto_mask(self) -> np.ndarray:
        """Global Pareto mask over all rows, computed chunk-at-a-time.

        Byte-identical to :meth:`ResultFrame.pareto_mask` over
        :meth:`to_frame` (see :func:`chunked_nondominated_mask`), while
        holding only one chunk plus the carried front in memory.
        """
        return chunked_nondominated_mask(
            (
                chunk.column("performance"),
                chunk.column("area_percent"),
                chunk.column("cost_percent"),
            )
            for chunk in self.iter_chunks()
        )


def store_matches(
    store: ChunkedFrameStore,
    *,
    fingerprint: str,
    order_digest: str,
    total_points: int,
) -> bool:
    """Does a complete store hold exactly this grid's results?

    The ``--spill-dir`` reuse predicate: a store spilled from the same
    grid in the same canonical order can be re-read instead of
    re-merged, the same discipline as
    :func:`~repro.core.sharding.artifact_matches`.
    """
    meta = store.meta
    return (
        store.complete
        and meta.get("fingerprint") == fingerprint
        and meta.get("order_digest") == order_digest
        and meta.get("total_points") == total_points
    )


# -- chunked Pareto ---------------------------------------------------


def _dominated_by(candidates: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Which ``targets`` rows some ``candidates`` row dominates.

    Both arrays are ``(k, 3)`` / ``(m, 3)`` objective matrices already
    oriented for *minimisation* on every column.  Evaluated in blocks
    of target columns so the transient boolean buffers stay under the
    same few-megabyte budget as :func:`repro.core.pareto.first_dominators`;
    NaN rows neither dominate nor are dominated (every comparison is
    False), exactly like the in-RAM kernels.
    """
    k = candidates.shape[0]
    m = targets.shape[0]
    out = np.zeros(m, dtype=bool)
    if k == 0 or m == 0:
        return out
    cp = candidates[:, 0]
    cs = candidates[:, 1]
    cc = candidates[:, 2]
    block = max(1, min(m, _BLOCK_BUDGET // k))
    for start in range(0, m, block):
        stop = min(start + block, m)
        tp = targets[start:stop, 0]
        ts = targets[start:stop, 1]
        tc = targets[start:stop, 2]
        at_least = (
            (cp[:, None] <= tp[None, :])
            & (cs[:, None] <= ts[None, :])
            & (cc[:, None] <= tc[None, :])
        )
        strictly = (
            (cp[:, None] < tp[None, :])
            | (cs[:, None] < ts[None, :])
            | (cc[:, None] < tc[None, :])
        )
        out[start:stop] = (at_least & strictly).any(axis=0)
    return out


def chunked_nondominated_mask(blocks) -> np.ndarray:
    """Global non-dominated mask over blocks of objective arrays.

    ``blocks`` yields ``(performance, size, cost)`` triples (performance
    maximised, size and cost minimised — the
    :func:`~repro.core.pareto.nondominated_mask` orientation); the
    concatenated result is bit-identical to running the in-RAM kernel
    over the concatenated arrays, while only one block plus the carried
    front is ever resident.

    The algorithm carries the exact Pareto front of everything seen so
    far.  Per block: (1) points some front member dominates are marked
    dominated — complete, because strict dominance is transitive, so
    any dominated point has a *maximal* dominator, which by the
    invariant sits on the carried front; (2) the survivors are
    self-filtered with the in-RAM kernel (a survivor dominated only by
    a dominated in-block point would, by transitivity, be dominated by
    that point's front-member dominator and already be gone); (3) front
    members the block's new front points dominate are retired — their
    already-emitted mask bit is rewritten to False — and the front is
    extended with the block's new points.  Duplicates across blocks
    both survive and NaN rows survive, exactly as in-RAM.
    """
    masks: list[np.ndarray] = []
    front = np.empty((0, 3), dtype=np.float64)
    front_pos: list[tuple[int, int]] = []
    for block_no, (performance, size, cost) in enumerate(blocks):
        perf = np.asarray(performance, dtype=np.float64)
        size = np.asarray(size, dtype=np.float64)
        cost = np.asarray(cost, dtype=np.float64)
        if (
            not (perf.shape == size.shape == cost.shape)
            or perf.ndim != 1
        ):
            raise SpecificationError(
                "dominance needs three equally-long 1-D objective "
                f"arrays, got shapes {perf.shape}, {size.shape}, "
                f"{cost.shape}"
            )
        objectives = np.column_stack([-perf, size, cost])
        n = objectives.shape[0]
        mask = np.zeros(n, dtype=bool)
        survivors = ~_dominated_by(front, objectives)
        local = objectives[survivors]
        keep = nondominated_mask(-local[:, 0], local[:, 1], local[:, 2])
        indices = np.flatnonzero(survivors)[keep]
        mask[indices] = True
        block_front = objectives[indices]
        fallen = _dominated_by(block_front, front)
        for position in np.flatnonzero(fallen):
            owner, row = front_pos[position]
            masks[owner][row] = False
        masks.append(mask)
        alive = ~fallen
        front = np.concatenate([front[alive], block_front])
        front_pos = [
            pos for pos, ok in zip(front_pos, alive) if ok
        ] + [(block_no, int(row)) for row in indices]
    if not masks:
        return np.zeros(0, dtype=bool)
    return np.concatenate(masks)


# -- streaming merge of shard artifacts -------------------------------


def merge_artifacts_to_store(
    artifacts: Iterable[ArtifactLike],
    directory: Union[str, Path],
    max_rows_in_memory: int,
    meta: Optional[dict] = None,
) -> ChunkedFrameStore:
    """Spill-to-disk merge: shard artifacts to a chunked frame store.

    The out-of-core twin of
    :func:`~repro.core.sharding.merge_shard_artifacts` — same
    validation (same :class:`~repro.core.sharding.ShardMergeError`
    messages for foreign grids, wrong orders, duplicated or missing
    indices), same canonical result: the store's row stream is
    byte-identical to the in-RAM merge's frame.  The stable in-RAM sort
    groups rows by ascending canonical point index with each point's
    rows in artifact order; every point lives in exactly one artifact,
    so replaying the points in ascending order and copying each point's
    row run reproduces that order exactly.

    Memory never holds more than one source artifact's frame plus the
    store's ``max_rows_in_memory`` buffer: validation scans the sources
    one at a time keeping only their index metadata, and the copy pass
    reloads one artifact at a time.  Path sources are read twice
    (validate, then copy); in-memory artifacts are kept by reference.
    """
    sources = list(artifacts)
    if not sources:
        raise ShardMergeError("no shard artifacts to merge")

    records: list[tuple[ArtifactLike, tuple[int, ...], tuple[int, ...]]] = []
    states: list[dict] = []
    reference: Optional[dict] = None
    for source in sources:
        artifact = _load(source)
        if reference is None:
            reference = {
                "fingerprint": artifact.fingerprint,
                "order_digest": artifact.order_digest,
                "total_points": artifact.total_points,
                "shards": artifact.shards,
                "shard_index": artifact.shard_index,
            }
        else:
            if artifact.fingerprint != reference["fingerprint"]:
                raise ShardMergeError(
                    f"shard artifacts fingerprint different grids: "
                    f"{reference['fingerprint']} (shard "
                    f"{reference['shard_index']}/{reference['shards']}) "
                    f"vs {artifact.fingerprint} (shard "
                    f"{artifact.shard_index}/{artifact.shards})"
                )
            if artifact.order_digest != reference["order_digest"]:
                raise ShardMergeError(
                    f"shard artifacts enumerate the same grid in a "
                    f"different point order (order digest "
                    f"{reference['order_digest']} vs "
                    f"{artifact.order_digest}): re-run the shards with "
                    f"identically-ordered axes"
                )
            if artifact.total_points != reference["total_points"]:
                raise ShardMergeError(
                    f"shard artifacts disagree on the grid size: "
                    f"{reference['total_points']} vs "
                    f"{artifact.total_points} points"
                )
        total = reference["total_points"]
        indices = np.asarray(artifact.indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= total):
            outside = int(indices[(indices < 0) | (indices >= total)][0])
            raise ShardMergeError(
                f"shard {artifact.shard_index}/{artifact.shards} "
                f"carries point index {outside}, outside the "
                f"{total}-point grid"
            )
        records.append(
            (
                source if isinstance(source, (str, Path)) else artifact,
                tuple(artifact.indices),
                tuple(artifact.row_counts),
            )
        )
        states.append(artifact.cache_state)
        del artifact  # free the frame before loading the next source

    total = reference["total_points"]
    all_indices = np.concatenate(
        [np.asarray(indices, dtype=np.int64) for _, indices, _ in records]
    ) if records else np.empty(0, dtype=np.int64)
    covered, counts = np.unique(all_indices, return_counts=True)
    duplicates = covered[counts > 1]
    if duplicates.size:
        raise ShardMergeError(
            f"duplicated point indices across shard artifacts: "
            f"{_summarise_indices(duplicates.tolist())} "
            f"(the same shard was merged twice?)"
        )
    if covered.size != total:
        coverage = np.zeros(total, dtype=bool)
        coverage[covered] = True
        missing = np.flatnonzero(~coverage).tolist()
        raise ShardMergeError(
            f"missing point indices {_summarise_indices(missing)} of "
            f"{total}: a shard artifact was not merged"
        )

    # The merge plan, one int64 per point instead of a dict of Python
    # tuples (which would cost ~200 bytes/point — more than the rows
    # it schedules): which record holds the point, where its rows
    # start in that record's frame, and how many there are.
    point_record = np.empty(total, dtype=np.int64)
    point_offset = np.empty(total, dtype=np.int64)
    point_count = np.empty(total, dtype=np.int64)
    for record_index, (_, indices, row_counts) in enumerate(records):
        idx = np.asarray(indices, dtype=np.int64)
        cnt = np.asarray(row_counts, dtype=np.int64)
        point_record[idx] = record_index
        point_count[idx] = cnt
        point_offset[idx] = np.cumsum(cnt) - cnt

    store = ChunkedFrameStore.create(
        directory,
        max_rows_in_memory=max_rows_in_memory,
        meta={
            **(meta or {}),
            "fingerprint": reference["fingerprint"],
            "order_digest": reference["order_digest"],
            "total_points": total,
        },
    )

    # Copy pass: walk points in canonical order, coalescing maximal
    # same-artifact contiguous row runs (with contiguous sharding each
    # artifact is exactly one run), loading one artifact at a time.
    loaded_index: Optional[int] = None
    loaded_frame: Optional[ResultFrame] = None

    def _frame_of(record_index: int) -> ResultFrame:
        nonlocal loaded_index, loaded_frame
        if loaded_index != record_index:
            loaded_frame = _load(records[record_index][0]).frame
            loaded_index = record_index
        return loaded_frame

    def _copy_run(record_index: int, start: int, stop: int) -> None:
        frame = _frame_of(record_index)
        budget = store.max_rows_in_memory
        for piece_start in range(start, stop, budget):
            piece_stop = min(piece_start + budget, stop)
            store.append(frame.take(np.arange(piece_start, piece_stop)))

    if total:
        # Run boundaries, vectorised: a new run starts where the record
        # changes or the next point's rows are not the continuation of
        # the previous point's.
        breaks = (
            np.flatnonzero(
                (point_record[1:] != point_record[:-1])
                | (
                    point_offset[1:]
                    != point_offset[:-1] + point_count[:-1]
                )
            )
            + 1
        )
        starts = np.concatenate([[0], breaks])
        stops = np.concatenate([breaks, [total]])
        for first, last in zip(starts.tolist(), stops.tolist()):
            _copy_run(
                int(point_record[first]),
                int(point_offset[first]),
                int(point_offset[last - 1] + point_count[last - 1]),
            )

    return store.finish(meta={"cache_stats": merge_cache_states(states)})


# -- streaming sweep to a store ---------------------------------------


def spill_design_sweep(
    grid: Union[SweepGrid, Iterable[DesignPoint]],
    candidate_factory: CandidateFactory,
    directory: Union[str, Path],
    max_rows_in_memory: int,
    reference: int = 0,
    weights: Optional[FomWeights] = None,
    cache: Optional[EvaluationCache] = None,
    executor: Optional[Executor] = None,
    meta: Optional[dict] = None,
) -> ChunkedFrameStore:
    """Run a design sweep, spilling completed cells to a chunk store.

    The out-of-core surface of
    :func:`~repro.core.sweep.run_design_sweep`: the row stream (and
    hence the store's chunks, CSV and Pareto mask) is byte-identical
    to the in-RAM report's frame, with never more than
    ``max_rows_in_memory`` rows buffered.  Cells stream out of
    :func:`~repro.core.sweep.stream_design_sweep` through a reorder
    window, so any engine works: a streaming engine's completion order
    is rewound to canonical order before rows touch the store.  The
    default engine here is the serial one — it streams cells in
    canonical order, keeping the reorder window at one cell.

    The finished store's ``meta`` carries the grid identity
    (fingerprint, order digest, point count — see
    :func:`store_matches`) and the sweep's ``cache_stats``.
    """
    points = grid.points() if isinstance(grid, SweepGrid) else list(grid)
    if not points:
        raise SpecificationError("design sweep needs at least one point")
    if weights is None:
        weights = FomWeights()
    if cache is None:
        cache = EvaluationCache()
    if executor is None:
        executor = SerialExecutor()

    store = ChunkedFrameStore.create(
        directory,
        max_rows_in_memory=max_rows_in_memory,
        meta={
            **(meta or {}),
            "fingerprint": grid_fingerprint(points),
            "order_digest": grid_order_digest(points),
            "total_points": len(points),
        },
    )
    pending: dict[int, ResultFrame] = {}
    next_index = 0
    for streamed in stream_design_sweep(
        points,
        candidate_factory,
        reference=reference,
        weights=weights,
        cache=cache,
        executor=executor,
    ):
        pending[streamed.index] = streamed.frame
        while next_index in pending:
            store.append(pending.pop(next_index))
            next_index += 1
    if next_index != len(points) or pending:
        raise FrameStoreError(
            f"streamed sweep delivered {next_index + len(pending)} of "
            f"{len(points)} points"
        )
    return store.finish(meta={"cache_stats": cache.stats()})
