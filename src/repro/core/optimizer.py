"""The "passives optimized" technology selector (build-up 4's rule).

The paper's fourth build-up takes "into account that in case SMD
components consume less area than integrated passives, the SMD component
is preferred".  This module generalises that into a per-component
selector with two rules, applied in order:

1. **Performance rule** — if the requirement states a minimum Q at a
   frequency where the integrated technology cannot deliver it, the
   component must be SMD (the IF-inductor case of §4.1).
2. **Area rule** — otherwise pick whichever realization consumes less
   area, accounting for the SMD-on-MCM footprint overhead.

The selector returns the chosen realization plus the reason, so reports
can explain each decision (the paper's step 5 is "make a decision").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..area.substrate import SubstrateRule
from ..circuits.qfactor import SummitQModel
from ..passives.component import (
    MountingStyle,
    PassiveKind,
    PassiveRealization,
    PassiveRequirement,
)
from ..passives.smd import realize_smd
from ..passives.thin_film import SUMMIT_PROCESS, ThinFilmProcess, realize_integrated


@dataclass(frozen=True)
class SelectionDecision:
    """One per-component technology decision with its rationale."""

    requirement: PassiveRequirement
    chosen: PassiveRealization
    rejected: PassiveRealization
    reason: str

    @property
    def integrated(self) -> bool:
        """True when the integrated realization won."""
        return self.chosen.mounting is MountingStyle.INTEGRATED


@dataclass(frozen=True)
class SelectionReport:
    """Aggregate result of optimising a set of requirements."""

    decisions: tuple[SelectionDecision, ...]

    @property
    def integrated_count(self) -> int:
        """How many components ended up integrated."""
        return sum(1 for d in self.decisions if d.integrated)

    @property
    def smd_count(self) -> int:
        """How many components stayed surface-mount."""
        return len(self.decisions) - self.integrated_count

    @property
    def total_area_mm2(self) -> float:
        """Raw area of all chosen realizations."""
        return sum(d.chosen.area_mm2 for d in self.decisions)

    @property
    def area_saved_mm2(self) -> float:
        """Area saved versus taking the rejected option everywhere."""
        rejected = sum(d.rejected.area_mm2 for d in self.decisions)
        return rejected - self.total_area_mm2

    def smd_realizations(self) -> list[PassiveRealization]:
        """The components that must go through SMD assembly."""
        return [d.chosen for d in self.decisions if not d.integrated]


def select_technology(
    requirement: PassiveRequirement,
    process: ThinFilmProcess = SUMMIT_PROCESS,
    smd_case: str = "0603",
    substrate_rule: Optional[SubstrateRule] = None,
    q_model: Optional[SummitQModel] = None,
) -> SelectionDecision:
    """Choose SMD or integrated for one requirement (see module docs).

    Parameters
    ----------
    requirement:
        The electrical requirement.
    process:
        The integrated technology on offer.
    smd_case:
        SMD case size for the discrete alternative.
    substrate_rule:
        If given, its SMD footprint factor inflates the discrete
        footprint (SMDs on fine-line MCM-D cost extra escape area).
    q_model:
        Q model used for the performance rule; defaults to the SUMMIT
        model matching ``process``.
    """
    integrated = realize_integrated(requirement, process)
    smd = realize_smd(requirement, case_code=smd_case)
    smd_effective_area = smd.area_mm2
    if substrate_rule is not None:
        smd_effective_area *= substrate_rule.smd_footprint_factor

    if (
        requirement.kind is PassiveKind.INDUCTOR
        and requirement.min_q is not None
        and requirement.q_frequency is not None
    ):
        model = q_model if q_model is not None else SummitQModel(process=process)
        achieved_q = model.inductor_q(
            requirement.value, requirement.q_frequency
        )
        if achieved_q < requirement.min_q:
            return SelectionDecision(
                requirement=requirement,
                chosen=smd,
                rejected=integrated,
                reason=(
                    f"performance: integrated Q={achieved_q:.1f} < "
                    f"required {requirement.min_q:.1f} at "
                    f"{requirement.q_frequency:.3g} Hz"
                ),
            )

    if integrated.area_mm2 <= smd_effective_area:
        return SelectionDecision(
            requirement=requirement,
            chosen=integrated,
            rejected=smd,
            reason=(
                f"area: integrated {integrated.area_mm2:.3g} mm^2 <= "
                f"SMD {smd_effective_area:.3g} mm^2"
            ),
        )
    return SelectionDecision(
        requirement=requirement,
        chosen=smd,
        rejected=integrated,
        reason=(
            f"area: SMD {smd_effective_area:.3g} mm^2 < integrated "
            f"{integrated.area_mm2:.3g} mm^2"
        ),
    )


def optimize_passives(
    requirements: Iterable[PassiveRequirement],
    process: ThinFilmProcess = SUMMIT_PROCESS,
    smd_case: str = "0603",
    substrate_rule: Optional[SubstrateRule] = None,
) -> SelectionReport:
    """Apply :func:`select_technology` to every requirement."""
    decisions = tuple(
        select_technology(
            requirement,
            process=process,
            smd_case=smd_case,
            substrate_rule=substrate_rule,
        )
        for requirement in requirements
    )
    return SelectionReport(decisions=decisions)
