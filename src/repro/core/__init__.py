"""The paper's primary contribution: the trade-off methodology."""

from .decision import (
    fig3_table,
    fig5_table,
    fig6_table,
    full_report,
    recommendation,
)
from .figure_of_merit import (
    FomEntry,
    FomWeights,
    figure_of_merit,
    rank_buildups,
)
from .methodology import (
    BuildUpAssessment,
    CandidateBuildUp,
    StudyResult,
    StudyRow,
    assess_candidate,
    run_study,
    study_from_assessments,
)
from .pareto import (
    ParetoAnalysis,
    ParetoPoint,
    analyze_study,
    pareto_front,
    pareto_points,
)
from .optimizer import (
    SelectionDecision,
    SelectionReport,
    optimize_passives,
    select_technology,
)
from .executors import (
    ChunkedStackedExecutor,
    Executor,
    MultiprocessExecutor,
    SerialExecutor,
    default_executor,
    make_executor,
    resolve_executor,
)
from .sweep import (
    DesignPoint,
    EvaluationCache,
    SweepCell,
    SweepGrid,
    SweepReport,
    SweepRow,
    assess_candidate_cached,
    run_design_sweep,
)

__all__ = [
    "BuildUpAssessment",
    "CandidateBuildUp",
    "ChunkedStackedExecutor",
    "DesignPoint",
    "EvaluationCache",
    "Executor",
    "FomEntry",
    "FomWeights",
    "MultiprocessExecutor",
    "ParetoAnalysis",
    "ParetoPoint",
    "SelectionDecision",
    "SelectionReport",
    "SerialExecutor",
    "StudyResult",
    "StudyRow",
    "SweepCell",
    "SweepGrid",
    "SweepReport",
    "SweepRow",
    "analyze_study",
    "assess_candidate",
    "assess_candidate_cached",
    "default_executor",
    "fig3_table",
    "fig5_table",
    "fig6_table",
    "figure_of_merit",
    "full_report",
    "make_executor",
    "optimize_passives",
    "pareto_front",
    "pareto_points",
    "rank_buildups",
    "recommendation",
    "resolve_executor",
    "run_design_sweep",
    "run_study",
    "select_technology",
    "study_from_assessments",
]
