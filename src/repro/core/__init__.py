"""The paper's primary contribution: the trade-off methodology."""

from .decision import (
    fig3_table,
    fig5_table,
    fig6_table,
    full_report,
    recommendation,
)
from .figure_of_merit import (
    FomEntry,
    FomWeights,
    figure_of_merit,
    rank_buildups,
)
from .methodology import (
    BuildUpAssessment,
    CandidateBuildUp,
    StudyResult,
    StudyRow,
    assess_candidate,
    run_study,
)
from .pareto import (
    ParetoAnalysis,
    ParetoPoint,
    analyze_study,
    pareto_front,
    pareto_points,
)
from .optimizer import (
    SelectionDecision,
    SelectionReport,
    optimize_passives,
    select_technology,
)

__all__ = [
    "BuildUpAssessment",
    "CandidateBuildUp",
    "FomEntry",
    "FomWeights",
    "ParetoAnalysis",
    "ParetoPoint",
    "SelectionDecision",
    "SelectionReport",
    "StudyResult",
    "StudyRow",
    "analyze_study",
    "assess_candidate",
    "fig3_table",
    "fig5_table",
    "fig6_table",
    "figure_of_merit",
    "full_report",
    "optimize_passives",
    "pareto_front",
    "pareto_points",
    "rank_buildups",
    "recommendation",
    "run_study",
    "select_technology",
]
